// Package ecg (Edge Cache Groups) is a library for forming cooperative
// groups of CDN edge caches, reproducing "Efficient Formation of Edge Cache
// Groups for Dynamic Content Delivery" (Ramaswamy, Liu & Zhang, ICDCS 2006).
//
// The library covers the complete pipeline of the paper:
//
//   - a transit-stub Internet topology generator and edge-cache placement
//     (the GT-ITM-style substrate the paper simulates on),
//   - a landmark probing layer with realistic measurement noise,
//   - the SL scheme: greedy max-min landmark selection, RTT feature
//     vectors, and K-means clustering into K cooperative groups,
//   - the SDSL scheme: server-distance-sensitive seeding that builds
//     compact groups near the origin server and larger groups far from it,
//   - a GNP (Euclidean embedding) baseline representation,
//   - a discrete event simulator for the cooperative edge cache network
//     (utility-based caching, cooperative miss handling, origin updates),
//   - the paper's evaluation metrics and every figure of its evaluation
//     section as a reproducible experiment.
//
// # Quick start
//
//	src := ecg.NewRand(42)
//	graph, _ := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topo"))
//	nw, _ := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: 200}, src.Split("place"))
//	prober, _ := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
//	gf, _ := ecg.NewCoordinator(nw, prober, ecg.SDSL(25, 4, 1.0), src.Split("gf"))
//	plan, _ := gf.FormGroups(20)
//	fmt.Println(plan.Sizes())
//
// See the examples/ directory for runnable programs and the cmd/ecgsim
// binary for the full evaluation suite.
package ecg

import (
	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/core"
	"edgecachegroups/internal/gnp"
	"edgecachegroups/internal/landmark"
	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/netsim"
	"edgecachegroups/internal/obs"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/verify"
	"edgecachegroups/internal/workload"
)

// Randomness.
type (
	// Rand is a deterministic random source; derive independent child
	// streams with Split for concurrent components.
	Rand = simrand.Source
)

// NewRand returns a deterministic random source seeded with seed.
func NewRand(seed int64) *Rand { return simrand.New(seed) }

// Topology substrate.
type (
	// Graph is an undirected weighted Internet topology graph.
	Graph = topology.Graph
	// Node is a router in the topology.
	Node = topology.Node
	// NodeID identifies a router.
	NodeID = topology.NodeID
	// NodeKind distinguishes transit from stub routers.
	NodeKind = topology.NodeKind
	// TransitStubParams configures the GT-ITM-style topology generator.
	TransitStubParams = topology.TransitStubParams
	// Network is a placed edge cache network (origin + N caches).
	Network = topology.Network
	// PlaceParams configures endpoint placement.
	PlaceParams = topology.PlaceParams
	// CacheIndex identifies an edge cache within a Network.
	CacheIndex = topology.CacheIndex
)

// Topology node kinds.
const (
	KindTransit = topology.KindTransit
	KindStub    = topology.KindStub
)

// NewGraph returns an empty topology graph.
func NewGraph() *Graph { return topology.NewGraph() }

// DefaultTransitStubParams returns the topology configuration used in the
// experiments.
func DefaultTransitStubParams() TransitStubParams { return topology.DefaultTransitStubParams() }

// GenerateTransitStub builds a connected transit-stub topology.
func GenerateTransitStub(params TransitStubParams, src *Rand) (*Graph, error) {
	return topology.GenerateTransitStub(params, src)
}

// NewNetwork places an origin server and edge caches on random stub
// routers.
func NewNetwork(g *Graph, params PlaceParams, src *Rand) (*Network, error) {
	return topology.NewNetwork(g, params, src)
}

// NewNetworkAt places endpoints at explicit attachment routers.
func NewNetworkAt(g *Graph, origin NodeID, caches []NodeID) (*Network, error) {
	return topology.NewNetworkAt(g, origin, caches)
}

// Probing layer.
type (
	// Prober measures RTTs between network endpoints with configurable
	// noise, loss, and retries.
	Prober = probe.Prober
	// ProbeConfig tunes the measurement model.
	ProbeConfig = probe.Config
	// Endpoint addresses the origin server or an edge cache.
	Endpoint = probe.Endpoint
)

// DefaultProbeConfig returns the measurement model used in the
// experiments.
func DefaultProbeConfig() ProbeConfig { return probe.DefaultConfig() }

// NewProber builds a prober over a placed network.
func NewProber(nw *Network, cfg ProbeConfig, src *Rand) (*Prober, error) {
	return probe.NewProber(nw, cfg, src)
}

// OriginEndpoint returns the probe endpoint of the origin server.
func OriginEndpoint() Endpoint { return probe.Origin() }

// CacheEndpoint returns the probe endpoint of edge cache i.
func CacheEndpoint(i CacheIndex) Endpoint { return probe.Cache(i) }

// Group formation (the paper's contribution).
type (
	// SchemeConfig describes a group formation scheme (SL, SDSL, or the
	// Euclidean baseline).
	SchemeConfig = core.Config
	// Coordinator is the GF-Coordinator that forms cooperative groups.
	Coordinator = core.Coordinator
	// Plan is a formed partition of caches into cooperative groups.
	Plan = core.Plan
	// Representation selects feature vectors or GNP coordinates.
	Representation = core.Representation
	// LandmarkParams holds the landmark-set size parameters L and M.
	LandmarkParams = landmark.Params
	// LandmarkSelector chooses the landmark set.
	LandmarkSelector = landmark.Selector
	// FeatureVector is a point in the clustered space.
	FeatureVector = cluster.Vector
	// FeatureMatrix is the flat (one contiguous allocation) feature store
	// the pipeline builds for million-cache inputs.
	FeatureMatrix = cluster.Matrix
	// KMeansPruneMode selects the K-means reassignment strategy
	// (exhaustive, Hamerly bounds pruning, or Elkan bounds pruning). All
	// modes return bit-identical plans; see WithKMeansPrune.
	KMeansPruneMode = cluster.PruneMode
)

// K-means pruning modes. The default (PruneAuto) is Hamerly-style bounds
// pruning, which skips the distance evaluations the exhaustive sweep
// would waste on provably-unchanged points without altering any result.
const (
	PruneAuto    = cluster.PruneAuto
	PruneNone    = cluster.PruneNone
	PruneHamerly = cluster.PruneHamerly
	PruneElkan   = cluster.PruneElkan
)

// Position representations.
const (
	RepresentationFeatureVector = core.FeatureVector
	RepresentationEuclidean     = core.Euclidean
)

// Landmark selectors (paper §3.1 and §5.1 baselines).
type (
	// GreedyLandmarks is the SL scheme's max-min greedy selector.
	GreedyLandmarks = landmark.Greedy
	// RandomLandmarks selects landmarks uniformly at random.
	RandomLandmarks = landmark.Random
	// MinDistLandmarks is the adversarial clumped-landmarks baseline.
	MinDistLandmarks = landmark.MinDist
)

// SL returns the paper's SL scheme with L landmarks and PLSet multiplier M.
func SL(l, m int) SchemeConfig { return core.SL(l, m) }

// SDSL returns the paper's SDSL scheme with server-distance sensitivity
// theta.
func SDSL(l, m int, theta float64) SchemeConfig { return core.SDSL(l, m, theta) }

// EuclideanScheme returns the GNP Euclidean-representation baseline with
// the given embedding dimension.
func EuclideanScheme(l, m, dim int) SchemeConfig { return core.EuclideanScheme(l, m, dim) }

// WithParallelism sets every worker-pool bound of the formation pipeline
// (feature probing, clustering, embedding) to workers and returns the
// updated config. Formation results are identical for every setting — the
// knob trades goroutines for wall-clock time only. workers == 0 restores
// the per-layer defaults.
func WithParallelism(cfg SchemeConfig, workers int) SchemeConfig {
	cfg.ProbeParallelism = workers
	cfg.Cluster.Parallelism = workers
	cfg.GNP.Parallelism = workers
	return cfg
}

// WithKMeansPrune sets the K-means reassignment strategy and returns the
// updated config. Like WithParallelism, the knob never changes the formed
// plan — pruned and exhaustive runs produce bit-identical checksums — it
// only trades distance evaluations for bound bookkeeping.
func WithKMeansPrune(cfg SchemeConfig, mode KMeansPruneMode) SchemeConfig {
	cfg.Cluster.Prune = mode
	return cfg
}

// NewCoordinator builds a GF-Coordinator for the given scheme.
func NewCoordinator(nw *Network, prober *Prober, cfg SchemeConfig, src *Rand) (*Coordinator, error) {
	return core.NewCoordinator(nw, prober, cfg, src)
}

// GNP embedding (Euclidean baseline internals, exposed for reuse).
type (
	// GNPConfig tunes the Euclidean embedding.
	GNPConfig = gnp.Config
)

// DefaultGNPConfig returns the 5-dimensional embedding configuration.
func DefaultGNPConfig() GNPConfig { return gnp.DefaultConfig() }

// Workload generation.
type (
	// Catalog is a synthetic document catalog with Zipf popularity.
	Catalog = workload.Catalog
	// CatalogParams configures catalog synthesis.
	CatalogParams = workload.CatalogParams
	// Document is one item of origin content.
	Document = workload.Document
	// DocID identifies a document.
	DocID = workload.DocID
	// Request is one client request at an edge cache.
	Request = workload.Request
	// Update is one origin-side document update.
	Update = workload.Update
	// TraceParams configures request-log synthesis.
	TraceParams = workload.TraceParams
)

// DefaultCatalogParams returns the catalog used by the experiments.
func DefaultCatalogParams() CatalogParams { return workload.DefaultCatalogParams() }

// DefaultTraceParams returns the trace configuration used by the
// experiments.
func DefaultTraceParams() TraceParams { return workload.DefaultTraceParams() }

// NewCatalog synthesizes a document catalog.
func NewCatalog(params CatalogParams, src *Rand) (*Catalog, error) {
	return workload.NewCatalog(params, src)
}

// GenerateRequests synthesizes the merged per-cache request log.
func GenerateRequests(c *Catalog, numCaches int, params TraceParams, src *Rand) ([]Request, error) {
	return workload.GenerateRequests(c, numCaches, params, src)
}

// GenerateUpdates synthesizes the origin server's update log.
func GenerateUpdates(c *Catalog, durationSec float64, src *Rand) ([]Update, error) {
	return workload.GenerateUpdates(c, durationSec, src)
}

// Simulation.
type (
	// Simulator is the discrete event cooperative-cache simulator.
	Simulator = netsim.Simulator
	// SimConfig tunes the simulator's latency and cache model.
	SimConfig = netsim.Config
	// Report aggregates a simulation run's outcome.
	Report = netsim.Report
)

// DefaultSimConfig returns the latency model used by the experiments. Set
// SimConfig.Shards to run the simulator's group-partitioned shards
// concurrently; the Report (and its Checksum) is bit-identical to the
// serial run at any shard count.
func DefaultSimConfig() SimConfig { return netsim.DefaultConfig() }

// NewSimulator builds a simulator for a group partition.
func NewSimulator(nw *Network, groups [][]CacheIndex, catalog *Catalog, cfg SimConfig) (*Simulator, error) {
	return netsim.New(nw, groups, catalog, cfg)
}

// Metrics.
type (
	// LatencyStats accumulates latency samples.
	LatencyStats = metrics.LatencyStats
)

// Observability layer (see internal/obs): a metrics registry, a bounded
// trace ring, and an HTTP exposition surface. An *Obs plugs into
// SchemeConfig.Obs, SimConfig.Obs, and ProtocolConfig.Obs; enabling it
// never changes a Plan or Report checksum.
type (
	// Obs bundles a metrics registry and a trace sink; nil disables
	// instrumentation everywhere it is accepted.
	Obs = obs.Obs
	// ObsEvent is one structured trace record.
	ObsEvent = obs.Event
	// ObsServer is a live /metrics, /debug/vars, /debug/pprof, /trace
	// endpoint.
	ObsServer = obs.Server
)

// NewObs returns an enabled observability bundle.
func NewObs() *Obs { return obs.New() }

// ServeObs binds addr (host:port, ":0" for ephemeral) and serves o's
// exposition endpoints on it until the returned server is closed.
func ServeObs(addr string, o *Obs) (*ObsServer, error) { return obs.Serve(addr, o) }

// Verification layer.
type (
	// Stages records per-pipeline-stage timing and work counters
	// (landmark selection, feature probing, embedding, clustering,
	// simulation).
	Stages = verify.Stages
	// StageStat is a snapshot of one stage's counters.
	StageStat = verify.StageStat
	// VerifyError is a violated pipeline invariant; its Stage field names
	// the check that failed.
	VerifyError = verify.Error
)

// VerifyPlan checks a formed plan's structural invariants: every cache in
// exactly one group, no empty groups, consistent dimensions, and — for
// unedited K-means plans — centers equal to member means. A nil nw skips
// the network-coverage check. Plans also carry a stable fingerprint via
// Plan.Checksum for determinism audits.
func VerifyPlan(plan *Plan, nw *Network) error { return plan.Verify(nw) }

// VerifyReport checks a simulation report's conservation invariants
// against the offered request and update logs (outcome counts sum to
// recorded requests, counters non-negative and bounded, per-cache and
// per-group aggregates consistent). Reports also carry a stable
// fingerprint via Report.Checksum.
func VerifyReport(rep *Report, requests []Request, updates []Update) error {
	return rep.Verify(requests, updates)
}

// GroupInteractionCost returns the mean pairwise RTT of one group (the
// paper's GICost).
func GroupInteractionCost(nw *Network, members []CacheIndex) float64 {
	return metrics.GroupInteractionCost(nw, members)
}

// AvgGroupInteractionCost returns the paper's clustering-accuracy metric:
// the mean GICost over all non-empty groups.
func AvgGroupInteractionCost(nw *Network, groups [][]CacheIndex) float64 {
	return metrics.AvgGroupInteractionCost(nw, groups)
}
