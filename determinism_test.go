package ecg_test

// Determinism golden tests: the whole pipeline must be a pure function of
// its seed, and the Plan/Report checksums are the fingerprints that prove
// it. These tests pin three guarantees: same seed -> identical checksum,
// different seed -> different checksum, and probe parallelism -> no effect
// on the outcome (scheduling must not leak into results).

import (
	"testing"

	ecg "edgecachegroups"
)

// formPlan runs the full pipeline (topology -> placement -> probing ->
// group formation) for one seed and scheme, with verification enabled.
func formPlan(t *testing.T, seed int64, cfg ecg.SchemeConfig, k int) (*ecg.Plan, *ecg.Network) {
	t.Helper()
	cfg.Verify = true
	nw, prober, src := buildStack(t, 60, seed)
	gf, err := ecg.NewCoordinator(nw, prober, cfg, src.Split("gf"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(k)
	if err != nil {
		t.Fatal(err)
	}
	return plan, nw
}

func TestPlanChecksumGolden(t *testing.T) {
	schemes := []struct {
		name string
		cfg  ecg.SchemeConfig
	}{
		{"SL", ecg.SL(8, 2)},
		{"SDSL", ecg.SDSL(8, 2, 1.0)},
	}
	for _, s := range schemes {
		t.Run(s.name, func(t *testing.T) {
			plan1, nw := formPlan(t, 77, s.cfg, 6)
			plan2, _ := formPlan(t, 77, s.cfg, 6)
			if c1, c2 := plan1.Checksum(), plan2.Checksum(); c1 != c2 {
				t.Fatalf("same seed, different checksums: %016x vs %016x", c1, c2)
			}
			plan3, _ := formPlan(t, 78, s.cfg, 6)
			if plan1.Checksum() == plan3.Checksum() {
				t.Fatalf("different seeds collide on checksum %016x", plan1.Checksum())
			}
			if err := ecg.VerifyPlan(plan1, nw); err != nil {
				t.Fatalf("plan fails verification: %v", err)
			}
		})
	}
}

func TestPlanChecksumProbeParallelismInvariant(t *testing.T) {
	for _, par := range []int{1, 8} {
		cfg := ecg.SDSL(8, 2, 1.0)
		cfg.ProbeParallelism = 1
		plan1, _ := formPlan(t, 91, cfg, 5)
		cfg.ProbeParallelism = par
		plan2, _ := formPlan(t, 91, cfg, 5)
		if c1, c2 := plan1.Checksum(), plan2.Checksum(); c1 != c2 {
			t.Fatalf("ProbeParallelism %d changed the checksum: %016x vs %016x", par, c1, c2)
		}
	}
}

func TestPlanChecksumClusterParallelismInvariant(t *testing.T) {
	for _, par := range []int{1, 8} {
		cfg := ecg.SDSL(8, 2, 1.0)
		cfg.Cluster.Parallelism = 1
		plan1, _ := formPlan(t, 91, cfg, 5)
		cfg.Cluster.Parallelism = par
		plan2, _ := formPlan(t, 91, cfg, 5)
		if c1, c2 := plan1.Checksum(), plan2.Checksum(); c1 != c2 {
			t.Fatalf("Cluster.Parallelism %d changed the checksum: %016x vs %016x", par, c1, c2)
		}
	}
}

func TestPlanChecksumGNPParallelismInvariant(t *testing.T) {
	for _, par := range []int{1, 8} {
		cfg := ecg.EuclideanScheme(8, 2, 5)
		cfg.GNP.Parallelism = 1
		plan1, _ := formPlan(t, 91, cfg, 5)
		cfg.GNP.Parallelism = par
		plan2, _ := formPlan(t, 91, cfg, 5)
		if c1, c2 := plan1.Checksum(), plan2.Checksum(); c1 != c2 {
			t.Fatalf("GNP.Parallelism %d changed the checksum: %016x vs %016x", par, c1, c2)
		}
	}
}

func TestPlanChecksumPipelineParallelismInvariant(t *testing.T) {
	cfg := ecg.SDSL(8, 2, 1.0)
	plan1, _ := formPlan(t, 91, ecg.WithParallelism(cfg, 1), 5)
	plan2, _ := formPlan(t, 91, ecg.WithParallelism(cfg, 8), 5)
	if c1, c2 := plan1.Checksum(), plan2.Checksum(); c1 != c2 {
		t.Fatalf("WithParallelism(8) changed the checksum: %016x vs %016x", c1, c2)
	}
}

// TestPlanChecksumPruneInvariant pins the bounds-pruning contract at the
// whole-pipeline level: the pruned K-means reassignment (Hamerly default
// and opt-in Elkan) must yield a Plan checksum bit-identical to the
// exhaustive sweep's, for each scheme and at every worker count. A single
// differently-resolved distance tie or a skipped reassignment would
// change the assignment vector and surface here.
func TestPlanChecksumPruneInvariant(t *testing.T) {
	schemes := []struct {
		name string
		cfg  ecg.SchemeConfig
	}{
		{"SL", ecg.SL(8, 2)},
		{"SDSL", ecg.SDSL(8, 2, 1.0)},
		{"Euclidean", ecg.EuclideanScheme(8, 2, 5)},
	}
	for _, s := range schemes {
		t.Run(s.name, func(t *testing.T) {
			exhaustive, _ := formPlan(t, 77, ecg.WithKMeansPrune(s.cfg, ecg.PruneNone), 6)
			want := exhaustive.Checksum()
			for _, mode := range []ecg.KMeansPruneMode{ecg.PruneAuto, ecg.PruneHamerly, ecg.PruneElkan} {
				for _, workers := range []int{1, 8} {
					cfg := ecg.WithKMeansPrune(s.cfg, mode)
					cfg.Cluster.Parallelism = workers
					plan, _ := formPlan(t, 77, cfg, 6)
					if got := plan.Checksum(); got != want {
						t.Fatalf("prune=%v workers=%d: checksum %016x, want exhaustive %016x",
							mode, workers, got, want)
					}
				}
			}
		})
	}
}

func TestReportChecksumGolden(t *testing.T) {
	runSim := func(t *testing.T, seed int64) *ecg.Report {
		t.Helper()
		return runSimSharded(t, seed, 0)
	}
	r1 := runSim(t, 55)
	r2 := runSim(t, 55)
	if c1, c2 := r1.Checksum(), r2.Checksum(); c1 != c2 {
		t.Fatalf("same seed, different report checksums: %016x vs %016x", c1, c2)
	}
	r3 := runSim(t, 56)
	if r1.Checksum() == r3.Checksum() {
		t.Fatalf("different seeds collide on report checksum %016x", r1.Checksum())
	}
}

// runSimSharded runs the full pipeline plus a simulation for one seed with
// the given simulator shard count, with verification enabled end to end.
func runSimSharded(t *testing.T, seed int64, shards int) *ecg.Report {
	t.Helper()
	plan, nw := formPlan(t, seed, ecg.SDSL(8, 2, 1.0), 6)
	src := ecg.NewRand(seed + 1000)
	catalog, err := ecg.NewCatalog(ecg.DefaultCatalogParams(), src.Split("catalog"))
	if err != nil {
		t.Fatal(err)
	}
	tp := ecg.TraceParams{DurationSec: 40, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := ecg.GenerateRequests(catalog, 60, tp, src.Split("reqs"))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := ecg.GenerateUpdates(catalog, 40, src.Split("ups"))
	if err != nil {
		t.Fatal(err)
	}
	simCfg := ecg.DefaultSimConfig()
	simCfg.Verify = true
	simCfg.Shards = shards
	sim, err := ecg.NewSimulator(nw, plan.Groups(), catalog, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(reqs, ups)
	if err != nil {
		t.Fatal(err)
	}
	if err := ecg.VerifyReport(rep, reqs, ups); err != nil {
		t.Fatalf("report fails verification: %v", err)
	}
	return rep
}

// TestReportChecksumShardInvariant pins the sharded simulator's determinism
// contract end to end through the public facade: the Report checksum must
// be bit-identical across Shards ∈ {1, 2, 4, 8} (and the plan feeding it
// must not change either).
func TestReportChecksumShardInvariant(t *testing.T) {
	base := runSimSharded(t, 55, 1)
	for _, shards := range []int{2, 4, 8} {
		rep := runSimSharded(t, 55, shards)
		if got, want := rep.Checksum(), base.Checksum(); got != want {
			t.Fatalf("Shards=%d report checksum %016x != serial %016x", shards, got, want)
		}
	}
}
