package ecg_test

// Integration tests covering cross-module flows: trace files round-tripped
// through the simulator, topology serialization feeding group formation,
// flash crowds stressing cooperative groups, and scheme comparisons through
// the public API only.

import (
	"bytes"
	"testing"

	ecg "edgecachegroups"
	"edgecachegroups/internal/workload"
)

// buildStack builds the standard test stack through the public API.
func buildStack(t *testing.T, numCaches int, seed int64) (*ecg.Network, *ecg.Prober, *ecg.Rand) {
	t.Helper()
	src := ecg.NewRand(seed)
	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topology"))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: numCaches}, src.Split("placement"))
	if err != nil {
		t.Fatal(err)
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		t.Fatal(err)
	}
	return nw, prober, src
}

// TestTraceFileRoundTripThroughSimulator: serialize a workload to the
// on-disk formats, read it back, and verify the simulation result is
// identical to running the in-memory originals.
func TestTraceFileRoundTripThroughSimulator(t *testing.T) {
	nw, prober, src := buildStack(t, 30, 200)
	catalog, err := ecg.NewCatalog(ecg.DefaultCatalogParams(), src.Split("catalog"))
	if err != nil {
		t.Fatal(err)
	}
	tp := ecg.TraceParams{DurationSec: 60, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := ecg.GenerateRequests(catalog, 30, tp, src.Split("reqs"))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := ecg.GenerateUpdates(catalog, 60, src.Split("ups"))
	if err != nil {
		t.Fatal(err)
	}

	// Round trip through the JSONL formats.
	var reqBuf, upBuf, catBuf bytes.Buffer
	if err := workload.WriteRequestsJSONL(&reqBuf, reqs); err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteUpdatesJSONL(&upBuf, ups); err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteCatalogJSON(&catBuf, catalog); err != nil {
		t.Fatal(err)
	}
	reqs2, err := workload.ReadRequestsJSONL(&reqBuf)
	if err != nil {
		t.Fatal(err)
	}
	ups2, err := workload.ReadUpdatesJSONL(&upBuf)
	if err != nil {
		t.Fatal(err)
	}
	catalog2, err := workload.ReadCatalogJSON(&catBuf, 0.8)
	if err != nil {
		t.Fatal(err)
	}

	gf, err := ecg.NewCoordinator(nw, prober, ecg.SDSL(8, 3, 1), src.Split("gf"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(5)
	if err != nil {
		t.Fatal(err)
	}

	run := func(c *ecg.Catalog, r []ecg.Request, u []ecg.Update) *ecg.Report {
		sim, err := ecg.NewSimulator(nw, plan.Groups(), c, ecg.DefaultSimConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(r, u)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	repA := run(catalog, reqs, ups)
	repB := run(catalog2, reqs2, ups2)
	if repA.MeanLatency() != repB.MeanLatency() || repA.Requests() != repB.Requests() {
		t.Fatalf("round-tripped trace changed the simulation: %v/%d vs %v/%d",
			repA.MeanLatency(), repA.Requests(), repB.MeanLatency(), repB.Requests())
	}
}

// TestTopologySerializationPreservesPlans: a graph serialized and reloaded
// must yield identical group formation results.
func TestTopologySerializationPreservesPlans(t *testing.T) {
	src := ecg.NewRand(201)
	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topology"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ecg.WriteGraphJSON(&buf, graph); err != nil {
		t.Fatal(err)
	}
	graph2, err := ecg.ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	form := func(g *ecg.Graph) []int {
		s := ecg.NewRand(202)
		nw, err := ecg.NewNetwork(g, ecg.PlaceParams{NumCaches: 40}, s.Split("place"))
		if err != nil {
			t.Fatal(err)
		}
		prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), s.Split("probe"))
		if err != nil {
			t.Fatal(err)
		}
		gf, err := ecg.NewCoordinator(nw, prober, ecg.SL(6, 3), s.Split("gf"))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := gf.FormGroups(4)
		if err != nil {
			t.Fatal(err)
		}
		return plan.Assignments
	}
	a, b := form(graph), form(graph2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment %d differs after topology round trip", i)
		}
	}
}

// TestFlashCrowdReducesOriginShare: during a flash crowd the hot set is
// shared across all caches, so the edge network (local + group hits)
// absorbs more traffic and the origin's share of requests must fall versus
// the same trace without the episode.
func TestFlashCrowdReducesOriginShare(t *testing.T) {
	nw, prober, src := buildStack(t, 60, 203)
	catalog, err := ecg.NewCatalog(ecg.DefaultCatalogParams(), src.Split("catalog"))
	if err != nil {
		t.Fatal(err)
	}
	gf, err := ecg.NewCoordinator(nw, prober, ecg.SDSL(8, 3, 1), src.Split("gf"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(6)
	if err != nil {
		t.Fatal(err)
	}
	tp := ecg.TraceParams{DurationSec: 200, RequestRatePerCache: 1, Similarity: 0.7}

	baseReqs, err := ecg.GenerateRequests(catalog, 60, tp, src.Split("base"))
	if err != nil {
		t.Fatal(err)
	}
	fc, err := ecg.NewFlashCrowd(catalog, ecg.FlashCrowdParams{
		StartSec:  50,
		EndSec:    150,
		HotDocs:   10,
		Share:     0.8,
		RateBoost: 2,
	}, src.Split("fc"))
	if err != nil {
		t.Fatal(err)
	}
	fcReqs, err := fc.GenerateRequests(60, tp, src.Split("fcreqs"))
	if err != nil {
		t.Fatal(err)
	}

	originRate := func(reqs []ecg.Request) float64 {
		sim, err := ecg.NewSimulator(nw, plan.Groups(), catalog, ecg.DefaultSimConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(reqs, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, _, origin := rep.HitRates()
		return origin
	}
	base := originRate(baseReqs)
	flash := originRate(fcReqs)
	if flash >= base {
		t.Fatalf("flash crowd did not reduce origin share: %v vs %v", flash, base)
	}
}

// TestSchemeComparisonThroughPublicAPI: the headline result — SDSL beats
// SL — must be reproducible with nothing but the facade.
func TestSchemeComparisonThroughPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation comparison")
	}
	nw, prober, src := buildStack(t, 120, 204)
	catalog, err := ecg.NewCatalog(ecg.DefaultCatalogParams(), src.Split("catalog"))
	if err != nil {
		t.Fatal(err)
	}
	tp := ecg.TraceParams{DurationSec: 240, RequestRatePerCache: 1, Similarity: 0.85}
	reqs, err := ecg.GenerateRequests(catalog, 120, tp, src.Split("reqs"))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := ecg.GenerateUpdates(catalog, 240, src.Split("ups"))
	if err != nil {
		t.Fatal(err)
	}
	mean := func(cfg ecg.SchemeConfig) float64 {
		gf, err := ecg.NewCoordinator(nw, prober, cfg, src.Split("gf/"+cfg.Name()))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := gf.FormGroups(12)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := ecg.NewSimulator(nw, plan.Groups(), catalog, ecg.DefaultSimConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(reqs, ups)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanLatency()
	}
	sl := mean(ecg.SL(12, 4))
	sdsl := mean(ecg.SDSL(12, 4, 1))
	if sdsl >= sl*1.02 {
		t.Fatalf("SDSL (%v) not competitive with SL (%v) through the facade", sdsl, sl)
	}
}

// TestKMedoidsAndVivaldiThroughFacade exercises the extension knobs from
// the public API.
func TestKMedoidsAndVivaldiThroughFacade(t *testing.T) {
	nw, prober, src := buildStack(t, 50, 205)

	cfg := ecg.SL(8, 3)
	cfg.Algorithm = ecg.AlgoKMedoids
	gf, err := ecg.NewCoordinator(nw, prober, cfg, src.Split("gf1"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(5)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumGroups() != 5 {
		t.Fatalf("kmedoids groups = %d", plan.NumGroups())
	}
	sil, err := ecg.Silhouette(plan.Points, plan.Assignments, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sil <= -1 || sil >= 1 {
		t.Fatalf("silhouette out of range: %v", sil)
	}

	gfV, err := ecg.NewCoordinator(nw, prober, ecg.VivaldiScheme(8, 3, 4), src.Split("gf2"))
	if err != nil {
		t.Fatal(err)
	}
	planV, err := gfV.FormGroups(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(planV.Points[0]) != 4 {
		t.Fatalf("vivaldi dim = %d", len(planV.Points[0]))
	}
}

// TestWaxmanSubstrateThroughFacade forms groups on the flat substrate.
func TestWaxmanSubstrateThroughFacade(t *testing.T) {
	src := ecg.NewRand(206)
	params := ecg.DefaultWaxmanParams()
	params.Nodes = 200
	graph, err := ecg.GenerateWaxman(params, src.Split("topo"))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: 60}, src.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		t.Fatal(err)
	}
	gf, err := ecg.NewCoordinator(nw, prober, ecg.SL(8, 3), src.Split("gf"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(6)
	if err != nil {
		t.Fatal(err)
	}
	if cost := ecg.AvgGroupInteractionCost(nw, plan.Groups()); cost <= 0 {
		t.Fatalf("GICost = %v", cost)
	}
}

// TestMaintainerThroughFacade drives a maintenance round over a real plan
// via the public API.
func TestMaintainerThroughFacade(t *testing.T) {
	nw, prober, src := buildStack(t, 40, 210)
	gf, err := ecg.NewCoordinator(nw, prober, ecg.SL(6, 3), src.Split("gf"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(4)
	if err != nil {
		t.Fatal(err)
	}
	source := func(i ecg.CacheIndex) (ecg.FeatureVector, error) {
		vals, err := prober.MeasureTo(ecg.CacheEndpoint(i), plan.Landmarks)
		if err != nil {
			return nil, err
		}
		return ecg.FeatureVector(vals), nil
	}
	cfg := ecg.DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := ecg.NewMaintainer(plan, source, nil, cfg, src.Split("maint"))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Drifted) != 0 {
		t.Fatalf("deterministic prober produced drift: %+v", ev)
	}
	m.Stop()
}
