#!/usr/bin/env sh
# CI entry point: build, vet, and test (race detector on) the whole module.
# Usage: scripts/ci.sh [extra go test args]
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race "$@" ./...

echo "ci: OK"
