#!/usr/bin/env sh
# CI entry point: build, vet, and test (race detector on) the whole module.
# Usage: scripts/ci.sh [extra go test args]
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt drift"
drift=$(gofmt -l .)
if [ -n "$drift" ]; then
	echo "unformatted files:" >&2
	echo "$drift" >&2
	exit 1
fi

echo "==> ecglint ./..."
go run ./cmd/ecglint ./...

echo "==> ecglint -audit ./..."
go run ./cmd/ecglint -audit ./...

echo "==> go test -race ./..."
go test -race "$@" ./...

echo "ci: OK"
