#!/usr/bin/env bash
# Daemon smoke: boot groupformd on an ephemeral port, ingest one stats
# report, and assert /plan, /assign, /healthz, and /metrics answer.
# Mirrors the non-blocking daemon-smoke CI job; run locally as
#   scripts/daemon_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:9754}"
SNAP="$(mktemp -d)/plan.json"

go build -o /tmp/groupformd ./cmd/groupformd
/tmp/groupformd -addr "$ADDR" -caches 40 -k 4 -l 5 -m 2 \
  -interval 2s -snapshot "$SNAP" &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true' EXIT

# Wait for the listener.
for _ in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done

fail() { echo "daemon-smoke: $1" >&2; exit 1; }

plan=$(curl -sf "http://$ADDR/plan") || fail "/plan unreachable"
echo "$plan" | grep -q '"epoch"' || fail "/plan missing epoch: $plan"

assign=$(curl -sf "http://$ADDR/assign?cache=0") || fail "/assign unreachable"
echo "$assign" | grep -q '"group"' || fail "/assign missing group: $assign"

curl -sf -X POST "http://$ADDR/stats" \
  -d '[{"cache":0,"rttMS":[10,11,12,13,14],"requests":3}]' >/dev/null \
  || fail "POST /stats rejected"

health=$(curl -sf "http://$ADDR/healthz") || fail "/healthz unreachable"
echo "$health" | grep -q '"status":"ok"' || fail "unhealthy at boot: $health"

curl -sf "http://$ADDR/metrics" | grep -q 'serve_epochs_published' \
  || fail "/metrics missing serve counters"

# Graceful shutdown persists the snapshot.
kill "$daemon"
wait "$daemon" 2>/dev/null || true
test -s "$SNAP" || fail "no snapshot persisted at $SNAP"

echo "daemon-smoke: OK (plan epoch served, stats ingested, snapshot persisted)"
