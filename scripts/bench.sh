#!/usr/bin/env sh
# Benchmark baseline runner: runs the parallel-pipeline benchmark suite with
# -benchmem and repeated counts, then converts the output into the tracked
# JSON baseline (BENCH_pipeline.json at the repo root).
#
# Usage: scripts/bench.sh [count] [benchtime]
#   count     -count passed to go test (default 3)
#   benchtime -benchtime passed to go test (default 1x for the figure bench,
#             see BENCH_PATTERN below; raise for stabler numbers)
#
# The pattern covers the serial/parallel pairs (KMeansPar1/8,
# GNPEmbedHosts1/8, SimShards1/2/4/8), the exhaustive-vs-pruned large-N
# K-means trio (KMeansFlatExhaustive/Pruned/Elkan, whose distevals/op and
# wall-clock ratio pin the bounds-pruning win), the flat feature-build path
# (FeatureBuild, with its O(1)-allocation guard), the end-to-end Fig3
# sweep, the simulator throughput path whose allocs/op the allocation-lean
# work targets, the observability record paths (ObsHistogram = enabled
# per-sample cost, ObsDisabled = nil-handle overhead; both must stay at
# 0 allocs/op), and the full-module lint-engine run (EcglintModule = the
# per-invocation cost of the CI lint gate: load, type-check, call graph,
# summaries, analyzers).
set -eu

cd "$(dirname "$0")/.."

COUNT="${1:-3}"
BENCHTIME="${2:-1x}"
BENCH_PATTERN='BenchmarkKMeansPar|BenchmarkKMeansFlat|BenchmarkFeatureBuild|BenchmarkGNPEmbedHosts|BenchmarkFig3GroupSizeSweep|BenchmarkSimulatorThroughput|BenchmarkSimShards|BenchmarkObs|BenchmarkEcglint'
OUT="BENCH_pipeline.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "==> go test -bench (count=$COUNT benchtime=$BENCHTIME)"
go test -run '^$' -bench "$BENCH_PATTERN" -benchmem -count "$COUNT" -benchtime "$BENCHTIME" . | tee "$RAW"

echo "==> $OUT"
go run ./cmd/benchjson < "$RAW" > "$OUT"

echo "bench: wrote $OUT"
