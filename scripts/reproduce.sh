#!/bin/sh
# Regenerate every table in EXPERIMENTS.md at paper scale.
#
#   ./scripts/reproduce.sh [outdir]
#
# Takes a few minutes on a 2-core machine. Results are deterministic for a
# given -seed.
set -eu
out="${1:-results}"
mkdir -p "$out"
go build -o "$out/ecgsim" ./cmd/ecgsim

"$out/ecgsim" -fig all        -scale 1 -seed 1 -out "$out/figures.txt"
"$out/ecgsim" -fig 6          -scale 1 -seed 1 -trials 5 -out "$out/figure6-averaged.txt"
"$out/ecgsim" -fig ablations  -scale 1 -seed 1 -out "$out/ablations.txt"
"$out/ecgsim" -fig extensions -scale 1 -seed 1 -out "$out/extensions.txt"

echo "tables written to $out/"
