package ecg

import (
	"edgecachegroups/internal/experiments"
)

// Experiment harness: every figure of the paper's evaluation section plus
// ablations, re-exported from the internal experiments package.
type (
	// ExperimentOptions controls experiment scale, seed, trials, and
	// parallelism.
	ExperimentOptions = experiments.Options
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = experiments.Table

	// Fig3Result holds the Figure 3 series (latency vs group size).
	Fig3Result = experiments.Fig3Result
	// Fig4Result holds the Figure 4 series (landmark selection vs N).
	Fig4Result = experiments.Fig4Result
	// Fig5Result holds the Figure 5 series (landmark selection vs K).
	Fig5Result = experiments.Fig5Result
	// Fig6Result holds the Figure 6 series (number of landmarks).
	Fig6Result = experiments.Fig6Result
	// Fig7Result holds the Figure 7 series (feature vectors vs GNP).
	Fig7Result = experiments.Fig7Result
	// Fig8Result holds the Figure 8 series (SL vs SDSL, varying N).
	Fig8Result = experiments.Fig8Result
	// Fig9Result holds the Figure 9 series (SL vs SDSL, varying K).
	Fig9Result = experiments.Fig9Result
)

// DefaultExperimentOptions returns full-scale, single-trial experiment
// options.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// Fig3 reproduces Figure 3 of the paper.
func Fig3(o ExperimentOptions) (*Fig3Result, error) { return experiments.Fig3(o) }

// Fig4 reproduces Figure 4 of the paper.
func Fig4(o ExperimentOptions) (*Fig4Result, error) { return experiments.Fig4(o) }

// Fig5 reproduces Figure 5 of the paper.
func Fig5(o ExperimentOptions) (*Fig5Result, error) { return experiments.Fig5(o) }

// Fig6 reproduces Figure 6 of the paper.
func Fig6(o ExperimentOptions) (*Fig6Result, error) { return experiments.Fig6(o) }

// Fig7 reproduces Figure 7 of the paper.
func Fig7(o ExperimentOptions) (*Fig7Result, error) { return experiments.Fig7(o) }

// Fig8 reproduces Figure 8 of the paper.
func Fig8(o ExperimentOptions) (*Fig8Result, error) { return experiments.Fig8(o) }

// Fig9 reproduces Figure 9 of the paper.
func Fig9(o ExperimentOptions) (*Fig9Result, error) { return experiments.Fig9(o) }

// Extension studies beyond the paper's figures.
type (
	// RepresentationResult compares feature vectors, GNP, and Vivaldi.
	RepresentationResult = experiments.RepresentationResult
	// BeaconResult compares cooperative lookup mechanisms.
	BeaconResult = experiments.BeaconResult
	// PolicyResult compares cache replacement policies.
	PolicyResult = experiments.PolicyResult
	// SubstrateResult checks robustness across topology models.
	SubstrateResult = experiments.SubstrateResult
	// OverheadResult trades probing cost against accuracy.
	OverheadResult = experiments.OverheadResult
	// FreshnessResult quantifies cooperative push invalidation savings.
	FreshnessResult = experiments.FreshnessResult
	// ThetaResult sweeps the SDSL sensitivity.
	ThetaResult = experiments.ThetaResult
)

// RepresentationStudy compares the three position representations.
func RepresentationStudy(o ExperimentOptions) (*RepresentationResult, error) {
	return experiments.RepresentationStudy(o)
}

// AblationBeacons compares multicast vs beacon-point cooperation.
func AblationBeacons(o ExperimentOptions) (*BeaconResult, error) {
	return experiments.AblationBeacons(o)
}

// AblationCachePolicy compares utility-based replacement vs LRU.
func AblationCachePolicy(o ExperimentOptions) (*PolicyResult, error) {
	return experiments.AblationCachePolicy(o)
}

// SubstrateStudy repeats the headline comparisons on a Waxman topology.
func SubstrateStudy(o ExperimentOptions) (*SubstrateResult, error) {
	return experiments.SubstrateStudy(o)
}

// ProbeOverheadStudy trades the probing bill against clustering accuracy.
func ProbeOverheadStudy(o ExperimentOptions) (*OverheadResult, error) {
	return experiments.ProbeOverheadStudy(o)
}

// FreshnessStudy quantifies cooperative push-invalidation savings.
func FreshnessStudy(o ExperimentOptions) (*FreshnessResult, error) {
	return experiments.FreshnessStudy(o)
}

// AblationTheta sweeps the SDSL sensitivity exponent.
func AblationTheta(o ExperimentOptions) (*ThetaResult, error) {
	return experiments.AblationTheta(o)
}
