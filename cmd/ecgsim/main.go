// Command ecgsim regenerates the paper's evaluation figures (3-9) and the
// ablation studies on a simulated cooperative edge cache network.
//
// Usage:
//
//	ecgsim -fig 4                 # one figure
//	ecgsim -fig all               # figures 3-9
//	ecgsim -fig ablations         # theta / M / noise / failure ablations
//	ecgsim -fig all -scale 0.2    # quick, scaled-down run
//	ecgsim -fig 8 -trials 3       # average over 3 seeds
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"edgecachegroups/internal/experiments"
	"edgecachegroups/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ecgsim:", err)
		os.Exit(1)
	}
}

// tabler is any experiment result that renders as a table.
type tabler interface {
	Table() *experiments.Table
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ecgsim", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", `figure to regenerate: 3..9, "all", "ablations", or "extensions"`)
		seed     = fs.Int64("seed", 1, "random seed")
		scale    = fs.Float64("scale", 1.0, "experiment scale in (0,1]; 1.0 is the paper's 500-cache scale")
		trials   = fs.Int("trials", 1, "number of seeds to average over")
		parallel = fs.Int("parallel", 4, "sweep-point parallelism")
		pipePar  = fs.Int("pipeline-parallelism", 0, "worker-pool bound inside each formation pipeline (0 = per-layer defaults; results are identical for any value)")
		shards   = fs.Int("shards", 0, "group-partitioned simulator shards run concurrently (0 = serial; results are identical for any value)")
		verified = fs.Bool("verify", true, "audit every plan and report against the invariant-checking layer")
		quiet    = fs.Bool("q", false, "suppress progress output")
		outPath  = fs.String("out", "", "also append rendered tables to this file")
		obsAddr  = fs.String("obs-addr", "", "serve live /metrics, /debug/vars, /debug/pprof, and /trace on this host:port (\":0\" for ephemeral; results are identical with or without)")
		obsWait  = fs.Duration("obs-linger", 0, "keep the -obs-addr endpoint up this long after the run finishes, for scraping")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Seed: *seed, Scale: *scale, Parallelism: *parallel, PipelineParallelism: *pipePar, SimShards: *shards, Trials: *trials, NoVerify: !*verified}
	if *obsAddr != "" {
		opts.Obs = obs.New()
		srv, err := obs.Serve(*obsAddr, opts.Obs)
		if err != nil {
			return err
		}
		defer srv.Close()
		if !*quiet {
			fmt.Fprintf(w, "observability endpoint on http://%s/metrics\n", srv.Addr())
		}
		if *obsWait > 0 {
			defer time.Sleep(*obsWait)
		}
	}
	if err := opts.Validate(); err != nil {
		return err
	}

	type entry struct {
		name string
		run  func(experiments.Options) (tabler, error)
	}
	figures := map[string]entry{
		"3": {"Figure 3", func(o experiments.Options) (tabler, error) { return experiments.Fig3(o) }},
		"4": {"Figure 4", func(o experiments.Options) (tabler, error) { return experiments.Fig4(o) }},
		"5": {"Figure 5", func(o experiments.Options) (tabler, error) { return experiments.Fig5(o) }},
		"6": {"Figure 6", func(o experiments.Options) (tabler, error) { return experiments.Fig6(o) }},
		"7": {"Figure 7", func(o experiments.Options) (tabler, error) { return experiments.Fig7(o) }},
		"8": {"Figure 8", func(o experiments.Options) (tabler, error) { return experiments.Fig8(o) }},
		"9": {"Figure 9", func(o experiments.Options) (tabler, error) { return experiments.Fig9(o) }},
	}
	ablations := []entry{
		{"Ablation theta", func(o experiments.Options) (tabler, error) { return experiments.AblationTheta(o) }},
		{"Ablation PLSet M", func(o experiments.Options) (tabler, error) { return experiments.AblationPLSetM(o) }},
		{"Ablation probe noise", func(o experiments.Options) (tabler, error) { return experiments.AblationProbeNoise(o) }},
		{"Ablation failures", func(o experiments.Options) (tabler, error) { return experiments.AblationFailures(o) }},
	}
	extensions := []entry{
		{"Extension representations", func(o experiments.Options) (tabler, error) { return experiments.RepresentationStudy(o) }},
		{"Extension beacons", func(o experiments.Options) (tabler, error) { return experiments.AblationBeacons(o) }},
		{"Extension cache policy", func(o experiments.Options) (tabler, error) { return experiments.AblationCachePolicy(o) }},
		{"Extension substrate", func(o experiments.Options) (tabler, error) { return experiments.SubstrateStudy(o) }},
		{"Extension probe overhead", func(o experiments.Options) (tabler, error) { return experiments.ProbeOverheadStudy(o) }},
		{"Extension freshness", func(o experiments.Options) (tabler, error) { return experiments.FreshnessStudy(o) }},
		{"Extension protocol resilience", func(o experiments.Options) (tabler, error) { return experiments.ProtocolResilienceStudy(o) }},
	}

	var todo []entry
	switch strings.ToLower(*fig) {
	case "all":
		for _, key := range []string{"3", "4", "5", "6", "7", "8", "9"} {
			todo = append(todo, figures[key])
		}
	case "ablations":
		todo = ablations
	case "extensions":
		todo = extensions
	default:
		e, ok := figures[*fig]
		if !ok {
			return fmt.Errorf("unknown figure %q (want 3..9, all, ablations, or extensions)", *fig)
		}
		todo = []entry{e}
	}

	var outFile *os.File
	if *outPath != "" {
		var err error
		outFile, err = os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open -out file: %w", err)
		}
		defer outFile.Close()
	}

	for _, e := range todo {
		start := time.Now()
		if !*quiet {
			fmt.Fprintf(w, "running %s (scale=%g, seed=%d, trials=%d)...\n", e.name, *scale, *seed, *trials)
		}
		result, err := e.run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		if !*quiet {
			fmt.Fprintf(w, "done in %.1fs\n", time.Since(start).Seconds())
		}
		if err := result.Table().Render(w); err != nil {
			return err
		}
		if outFile != nil {
			if err := result.Table().Render(outFile); err != nil {
				return fmt.Errorf("write -out file: %w", err)
			}
		}
	}
	return nil
}
