package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	var buf bytes.Buffer
	err := run([]string{"-fig", "5", "-scale", "0.12", "-q"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 5") {
		t.Fatalf("missing figure header:\n%s", out)
	}
	if !strings.Contains(out, "SL greedy") {
		t.Fatalf("missing series column:\n%s", out)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "42"}, &buf); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "5", "-scale", "0"}, &buf); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunOutFile(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	dir := t.TempDir()
	path := dir + "/tables.txt"
	var buf bytes.Buffer
	if err := run([]string{"-fig", "5", "-scale", "0.12", "-q", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Figure 5") {
		t.Fatalf("out file missing table:\n%s", data)
	}
}
