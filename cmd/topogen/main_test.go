package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTextOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-caches", "50", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"topology:", "network:", "RTT distribution"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-caches", "50", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if s.Caches != 50 || s.Nodes == 0 || s.MeanPairRTT <= 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestRunDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	var buf bytes.Buffer
	if err := run([]string{"-caches", "30", "-dump", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"nodes"`) {
		t.Fatal("dump file missing nodes")
	}
}

func TestRunTooManyCaches(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-caches", "100000"}, &buf); err == nil {
		t.Fatal("oversized placement accepted")
	}
}

func TestRunOverrides(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-caches", "20", "-transit-domains", "2", "-stub-domains", "2", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.TransitNodes != 2*4 {
		t.Fatalf("transit nodes = %d, want 8", s.TransitNodes)
	}
}
