// Command topogen generates a transit-stub topology, places an edge cache
// network on it, and prints structural and RTT statistics. It is the quick
// way to inspect the Internet model the experiments run on.
//
// Usage:
//
//	topogen -caches 500 -seed 7
//	topogen -caches 100 -json       # machine-readable summary
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	ecg "edgecachegroups"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

// summary is the machine-readable output shape.
type summary struct {
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	TransitNodes int     `json:"transitNodes"`
	StubNodes    int     `json:"stubNodes"`
	Caches       int     `json:"caches"`
	MeanPairRTT  float64 `json:"meanPairRTTms"`
	MinOriginRTT float64 `json:"minOriginRTTms"`
	MedOriginRTT float64 `json:"medianOriginRTTms"`
	MaxOriginRTT float64 `json:"maxOriginRTTms"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		caches   = fs.Int("caches", 500, "number of edge caches to place")
		seed     = fs.Int64("seed", 1, "random seed")
		asJSON   = fs.Bool("json", false, "emit a JSON summary instead of text")
		transit  = fs.Int("transit-domains", 0, "override number of transit domains (0 = default)")
		stubsPer = fs.Int("stub-domains", 0, "override stub domains per transit node (0 = default)")
		dump     = fs.String("dump", "", "write the generated topology as JSON to this file")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := ecg.NewRand(*seed)
	params := ecg.DefaultTransitStubParams()
	if *transit > 0 {
		params.TransitDomains = *transit
	}
	if *stubsPer > 0 {
		params.StubDomainsPerTransitNode = *stubsPer
	}
	graph, err := ecg.GenerateTransitStub(params, src.Split("topo"))
	if err != nil {
		return fmt.Errorf("generate topology: %w", err)
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: *caches}, src.Split("place"))
	if err != nil {
		return fmt.Errorf("place network: %w", err)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			return fmt.Errorf("create dump file: %w", err)
		}
		if err := graph.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("dump topology: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close dump file: %w", err)
		}
	}

	origin := make([]float64, *caches)
	for i := 0; i < *caches; i++ {
		origin[i] = nw.DistToOrigin(ecg.CacheIndex(i))
	}
	sort.Float64s(origin)

	s := summary{
		Nodes:        graph.NumNodes(),
		Edges:        graph.NumEdges(),
		TransitNodes: len(graph.NodesOfKind(ecg.KindTransit)),
		StubNodes:    len(graph.NodesOfKind(ecg.KindStub)),
		Caches:       *caches,
		MeanPairRTT:  nw.MeanPairwiseDist(),
		MinOriginRTT: origin[0],
		MedOriginRTT: origin[len(origin)/2],
		MaxOriginRTT: origin[len(origin)-1],
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}

	fmt.Fprintf(w, "topology: %d nodes (%d transit, %d stub), %d edges\n",
		s.Nodes, s.TransitNodes, s.StubNodes, s.Edges)
	fmt.Fprintf(w, "network:  %d caches + origin on distinct stub routers\n", s.Caches)
	fmt.Fprintf(w, "RTTs:     mean cache-pair %.1fms; cache->origin min/median/max %.1f/%.1f/%.1fms\n",
		s.MeanPairRTT, s.MinOriginRTT, s.MedOriginRTT, s.MaxOriginRTT)

	// Origin-RTT histogram, 10 buckets.
	const buckets = 10
	lo, hi := origin[0], origin[len(origin)-1]
	if hi > lo {
		counts := make([]int, buckets)
		for _, d := range origin {
			b := int(float64(buckets) * (d - lo) / (hi - lo))
			if b >= buckets {
				b = buckets - 1
			}
			counts[b]++
		}
		maxCount := 0
		for _, c := range counts {
			if c > maxCount {
				maxCount = c
			}
		}
		fmt.Fprintln(w, "cache->origin RTT distribution:")
		for b, c := range counts {
			bars := 0
			if maxCount > 0 {
				bars = c * 40 / maxCount
			}
			fmt.Fprintf(w, "  %6.1f-%6.1fms %4d %s\n",
				lo+float64(b)*(hi-lo)/buckets, lo+float64(b+1)*(hi-lo)/buckets, c,
				repeatRune('#', bars))
		}
	}
	return nil
}

func repeatRune(r byte, n int) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = r
	}
	return string(buf)
}
