package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunTextOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-caches", "60", "-k", "6", "-scheme", "sl"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"scheme:", "GICost:", "group sizes:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-caches", "60", "-k", "6", "-scheme", "sdsl", "-theta", "2", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.K != 6 || out.Caches != 60 {
		t.Fatalf("output = %+v", out)
	}
	if len(out.Assignments) != 60 {
		t.Fatalf("assignments = %d", len(out.Assignments))
	}
	if out.Scheme != "SDSL(theta=2)" {
		t.Fatalf("scheme = %q", out.Scheme)
	}
	total := 0
	for _, s := range out.GroupSizes {
		total += s
	}
	if total != 60 {
		t.Fatalf("group sizes sum to %d", total)
	}
}

func TestRunAllSelectors(t *testing.T) {
	for _, sel := range []string{"greedy", "random", "min-dist"} {
		var buf bytes.Buffer
		if err := run([]string{"-caches", "40", "-k", "4", "-landmarks", sel}, &buf); err != nil {
			t.Fatalf("selector %s: %v", sel, err)
		}
	}
}

func TestRunEuclideanScheme(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-caches", "40", "-k", "4", "-scheme", "euclidean", "-dim", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunDistributedJSON(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-caches", "40", "-k", "4", "-l", "5", "-m", "2",
		"-distributed", "-loss", "0.2", "-dup", "0.15", "-delay", "0.2", "-crash", "3",
		"-retries", "6", "-json"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !out.Distributed {
		t.Fatal("distributed flag not reported")
	}
	if out.MessagesSent <= 0 {
		t.Fatalf("no messages counted: %+v", out)
	}
	if out.Unresponsive < 3 {
		t.Fatalf("crashed caches not reported unresponsive: %+v", out)
	}
	assigned := 0
	for _, g := range out.Assignments {
		if g >= 0 {
			assigned++
		}
	}
	if assigned+out.Unresponsive != 40 {
		t.Fatalf("conservation: %d assigned + %d unresponsive != 40", assigned, out.Unresponsive)
	}
	total := 0
	for _, s := range out.GroupSizes {
		total += s
	}
	if total != assigned {
		t.Fatalf("group sizes sum to %d, want %d", total, assigned)
	}

	// Same seed, same faults — bit-identical output.
	var buf2 bytes.Buffer
	if err := run(args, &buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("distributed run not reproducible for a fixed seed")
	}
}

func TestRunDistributedText(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-caches", "40", "-k", "4", "-l", "5", "-m", "2",
		"-scheme", "sl", "-distributed", "-loss", "0.1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sl-distributed", "messages:", "retries", "coverage:", "degraded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scheme", "bogus"}, &buf); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run([]string{"-landmarks", "bogus"}, &buf); err == nil {
		t.Fatal("unknown selector accepted")
	}
	if err := run([]string{"-caches", "10", "-k", "50"}, &buf); err == nil {
		t.Fatal("k > caches accepted")
	}
	if err := run([]string{"-caches", "20", "-k", "2", "-distributed", "-scheme", "euclidean"}, &buf); err == nil {
		t.Fatal("euclidean distributed mode accepted")
	}
	if err := run([]string{"-caches", "20", "-k", "2", "-distributed", "-crash", "20"}, &buf); err == nil {
		t.Fatal("crash count >= caches accepted")
	}
	if err := run([]string{"-caches", "20", "-k", "2", "-distributed", "-loss", "1"}, &buf); err == nil {
		t.Fatal("loss=1 accepted")
	}
}

func TestClampLandmarks(t *testing.T) {
	tests := []struct {
		l, m, n      int
		wantL, wantM int
	}{
		{25, 4, 500, 25, 4},
		{25, 4, 40, 11, 4},
		{25, 0, 100, 25, 1},
		{1, 1, 1, 2, 1},
	}
	for _, tt := range tests {
		l, m := clampLandmarks(tt.l, tt.m, tt.n)
		if l != tt.wantL || m != tt.wantM {
			t.Errorf("clampLandmarks(%d,%d,%d) = (%d,%d), want (%d,%d)",
				tt.l, tt.m, tt.n, l, m, tt.wantL, tt.wantM)
		}
	}
}
