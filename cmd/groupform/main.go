// Command groupform runs the paper's group formation pipeline end to end
// on a simulated edge cache network and reports the resulting cooperative
// groups and their quality.
//
// Usage:
//
//	groupform -caches 500 -k 50 -scheme sdsl -theta 1
//	groupform -caches 200 -k 20 -scheme sl -json
//	groupform -caches 60 -k 6 -distributed -loss 0.2 -dup 0.1 -crash 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	ecg "edgecachegroups"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "groupform:", err)
		os.Exit(1)
	}
}

// output is the machine-readable result shape.
type output struct {
	Scheme      string  `json:"scheme"`
	Caches      int     `json:"caches"`
	K           int     `json:"k"`
	GICostMS    float64 `json:"avgGroupInteractionCostMS"`
	Iterations  int     `json:"kmeansIterations,omitempty"`
	Converged   bool    `json:"converged,omitempty"`
	GroupSizes  []int   `json:"groupSizes"`
	Assignments []int   `json:"assignments"`
	Checksum    string  `json:"planChecksum,omitempty"`
	SuggestedK  int     `json:"suggestedK,omitempty"`

	// Distributed-mode resilience accounting (-distributed).
	Distributed      bool  `json:"distributed,omitempty"`
	Unresponsive     int   `json:"unresponsive,omitempty"`
	Unacked          int   `json:"unackedAssignments,omitempty"`
	MessagesSent     int64 `json:"messagesSent,omitempty"`
	Retries          int64 `json:"retries,omitempty"`
	DuplicateReplies int64 `json:"duplicateReplies,omitempty"`
	TimedOutWaits    int64 `json:"timedOutWaits,omitempty"`
	Degraded         bool  `json:"degraded,omitempty"`
}

// clampLandmarks shrinks (L, M) so the potential landmark set fits the
// network: M*(L-1) <= n (same policy as the experiment harness).
func clampLandmarks(l, m, n int) (int, int) {
	if m < 1 {
		m = 1
	}
	if m*(l-1) > n {
		l = n/m + 1
	}
	if l < 2 {
		l, m = 2, 1
	}
	return l, m
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("groupform", flag.ContinueOnError)
	var (
		caches   = fs.Int("caches", 500, "number of edge caches")
		k        = fs.Int("k", 50, "number of cooperative groups")
		scheme   = fs.String("scheme", "sdsl", "group formation scheme: sl, sdsl, or euclidean")
		theta    = fs.Float64("theta", 1.0, "SDSL server-distance sensitivity")
		l        = fs.Int("l", 25, "number of landmarks (including the origin)")
		m        = fs.Int("m", 4, "PLSet multiplier")
		dim      = fs.Int("dim", 5, "GNP embedding dimension (euclidean scheme)")
		selector = fs.String("landmarks", "greedy", "landmark selector: greedy, random, or min-dist")
		seed     = fs.Int64("seed", 1, "random seed")
		asJSON   = fs.Bool("json", false, "emit JSON instead of text")
		suggestK = fs.Bool("suggest-k", false, "also report the elbow-suggested number of groups")
		verified = fs.Bool("verify", true, "audit the plan against the invariant-checking layer")
		parallel = fs.Int("parallelism", 0, "worker-pool bound for probing, clustering, and embedding (0 = per-layer defaults; results are identical for any value)")
		prune    = fs.String("kmeans-prune", "auto", "K-means reassignment strategy: auto, none, hamerly, or elkan (results are identical for any value)")

		distributed  = fs.Bool("distributed", false, "run the message-passing protocol (coordinator + per-cache agents) over a fault-injecting transport instead of the in-process pipeline")
		loss         = fs.Float64("loss", 0, "distributed: per-message loss probability in [0,1)")
		dup          = fs.Float64("dup", 0, "distributed: message duplication probability in [0,1)")
		delay        = fs.Float64("delay", 0, "distributed: message delay/reorder probability in [0,1)")
		maxDelay     = fs.Int("max-delay", 0, "distributed: reordering window in subsequent link messages (0 = default)")
		crash        = fs.Int("crash", 0, "distributed: crash the N highest-index caches before the run")
		retries      = fs.Int("retries", 3, "distributed: request retries per peer (0 = exactly one attempt)")
		replyTimeout = fs.Duration("reply-timeout", 200*time.Millisecond, "distributed: per-attempt reply wait")
		backoffBase  = fs.Duration("backoff", 0, "distributed: exponential backoff base between retries (0 = retry immediately)")
		roundBudget  = fs.Duration("round-budget", 0, "distributed: wall-clock budget per protocol round (0 = unlimited)")

		obsAddr = fs.String("obs-addr", "", "serve live /metrics, /debug/vars, /debug/pprof, and /trace on this host:port (\":0\" for ephemeral; results are identical with or without)")
		obsWait = fs.Duration("obs-linger", 0, "keep the -obs-addr endpoint up this long after the run finishes, for scraping")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var o *ecg.Obs
	if *obsAddr != "" {
		o = ecg.NewObs()
		srv, err := ecg.ServeObs(*obsAddr, o)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(w, "observability endpoint on http://%s/metrics\n", srv.Addr())
		if *obsWait > 0 {
			defer time.Sleep(*obsWait)
		}
	}

	lEff, mEff := clampLandmarks(*l, *m, *caches)
	var cfg ecg.SchemeConfig
	switch strings.ToLower(*scheme) {
	case "sl":
		cfg = ecg.SL(lEff, mEff)
	case "sdsl":
		cfg = ecg.SDSL(lEff, mEff, *theta)
	case "euclidean":
		cfg = ecg.EuclideanScheme(lEff, mEff, *dim)
	default:
		return fmt.Errorf("unknown scheme %q (want sl, sdsl, or euclidean)", *scheme)
	}
	switch strings.ToLower(*selector) {
	case "greedy":
		cfg.Selector = ecg.GreedyLandmarks{}
	case "random":
		cfg.Selector = ecg.RandomLandmarks{}
	case "min-dist", "mindist":
		cfg.Selector = ecg.MinDistLandmarks{}
	default:
		return fmt.Errorf("unknown landmark selector %q", *selector)
	}
	cfg.Verify = *verified
	cfg.Obs = o
	if *parallel < 0 {
		return fmt.Errorf("parallelism must be >= 0, got %d", *parallel)
	}
	cfg = ecg.WithParallelism(cfg, *parallel)
	switch strings.ToLower(*prune) {
	case "auto":
		cfg = ecg.WithKMeansPrune(cfg, ecg.PruneAuto)
	case "none":
		cfg = ecg.WithKMeansPrune(cfg, ecg.PruneNone)
	case "hamerly":
		cfg = ecg.WithKMeansPrune(cfg, ecg.PruneHamerly)
	case "elkan":
		cfg = ecg.WithKMeansPrune(cfg, ecg.PruneElkan)
	default:
		return fmt.Errorf("unknown -kmeans-prune %q (want auto, none, hamerly, or elkan)", *prune)
	}

	src := ecg.NewRand(*seed)
	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topo"))
	if err != nil {
		return fmt.Errorf("generate topology: %w", err)
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: *caches}, src.Split("place"))
	if err != nil {
		return fmt.Errorf("place network: %w", err)
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		return fmt.Errorf("build prober: %w", err)
	}
	if *distributed {
		if strings.EqualFold(*scheme, "euclidean") {
			return fmt.Errorf("the euclidean scheme is not available in -distributed mode (agents report raw landmark RTTs)")
		}
		theta := *theta
		if strings.EqualFold(*scheme, "sl") {
			theta = 0
		}
		d := distOptions{
			caches: *caches, k: *k, l: lEff, m: mEff, theta: theta,
			loss: *loss, dup: *dup, delay: *delay, maxDelay: *maxDelay, crash: *crash,
			retries: *retries, replyTimeout: *replyTimeout,
			backoffBase: *backoffBase, roundBudget: *roundBudget,
			asJSON: *asJSON, obs: o,
		}
		return runDistributed(w, d, nw, prober, src)
	}
	gf, err := ecg.NewCoordinator(nw, prober, cfg, src.Split("gf"))
	if err != nil {
		return fmt.Errorf("build coordinator: %w", err)
	}
	plan, err := gf.FormGroups(*k)
	if err != nil {
		return fmt.Errorf("form groups: %w", err)
	}

	suggested := 0
	if *suggestK {
		kMax := *caches / 5
		if kMax < 2 {
			kMax = 2
		}
		if kMax > 40 {
			kMax = 40
		}
		suggested, _, err = ecg.SuggestK(plan.Points, kMax, src.Split("suggestk"))
		if err != nil {
			return fmt.Errorf("suggest k: %w", err)
		}
	}

	out := output{
		Scheme:      plan.Scheme,
		Caches:      *caches,
		K:           *k,
		GICostMS:    ecg.AvgGroupInteractionCost(nw, plan.Groups()),
		Iterations:  plan.Iterations,
		Converged:   plan.Converged,
		GroupSizes:  plan.Sizes(),
		Assignments: plan.Assignments,
		Checksum:    fmt.Sprintf("%016x", plan.Checksum()),
		SuggestedK:  suggested,
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Fprintf(w, "scheme:     %s\n", out.Scheme)
	fmt.Fprintf(w, "caches/K:   %d / %d\n", out.Caches, out.K)
	fmt.Fprintf(w, "k-means:    %d iterations, converged=%v\n", out.Iterations, out.Converged)
	fmt.Fprintf(w, "GICost:     %.1f ms (avg pairwise RTT within groups)\n", out.GICostMS)
	fmt.Fprintf(w, "checksum:   %s\n", out.Checksum)
	fmt.Fprintf(w, "group sizes:")
	for _, s := range out.GroupSizes {
		fmt.Fprintf(w, " %d", s)
	}
	fmt.Fprintln(w)
	if out.SuggestedK > 0 {
		fmt.Fprintf(w, "suggested K (elbow of within-cluster SS): %d\n", out.SuggestedK)
	}
	return nil
}

// distOptions carries the -distributed flag values.
type distOptions struct {
	caches, k, l, m          int
	theta                    float64
	loss, dup, delay         float64
	maxDelay, crash, retries int
	replyTimeout             time.Duration
	backoffBase, roundBudget time.Duration
	asJSON                   bool
	obs                      *ecg.Obs
}

// runDistributed executes the message-passing protocol over a
// fault-injecting transport and reports the result with its resilience
// counters.
func runDistributed(w io.Writer, d distOptions, nw *ecg.Network, prober *ecg.Prober, src *ecg.Rand) error {
	if d.crash < 0 || d.crash >= d.caches {
		return fmt.Errorf("crash count %d out of range [0,%d)", d.crash, d.caches)
	}
	tr, err := ecg.NewFaultTransport(ecg.FaultConfig{
		Loss: d.loss, DupProb: d.dup, DelayProb: d.delay, MaxDelay: d.maxDelay,
	}, src.Split("transport"))
	if err != nil {
		return err
	}
	defer tr.Close()
	agents := make([]*ecg.ProtocolAgent, d.caches)
	for i := range agents {
		a, err := ecg.NewProtocolAgent(ecg.CacheIndex(i), prober, tr)
		if err != nil {
			return fmt.Errorf("start agent %d: %w", i, err)
		}
		agents[i] = a
	}
	defer func() {
		for _, a := range agents {
			a.Stop()
		}
	}()
	for i := 0; i < d.crash; i++ {
		tr.Kill(ecg.ProtocolCacheAddr(ecg.CacheIndex(d.caches - 1 - i)))
	}

	retries := d.retries
	if retries == 0 {
		retries = ecg.ProtocolNoRetries
	}
	pcfg := ecg.ProtocolConfig{
		L: d.l, M: d.m, K: d.k, Theta: d.theta,
		ReplyTimeout: d.replyTimeout,
		Retries:      retries,
		BackoffBase:  d.backoffBase,
		RoundBudget:  d.roundBudget,
		Obs:          d.obs,
	}
	coord, err := ecg.NewProtocolCoordinator(pcfg, d.caches, tr, src.Split("coordinator"))
	if err != nil {
		return err
	}
	res, err := coord.Run()
	if err != nil {
		return fmt.Errorf("protocol run: %w", err)
	}
	tr.PublishObs(d.obs)

	scheme := "sl-distributed"
	if d.theta > 0 {
		scheme = "sdsl-distributed"
	}
	assignments := make([]int, d.caches)
	for i := range assignments {
		assignments[i] = -1 // unresponsive caches end up in no group
	}
	for ci, g := range res.Assignments {
		assignments[int(ci)] = g
	}
	sizes := make([]int, len(res.Groups))
	for g, members := range res.Groups {
		sizes[g] = len(members)
	}
	out := output{
		Scheme:           scheme,
		Caches:           d.caches,
		K:                d.k,
		GICostMS:         ecg.AvgGroupInteractionCost(nw, res.Groups),
		GroupSizes:       sizes,
		Assignments:      assignments,
		Distributed:      true,
		Unresponsive:     len(res.Unresponsive),
		Unacked:          len(res.UnackedAssignments),
		MessagesSent:     res.MessagesSent,
		Retries:          res.Retries,
		DuplicateReplies: res.DuplicateReplies,
		TimedOutWaits:    res.TimedOutWaits,
		Degraded:         res.Degraded,
	}
	if d.asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(w, "scheme:     %s\n", out.Scheme)
	fmt.Fprintf(w, "caches/K:   %d / %d\n", out.Caches, out.K)
	fmt.Fprintf(w, "GICost:     %.1f ms (avg pairwise RTT within groups)\n", out.GICostMS)
	fmt.Fprintf(w, "messages:   %d sent, %d retries, %d duplicate replies, %d timed-out waits\n",
		out.MessagesSent, out.Retries, out.DuplicateReplies, out.TimedOutWaits)
	fmt.Fprintf(w, "coverage:   %d assigned, %d unresponsive, %d unacked (degraded=%v)\n",
		d.caches-out.Unresponsive, out.Unresponsive, out.Unacked, out.Degraded)
	fmt.Fprintf(w, "group sizes:")
	for _, s := range out.GroupSizes {
		fmt.Fprintf(w, " %d", s)
	}
	fmt.Fprintln(w)
	return nil
}
