// Command groupform runs the paper's group formation pipeline end to end
// on a simulated edge cache network and reports the resulting cooperative
// groups and their quality.
//
// Usage:
//
//	groupform -caches 500 -k 50 -scheme sdsl -theta 1
//	groupform -caches 200 -k 20 -scheme sl -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	ecg "edgecachegroups"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "groupform:", err)
		os.Exit(1)
	}
}

// output is the machine-readable result shape.
type output struct {
	Scheme      string  `json:"scheme"`
	Caches      int     `json:"caches"`
	K           int     `json:"k"`
	GICostMS    float64 `json:"avgGroupInteractionCostMS"`
	Iterations  int     `json:"kmeansIterations"`
	Converged   bool    `json:"converged"`
	GroupSizes  []int   `json:"groupSizes"`
	Assignments []int   `json:"assignments"`
	Checksum    string  `json:"planChecksum"`
	SuggestedK  int     `json:"suggestedK,omitempty"`
}

// clampLandmarks shrinks (L, M) so the potential landmark set fits the
// network: M*(L-1) <= n (same policy as the experiment harness).
func clampLandmarks(l, m, n int) (int, int) {
	if m < 1 {
		m = 1
	}
	if m*(l-1) > n {
		l = n/m + 1
	}
	if l < 2 {
		l, m = 2, 1
	}
	return l, m
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("groupform", flag.ContinueOnError)
	var (
		caches   = fs.Int("caches", 500, "number of edge caches")
		k        = fs.Int("k", 50, "number of cooperative groups")
		scheme   = fs.String("scheme", "sdsl", "group formation scheme: sl, sdsl, or euclidean")
		theta    = fs.Float64("theta", 1.0, "SDSL server-distance sensitivity")
		l        = fs.Int("l", 25, "number of landmarks (including the origin)")
		m        = fs.Int("m", 4, "PLSet multiplier")
		dim      = fs.Int("dim", 5, "GNP embedding dimension (euclidean scheme)")
		selector = fs.String("landmarks", "greedy", "landmark selector: greedy, random, or min-dist")
		seed     = fs.Int64("seed", 1, "random seed")
		asJSON   = fs.Bool("json", false, "emit JSON instead of text")
		suggestK = fs.Bool("suggest-k", false, "also report the elbow-suggested number of groups")
		verified = fs.Bool("verify", true, "audit the plan against the invariant-checking layer")
		parallel = fs.Int("parallelism", 0, "worker-pool bound for probing, clustering, and embedding (0 = per-layer defaults; results are identical for any value)")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	lEff, mEff := clampLandmarks(*l, *m, *caches)
	var cfg ecg.SchemeConfig
	switch strings.ToLower(*scheme) {
	case "sl":
		cfg = ecg.SL(lEff, mEff)
	case "sdsl":
		cfg = ecg.SDSL(lEff, mEff, *theta)
	case "euclidean":
		cfg = ecg.EuclideanScheme(lEff, mEff, *dim)
	default:
		return fmt.Errorf("unknown scheme %q (want sl, sdsl, or euclidean)", *scheme)
	}
	switch strings.ToLower(*selector) {
	case "greedy":
		cfg.Selector = ecg.GreedyLandmarks{}
	case "random":
		cfg.Selector = ecg.RandomLandmarks{}
	case "min-dist", "mindist":
		cfg.Selector = ecg.MinDistLandmarks{}
	default:
		return fmt.Errorf("unknown landmark selector %q", *selector)
	}
	cfg.Verify = *verified
	if *parallel < 0 {
		return fmt.Errorf("parallelism must be >= 0, got %d", *parallel)
	}
	cfg = ecg.WithParallelism(cfg, *parallel)

	src := ecg.NewRand(*seed)
	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topo"))
	if err != nil {
		return fmt.Errorf("generate topology: %w", err)
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: *caches}, src.Split("place"))
	if err != nil {
		return fmt.Errorf("place network: %w", err)
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		return fmt.Errorf("build prober: %w", err)
	}
	gf, err := ecg.NewCoordinator(nw, prober, cfg, src.Split("gf"))
	if err != nil {
		return fmt.Errorf("build coordinator: %w", err)
	}
	plan, err := gf.FormGroups(*k)
	if err != nil {
		return fmt.Errorf("form groups: %w", err)
	}

	suggested := 0
	if *suggestK {
		kMax := *caches / 5
		if kMax < 2 {
			kMax = 2
		}
		if kMax > 40 {
			kMax = 40
		}
		suggested, _, err = ecg.SuggestK(plan.Points, kMax, src.Split("suggestk"))
		if err != nil {
			return fmt.Errorf("suggest k: %w", err)
		}
	}

	out := output{
		Scheme:      plan.Scheme,
		Caches:      *caches,
		K:           *k,
		GICostMS:    ecg.AvgGroupInteractionCost(nw, plan.Groups()),
		Iterations:  plan.Iterations,
		Converged:   plan.Converged,
		GroupSizes:  plan.Sizes(),
		Assignments: plan.Assignments,
		Checksum:    fmt.Sprintf("%016x", plan.Checksum()),
		SuggestedK:  suggested,
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Fprintf(w, "scheme:     %s\n", out.Scheme)
	fmt.Fprintf(w, "caches/K:   %d / %d\n", out.Caches, out.K)
	fmt.Fprintf(w, "k-means:    %d iterations, converged=%v\n", out.Iterations, out.Converged)
	fmt.Fprintf(w, "GICost:     %.1f ms (avg pairwise RTT within groups)\n", out.GICostMS)
	fmt.Fprintf(w, "checksum:   %s\n", out.Checksum)
	fmt.Fprintf(w, "group sizes:")
	for _, s := range out.GroupSizes {
		fmt.Fprintf(w, " %d", s)
	}
	fmt.Fprintln(w)
	if out.SuggestedK > 0 {
		fmt.Fprintf(w, "suggested K (elbow of within-cluster SS): %d\n", out.SuggestedK)
	}
	return nil
}
