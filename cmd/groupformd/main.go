// Command groupformd is the long-running group-formation service: it
// forms an initial group plan over a simulated edge cache network (or
// restores a persisted one), then keeps it aligned with drifting network
// conditions while serving plan and assignment queries over HTTP/JSON.
//
// Endpoints:
//
//	POST /stats        ingest per-cache RTT/request reports
//	GET  /plan         current plan summary (?full=1 for assignments)
//	GET  /assign?cache=N  the cache's group under the current epoch
//	GET  /groups/{id}  one group's members and center
//	GET  /healthz      ok / degraded (stale-but-serving) / down
//	GET  /metrics      Prometheus exposition (plus /debug/vars, /trace)
//
// Usage:
//
//	groupformd -addr :8344 -caches 200 -k 20 -scheme sdsl
//	groupformd -addr :8344 -snapshot /var/lib/groupformd/plan.json
//	groupformd -addr :0 -interval 5s -drift 0.1 -recluster-frac 0.4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ecg "edgecachegroups"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "groupformd:", err)
		os.Exit(1)
	}
}

// clampLandmarks shrinks (L, M) so the potential landmark set fits the
// network: M*(L-1) <= n (same policy as cmd/groupform).
func clampLandmarks(l, m, n int) (int, int) {
	if m < 1 {
		m = 1
	}
	if m*(l-1) > n {
		l = n/m + 1
	}
	if l < 2 {
		l, m = 2, 1
	}
	return l, m
}

// run boots the daemon and blocks until the stop channel fires or a
// termination signal arrives. Tests pass a stop channel and a ready
// callback via readyCh; production passes nil and waits for signals.
func run(args []string, w io.Writer, ready chan<- *ecg.ServeServer) error {
	fs := flag.NewFlagSet("groupformd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8344", "HTTP listen address (\":0\" for ephemeral)")
		caches   = fs.Int("caches", 200, "number of edge caches (initial formation)")
		k        = fs.Int("k", 20, "number of cooperative groups")
		scheme   = fs.String("scheme", "sdsl", "group formation scheme: sl or sdsl (feature-vector schemes only; the daemon ingests raw landmark RTTs)")
		theta    = fs.Float64("theta", 1.0, "SDSL server-distance sensitivity")
		l        = fs.Int("l", 25, "number of landmarks (including the origin)")
		m        = fs.Int("m", 4, "PLSet multiplier")
		seed     = fs.Int64("seed", 1, "random seed")
		interval = fs.Duration("interval", time.Minute, "maintenance round period")
		sample   = fs.Float64("sample", 1.0, "fraction of caches examined per round, in (0,1]")
		drift    = fs.Float64("drift", 0.2, "relative feature change that marks a cache as drifted")
		reclustr = fs.Float64("recluster-frac", 0.5, "drifted fraction of measured caches that triggers a full re-clustering")
		snapshot = fs.String("snapshot", "", "persist every published plan to this path and reload it on start")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	o := ecg.NewObs()
	cfg := ecg.ServeConfig{
		Rand: ecg.NewRand(*seed),
		Obs:  o,
		Maint: ecg.MaintainerConfig{
			Interval:          *interval,
			SampleFraction:    *sample,
			DriftThreshold:    *drift,
			ReclusterFraction: *reclustr,
			Verify:            true,
		},
		SnapshotPath: *snapshot,
	}

	// Boot plan: a persisted snapshot when available, otherwise an initial
	// formation over a freshly simulated network.
	if *snapshot != "" {
		if ep, err := ecg.LoadPlanSnapshot(*snapshot); err == nil {
			cfg.Plan = ep.Plan
			cfg.ResumeEpoch = ep.Seq
			fmt.Fprintf(w, "restored plan epoch %d (%d caches, %d groups) from %s\n",
				ep.Seq, ep.Plan.NumCaches(), ep.Plan.NumGroups(), *snapshot)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("load snapshot: %w", err)
		}
	}
	if cfg.Plan == nil {
		plan, err := formInitialPlan(*caches, *k, *scheme, *theta, *l, *m, cfg.Rand, o)
		if err != nil {
			return err
		}
		cfg.Plan = plan
		fmt.Fprintf(w, "formed initial plan: %d caches, %d groups (%s)\n",
			plan.NumCaches(), plan.NumGroups(), plan.Scheme)
	}

	e, err := ecg.NewServeEngine(cfg)
	if err != nil {
		return err
	}
	srv, err := ecg.ServeGroups(*addr, e, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "serving on http://%s (plan epoch %d)\n", srv.Addr(), e.Epoch().Seq)
	if ready != nil {
		// Test mode: hand the server to the caller, which owns Close.
		ready <- srv
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(w, "received %s, shutting down\n", s)
	return srv.Close()
}

// formInitialPlan runs the paper's pipeline once over a simulated
// transit-stub network to produce the boot plan.
func formInitialPlan(caches, k int, scheme string, theta float64, l, m int, src *ecg.Rand, o *ecg.Obs) (*ecg.Plan, error) {
	lEff, mEff := clampLandmarks(l, m, caches)
	var cfg ecg.SchemeConfig
	switch strings.ToLower(scheme) {
	case "sl":
		cfg = ecg.SL(lEff, mEff)
	case "sdsl":
		cfg = ecg.SDSL(lEff, mEff, theta)
	default:
		return nil, fmt.Errorf("unknown scheme %q (the daemon supports sl and sdsl; embedded-representation schemes cannot ingest raw landmark RTTs)", scheme)
	}
	cfg.Verify = true
	cfg.Obs = o

	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topo"))
	if err != nil {
		return nil, fmt.Errorf("generate topology: %w", err)
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: caches}, src.Split("place"))
	if err != nil {
		return nil, fmt.Errorf("place network: %w", err)
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		return nil, fmt.Errorf("build prober: %w", err)
	}
	gf, err := ecg.NewCoordinator(nw, prober, cfg, src.Split("gf"))
	if err != nil {
		return nil, fmt.Errorf("build coordinator: %w", err)
	}
	plan, err := gf.FormGroups(k)
	if err != nil {
		return nil, fmt.Errorf("form groups: %w", err)
	}
	return plan, nil
}
