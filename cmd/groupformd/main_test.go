package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	ecg "edgecachegroups"
)

// boot runs the daemon with the given extra flags on an ephemeral port and
// returns the live server (closed on test cleanup).
func boot(t *testing.T, buf *bytes.Buffer, extra ...string) *ecg.ServeServer {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-caches", "40", "-k", "4", "-l", "5", "-m", "2",
		"-interval", "1h",
	}, extra...)
	ready := make(chan *ecg.ServeServer, 1)
	if err := run(args, buf, ready); err != nil {
		t.Fatalf("run: %v", err)
	}
	srv := <-ready
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestDaemonServesFormedPlan(t *testing.T) {
	var buf bytes.Buffer
	srv := boot(t, &buf, "-scheme", "sl")
	base := "http://" + srv.Addr()

	var plan struct {
		Epoch  uint64 `json:"epoch"`
		Caches int    `json:"caches"`
		K      int    `json:"k"`
		Scheme string `json:"scheme"`
	}
	if code := get(t, base+"/plan", &plan); code != http.StatusOK {
		t.Fatalf("/plan status %d", code)
	}
	if plan.Epoch != 1 || plan.Caches != 40 || plan.K != 4 || plan.Scheme != "SL" {
		t.Fatalf("plan = %+v", plan)
	}

	var a struct {
		Group int `json:"group"`
	}
	if code := get(t, base+"/assign?cache=0", &a); code != http.StatusOK {
		t.Fatalf("/assign status %d", code)
	}
	if a.Group < 0 || a.Group >= 4 {
		t.Fatalf("assigned group %d out of range", a.Group)
	}

	var h struct {
		Status string `json:"status"`
	}
	if code := get(t, base+"/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("/healthz = %d %q", code, h.Status)
	}
	if code := get(t, base+"/metrics", nil); code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(buf.String(), "formed initial plan") {
		t.Fatalf("boot log missing formation line:\n%s", buf.String())
	}
}

func TestDaemonIngestEndpoint(t *testing.T) {
	var buf bytes.Buffer
	srv := boot(t, &buf)
	base := "http://" + srv.Addr()

	dim := srv.Engine().FeatureDim()
	rtt := make([]float64, dim)
	for d := range rtt {
		rtt[d] = 10 + float64(d)
	}
	body, _ := json.Marshal(map[string]any{
		"stats": []map[string]any{{"cache": 0, "rttMS": rtt, "requests": 3}},
	})
	resp, err := http.Post(base+"/stats", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	if srv.Engine().Stats().Total() != 1 {
		t.Fatalf("report not recorded: total %d", srv.Engine().Stats().Total())
	}
}

func TestDaemonSnapshotRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	var buf bytes.Buffer
	srv := boot(t, &buf, "-snapshot", path)
	first := srv.Engine().Epoch()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Restart with a different formation seed: the snapshot must win, so
	// the plan checksum survives and the epoch sequence keeps rising.
	var buf2 bytes.Buffer
	srv2 := boot(t, &buf2, "-snapshot", path, "-seed", "999")
	second := srv2.Engine().Epoch()
	if second.Checksum != first.Checksum {
		t.Fatalf("restart reformed instead of restoring: checksum %016x -> %016x", first.Checksum, second.Checksum)
	}
	if second.Seq != first.Seq+1 {
		t.Fatalf("epoch sequence reset: %d -> %d", first.Seq, second.Seq)
	}
	if !strings.Contains(buf2.String(), "restored plan epoch") {
		t.Fatalf("boot log missing restore line:\n%s", buf2.String())
	}
}

func TestDaemonErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scheme", "euclidean"}, &buf, nil); err == nil {
		t.Fatal("euclidean scheme accepted (embedded representation is not servable)")
	}
	if err := run([]string{"-scheme", "bogus"}, &buf, nil); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run([]string{"-caches", "10", "-k", "50"}, &buf, nil); err == nil {
		t.Fatal("k > caches accepted")
	}
	if err := run([]string{"-sample", "2"}, &buf, nil); err == nil {
		t.Fatal("sample fraction > 1 accepted")
	}
}

func TestClampLandmarks(t *testing.T) {
	tests := []struct {
		l, m, n      int
		wantL, wantM int
	}{
		{25, 4, 500, 25, 4},
		{25, 4, 40, 11, 4},
		{25, 0, 100, 25, 1},
		{1, 1, 1, 2, 1},
	}
	for _, tt := range tests {
		l, m := clampLandmarks(tt.l, tt.m, tt.n)
		if l != tt.wantL || m != tt.wantM {
			t.Errorf("clampLandmarks(%d,%d,%d) = (%d,%d), want (%d,%d)",
				tt.l, tt.m, tt.n, l, m, tt.wantL, tt.wantM)
		}
	}
}
