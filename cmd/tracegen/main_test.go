package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgecachegroups/internal/workload"
)

func TestRunWritesTraceFiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-caches", "8", "-duration", "30", "-docs", "100", "-out", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("no summary line:\n%s", buf.String())
	}

	// Catalog parses back.
	cf, err := os.Open(filepath.Join(dir, "catalog.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	cat, err := workload.ReadCatalogJSON(cf, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if cat.NumDocuments() != 100 {
		t.Fatalf("catalog docs = %d", cat.NumDocuments())
	}

	// Requests parse back and reference valid docs/caches.
	rf, err := os.Open(filepath.Join(dir, "requests.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	reqs, err := workload.ReadRequestsJSONL(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no requests written")
	}
	for _, r := range reqs {
		if int(r.Cache) < 0 || int(r.Cache) >= 8 {
			t.Fatalf("bad cache %d", r.Cache)
		}
		if int(r.Doc) < 0 || int(r.Doc) >= 100 {
			t.Fatalf("bad doc %d", r.Doc)
		}
	}

	uf, err := os.Open(filepath.Join(dir, "updates.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer uf.Close()
	if _, err := workload.ReadUpdatesJSONL(uf); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-caches", "0"}, &buf); err == nil {
		t.Fatal("zero caches accepted")
	}
	if err := run([]string{"-docs", "0"}, &buf); err == nil {
		t.Fatal("zero docs accepted")
	}
	if err := run([]string{"-similarity", "2"}, &buf); err == nil {
		t.Fatal("bad similarity accepted")
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	var buf bytes.Buffer
	args := []string{"-caches", "5", "-duration", "20", "-docs", "50", "-seed", "9"}
	if err := run(append(args, "-out", dir1), &buf); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-out", dir2), &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"catalog.json", "requests.jsonl", "updates.jsonl"} {
		a, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs across identical runs", name)
		}
	}
}

func TestRunSplitLogs(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-caches", "4", "-duration", "20", "-docs", "50", "-out", dir, "-split"}, &buf); err != nil {
		t.Fatal(err)
	}
	merged := 0
	for i := 0; i < 4; i++ {
		f, err := os.Open(filepath.Join(dir, "requests-"+strconvItoa(i)+".jsonl"))
		if err != nil {
			t.Fatalf("per-cache log %d missing: %v", i, err)
		}
		reqs, err := workload.ReadRequestsJSONL(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reqs {
			if int(r.Cache) != i {
				t.Fatalf("log %d contains request for cache %d", i, r.Cache)
			}
		}
		merged += len(reqs)
	}
	// Split logs must cover exactly the merged log.
	f, err := os.Open(filepath.Join(dir, "requests.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	all, err := workload.ReadRequestsJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if merged != len(all) {
		t.Fatalf("split logs hold %d requests, merged %d", merged, len(all))
	}
}

func strconvItoa(i int) string { return fmt.Sprintf("%d", i) }
