// Command tracegen synthesizes the workload that drives the cooperative
// edge cache simulator: a document catalog, per-cache request logs, and the
// origin server's update log, written as JSON files.
//
// Usage:
//
//	tracegen -caches 500 -duration 600 -out /tmp/trace
//	ls /tmp/trace   # catalog.json requests.jsonl updates.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	ecg "edgecachegroups"
	"edgecachegroups/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		caches     = fs.Int("caches", 500, "number of edge caches")
		duration   = fs.Float64("duration", 600, "trace duration in seconds")
		rate       = fs.Float64("rate", 0.6, "request rate per cache (req/s)")
		similarity = fs.Float64("similarity", 0.8, "cross-cache request similarity in [0,1]")
		docs       = fs.Int("docs", 2000, "catalog size")
		alpha      = fs.Float64("alpha", 0.8, "Zipf popularity exponent")
		seed       = fs.Int64("seed", 1, "random seed")
		outDir     = fs.String("out", ".", "output directory")
		stats      = fs.Bool("stats", false, "print trace statistics after generation")
		split      = fs.Bool("split", false, "also write one request log per cache (requests-<i>.jsonl)")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := ecg.NewRand(*seed)
	catParams := ecg.DefaultCatalogParams()
	catParams.NumDocuments = *docs
	catParams.ZipfAlpha = *alpha
	catalog, err := ecg.NewCatalog(catParams, src.Split("catalog"))
	if err != nil {
		return fmt.Errorf("build catalog: %w", err)
	}
	traceParams := ecg.TraceParams{
		DurationSec:         *duration,
		RequestRatePerCache: *rate,
		Similarity:          *similarity,
	}
	requests, err := ecg.GenerateRequests(catalog, *caches, traceParams, src.Split("requests"))
	if err != nil {
		return fmt.Errorf("generate requests: %w", err)
	}
	updates, err := ecg.GenerateUpdates(catalog, *duration, src.Split("updates"))
	if err != nil {
		return fmt.Errorf("generate updates: %w", err)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	if err := writeFile(filepath.Join(*outDir, "catalog.json"), func(f io.Writer) error {
		return workload.WriteCatalogJSON(f, catalog)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*outDir, "requests.jsonl"), func(f io.Writer) error {
		return workload.WriteRequestsJSONL(f, requests)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*outDir, "updates.jsonl"), func(f io.Writer) error {
		return workload.WriteUpdatesJSONL(f, updates)
	}); err != nil {
		return err
	}

	if *split {
		perCache := make(map[int][]ecg.Request)
		for _, r := range requests {
			perCache[int(r.Cache)] = append(perCache[int(r.Cache)], r)
		}
		for i := 0; i < *caches; i++ {
			reqs := perCache[i]
			name := filepath.Join(*outDir, fmt.Sprintf("requests-%d.jsonl", i))
			if err := writeFile(name, func(f io.Writer) error {
				return workload.WriteRequestsJSONL(f, reqs)
			}); err != nil {
				return err
			}
		}
	}

	fmt.Fprintf(w, "wrote %d documents, %d requests, %d updates to %s\n",
		catalog.NumDocuments(), len(requests), len(updates), *outDir)
	if *stats {
		st, err := workload.AnalyzeRequests(requests)
		if err != nil {
			return fmt.Errorf("analyze trace: %w", err)
		}
		fmt.Fprintf(w, "stats: %s\n", st)
	}
	return nil
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	return nil
}
