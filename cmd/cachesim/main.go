// Command cachesim replays trace files produced by cmd/tracegen through
// the cooperative edge cache simulator: it builds (or loads) a topology,
// places the edge cache network, forms cooperative groups with the chosen
// scheme, and reports latency and hit-rate statistics.
//
// Usage:
//
//	tracegen -caches 200 -out /tmp/trace
//	cachesim -trace /tmp/trace -k 20 -scheme sdsl
//	cachesim -trace /tmp/trace -k 20 -topology topo.json   # topogen -dump
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	ecg "edgecachegroups"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cachesim", flag.ContinueOnError)
	var (
		traceDir = fs.String("trace", "", "directory holding catalog.json, requests.jsonl, updates.jsonl (required)")
		topoFile = fs.String("topology", "", "optional topology JSON (from topogen -dump); otherwise generated from -seed")
		k        = fs.Int("k", 20, "number of cooperative groups")
		scheme   = fs.String("scheme", "sdsl", "group formation scheme: sl, sdsl, or euclidean")
		theta    = fs.Float64("theta", 1.0, "SDSL server-distance sensitivity")
		l        = fs.Int("l", 25, "number of landmarks")
		m        = fs.Int("m", 4, "PLSet multiplier")
		alpha    = fs.Float64("alpha", 0.8, "Zipf exponent used to rebuild the catalog profile")
		seed     = fs.Int64("seed", 1, "random seed (topology, placement, probing, clustering)")
		warmup   = fs.Float64("warmup", 0, "seconds of warm-up excluded from latency stats")
		policy   = fs.String("policy", "utility", "cache replacement policy: utility or lru")
		beacons  = fs.Int("beacons", 0, "beacon points per group (0 = multicast cooperation model)")
		shards   = fs.Int("shards", 0, "group-partitioned simulator shards run concurrently (0 = serial; results are identical for any value)")
		obsAddr  = fs.String("obs-addr", "", "serve live /metrics, /debug/vars, /debug/pprof, and /trace on this host:port (\":0\" for ephemeral; results are identical with or without)")
		obsWait  = fs.Duration("obs-linger", 0, "keep the -obs-addr endpoint up this long after the run finishes, for scraping")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceDir == "" {
		return fmt.Errorf("-trace is required")
	}
	var o *ecg.Obs
	if *obsAddr != "" {
		o = ecg.NewObs()
		srv, err := ecg.ServeObs(*obsAddr, o)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(w, "observability endpoint on http://%s/metrics\n", srv.Addr())
		if *obsWait > 0 {
			defer time.Sleep(*obsWait)
		}
	}

	catalog, requests, updates, err := loadTrace(*traceDir, *alpha)
	if err != nil {
		return err
	}
	numCaches := 0
	for _, r := range requests {
		if int(r.Cache) >= numCaches {
			numCaches = int(r.Cache) + 1
		}
	}
	if numCaches == 0 {
		return fmt.Errorf("request log is empty")
	}

	src := ecg.NewRand(*seed)
	var graph *ecg.Graph
	if *topoFile != "" {
		f, err := os.Open(*topoFile)
		if err != nil {
			return fmt.Errorf("open topology: %w", err)
		}
		graph, err = topology.ReadGraphJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load topology: %w", err)
		}
	} else {
		graph, err = ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topo"))
		if err != nil {
			return fmt.Errorf("generate topology: %w", err)
		}
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: numCaches}, src.Split("place"))
	if err != nil {
		return fmt.Errorf("place network: %w", err)
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		return fmt.Errorf("build prober: %w", err)
	}

	lEff, mEff := clampLandmarks(*l, *m, numCaches)
	var cfg ecg.SchemeConfig
	switch strings.ToLower(*scheme) {
	case "sl":
		cfg = ecg.SL(lEff, mEff)
	case "sdsl":
		cfg = ecg.SDSL(lEff, mEff, *theta)
	case "euclidean":
		cfg = ecg.EuclideanScheme(lEff, mEff, 5)
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	cfg.Obs = o
	gf, err := ecg.NewCoordinator(nw, prober, cfg, src.Split("gf"))
	if err != nil {
		return fmt.Errorf("build coordinator: %w", err)
	}
	plan, err := gf.FormGroups(*k)
	if err != nil {
		return fmt.Errorf("form groups: %w", err)
	}

	simCfg := ecg.DefaultSimConfig()
	simCfg.WarmupSec = *warmup
	simCfg.BeaconsPerGroup = *beacons
	simCfg.Shards = *shards
	simCfg.Obs = o
	switch strings.ToLower(*policy) {
	case "utility":
		simCfg.CachePolicy = ecg.PolicyUtility
	case "lru":
		simCfg.CachePolicy = ecg.PolicyLRU
	default:
		return fmt.Errorf("unknown policy %q (want utility or lru)", *policy)
	}
	sim, err := ecg.NewSimulator(nw, plan.Groups(), catalog, simCfg)
	if err != nil {
		return fmt.Errorf("build simulator: %w", err)
	}
	rep, err := sim.Run(requests, updates)
	if err != nil {
		return fmt.Errorf("run simulation: %w", err)
	}

	local, group, origin := rep.HitRates()
	fmt.Fprintf(w, "trace:      %d caches, %d requests, %d updates, %d documents\n",
		numCaches, len(requests), len(updates), catalog.NumDocuments())
	fmt.Fprintf(w, "plan:       %s, K=%d, GICost %.1fms\n",
		plan.Scheme, plan.NumGroups(), ecg.AvgGroupInteractionCost(nw, plan.Groups()))
	fmt.Fprintf(w, "latency:    mean %.1fms  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		rep.Overall.Mean(), rep.Overall.Percentile(50), rep.Overall.Percentile(95), rep.Overall.Percentile(99))
	fmt.Fprintf(w, "hit mix:    local %.1f%%  group %.1f%%  origin %.1f%%\n",
		local*100, group*100, origin*100)
	near := nw.NearestCaches(numCaches / 10)
	far := nw.FarthestCaches(numCaches / 10)
	if len(near) > 0 && len(far) > 0 {
		fmt.Fprintf(w, "by region:  nearest-10%% %.1fms  farthest-10%% %.1fms\n",
			rep.MeanLatencyOf(near), rep.MeanLatencyOf(far))
	}
	return nil
}

// clampLandmarks shrinks (L, M) so the potential landmark set fits the
// network: M*(L-1) <= n (same policy as the experiment harness).
func clampLandmarks(l, m, n int) (int, int) {
	if m < 1 {
		m = 1
	}
	if m*(l-1) > n {
		l = n/m + 1
	}
	if l < 2 {
		l, m = 2, 1
	}
	return l, m
}

func loadTrace(dir string, alpha float64) (*workload.Catalog, []workload.Request, []workload.Update, error) {
	catFile, err := os.Open(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("open catalog: %w", err)
	}
	defer catFile.Close()
	catalog, err := workload.ReadCatalogJSON(catFile, alpha)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("parse catalog: %w", err)
	}

	reqFile, err := os.Open(filepath.Join(dir, "requests.jsonl"))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("open requests: %w", err)
	}
	defer reqFile.Close()
	requests, err := workload.ReadRequestsJSONL(reqFile)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("parse requests: %w", err)
	}

	upFile, err := os.Open(filepath.Join(dir, "updates.jsonl"))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("open updates: %w", err)
	}
	defer upFile.Close()
	updates, err := workload.ReadUpdatesJSONL(upFile)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("parse updates: %w", err)
	}
	return catalog, requests, updates, nil
}
