package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	ecg "edgecachegroups"
	"edgecachegroups/internal/workload"
)

// writeTrace synthesizes a small trace directory for tests.
func writeTrace(t *testing.T, numCaches int) string {
	t.Helper()
	dir := t.TempDir()
	src := ecg.NewRand(77)
	params := ecg.DefaultCatalogParams()
	params.NumDocuments = 200
	catalog, err := ecg.NewCatalog(params, src.Split("catalog"))
	if err != nil {
		t.Fatal(err)
	}
	tp := ecg.TraceParams{DurationSec: 40, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := ecg.GenerateRequests(catalog, numCaches, tp, src.Split("reqs"))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := ecg.GenerateUpdates(catalog, 40, src.Split("ups"))
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, fn func(f *os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
	}
	write("catalog.json", func(f *os.File) error { return workload.WriteCatalogJSON(f, catalog) })
	write("requests.jsonl", func(f *os.File) error { return workload.WriteRequestsJSONL(f, reqs) })
	write("updates.jsonl", func(f *os.File) error { return workload.WriteUpdatesJSONL(f, ups) })
	return dir
}

func TestRunSimulatesTrace(t *testing.T) {
	dir := writeTrace(t, 20)
	var buf bytes.Buffer
	if err := run([]string{"-trace", dir, "-k", "4", "-scheme", "sdsl"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace:", "plan:", "latency:", "hit mix:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "20 caches") {
		t.Fatalf("cache count not inferred:\n%s", out)
	}
}

func TestRunAllSchemes(t *testing.T) {
	dir := writeTrace(t, 15)
	for _, scheme := range []string{"sl", "sdsl", "euclidean"} {
		var buf bytes.Buffer
		if err := run([]string{"-trace", dir, "-k", "3", "-scheme", scheme}, &buf); err != nil {
			t.Fatalf("scheme %s: %v", scheme, err)
		}
	}
}

func TestRunWithTopologyFile(t *testing.T) {
	dir := writeTrace(t, 15)
	topoPath := filepath.Join(t.TempDir(), "topo.json")
	src := ecg.NewRand(1)
	g, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topo"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(topoPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ecg.WriteGraphJSON(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := run([]string{"-trace", dir, "-k", "3", "-topology", topoPath}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunWarmup(t *testing.T) {
	dir := writeTrace(t, 10)
	var buf bytes.Buffer
	if err := run([]string{"-trace", dir, "-k", "2", "-warmup", "10"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing -trace accepted")
	}
	if err := run([]string{"-trace", t.TempDir()}, &buf); err == nil {
		t.Fatal("empty trace dir accepted")
	}
	dir := writeTrace(t, 10)
	if err := run([]string{"-trace", dir, "-scheme", "bogus"}, &buf); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run([]string{"-trace", dir, "-topology", "/no/such/file"}, &buf); err == nil {
		t.Fatal("missing topology file accepted")
	}
	if err := run([]string{"-trace", dir, "-k", "9999"}, &buf); err == nil {
		t.Fatal("oversized k accepted")
	}
}

func TestRunPolicyAndBeaconFlags(t *testing.T) {
	dir := writeTrace(t, 12)
	var buf bytes.Buffer
	if err := run([]string{"-trace", dir, "-k", "3", "-policy", "lru", "-beacons", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", dir, "-k", "3", "-policy", "bogus"}, &buf); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
