package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunReportsFixtureViolationsNonzero(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/src/..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errBuf.String())
	}
	for _, rule := range []string{"detclock", "detrand", "maporder", "lockedsend", "directive"} {
		if !strings.Contains(out.String(), rule+": ") {
			t.Errorf("output missing %s findings:\n%s", rule, out.String())
		}
	}
	// file:line:col findings, not bare messages.
	if !strings.Contains(out.String(), ".go:") {
		t.Errorf("findings lack file:line positions:\n%s", out.String())
	}
}

func TestRunCleanPackageExitsZero(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"../../internal/simrand"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected findings on clean package:\n%s", out.String())
	}
}

func TestRulesFlagPrintsTable(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-rules"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, rule := range []string{"detclock", "detrand", "maporder", "lockedsend"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("rule table missing %s:\n%s", rule, out.String())
		}
	}
}
