// Command ecglint runs the repo's custom static-analysis suite: the
// determinism and concurrency invariants the reproduction depends on
// (no wall clock or global math/rand in simulation code, no
// map-iteration order feeding results, no blocking channel operations
// under a mutex, no mutation of atomically published values, no silent
// error drops, no cross-worker scratch sharing), enforced at build time
// instead of waiting for a seed to expose a violation dynamically. The
// suite is interprocedural: a wall-clock read or blocking operation
// buried several calls deep is attributed to the simulation-package
// call site that reaches it.
//
// Usage:
//
//	ecglint [-rules] [-json] [-audit] [packages]
//
// Packages default to ./... relative to the current module. The exit
// status is 1 when any finding survives the //ecglint:allow directives,
// so CI can gate on it directly:
//
//	go run ./cmd/ecglint ./...
//
// -json prints findings as a position-sorted JSON array instead of
// text. -audit prints every //ecglint:allow directive in the module
// with its rule, reason, and location, and exits 1 if any directive is
// malformed, names an unknown rule, or is stale (suppresses nothing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	"edgecachegroups/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ecglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.Bool("rules", false, "print the rule table and exit")
	asJSON := fs.Bool("json", false, "print findings as a JSON array")
	audit := fs.Bool("audit", false, "list every ecglint:allow directive; fail on malformed or stale ones")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *rules {
		tw := tabwriter.NewWriter(stdout, 0, 4, 2, ' ', 0)
		for _, a := range analyzers {
			fmt.Fprintf(tw, "%s\t%s\n", a.Name(), a.Doc())
		}
		tw.Flush()
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "ecglint:", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "ecglint:", err)
		return 2
	}
	findings, allows := lint.Audit(pkgs, analyzers)
	for i := range findings {
		findings[i] = relativize(cwd, findings[i])
	}

	if *audit {
		return runAudit(findings, allows, cwd, stdout, stderr, *asJSON)
	}
	if *asJSON {
		if err := writeJSON(stdout, findingsJSON(findings)); err != nil {
			fmt.Fprintln(stderr, "ecglint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "ecglint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the stable machine-readable finding shape.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func findingsJSON(findings []lint.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Rule: f.Rule, Message: f.Message,
		})
	}
	return out
}

// jsonAllow is the stable machine-readable suppression-audit shape.
type jsonAllow struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
	Stale  bool   `json:"stale"`
}

// runAudit renders the suppression audit trail. The directive
// pseudo-rule findings (malformed, unknown-rule, stale) are the failure
// conditions: a suppression that excuses nothing, or excuses it without
// a reason, is an audit-trail hole.
func runAudit(findings []lint.Finding, allows []lint.Allow, cwd string, stdout, stderr io.Writer, asJSON bool) int {
	var bad []lint.Finding
	for _, f := range findings {
		if f.Rule == "directive" {
			bad = append(bad, f)
		}
	}
	if asJSON {
		out := make([]jsonAllow, 0, len(allows))
		for _, a := range allows {
			out = append(out, jsonAllow{
				File: relPath(cwd, a.Pos.Filename), Line: a.Pos.Line,
				Rule: a.Rule, Reason: a.Reason, Stale: a.Stale,
			})
		}
		if err := writeJSON(stdout, out); err != nil {
			fmt.Fprintln(stderr, "ecglint:", err)
			return 2
		}
	} else {
		tw := tabwriter.NewWriter(stdout, 0, 4, 2, ' ', 0)
		for _, a := range allows {
			state := "ok"
			if a.Stale {
				state = "STALE"
			}
			fmt.Fprintf(tw, "%s:%d\t%s\t%s\t%s\n", relPath(cwd, a.Pos.Filename), a.Pos.Line, a.Rule, state, a.Reason)
		}
		tw.Flush()
	}
	if len(bad) > 0 {
		for _, f := range bad {
			fmt.Fprintln(stderr, f.String())
		}
		fmt.Fprintf(stderr, "ecglint: %d suppression problem(s)\n", len(bad))
		return 1
	}
	return 0
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// relativize shortens the finding's filename to a cwd-relative path for
// readable, clickable output.
func relativize(cwd string, f lint.Finding) lint.Finding {
	f.Pos.Filename = relPath(cwd, f.Pos.Filename)
	return f
}

func relPath(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && len(rel) < len(path) {
		return rel
	}
	return path
}
