// Command ecglint runs the repo's custom static-analysis suite: the
// determinism and concurrency invariants the reproduction depends on
// (no wall clock or global math/rand in simulation code, no
// map-iteration order feeding results, no blocking channel operations
// under a mutex), enforced at build time instead of waiting for a seed
// to expose a violation dynamically.
//
// Usage:
//
//	ecglint [-rules] [packages]
//
// Packages default to ./... relative to the current module. The exit
// status is 1 when any finding survives the //ecglint:allow directives,
// so CI can gate on it directly:
//
//	go run ./cmd/ecglint ./...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	"edgecachegroups/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ecglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.Bool("rules", false, "print the rule table and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *rules {
		tw := tabwriter.NewWriter(stdout, 0, 4, 2, ' ', 0)
		for _, a := range analyzers {
			fmt.Fprintf(tw, "%s\t%s\n", a.Name(), a.Doc())
		}
		tw.Flush()
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "ecglint:", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "ecglint:", err)
		return 2
	}
	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, relativize(cwd, f).String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "ecglint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// relativize shortens the finding's filename to a cwd-relative path for
// readable, clickable output.
func relativize(cwd string, f lint.Finding) lint.Finding {
	if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && len(rel) < len(f.Pos.Filename) {
		f.Pos.Filename = rel
	}
	return f
}
