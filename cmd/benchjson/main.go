// Command benchjson converts `go test -bench` output into the tracked
// benchmark-baseline JSON (BENCH_pipeline.json). It reads benchmark lines
// from stdin, averages repeated runs (-count=N), derives parallel-vs-serial
// speedups for benchmark pairs whose names differ only in a trailing worker
// count (FooPar1/FooPar8, Foo1/Foo8) plus pruned-vs-exhaustive speedups for
// FooExhaustive/FooPruned pairs, and records the host's CPU budget so a
// baseline measured on a single-core machine is not mistaken for one where
// the parallel pipeline could show its wall-clock win.
//
// Usage:
//
//	go test -run XXX -bench <pattern> -benchmem -count 5 . | go run ./cmd/benchjson > BENCH_pipeline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Bench is the aggregated result of one benchmark across repeated runs.
type Bench struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Speedup compares a serial/parallel benchmark pair.
type Speedup struct {
	Name     string  `json:"name"`
	Serial   string  `json:"serial"`
	Parallel string  `json:"parallel"`
	Factor   float64 `json:"factor"`
}

// Baseline is the file layout of BENCH_pipeline.json.
type Baseline struct {
	GoVersion  string    `json:"go_version"`
	GoOS       string    `json:"goos"`
	GoArch     string    `json:"goarch"`
	NumCPU     int       `json:"num_cpu"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Note       string    `json:"note,omitempty"`
	Benchmarks []Bench   `json:"benchmarks"`
	Speedups   []Speedup `json:"speedups,omitempty"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(r io.Reader, w io.Writer) error {
	benches, err := parse(r)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	base := Baseline{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: benches,
		Speedups:   speedups(benches),
	}
	if base.NumCPU == 1 {
		base.Note = "single-CPU host: parallel benches cannot show a wall-clock speedup here; compare allocs/op and re-measure on multi-core hardware"
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

// accum collects the repeated runs of one benchmark.
type accum struct {
	runs       int
	iterations int64
	sums       map[string]float64
}

// parse reads benchmark lines ("BenchmarkFoo-8  100  123 ns/op  4 B/op ...")
// and averages repeated runs of the same name.
func parse(r io.Reader) ([]Bench, error) {
	acc := make(map[string]*accum)
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		a := acc[name]
		if a == nil {
			a = &accum{sums: make(map[string]float64)}
			acc[name] = a
			order = append(order, name)
		}
		a.runs++
		a.iterations += iters
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q for %s", fields[i], name)
			}
			a.sums[fields[i+1]] += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Bench, 0, len(order))
	for _, name := range order {
		a := acc[name]
		b := Bench{Name: name, Runs: a.runs, Iterations: a.iterations}
		n := float64(a.runs)
		// Iterate units in sorted order so the emitted JSON (field values
		// and Extra insertion sequence) never depends on map order.
		units := make([]string, 0, len(a.sums))
		for unit := range a.sums {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			mean := a.sums[unit] / n
			switch unit {
			case "ns/op":
				b.NsPerOp = mean
			case "B/op":
				b.BytesPerOp = mean
			case "allocs/op":
				b.AllocsPerOp = mean
			default:
				if b.Extra == nil {
					b.Extra = make(map[string]float64)
				}
				b.Extra[unit] = mean
			}
		}
		out = append(out, b)
	}
	return out, nil
}

// trimProcs strips the -GOMAXPROCS suffix go test appends to benchmark
// names ("BenchmarkFoo-8" -> "BenchmarkFoo").
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// speedups pairs benchmarks whose names differ only in a trailing variant
// marker: a worker count where the serial member ends in "1"
// (KMeansPar1/KMeansPar8), and the algorithmic Exhaustive/Pruned pairs
// (KMeansFlatExhaustive/KMeansFlatPruned) where the win comes from bounds
// pruning rather than goroutines — the speedup that survives a 1-CPU host.
func speedups(benches []Bench) []Speedup {
	byName := make(map[string]Bench, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []Speedup
	pair := func(baseline Bench, prefix, variant string) {
		faster, ok := byName[prefix+variant]
		if !ok || faster.NsPerOp <= 0 {
			return
		}
		out = append(out, Speedup{
			Name:     strings.TrimPrefix(prefix, "Benchmark") + "x" + variant,
			Serial:   baseline.Name,
			Parallel: prefix + variant,
			Factor:   baseline.NsPerOp / faster.NsPerOp,
		})
	}
	for _, baseline := range benches {
		if prefix, ok := strings.CutSuffix(baseline.Name, "1"); ok {
			for _, workers := range []string{"2", "4", "8", "16"} {
				pair(baseline, prefix, workers)
			}
		}
		if prefix, ok := strings.CutSuffix(baseline.Name, "Exhaustive"); ok {
			for _, variant := range []string{"Pruned", "Elkan"} {
				pair(baseline, prefix, variant)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
