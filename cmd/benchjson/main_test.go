package main

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: edgecachegroups
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKMeansPar1-8     	     100	   6513225 ns/op	  123568 B/op	      91 allocs/op
BenchmarkKMeansPar1-8     	     100	   6313225 ns/op	  123568 B/op	      91 allocs/op
BenchmarkKMeansPar8-8     	     100	   3206612 ns/op	  140848 B/op	     474 allocs/op
BenchmarkSimulatorThroughput-8	      10	  52000000 ns/op	  900000 B/op	    1200 allocs/op	     24000 requests/op
PASS
ok  	edgecachegroups	0.085s
`

func TestParseAveragesRepeatedRuns(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("got %d benches, want 3", len(benches))
	}
	km := benches[0]
	if km.Name != "BenchmarkKMeansPar1" {
		t.Fatalf("first bench %q, want BenchmarkKMeansPar1", km.Name)
	}
	if km.Runs != 2 || km.Iterations != 200 {
		t.Fatalf("runs/iterations = %d/%d, want 2/200", km.Runs, km.Iterations)
	}
	if want := (6513225.0 + 6313225.0) / 2; math.Abs(km.NsPerOp-want) > 1e-6 {
		t.Fatalf("ns/op = %v, want mean %v", km.NsPerOp, want)
	}
	if km.AllocsPerOp != 91 {
		t.Fatalf("allocs/op = %v, want 91", km.AllocsPerOp)
	}
	sim := benches[2]
	if sim.Extra["requests/op"] != 24000 {
		t.Fatalf("custom metric lost: %+v", sim.Extra)
	}
}

func TestSpeedupPairsSerialAndParallel(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	sp := speedups(benches)
	if len(sp) != 1 {
		t.Fatalf("got %d speedups, want 1: %+v", len(sp), sp)
	}
	if sp[0].Serial != "BenchmarkKMeansPar1" || sp[0].Parallel != "BenchmarkKMeansPar8" {
		t.Fatalf("wrong pair: %+v", sp[0])
	}
	if want := 6413225.0 / 3206612.0; math.Abs(sp[0].Factor-want) > 1e-9 {
		t.Fatalf("factor = %v, want %v", sp[0].Factor, want)
	}
}

// TestSpeedupPairsExhaustiveAndPruned pins the algorithmic pairing: a
// FooExhaustive baseline is compared against FooPruned and FooElkan
// variants, the speedup that remains meaningful on a single-CPU host.
func TestSpeedupPairsExhaustiveAndPruned(t *testing.T) {
	const pruned = `BenchmarkKMeansFlatExhaustive-8	1	5000000000 ns/op	377600000 distevals/op
BenchmarkKMeansFlatPruned-8	2	500000000 ns/op	27000000 distevals/op
BenchmarkKMeansFlatElkan-8	1	1000000000 ns/op	15000000 distevals/op
`
	benches, err := parse(strings.NewReader(pruned))
	if err != nil {
		t.Fatal(err)
	}
	sp := speedups(benches)
	if len(sp) != 2 {
		t.Fatalf("got %d speedups, want 2: %+v", len(sp), sp)
	}
	byName := map[string]Speedup{}
	for _, s := range sp {
		byName[s.Name] = s
	}
	pr, ok := byName["KMeansFlatxPruned"]
	if !ok || pr.Serial != "BenchmarkKMeansFlatExhaustive" || pr.Parallel != "BenchmarkKMeansFlatPruned" {
		t.Fatalf("wrong Pruned pair: %+v", sp)
	}
	if want := 10.0; math.Abs(pr.Factor-want) > 1e-9 {
		t.Fatalf("Pruned factor = %v, want %v", pr.Factor, want)
	}
	el, ok := byName["KMeansFlatxElkan"]
	if !ok || math.Abs(el.Factor-5.0) > 1e-9 {
		t.Fatalf("wrong Elkan pair: %+v", sp)
	}
}

func TestRunEmitsValidBaseline(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(buf.Bytes(), &base); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if base.NumCPU < 1 || base.GoVersion == "" {
		t.Fatalf("missing host info: %+v", base)
	}
	if len(base.Benchmarks) != 3 || len(base.Speedups) != 1 {
		t.Fatalf("unexpected content: %d benches, %d speedups", len(base.Benchmarks), len(base.Speedups))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader("no benchmarks here\n"), &buf); err == nil {
		t.Fatal("want error for input without benchmark lines")
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar",
		"BenchmarkKMeansPar1": "BenchmarkKMeansPar1",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestParseOutputIsIterationOrderIndependent is the regression test for
// the maporder fix in parse: units are iterated in sorted order, so the
// serialized output is byte-identical across runs even though the
// per-unit sums live in a map. Multiple custom units force the Extra
// map through more than one iteration.
func TestParseOutputIsIterationOrderIndependent(t *testing.T) {
	const multiUnit = `BenchmarkSweep-8	10	50 ns/op	7 B/op	1 allocs/op	3 zeta/op	9 alpha/op	5 mid/op
`
	var first []byte
	for i := 0; i < 20; i++ {
		benches, err := parse(strings.NewReader(multiUnit))
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(benches)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = out
			continue
		}
		if !bytes.Equal(out, first) {
			t.Fatalf("run %d produced different bytes:\n%s\nvs\n%s", i, out, first)
		}
	}
	var got []Bench
	if err := json.Unmarshal(first, &got); err != nil {
		t.Fatal(err)
	}
	if got[0].NsPerOp != 50 || got[0].BytesPerOp != 7 || got[0].AllocsPerOp != 1 {
		t.Fatalf("standard units misparsed: %+v", got[0])
	}
	want := map[string]float64{"zeta/op": 3, "alpha/op": 9, "mid/op": 5}
	for unit, v := range want {
		if got[0].Extra[unit] != v {
			t.Fatalf("extra[%s] = %v, want %v", unit, got[0].Extra[unit], v)
		}
	}
}
