// Command obscheck validates a live observability endpoint started with
// -obs-addr: it fetches /metrics, /debug/vars, and /trace and checks
// that each response parses under its declared format (Prometheus text
// exposition 0.0.4, JSON, and JSONL respectively). It is the assertion
// half of the CI obs-smoke job, but works against any running binary.
//
// Usage:
//
//	ecgsim -fig 3 -scale 0.05 -obs-addr 127.0.0.1:9753 -obs-linger 60s &
//	obscheck -addr 127.0.0.1:9753
//
// Exit status is 0 when every endpoint responds and parses; any
// malformed line, unreachable endpoint, or empty /metrics body is
// reported on stderr and exits 1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("obscheck", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:9753", "host:port of the -obs-addr endpoint to validate")
		wait    = fs.Duration("wait", 30*time.Second, "keep retrying the first fetch this long (the target may still be starting)")
		minSamp = fs.Int("min-samples", 1, "minimum number of metric sample lines /metrics must expose")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := "http://" + *addr

	// Retry the whole /metrics check within the wait window: the target
	// may be up but not yet have recorded -min-samples sample lines.
	deadline := time.Now().Add(*wait)
	var samples int
	for {
		body, err := fetchRetry(base+"/metrics", time.Until(deadline))
		if err != nil {
			return err
		}
		samples, err = checkPrometheus(body, *minSamp)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/metrics: %w", err)
		}
		time.Sleep(time.Second)
	}
	fmt.Fprintf(w, "/metrics ok: %d sample lines\n", samples)

	body, err := fetchRetry(base+"/debug/vars", 0)
	if err != nil {
		return err
	}
	var vars struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]float64         `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		return fmt.Errorf("/debug/vars: invalid JSON: %w", err)
	}
	fmt.Fprintf(w, "/debug/vars ok: %d counters, %d gauges, %d histograms\n",
		len(vars.Counters), len(vars.Gauges), len(vars.Histograms))

	body, err = fetchRetry(base+"/trace", 0)
	if err != nil {
		return err
	}
	events, err := checkJSONL(body)
	if err != nil {
		return fmt.Errorf("/trace: %w", err)
	}
	fmt.Fprintf(w, "/trace ok: %d events\n", events)
	return nil
}

// fetchRetry GETs url, retrying connection failures for up to wait.
func fetchRetry(url string, wait time.Duration) ([]byte, error) {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(url)
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("GET %s: status %s", url, resp.Status)
			}
			return io.ReadAll(resp.Body)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("GET %s: %w", url, err)
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// sampleLine matches a Prometheus text-format sample:
// metric_name{optional="labels"} value
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$`)

// checkPrometheus validates the text exposition format line by line and
// returns the number of sample lines.
func checkPrometheus(body []byte, minSamples int) (int, error) {
	samples := 0
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !sampleLine.MatchString(text) {
			return 0, fmt.Errorf("line %d: malformed sample %q", line, text)
		}
		val := text[strings.LastIndexByte(text, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return 0, fmt.Errorf("line %d: non-numeric value %q", line, val)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if samples < minSamples {
		return 0, fmt.Errorf("only %d sample lines, want >= %d", samples, minSamples)
	}
	return samples, nil
}

// checkJSONL validates that every non-empty line is a JSON object with
// the trace event's required fields.
func checkJSONL(body []byte) (int, error) {
	events := 0
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev struct {
			Kind    string   `json:"kind"`
			TimeSec *float64 `json:"time_sec"`
		}
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return 0, fmt.Errorf("line %d: invalid JSON: %w", line, err)
		}
		if ev.Kind == "" {
			return 0, fmt.Errorf("line %d: missing kind", line)
		}
		if ev.TimeSec == nil {
			return 0, fmt.Errorf("line %d: missing time_sec", line)
		}
		events++
	}
	return events, sc.Err()
}
