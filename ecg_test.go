package ecg_test

import (
	"testing"

	ecg "edgecachegroups"
)

// TestFullPipelineThroughFacade runs the complete library pipeline using
// only the public API: topology -> placement -> probing -> group formation
// -> simulation -> metrics.
func TestFullPipelineThroughFacade(t *testing.T) {
	src := ecg.NewRand(42)

	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topo"))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: 80}, src.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		t.Fatal(err)
	}

	// SDSL group formation.
	gf, err := ecg.NewCoordinator(nw, prober, ecg.SDSL(10, 4, 1.0), src.Split("gf"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(8)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumGroups() != 8 || plan.NumCaches() != 80 {
		t.Fatalf("plan = %d groups / %d caches", plan.NumGroups(), plan.NumCaches())
	}
	cost := ecg.AvgGroupInteractionCost(nw, plan.Groups())
	if cost <= 0 {
		t.Fatalf("GICost = %v", cost)
	}

	// Workload + simulation.
	catalog, err := ecg.NewCatalog(ecg.DefaultCatalogParams(), src.Split("catalog"))
	if err != nil {
		t.Fatal(err)
	}
	tp := ecg.TraceParams{DurationSec: 60, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := ecg.GenerateRequests(catalog, 80, tp, src.Split("reqs"))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := ecg.GenerateUpdates(catalog, 60, src.Split("ups"))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ecg.NewSimulator(nw, plan.Groups(), catalog, ecg.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(reqs, ups)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests() == 0 || rep.MeanLatency() <= 0 {
		t.Fatalf("report = %s", rep)
	}
}

// TestFacadeSchemeConstructors sanity-checks the re-exported scheme
// constructors and selectors.
func TestFacadeSchemeConstructors(t *testing.T) {
	if ecg.SL(25, 4).Name() != "SL" {
		t.Fatal("SL name mismatch")
	}
	if ecg.SDSL(25, 4, 2).Theta != 2 {
		t.Fatal("SDSL theta mismatch")
	}
	eu := ecg.EuclideanScheme(25, 4, 5)
	if eu.Representation != ecg.RepresentationEuclidean {
		t.Fatal("Euclidean representation mismatch")
	}
	var sel ecg.LandmarkSelector = ecg.GreedyLandmarks{}
	if sel.Name() != "greedy" {
		t.Fatal("selector alias broken")
	}
}

// TestFacadeExperiments runs one scaled-down figure through the facade.
func TestFacadeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	o := ecg.ExperimentOptions{Seed: 3, Scale: 0.15, Parallelism: 2, Trials: 1}
	res, err := ecg.Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no sweep points")
	}
}

// TestEndpointHelpers checks the probe endpoint helpers.
func TestEndpointHelpers(t *testing.T) {
	if !ecg.OriginEndpoint().IsOrigin() {
		t.Fatal("OriginEndpoint not origin")
	}
	if ecg.CacheEndpoint(3).CacheIndex() != 3 {
		t.Fatal("CacheEndpoint index mismatch")
	}
}
