package ecg

import (
	"edgecachegroups/internal/protocol"
	"edgecachegroups/internal/topology"
)

// Distributed protocol: the group formation rounds as actual message
// passing between a coordinator and per-cache agents, with retries,
// timeouts, message loss, and crash handling.
type (
	// ProtocolConfig tunes the distributed group formation run.
	ProtocolConfig = protocol.Config
	// ProtocolResult is the outcome of a distributed run.
	ProtocolResult = protocol.Result
	// ProtocolCoordinator drives the protocol rounds.
	ProtocolCoordinator = protocol.Coordinator
	// ProtocolAgent is one edge cache's protocol endpoint.
	ProtocolAgent = protocol.Agent
	// ProtocolTransport delivers protocol messages.
	ProtocolTransport = protocol.Transport
	// ChanTransport is the in-process transport with optional loss and
	// crash injection.
	ChanTransport = protocol.ChanTransport
	// ProtocolMessage is one protocol datagram.
	ProtocolMessage = protocol.Message
	// ProtocolAddr addresses a protocol participant.
	ProtocolAddr = protocol.Addr
	// ProtocolLink is a directed communication edge between participants.
	ProtocolLink = protocol.Link
	// FaultConfig tunes the transport's fault model: loss, duplication,
	// delay/reordering, and per-link loss overrides.
	FaultConfig = protocol.FaultConfig
	// TransportStats counts the fault transport's deliveries and drops.
	TransportStats = protocol.TransportStats
	// AgentStats counts one agent's protocol-side work, including
	// deduplicated requests.
	AgentStats = protocol.AgentStats
	// ProtocolRoundError is the typed failure of one protocol round.
	ProtocolRoundError = protocol.RoundError
)

// ProtocolNoRetries configures ProtocolConfig.Retries for exactly one
// attempt per request (the zero value means "use the default").
const ProtocolNoRetries = protocol.NoRetries

// Typed protocol failure sentinels; match with errors.Is.
var (
	// ErrProtocolQuorum reports a round with too few replies to proceed.
	ErrProtocolQuorum = protocol.ErrQuorum
	// ErrProtocolBudget reports a round that exhausted its RoundBudget.
	ErrProtocolBudget = protocol.ErrBudgetExceeded
	// ErrProtocolTransportClosed reports a send on a closed transport.
	ErrProtocolTransportClosed = protocol.ErrTransportClosed
)

// NewChanTransport builds the in-process protocol transport; lossProb in
// [0,1) drops messages using src.
func NewChanTransport(lossProb float64, src *Rand) (*ChanTransport, error) {
	return protocol.NewChanTransport(lossProb, src)
}

// NewFaultTransport builds the in-process transport with the full fault
// model (loss, duplication, bounded delay with reordering, partitions,
// crash/restart). All probabilistic faults draw from deterministic
// per-link child streams of src, so a given seed replays bit-identically.
func NewFaultTransport(faults FaultConfig, src *Rand) (*ChanTransport, error) {
	return protocol.NewFaultTransport(faults, src)
}

// NewProtocolAgent starts the protocol agent for cache i.
func NewProtocolAgent(i CacheIndex, prober *Prober, transport ProtocolTransport) (*ProtocolAgent, error) {
	return protocol.NewAgent(topology.CacheIndex(i), prober, transport)
}

// NewProtocolCoordinator builds the distributed GF-coordinator.
func NewProtocolCoordinator(cfg ProtocolConfig, numCaches int, transport ProtocolTransport, src *Rand) (*ProtocolCoordinator, error) {
	return protocol.NewCoordinator(cfg, numCaches, transport, src)
}

// ProtocolCoordinatorAddr returns the coordinator's protocol address.
func ProtocolCoordinatorAddr() ProtocolAddr { return protocol.CoordinatorAddr() }

// ProtocolCacheAddr returns cache i's protocol address.
func ProtocolCacheAddr(i CacheIndex) ProtocolAddr { return protocol.CacheAddr(i) }
