package ecg_test

// Observability determinism golden tests: attaching an Obs sink must be a
// pure side channel. Plan and Report checksums have to stay bit-identical
// whether obs is enabled or disabled, at any shard or worker count — the
// sink may observe the pipeline but never steer it.

import (
	"testing"

	ecg "edgecachegroups"
)

// runObsPipeline executes the full pipeline (formation + simulation) for
// one seed with the given obs sink, pipeline parallelism, and simulator
// shard count, returning both checksums and the report.
func runObsPipeline(t *testing.T, seed int64, o *ecg.Obs, parallelism, shards int) (uint64, uint64, *ecg.Report) {
	t.Helper()
	cfg := ecg.SDSL(8, 2, 1.0)
	cfg.Verify = true
	cfg.Obs = o
	if parallelism > 0 {
		cfg = ecg.WithParallelism(cfg, parallelism)
	}
	nw, prober, src := buildStack(t, 60, seed)
	gf, err := ecg.NewCoordinator(nw, prober, cfg, src.Split("gf"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(6)
	if err != nil {
		t.Fatal(err)
	}

	wsrc := ecg.NewRand(seed + 1000)
	catalog, err := ecg.NewCatalog(ecg.DefaultCatalogParams(), wsrc.Split("catalog"))
	if err != nil {
		t.Fatal(err)
	}
	tp := ecg.TraceParams{DurationSec: 40, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := ecg.GenerateRequests(catalog, 60, tp, wsrc.Split("reqs"))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := ecg.GenerateUpdates(catalog, 40, wsrc.Split("ups"))
	if err != nil {
		t.Fatal(err)
	}
	simCfg := ecg.DefaultSimConfig()
	simCfg.Verify = true
	simCfg.Shards = shards
	simCfg.Obs = o
	sim, err := ecg.NewSimulator(nw, plan.Groups(), catalog, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(reqs, ups)
	if err != nil {
		t.Fatal(err)
	}
	return plan.Checksum(), rep.Checksum(), rep
}

// TestObsChecksumInvariant is the determinism contract for the
// observability layer: for every (shards, parallelism) combination the
// plan and report checksums with obs attached must equal the obs-free
// serial baseline bit for bit.
func TestObsChecksumInvariant(t *testing.T) {
	const seed = 55
	basePlan, baseReport, _ := runObsPipeline(t, seed, nil, 1, 1)
	for _, shards := range []int{1, 4} {
		for _, par := range []int{1, 8} {
			o := ecg.NewObs()
			planSum, repSum, rep := runObsPipeline(t, seed, o, par, shards)
			if planSum != basePlan {
				t.Errorf("Shards=%d Parallelism=%d: obs changed plan checksum %016x != %016x",
					shards, par, planSum, basePlan)
			}
			if repSum != baseReport {
				t.Errorf("Shards=%d Parallelism=%d: obs changed report checksum %016x != %016x",
					shards, par, repSum, baseReport)
			}
			// The sink must also have seen the whole run: every simulated
			// request records exactly one latency sample.
			snap := o.Registry().Snapshot()
			hist, ok := snap.Histograms["sim_request_latency_ms"]
			if !ok {
				t.Fatalf("Shards=%d Parallelism=%d: sim_request_latency_ms missing from snapshot", shards, par)
			}
			if hist.Count != rep.Requests() {
				t.Errorf("Shards=%d Parallelism=%d: histogram count %d != %d simulated requests",
					shards, par, hist.Count, rep.Requests())
			}
			outcomes := snap.Counters["sim_requests_local_total"] +
				snap.Counters["sim_requests_group_total"] +
				snap.Counters["sim_requests_origin_total"] +
				snap.Counters["sim_requests_failover_total"]
			if outcomes != rep.Requests() {
				t.Errorf("Shards=%d Parallelism=%d: outcome counters sum to %d, want %d",
					shards, par, outcomes, rep.Requests())
			}
		}
	}
}

// TestObsOnOffSameRun pins the complementary direction: two obs-enabled
// runs agree with each other (the sink itself introduces no run-to-run
// jitter into the results).
func TestObsOnOffSameRun(t *testing.T) {
	p1, r1, _ := runObsPipeline(t, 91, ecg.NewObs(), 4, 2)
	p2, r2, _ := runObsPipeline(t, 91, ecg.NewObs(), 4, 2)
	if p1 != p2 {
		t.Fatalf("obs-enabled runs disagree on plan checksum: %016x vs %016x", p1, p2)
	}
	if r1 != r2 {
		t.Fatalf("obs-enabled runs disagree on report checksum: %016x vs %016x", r1, r2)
	}
}
