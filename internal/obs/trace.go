package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventKind labels the typed trace records the sink accepts.
type EventKind string

const (
	// KindStageBegin / KindStageEnd bracket a formation or protocol
	// stage (StartSpan emits the pair).
	KindStageBegin EventKind = "stage_begin"
	KindStageEnd   EventKind = "stage_end"
	// KindProtocolRound marks one coordinator collection round (PLSet,
	// features, assignments); Value carries the reply count.
	KindProtocolRound EventKind = "protocol_round"
	// KindShardWindow marks one conservative window barrier in the
	// sharded simulator; TimeSec and DurMS are virtual time.
	KindShardWindow EventKind = "shard_window"
	// KindCacheEvict marks a document leaving a cache (capacity
	// eviction, stale drop, or invalidation), via the eviction hook.
	KindCacheEvict EventKind = "cache_evict"
)

// Event is one trace record. TimeSec is the emitting layer's clock:
// virtual simulation seconds for simulator events, sink-relative wall
// seconds for everything else (EmitNow/StartSpan). DurMS is a span or
// window duration in the same clock domain. Cache is the cache index the
// event concerns, -1 when not cache-scoped (always serialized, since
// cache 0 is a valid index). Other zero-valued optional fields are
// omitted from the JSONL export.
type Event struct {
	Kind    EventKind `json:"kind"`
	Name    string    `json:"name,omitempty"`
	TimeSec float64   `json:"time_sec"`
	DurMS   float64   `json:"dur_ms,omitempty"`
	Value   int64     `json:"value,omitempty"`
	Cache   int       `json:"cache"`
}

// TraceSink is a bounded ring buffer of Events. Emit is O(1), takes one
// short mutex hold, and never allocates after construction; when the
// ring is full the oldest event is overwritten and Dropped counts the
// loss. A nil *TraceSink no-ops.
type TraceSink struct {
	mu      sync.Mutex
	ring    []Event
	next    int   // ring index of the next write
	size    int   // live events, <= len(ring)
	dropped int64 // events overwritten after the ring filled
	start   time.Time
}

// NewTraceSink returns a sink holding at most capacity events
// (DefaultTraceCapacity if capacity <= 0).
func NewTraceSink(capacity int) *TraceSink {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceSink{ring: make([]Event, capacity), start: time.Now()}
}

// sinceStart returns wall seconds since the sink was constructed — the
// time base for EmitNow/StartSpan stamps.
func (t *TraceSink) sinceStart() float64 {
	return time.Since(t.start).Seconds()
}

// Emit appends e, overwriting the oldest event when full.
func (t *TraceSink) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = e
	t.next = (t.next + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *TraceSink) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Dropped returns how many events were overwritten after the ring filled.
func (t *TraceSink) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the buffered events oldest-first.
func (t *TraceSink) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.size)
	first := t.next - t.size
	if first < 0 {
		first += len(t.ring)
	}
	for i := 0; i < t.size; i++ {
		out = append(out, t.ring[(first+i)%len(t.ring)])
	}
	return out
}

// WriteJSONL writes the buffered events oldest-first, one JSON object
// per line (the /trace endpoint format).
func (t *TraceSink) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
