package obs

import (
	"edgecachegroups/internal/verify"
)

// PublishStages mirrors a verify.Stages snapshot into o's registry as
// gauges named stage_<stage>_{count,nanos,items,allocs,parallelism}.
// Stage names are sanitized onto the metric alphabet ("probe-features"
// becomes stage_probe_features_*). Wall-clock durations measured by
// verify.Stages enter the registry here — as diagnostics only; nothing
// reads them back into pipeline state. Safe on a nil *Obs.
func PublishStages(o *Obs, stats []verify.StageStat) {
	if o == nil {
		return
	}
	for _, st := range stats {
		prefix := "stage_" + st.Name
		o.Gauge(prefix + "_count").Set(float64(st.Count))
		o.Gauge(prefix + "_nanos").Set(float64(st.Duration.Nanoseconds()))
		if st.Items > 0 {
			o.Gauge(prefix + "_items").Set(float64(st.Items))
		}
		if st.Allocs > 0 {
			o.Gauge(prefix + "_allocs").Set(float64(st.Allocs))
		}
		if st.Parallelism > 0 {
			o.Gauge(prefix + "_parallelism").Set(float64(st.Parallelism))
		}
	}
}
