package obs

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout: a fixed log-scale grid with histSubBuckets
// buckets per power of two, covering 2^histMinExp .. 2^histMaxExp
// (roughly 1µs .. 70min when values are milliseconds). Values outside the
// range clamp into the edge buckets. The relative quantile error is
// bounded by one sub-bucket width, 1/histSubBuckets ≈ 6%.
const (
	histSubBuckets = 16
	histMinExp     = -10
	histMaxExp     = 22
	histNumBuckets = (histMaxExp - histMinExp) * histSubBuckets
)

// Histogram is a fixed-bucket log-scale distribution of non-negative
// samples (latencies in milliseconds, by convention). Record is
// lock-free, allocation-free, and safe for concurrent use; a nil
// *Histogram no-ops, so the disabled path costs one nil check.
type Histogram struct {
	count   int64
	sumBits uint64
	minBits uint64
	maxBits uint64
	buckets [histNumBuckets]int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	atomic.StoreUint64(&h.minBits, math.Float64bits(math.Inf(1)))
	return h
}

// bucketOf maps a sample to its bucket index. Non-positive and NaN
// samples land in bucket 0.
func bucketOf(v float64) int {
	if !(v > 0) { // negatives and NaN
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	e := exp - 1               // v = (2*frac) * 2^e, 2*frac in [1, 2)
	sub := int((frac*2 - 1) * histSubBuckets)
	if sub >= histSubBuckets { // guard the frac→sub rounding edge
		sub = histSubBuckets - 1
	}
	idx := (e-histMinExp)*histSubBuckets + sub
	if idx < 0 {
		return 0
	}
	if idx >= histNumBuckets {
		return histNumBuckets - 1
	}
	return idx
}

// bucketUpper returns the exclusive upper bound of bucket idx.
func bucketUpper(idx int) float64 {
	e := idx/histSubBuckets + histMinExp
	sub := idx % histSubBuckets
	return math.Ldexp(1+float64(sub+1)/histSubBuckets, e)
}

// atomicAddFloat adds d to the float64 stored as bits in *bits.
func atomicAddFloat(bits *uint64, d float64) {
	for {
		old := atomic.LoadUint64(bits)
		next := math.Float64bits(math.Float64frombits(old) + d)
		if atomic.CompareAndSwapUint64(bits, old, next) {
			return
		}
	}
}

// atomicMinFloat / atomicMaxFloat keep a running extreme. The IEEE-754
// bit patterns of non-negative floats order like their values, so the
// comparison runs on the raw bits.
func atomicMinFloat(bits *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(bits)
		if v >= old {
			return
		}
		if atomic.CompareAndSwapUint64(bits, old, v) {
			return
		}
	}
}

func atomicMaxFloat(bits *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(bits)
		if v <= old {
			return
		}
		if atomic.CompareAndSwapUint64(bits, old, v) {
			return
		}
	}
}

// Record adds one sample. Negative and NaN samples are dropped (they
// indicate accounting bugs upstream and must not corrupt aggregates).
// The path performs no allocation and takes no lock.
func (h *Histogram) Record(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		return
	}
	atomic.AddInt64(&h.buckets[bucketOf(v)], 1)
	atomic.AddInt64(&h.count, 1)
	atomicAddFloat(&h.sumBits, v)
	b := math.Float64bits(v)
	atomicMinFloat(&h.minBits, b)
	atomicMaxFloat(&h.maxBits, b)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.count)
}

// Sum returns the running total of recorded samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.sumBits))
}

// Min returns the smallest recorded sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if h == nil || h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.minBits))
}

// Max returns the largest recorded sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.maxBits))
}

// Quantile returns an upper bound on the q-th quantile (q in [0,1]) by
// nearest-rank over the bucket counts: the exclusive upper edge of the
// bucket holding the rank. It returns 0 with no samples. Concurrent
// Records may race the bucket walk; the result is a valid quantile of
// some interleaving, which is all a monitoring surface needs.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := atomic.LoadInt64(&h.count)
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += atomic.LoadInt64(&h.buckets[i])
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return h.Max()
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot summarizes the histogram with the percentiles the evaluation
// cares about (p50/p99/p999).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}
