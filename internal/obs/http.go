package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters as `<name> <value>`, gauges likewise,
// and histograms summary-style — `<name>{quantile="..."} <v>` plus
// `<name>_sum` and `<name>_count`. Metric names walk in sorted order so
// two equal snapshots render byte-identically.
func WritePrometheus(w io.Writer, r *Registry) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "# TYPE %s summary\n", name)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", name, formatFloat(h.P50))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", name, formatFloat(h.P99))
		fmt.Fprintf(&b, "%s{quantile=\"0.999\"} %s\n", name, formatFloat(h.P999))
		fmt.Fprintf(&b, "%s_sum %s\n", name, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a float the way the Prometheus text format expects
// (shortest round-trip form; no exponent for typical magnitudes).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the exposition mux for o: /metrics (Prometheus text),
// /debug/vars (JSON Snapshot), /trace (JSONL events, optional ?kind=
// filter), and the net/http/pprof suite under /debug/pprof/.
func Handler(o *Obs) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//ecglint:allow errdrop a failed exposition write means the scraper went away; nothing to record server-side
		_ = WritePrometheus(w, o.Registry())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//ecglint:allow errdrop a failed exposition write means the scraper went away; nothing to record server-side
		_ = enc.Encode(o.Registry().Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		kind := req.URL.Query().Get("kind")
		sink := o.Trace()
		if kind == "" {
			//ecglint:allow errdrop a failed exposition write means the scraper went away; nothing to record server-side
			_ = sink.WriteJSONL(w)
			return
		}
		enc := json.NewEncoder(w)
		for _, e := range sink.Events() {
			if string(e.Kind) == kind {
				//ecglint:allow errdrop a failed exposition write means the scraper went away; nothing to record server-side
				_ = enc.Encode(e)
			}
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live exposition endpoint. Construct with Serve; Close
// releases the listener.
type Server struct {
	srv *http.Server
	ln  net.Listener

	errMu    sync.Mutex
	serveErr error // terminal accept-loop error other than a clean Close
}

// ServeErr returns the error that killed the background accept loop, if
// it died for a reason other than Close; nil while serving normally.
func (s *Server) ServeErr() error {
	if s == nil {
		return nil
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.serveErr
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the listener down, surfacing any error that killed the
// accept loop while the server ran. Safe on a nil receiver.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	closeErr := s.srv.Close()
	if serveErr := s.ServeErr(); serveErr != nil {
		return serveErr
	}
	return closeErr
}

// Serve binds addr (host:port; use ":0" for an ephemeral port) and
// serves Handler(o) on it in a background goroutine. The caller owns the
// returned Server and should Close it when done.
func Serve(addr string, o *Obs) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(o)}
	s := &Server{srv: srv, ln: ln}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.errMu.Lock()
			s.serveErr = err
			s.errMu.Unlock()
		}
	}()
	return s, nil
}
