// Package obs is the repo's zero-dependency observability layer: a
// metrics registry (counters, gauges, fixed-bucket log-scale latency
// histograms), a bounded structured trace sink, and an HTTP exposition
// surface (Prometheus text at /metrics, JSON snapshots at /debug/vars,
// net/http/pprof, and a JSONL trace dump at /trace).
//
// The layer is strictly a side channel: enabling or disabling it must
// never change a Plan or Report checksum. Three rules make that hold:
//
//  1. Metric writes are atomic increments into pre-registered cells and
//     trace emissions are value copies into a pre-allocated ring — no
//     code path reads a metric back into simulation state.
//  2. The record path is allocation-free and every accessor is safe on a
//     nil receiver, so instrumented code holds possibly-nil handles and
//     pays only a nil check when observability is off.
//  3. Simulation packages (netsim and friends, enforced by ecglint's
//     detclock rule) never read the wall clock: their events carry
//     virtual time injected by the caller (Event.TimeSec), while
//     non-simulation layers use StartSpan/EmitNow, which stamp wall
//     time inside this package. Wall-clock readings feed diagnostics
//     only, never checksums.
package obs

import (
	"time"
)

// DefaultTraceCapacity is the trace ring size used by New.
const DefaultTraceCapacity = 4096

// Obs bundles a metrics registry and a trace sink. The zero value is not
// useful; construct with New. A nil *Obs is the disabled state: every
// method no-ops and every handle accessor returns a nil (no-op) handle.
type Obs struct {
	reg   *Registry
	trace *TraceSink
}

// New returns an enabled observability bundle with an empty registry and
// a trace ring of DefaultTraceCapacity events.
func New() *Obs {
	return &Obs{reg: NewRegistry(), trace: NewTraceSink(DefaultTraceCapacity)}
}

// Registry returns the metrics registry (nil when o is nil).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Trace returns the trace sink (nil when o is nil).
func (o *Obs) Trace() *TraceSink {
	if o == nil {
		return nil
	}
	return o.trace
}

// Counter returns the named counter, registering it on first use. A nil
// receiver yields a nil counter whose methods no-op.
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name)
}

// Gauge returns the named gauge, registering it on first use. A nil
// receiver yields a nil gauge whose methods no-op.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name)
}

// Histogram returns the named histogram, registering it on first use. A
// nil receiver yields a nil histogram whose methods no-op.
func (o *Obs) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Histogram(name)
}

// Emit records one trace event. The caller fills Event.TimeSec from its
// own clock — simulation code passes virtual time, keeping the wall clock
// out of simulation packages entirely.
func (o *Obs) Emit(e Event) {
	if o == nil {
		return
	}
	o.trace.Emit(e)
}

// EmitNow records one trace event stamped with the sink-relative wall
// time. For non-simulation layers (protocol rounds, CLI milestones) that
// have no virtual clock; never call from simulation code with results
// that feed checksums.
func (o *Obs) EmitNow(kind EventKind, name string, value int64) {
	if o == nil {
		return
	}
	e := Event{Kind: kind, Name: name, TimeSec: o.trace.sinceStart(), Value: value, Cache: -1}
	o.trace.Emit(e)
}

// noopSpan is the shared disabled-span closer, so StartSpan on a nil
// receiver stays allocation-free.
var noopSpan = func() {}

// StartSpan emits a KindStageBegin event and returns the closer that
// emits the matching KindStageEnd with the span's wall-clock duration.
// Spans are for the formation and protocol layers; simulation code emits
// virtual-time events via Emit instead (the detclock lint rule keeps the
// wall clock out of those packages).
func (o *Obs) StartSpan(name string) func() {
	if o == nil {
		return noopSpan
	}
	begin := time.Now()
	o.trace.Emit(Event{Kind: KindStageBegin, Name: name, TimeSec: o.trace.sinceStart(), Cache: -1})
	return func() {
		d := time.Since(begin)
		o.trace.Emit(Event{
			Kind:    KindStageEnd,
			Name:    name,
			TimeSec: o.trace.sinceStart(),
			DurMS:   float64(d) / float64(time.Millisecond),
			Cache:   -1,
		})
	}
}
