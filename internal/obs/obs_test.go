package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"edgecachegroups/internal/verify"
)

func TestCounterGaugeBasics(t *testing.T) {
	o := New()
	c := o.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // monotone: ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := o.Counter("reqs_total"); again != c {
		t.Fatal("second Counter call returned a different cell")
	}
	g := o.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilHandlesNoop(t *testing.T) {
	var o *Obs
	// None of these may panic, and all reads must be zero.
	o.Counter("x").Inc()
	o.Gauge("x").Set(1)
	o.Histogram("x").Record(1)
	o.Emit(Event{Kind: KindShardWindow})
	o.EmitNow(KindProtocolRound, "r", 1)
	o.StartSpan("s")()
	if o.Counter("x").Value() != 0 || o.Gauge("x").Value() != 0 || o.Histogram("x").Count() != 0 {
		t.Fatal("nil handles returned nonzero values")
	}
	if o.Trace().Len() != 0 || o.Trace().Dropped() != 0 || o.Trace().Events() != nil {
		t.Fatal("nil trace sink not empty")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"probe-features":   "probe_features",
		"ok_name:42":       "ok_name:42",
		"9lead":            "_lead",
		"":                 "_",
		"latency ms (p99)": "latency_ms__p99_",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramAggregates(t *testing.T) {
	o := New()
	h := o.Histogram("lat_ms")
	vals := []float64{0.25, 1, 2, 4, 8, 100, 1000}
	var sum float64
	for _, v := range vals {
		h.Record(v)
		sum += v
	}
	h.Record(-3)         // dropped
	h.Record(math.NaN()) // dropped
	if got := h.Count(); got != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", got, len(vals))
	}
	if got := h.Sum(); got != sum {
		t.Fatalf("sum = %v, want %v", got, sum)
	}
	if got := h.Min(); got != 0.25 {
		t.Fatalf("min = %v, want 0.25", got)
	}
	if got := h.Max(); got != 1000 {
		t.Fatalf("max = %v, want 1000", got)
	}
}

// TestHistogramQuantileError pins the bucket resolution: every quantile
// is an upper bound within one sub-bucket (1/16 ≈ 6.25%) of the exact
// sample.
func TestHistogramQuantileError(t *testing.T) {
	h := newHistogram()
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Record(float64(i) * 0.1) // 0.1ms .. 1000ms uniform
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := math.Ceil(q*n) * 0.1
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q=%v: %v below exact %v (must be an upper bound)", q, got, exact)
		}
		if got > exact*(1+2.0/histSubBuckets) {
			t.Errorf("q=%v: %v exceeds exact %v by more than bucket width", q, got, exact)
		}
	}
	if got := h.Quantile(0); got <= 0 {
		t.Errorf("q=0 returned %v, want positive bucket bound", got)
	}
}

func TestHistogramEdgeClamping(t *testing.T) {
	h := newHistogram()
	h.Record(0)     // bucket 0
	h.Record(1e-12) // far below range: clamps to bucket 0
	h.Record(1e12)  // far above range: clamps to last bucket
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got, want := bucketOf(1e-12), 0; got != want {
		t.Fatalf("bucketOf(1e-12) = %d, want %d", got, want)
	}
	if got, want := bucketOf(1e12), histNumBuckets-1; got != want {
		t.Fatalf("bucketOf(1e12) = %d, want %d", got, want)
	}
	// Bucket index must be monotone in the sample value.
	prev := -1
	for v := 1e-4; v < 1e7; v *= 1.07 {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf not monotone at v=%v: %d < %d", v, idx, prev)
		}
		prev = idx
	}
	// Upper bound really bounds: for in-range v, v <= bucketUpper(bucketOf(v)).
	for v := 1e-2; v < 1e6; v *= 1.13 {
		if up := bucketUpper(bucketOf(v)); v > up {
			t.Fatalf("v=%v above its bucket upper bound %v", v, up)
		}
	}
}

// TestHistogramRecordAllocFree is the tentpole's hard requirement: the
// record path must not allocate, enabled or disabled.
func TestHistogramRecordAllocFree(t *testing.T) {
	o := New()
	h := o.Histogram("lat_ms")
	if avg := testing.AllocsPerRun(1000, func() { h.Record(3.7) }); avg != 0 {
		t.Fatalf("enabled Record allocates %v allocs/op, want 0", avg)
	}
	var off *Histogram
	if avg := testing.AllocsPerRun(1000, func() { off.Record(3.7) }); avg != 0 {
		t.Fatalf("disabled Record allocates %v allocs/op, want 0", avg)
	}
	c := o.Counter("n")
	if avg := testing.AllocsPerRun(1000, func() { c.Inc() }); avg != 0 {
		t.Fatalf("Counter.Inc allocates %v allocs/op, want 0", avg)
	}
	var nilObs *Obs
	if avg := testing.AllocsPerRun(1000, func() { nilObs.StartSpan("x")() }); avg != 0 {
		t.Fatalf("disabled StartSpan allocates %v allocs/op, want 0", avg)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := newHistogram()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(float64(w + 1))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	var want float64
	for w := 1; w <= workers; w++ {
		want += float64(w) * per
	}
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if h.Min() != 1 || h.Max() != workers {
		t.Fatalf("min/max = %v/%v, want 1/%d", h.Min(), h.Max(), workers)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	s := NewTraceSink(4)
	for i := 0; i < 6; i++ {
		s.Emit(Event{Kind: KindShardWindow, Value: int64(i), Cache: -1})
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	if got := s.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	evs := s.Events()
	for i, e := range evs {
		if want := int64(i + 2); e.Value != want {
			t.Fatalf("event %d value = %d, want %d (oldest-first)", i, e.Value, want)
		}
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	s := NewTraceSink(8)
	s.Emit(Event{Kind: KindCacheEvict, Name: "doc", TimeSec: 1.5, Value: 9, Cache: 0})
	s.Emit(Event{Kind: KindShardWindow, TimeSec: 2.0, DurMS: 500, Cache: -1})
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var back []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		back = append(back, e)
	}
	if len(back) != 2 {
		t.Fatalf("round-tripped %d events, want 2", len(back))
	}
	if back[0].Cache != 0 || back[1].Cache != -1 {
		t.Fatalf("cache indices lost in round trip: %+v", back)
	}
	if back[0] != (Event{Kind: KindCacheEvict, Name: "doc", TimeSec: 1.5, Value: 9, Cache: 0}) {
		t.Fatalf("event 0 mangled: %+v", back[0])
	}
}

func TestStartSpanEmitsPair(t *testing.T) {
	o := New()
	done := o.StartSpan("probe-features")
	time.Sleep(time.Millisecond)
	done()
	evs := o.Trace().Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Kind != KindStageBegin || evs[1].Kind != KindStageEnd {
		t.Fatalf("kinds = %v, %v", evs[0].Kind, evs[1].Kind)
	}
	if evs[1].DurMS <= 0 {
		t.Fatalf("span duration %v, want > 0", evs[1].DurMS)
	}
}

func TestPublishStages(t *testing.T) {
	var st verify.Stages
	st.Observe("probe-features", 3*time.Millisecond)
	st.Add("probe-features", 60)
	st.SetParallelism("probe-features", 4)
	o := New()
	PublishStages(o, st.Snapshot())
	snap := o.Registry().Snapshot()
	if got := snap.Gauges["stage_probe_features_count"]; got != 1 {
		t.Fatalf("stage count gauge = %v, want 1", got)
	}
	if got := snap.Gauges["stage_probe_features_nanos"]; got != 3e6 {
		t.Fatalf("stage nanos gauge = %v, want 3e6", got)
	}
	if got := snap.Gauges["stage_probe_features_items"]; got != 60 {
		t.Fatalf("stage items gauge = %v, want 60", got)
	}
	if got := snap.Gauges["stage_probe_features_parallelism"]; got != 4 {
		t.Fatalf("stage parallelism gauge = %v, want 4", got)
	}
	PublishStages(nil, st.Snapshot()) // must not panic
}

func TestPrometheusExposition(t *testing.T) {
	o := New()
	o.Counter("cache_hits_total").Add(7)
	o.Gauge("sim_shards").Set(4)
	h := o.Histogram("request_latency_ms")
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, o.Registry()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE cache_hits_total counter\ncache_hits_total 7\n",
		"# TYPE sim_shards gauge\nsim_shards 4\n",
		"# TYPE request_latency_ms summary\n",
		"request_latency_ms{quantile=\"0.5\"} ",
		"request_latency_ms_count 100\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Counters before gauges before histograms, names sorted: rendering
	// must be deterministic.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, o.Registry()); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != text {
		t.Fatal("two renders of equal state differ")
	}
	// Every non-comment line must be "<name>[{label}] <value>".
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	o := New()
	o.Counter("cache_hits_total").Inc()
	o.Histogram("request_latency_ms").Record(12)
	o.Emit(Event{Kind: KindShardWindow, TimeSec: 3, Cache: -1})
	o.EmitNow(KindProtocolRound, "plset", 42)
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String(), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if !strings.Contains(metrics, "cache_hits_total 1") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}

	vars, ctype := get("/debug/vars")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/debug/vars content type %q", ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(vars), &snap); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if snap.Counters["cache_hits_total"] != 1 {
		t.Errorf("/debug/vars counters = %v", snap.Counters)
	}
	if snap.Histograms["request_latency_ms"].Count != 1 {
		t.Errorf("/debug/vars histograms = %v", snap.Histograms)
	}

	trace, _ := get("/trace")
	if n := strings.Count(trace, "\n"); n != 2 {
		t.Errorf("/trace has %d lines, want 2:\n%s", n, trace)
	}
	filtered, _ := get("/trace?kind=" + string(KindProtocolRound))
	if n := strings.Count(filtered, "\n"); n != 1 {
		t.Errorf("/trace?kind= has %d lines, want 1:\n%s", n, filtered)
	}
	var e Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(filtered)), &e); err != nil {
		t.Fatalf("filtered trace line not JSON: %v", err)
	}
	if e.Kind != KindProtocolRound || e.Value != 42 {
		t.Errorf("filtered event = %+v", e)
	}

	pprofIdx, _ := get("/debug/pprof/")
	if !strings.Contains(pprofIdx, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", pprofIdx)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	o := New()
	o.Counter("x_total").Inc()
	s, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "x_total 1") {
		t.Fatalf("served metrics missing counter: %q", body[:n])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSrv *Server
	if nilSrv.Addr() != "" || nilSrv.Close() != nil {
		t.Fatal("nil Server not inert")
	}
}

func TestRegistryConcurrentRegisterAndSnapshot(t *testing.T) {
	o := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o.Counter(fmt.Sprintf("c_%d", i%10)).Inc()
				o.Gauge(fmt.Sprintf("g_%d", i%10)).Set(float64(i))
				o.Histogram(fmt.Sprintf("h_%d", i%10)).Record(float64(i + 1))
				if i%50 == 0 {
					_ = o.Registry().Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := o.Registry().Snapshot()
	if len(snap.Counters) != 10 || len(snap.Gauges) != 10 || len(snap.Histograms) != 10 {
		t.Fatalf("registered %d/%d/%d metrics, want 10 each",
			len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	}
	var total int64
	for _, v := range snap.Counters {
		total += v
	}
	if total != 8*200 {
		t.Fatalf("counter total = %d, want %d", total, 8*200)
	}
}

// Killing the listener out from under the exposition accept loop must
// surface the loop's terminal error through ServeErr and Close instead
// of silently discarding it.
func TestServeErrSurfacesAcceptLoopFailure(t *testing.T) {
	s, err := Serve("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ServeErr(); err != nil {
		t.Fatalf("ServeErr before any failure = %v", err)
	}
	s.ln.Close() // simulate the listener dying while the server runs
	deadline := time.Now().Add(5 * time.Second)
	for s.ServeErr() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.ServeErr() == nil {
		t.Fatal("accept-loop failure never surfaced via ServeErr")
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close swallowed the accept-loop failure")
	}
}
