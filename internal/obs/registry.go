package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event counter. All methods are safe for
// concurrent use and safe (as no-ops) on a nil receiver, so instrumented
// code can hold a counter handle unconditionally and pay only a nil check
// when observability is disabled.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored; counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	atomic.AddInt64(&c.v, n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is a last-writer-wins float value. Safe for concurrent use and
// safe (as a no-op) on a nil receiver.
type Gauge struct {
	bits uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := atomic.LoadUint64(&g.bits)
		next := math.Float64bits(math.Float64frombits(old) + d)
		if atomic.CompareAndSwapUint64(&g.bits, old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}

// Registry holds named metrics. Registration (the first Counter/Gauge/
// Histogram call for a name) takes the registry mutex; the returned
// handles write lock-free thereafter, so hot paths register once up
// front and record through the handle. A nil *Registry hands out nil
// handles, making the disabled path a nil check per record.
type Registry struct {
	mu     sync.Mutex
	cnts   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cnts:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// sanitizeName maps name onto the Prometheus metric-name alphabet
// ([a-zA-Z0-9_:]), replacing every other byte with '_', so stage names
// like "probe-features" register as "probe_features".
func sanitizeName(name string) string {
	ok := func(i int, b byte) bool {
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
			return true
		case b >= '0' && b <= '9':
			return i > 0
		}
		return false
	}
	clean := true
	for i := 0; i < len(name); i++ {
		if !ok(i, name[i]) {
			clean = false
			break
		}
	}
	if clean && name != "" {
		return name
	}
	if name == "" {
		return "_"
	}
	out := []byte(name)
	for i := range out {
		if !ok(i, out[i]) {
			out[i] = '_'
		}
	}
	return string(out)
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.cnts[name]
	if c == nil {
		c = &Counter{}
		r.cnts[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric, with
// deterministically (lexicographically) sorted name slices so two
// snapshots of equal state render identically.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current metric values. A nil registry yields an
// empty (but usable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.cnts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// sortedKeys returns the map's keys in ascending order, so every
// exposition walk is independent of map iteration order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
