package workload

import (
	"fmt"
	"math"
	"sort"
)

// TraceStats summarizes a request log — the numbers an operator checks
// before trusting a synthetic trace to stand in for a production log.
type TraceStats struct {
	// Requests is the total request count.
	Requests int
	// Caches is the number of distinct caches issuing requests.
	Caches int
	// UniqueDocs is the number of distinct documents requested.
	UniqueDocs int
	// DurationSec spans the first to the last request.
	DurationSec float64
	// MeanRatePerCacheSec is the mean per-cache request rate.
	MeanRatePerCacheSec float64
	// Top10Share is the fraction of requests going to the 10 most popular
	// documents.
	Top10Share float64
	// FittedZipfAlpha estimates the popularity skew by least-squares
	// regression of log(frequency) on log(rank).
	FittedZipfAlpha float64
	// MeanOverlap is the mean pairwise overlap of per-cache top-20 hot
	// sets, in [0,1] — the "considerable degree of similarity" the paper
	// assumes.
	MeanOverlap float64
}

// AnalyzeRequests computes TraceStats for a request log.
func AnalyzeRequests(reqs []Request) (*TraceStats, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("workload: empty request log")
	}
	st := &TraceStats{Requests: len(reqs)}

	docCounts := make(map[DocID]int)
	cacheCounts := make(map[int]int)
	perCacheDoc := make(map[int]map[DocID]int)
	minT, maxT := reqs[0].TimeSec, reqs[0].TimeSec
	for _, r := range reqs {
		docCounts[r.Doc]++
		cacheCounts[int(r.Cache)]++
		m := perCacheDoc[int(r.Cache)]
		if m == nil {
			m = make(map[DocID]int)
			perCacheDoc[int(r.Cache)] = m
		}
		m[r.Doc]++
		if r.TimeSec < minT {
			minT = r.TimeSec
		}
		if r.TimeSec > maxT {
			maxT = r.TimeSec
		}
	}
	st.Caches = len(cacheCounts)
	st.UniqueDocs = len(docCounts)
	st.DurationSec = maxT - minT
	if st.DurationSec > 0 && st.Caches > 0 {
		st.MeanRatePerCacheSec = float64(st.Requests) / st.DurationSec / float64(st.Caches)
	}

	// Popularity ranking.
	counts := make([]int, 0, len(docCounts))
	for _, c := range docCounts {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 0
	for i := 0; i < 10 && i < len(counts); i++ {
		top += counts[i]
	}
	st.Top10Share = float64(top) / float64(st.Requests)
	st.FittedZipfAlpha = fitZipfAlpha(counts)

	// Hot-set overlap across caches: sample up to 10 caches.
	st.MeanOverlap = meanHotSetOverlap(perCacheDoc, 20, 10)
	return st, nil
}

// fitZipfAlpha estimates alpha from a descending frequency list via
// least-squares on log(freq) = c − alpha·log(rank).
func fitZipfAlpha(desc []int) float64 {
	var xs, ys []float64
	for i, c := range desc {
		if c <= 0 {
			break
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(c)))
	}
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / denom
	return -slope
}

// meanHotSetOverlap computes the mean pairwise Jaccard-style overlap
// (|A∩B| / hotSize) of the per-cache top-hotSize document sets, over the
// first sampleCaches caches by index.
func meanHotSetOverlap(perCacheDoc map[int]map[DocID]int, hotSize, sampleCaches int) float64 {
	var cacheIDs []int
	for id := range perCacheDoc {
		cacheIDs = append(cacheIDs, id)
	}
	sort.Ints(cacheIDs)
	if len(cacheIDs) > sampleCaches {
		cacheIDs = cacheIDs[:sampleCaches]
	}
	if len(cacheIDs) < 2 {
		return 0
	}
	hotSets := make([]map[DocID]bool, len(cacheIDs))
	for i, id := range cacheIDs {
		hotSets[i] = topDocs(perCacheDoc[id], hotSize)
	}
	var sum float64
	var pairs int
	for i := 0; i < len(hotSets); i++ {
		for j := i + 1; j < len(hotSets); j++ {
			inter := 0
			for d := range hotSets[i] {
				if hotSets[j][d] {
					inter++
				}
			}
			size := len(hotSets[i])
			if len(hotSets[j]) < size {
				size = len(hotSets[j])
			}
			if size > 0 {
				sum += float64(inter) / float64(size)
			}
			pairs++
		}
	}
	return sum / float64(pairs)
}

func topDocs(counts map[DocID]int, n int) map[DocID]bool {
	type kv struct {
		d DocID
		c int
	}
	list := make([]kv, 0, len(counts))
	for d, c := range counts {
		list = append(list, kv{d, c})
	}
	sort.Slice(list, func(a, b int) bool {
		if list[a].c != list[b].c {
			return list[a].c > list[b].c
		}
		return list[a].d < list[b].d
	})
	if len(list) > n {
		list = list[:n]
	}
	out := make(map[DocID]bool, len(list))
	for _, kv := range list {
		out[kv.d] = true
	}
	return out
}

// String implements fmt.Stringer with a multi-line summary.
func (s *TraceStats) String() string {
	return fmt.Sprintf(
		"requests=%d caches=%d uniqueDocs=%d duration=%.1fs rate=%.2f/s/cache top10=%.1f%% zipfAlpha=%.2f hotSetOverlap=%.2f",
		s.Requests, s.Caches, s.UniqueDocs, s.DurationSec, s.MeanRatePerCacheSec,
		s.Top10Share*100, s.FittedZipfAlpha, s.MeanOverlap)
}
