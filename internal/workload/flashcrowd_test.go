package workload

import (
	"sort"
	"testing"

	"edgecachegroups/internal/simrand"
)

func testFlashCrowd(t *testing.T) (*Catalog, *FlashCrowd) {
	t.Helper()
	c := testCatalog(t, 50)
	params := FlashCrowdParams{
		StartSec:         100,
		EndSec:           200,
		HotDocs:          5,
		Share:            0.7,
		RateBoost:        3,
		UpdateRatePerSec: 0.2,
	}
	fc, err := NewFlashCrowd(c, params, simrand.New(51))
	if err != nil {
		t.Fatal(err)
	}
	return c, fc
}

func TestFlashCrowdParamsValidate(t *testing.T) {
	base := FlashCrowdParams{StartSec: 10, EndSec: 20, HotDocs: 5, Share: 0.5, RateBoost: 2}
	if err := base.Validate(100); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*FlashCrowdParams)
	}{
		{"negative start", func(p *FlashCrowdParams) { p.StartSec = -1 }},
		{"end before start", func(p *FlashCrowdParams) { p.EndSec = 5 }},
		{"no hot docs", func(p *FlashCrowdParams) { p.HotDocs = 0 }},
		{"too many hot docs", func(p *FlashCrowdParams) { p.HotDocs = 101 }},
		{"bad share", func(p *FlashCrowdParams) { p.Share = 1.5 }},
		{"boost below one", func(p *FlashCrowdParams) { p.RateBoost = 0.5 }},
		{"negative update rate", func(p *FlashCrowdParams) { p.UpdateRatePerSec = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if err := p.Validate(100); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestNewFlashCrowdHotSet(t *testing.T) {
	_, fc := testFlashCrowd(t)
	if len(fc.HotSet) != 5 {
		t.Fatalf("hot set size = %d", len(fc.HotSet))
	}
	if !sort.SliceIsSorted(fc.HotSet, func(a, b int) bool { return fc.HotSet[a] < fc.HotSet[b] }) {
		t.Fatal("hot set not sorted")
	}
	seen := make(map[DocID]bool)
	for _, d := range fc.HotSet {
		if seen[d] {
			t.Fatalf("duplicate hot doc %d", d)
		}
		seen[d] = true
	}
}

func TestFlashCrowdRequestsConcentrateInWindow(t *testing.T) {
	_, fc := testFlashCrowd(t)
	base := TraceParams{DurationSec: 300, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := fc.GenerateRequests(10, base, simrand.New(52))
	if err != nil {
		t.Fatal(err)
	}
	hot := make(map[DocID]bool, len(fc.HotSet))
	for _, d := range fc.HotSet {
		hot[d] = true
	}
	var inWin, inWinHot, outWin, outWinHot int
	for _, r := range reqs {
		if r.TimeSec >= 100 && r.TimeSec < 200 {
			inWin++
			if hot[r.Doc] {
				inWinHot++
			}
		} else {
			outWin++
			if hot[r.Doc] {
				outWinHot++
			}
		}
	}
	// Rate boost: the 100s window should carry far more than 1/3 of the
	// 300s trace's requests.
	if float64(inWin) < float64(outWin) {
		t.Fatalf("window requests %d not boosted vs outside %d", inWin, outWin)
	}
	// Hot-set share inside the window ~70%; outside it's tiny (5/2000).
	inShare := float64(inWinHot) / float64(inWin)
	outShare := float64(outWinHot) / float64(outWin)
	if inShare < 0.5 {
		t.Fatalf("hot share in window = %v, want >= 0.5", inShare)
	}
	if outShare > 0.1 {
		t.Fatalf("hot share outside window = %v, want < 0.1", outShare)
	}
	if !sort.SliceIsSorted(reqs, func(a, b int) bool { return reqs[a].TimeSec < reqs[b].TimeSec }) {
		t.Fatal("requests not time-ordered")
	}
}

func TestFlashCrowdUpdatesTargetHotSet(t *testing.T) {
	_, fc := testFlashCrowd(t)
	ups, err := fc.GenerateUpdates(300, simrand.New(53))
	if err != nil {
		t.Fatal(err)
	}
	hot := make(map[DocID]bool, len(fc.HotSet))
	for _, d := range fc.HotSet {
		hot[d] = true
	}
	var hotInWin int
	for _, u := range ups {
		if hot[u.Doc] && u.TimeSec >= 100 && u.TimeSec < 200 {
			hotInWin++
		}
	}
	// 5 docs * 100s * 0.2/s = ~100 episode updates.
	if hotInWin < 50 {
		t.Fatalf("only %d hot-set updates in window, want ~100", hotInWin)
	}
	if !sort.SliceIsSorted(ups, func(a, b int) bool { return ups[a].TimeSec < ups[b].TimeSec }) {
		t.Fatal("updates not time-ordered")
	}
}

func TestFlashCrowdErrors(t *testing.T) {
	c := testCatalog(t, 54)
	bad := FlashCrowdParams{StartSec: 10, EndSec: 5, HotDocs: 1, Share: 0.5, RateBoost: 1}
	if _, err := NewFlashCrowd(c, bad, simrand.New(55)); err == nil {
		t.Fatal("bad params accepted")
	}
	_, fc := testFlashCrowd(t)
	if _, err := fc.GenerateRequests(0, DefaultTraceParams(), simrand.New(56)); err == nil {
		t.Fatal("zero caches accepted")
	}
	badTrace := DefaultTraceParams()
	badTrace.DurationSec = -1
	if _, err := fc.GenerateRequests(5, badTrace, simrand.New(57)); err == nil {
		t.Fatal("bad trace params accepted")
	}
}
