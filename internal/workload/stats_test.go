package workload

import (
	"math"
	"strings"
	"testing"

	"edgecachegroups/internal/simrand"
)

func TestAnalyzeRequestsEmpty(t *testing.T) {
	if _, err := AnalyzeRequests(nil); err == nil {
		t.Fatal("empty log accepted")
	}
}

func TestAnalyzeRequestsBasics(t *testing.T) {
	c := testCatalog(t, 60)
	params := TraceParams{DurationSec: 300, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := GenerateRequests(c, 20, params, simrand.New(61))
	if err != nil {
		t.Fatal(err)
	}
	st, err := AnalyzeRequests(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != len(reqs) {
		t.Fatalf("Requests = %d, want %d", st.Requests, len(reqs))
	}
	if st.Caches != 20 {
		t.Fatalf("Caches = %d, want 20", st.Caches)
	}
	if st.UniqueDocs == 0 || st.UniqueDocs > c.NumDocuments() {
		t.Fatalf("UniqueDocs = %d", st.UniqueDocs)
	}
	if st.DurationSec <= 0 || st.DurationSec > 300 {
		t.Fatalf("DurationSec = %v", st.DurationSec)
	}
	// Rate ~1 req/s/cache.
	if st.MeanRatePerCacheSec < 0.7 || st.MeanRatePerCacheSec > 1.3 {
		t.Fatalf("rate = %v, want ~1", st.MeanRatePerCacheSec)
	}
	// Zipf(0.8) catalog: fitted alpha in a broad band around the truth.
	if st.FittedZipfAlpha < 0.4 || st.FittedZipfAlpha > 1.2 {
		t.Fatalf("fitted alpha = %v, want ~0.8", st.FittedZipfAlpha)
	}
	// 0.8 similarity: hot sets overlap substantially.
	if st.MeanOverlap < 0.3 {
		t.Fatalf("hot-set overlap = %v, want >= 0.3", st.MeanOverlap)
	}
	if st.Top10Share <= 0 || st.Top10Share > 1 {
		t.Fatalf("Top10Share = %v", st.Top10Share)
	}
	if !strings.Contains(st.String(), "requests=") {
		t.Fatalf("String() = %q", st.String())
	}
}

func TestAnalyzeSimilarityOrdering(t *testing.T) {
	c := testCatalog(t, 62)
	overlapAt := func(sim float64) float64 {
		params := TraceParams{DurationSec: 400, RequestRatePerCache: 2, Similarity: sim}
		reqs, err := GenerateRequests(c, 6, params, simrand.New(63))
		if err != nil {
			t.Fatal(err)
		}
		st, err := AnalyzeRequests(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return st.MeanOverlap
	}
	high := overlapAt(0.95)
	low := overlapAt(0.1)
	if high <= low {
		t.Fatalf("overlap not ordered with similarity: %v (0.95) vs %v (0.1)", high, low)
	}
}

func TestFitZipfAlphaExact(t *testing.T) {
	// Construct exact power-law counts: freq(r) = 10000 / r^alpha.
	const alpha = 0.7
	counts := make([]int, 100)
	for r := 1; r <= 100; r++ {
		counts[r-1] = int(10000 / math.Pow(float64(r), alpha))
	}
	got := fitZipfAlpha(counts)
	if math.Abs(got-alpha) > 0.08 {
		t.Fatalf("fitted alpha = %v, want ~%v", got, alpha)
	}
}

func TestFitZipfAlphaDegenerate(t *testing.T) {
	if got := fitZipfAlpha(nil); got != 0 {
		t.Fatalf("empty fit = %v", got)
	}
	if got := fitZipfAlpha([]int{5}); got != 0 {
		t.Fatalf("single-point fit = %v", got)
	}
	// Uniform counts -> alpha ~ 0.
	uniform := []int{50, 50, 50, 50, 50}
	if got := fitZipfAlpha(uniform); math.Abs(got) > 1e-9 {
		t.Fatalf("uniform fit = %v, want 0", got)
	}
}

func TestMeanHotSetOverlapSingleCache(t *testing.T) {
	per := map[int]map[DocID]int{0: {1: 5}}
	if got := meanHotSetOverlap(per, 10, 5); got != 0 {
		t.Fatalf("single-cache overlap = %v", got)
	}
}
