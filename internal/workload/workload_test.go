package workload

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"edgecachegroups/internal/simrand"
)

func testCatalog(t *testing.T, seed int64) *Catalog {
	t.Helper()
	c, err := NewCatalog(DefaultCatalogParams(), simrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCatalogParamsValidate(t *testing.T) {
	if err := DefaultCatalogParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*CatalogParams)
	}{
		{"no docs", func(p *CatalogParams) { p.NumDocuments = 0 }},
		{"negative alpha", func(p *CatalogParams) { p.ZipfAlpha = -1 }},
		{"zero size", func(p *CatalogParams) { p.MeanSizeKB = 0 }},
		{"negative sigma", func(p *CatalogParams) { p.SizeSigma = -0.1 }},
		{"bad dynamic fraction", func(p *CatalogParams) { p.DynamicFraction = 1.5 }},
		{"inverted rates", func(p *CatalogParams) { p.UpdateRateMin = 1; p.UpdateRateMax = 0.5 }},
		{"negative rate", func(p *CatalogParams) { p.UpdateRateMin = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultCatalogParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestNewCatalogShape(t *testing.T) {
	c := testCatalog(t, 1)
	if c.NumDocuments() != 2000 {
		t.Fatalf("NumDocuments = %d", c.NumDocuments())
	}
	dynamic := 0
	for i := 0; i < c.NumDocuments(); i++ {
		d, err := c.Doc(DocID(i))
		if err != nil {
			t.Fatal(err)
		}
		if d.SizeKB <= 0 {
			t.Fatalf("doc %d has size %v", i, d.SizeKB)
		}
		if d.UpdateRatePerSec < 0 {
			t.Fatalf("doc %d has negative update rate", i)
		}
		if d.UpdateRatePerSec > 0 {
			dynamic++
		}
	}
	frac := float64(dynamic) / 2000
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("dynamic fraction = %v, want ~0.3", frac)
	}
	mean := c.MeanSizeKB()
	if mean < 8 || mean > 16 {
		t.Fatalf("mean size = %v, want ~12", mean)
	}
	if _, err := c.Doc(DocID(-1)); err == nil {
		t.Fatal("negative DocID accepted")
	}
	if _, err := c.Doc(DocID(2000)); err == nil {
		t.Fatal("out-of-range DocID accepted")
	}
}

func TestSampleGlobalIsZipfSkewed(t *testing.T) {
	c := testCatalog(t, 2)
	src := simrand.New(3)
	counts := make(map[DocID]int)
	const trials = 50000
	for i := 0; i < trials; i++ {
		counts[c.SampleGlobal(src)]++
	}
	// Top-10 documents should dominate a uniform share by a wide margin.
	var top10 int
	for d := DocID(0); d < 10; d++ {
		top10 += counts[d]
	}
	uniformShare := float64(trials) * 10 / 2000
	if float64(top10) < uniformShare*5 {
		t.Fatalf("top-10 share %d not Zipf-skewed (uniform would be %v)", top10, uniformShare)
	}
}

func TestTraceParamsValidate(t *testing.T) {
	if err := DefaultTraceParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []TraceParams{
		{DurationSec: 0, RequestRatePerCache: 1, Similarity: 0.5},
		{DurationSec: 10, RequestRatePerCache: 0, Similarity: 0.5},
		{DurationSec: 10, RequestRatePerCache: 1, Similarity: -0.1},
		{DurationSec: 10, RequestRatePerCache: 1, Similarity: 1.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
}

func TestGenerateRequestsShape(t *testing.T) {
	c := testCatalog(t, 4)
	params := TraceParams{DurationSec: 100, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := GenerateRequests(c, 10, params, simrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Expect ~10 caches * 100s * 1/s = ~1000 requests.
	if len(reqs) < 700 || len(reqs) > 1300 {
		t.Fatalf("got %d requests, want ~1000", len(reqs))
	}
	if !sort.SliceIsSorted(reqs, func(a, b int) bool { return reqs[a].TimeSec < reqs[b].TimeSec }) {
		t.Fatal("requests not time-ordered")
	}
	seenCache := make(map[int]bool)
	for _, r := range reqs {
		if r.TimeSec < 0 || r.TimeSec >= 100 {
			t.Fatalf("request time %v out of range", r.TimeSec)
		}
		if int(r.Cache) < 0 || int(r.Cache) >= 10 {
			t.Fatalf("request cache %d out of range", r.Cache)
		}
		if int(r.Doc) < 0 || int(r.Doc) >= c.NumDocuments() {
			t.Fatalf("request doc %d out of range", r.Doc)
		}
		seenCache[int(r.Cache)] = true
	}
	if len(seenCache) != 10 {
		t.Fatalf("only %d caches issued requests", len(seenCache))
	}
}

func TestGenerateRequestsErrors(t *testing.T) {
	c := testCatalog(t, 6)
	if _, err := GenerateRequests(c, 0, DefaultTraceParams(), simrand.New(7)); err == nil {
		t.Fatal("zero caches accepted")
	}
	bad := DefaultTraceParams()
	bad.DurationSec = -1
	if _, err := GenerateRequests(c, 5, bad, simrand.New(7)); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestRequestSimilarityAcrossCaches(t *testing.T) {
	c := testCatalog(t, 8)
	params := TraceParams{DurationSec: 400, RequestRatePerCache: 2, Similarity: 0.9}
	reqs, err := GenerateRequests(c, 2, params, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// Hot-set overlap: the top-20 docs of the two caches should overlap
	// strongly at 0.9 similarity.
	top := func(cache int) map[DocID]bool {
		counts := make(map[DocID]int)
		for _, r := range reqs {
			if int(r.Cache) == cache {
				counts[r.Doc]++
			}
		}
		type kv struct {
			d DocID
			n int
		}
		var list []kv
		for d, n := range counts {
			list = append(list, kv{d, n})
		}
		sort.Slice(list, func(a, b int) bool {
			if list[a].n != list[b].n {
				return list[a].n > list[b].n
			}
			return list[a].d < list[b].d
		})
		out := make(map[DocID]bool)
		for i := 0; i < 20 && i < len(list); i++ {
			out[list[i].d] = true
		}
		return out
	}
	t0, t1 := top(0), top(1)
	overlap := 0
	for d := range t0 {
		if t1[d] {
			overlap++
		}
	}
	if overlap < 10 {
		t.Fatalf("hot-set overlap %d/20, want >= 10 at similarity 0.9", overlap)
	}
}

func TestGenerateUpdatesShape(t *testing.T) {
	c := testCatalog(t, 10)
	ups, err := GenerateUpdates(c, 1000, simrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) == 0 {
		t.Fatal("no updates generated for a 30 percent dynamic catalog")
	}
	if !sort.SliceIsSorted(ups, func(a, b int) bool { return ups[a].TimeSec < ups[b].TimeSec }) {
		t.Fatal("updates not time-ordered")
	}
	for _, u := range ups {
		d, err := c.Doc(u.Doc)
		if err != nil {
			t.Fatal(err)
		}
		if d.UpdateRatePerSec == 0 {
			t.Fatalf("static document %d updated", u.Doc)
		}
		if u.TimeSec < 0 || u.TimeSec >= 1000 {
			t.Fatalf("update time %v out of range", u.TimeSec)
		}
	}
	if _, err := GenerateUpdates(c, 0, simrand.New(11)); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestUpdateRateMatchesExpectation(t *testing.T) {
	// Build a catalog where every doc updates at exactly 0.01/s.
	params := CatalogParams{
		NumDocuments:    100,
		ZipfAlpha:       0.8,
		MeanSizeKB:      10,
		SizeSigma:       0,
		DynamicFraction: 1,
		UpdateRateMin:   0.01,
		UpdateRateMax:   0.01,
	}
	c, err := NewCatalog(params, simrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := GenerateUpdates(c, 10000, simrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	// Expect 100 docs * 10000s * 0.01/s = 10000 updates (+-10%).
	if len(ups) < 9000 || len(ups) > 11000 {
		t.Fatalf("got %d updates, want ~10000", len(ups))
	}
}

func TestTraceDeterminism(t *testing.T) {
	c := testCatalog(t, 14)
	params := TraceParams{DurationSec: 50, RequestRatePerCache: 1, Similarity: 0.7}
	a, err := GenerateRequests(c, 5, params, simrand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRequests(c, 5, params, simrand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	c := testCatalog(t, 16)
	params := TraceParams{DurationSec: 20, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := GenerateRequests(c, 3, params, simrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRequestsJSONL(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequestsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip length %d, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, got[i], reqs[i])
		}
	}

	ups, err := GenerateUpdates(c, 100, simrand.New(18))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteUpdatesJSONL(&buf, ups); err != nil {
		t.Fatal(err)
	}
	gotUps, err := ReadUpdatesJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotUps) != len(ups) {
		t.Fatalf("updates round trip length %d, want %d", len(gotUps), len(ups))
	}
}

func TestCatalogJSONRoundTrip(t *testing.T) {
	c := testCatalog(t, 19)
	var buf bytes.Buffer
	if err := WriteCatalogJSON(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCatalogJSON(&buf, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocuments() != c.NumDocuments() {
		t.Fatalf("catalog size %d, want %d", got.NumDocuments(), c.NumDocuments())
	}
	for i := 0; i < c.NumDocuments(); i += 97 {
		a, err := c.Doc(DocID(i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Doc(DocID(i))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("doc %d mismatch", i)
		}
	}
}

func TestReadCatalogJSONErrors(t *testing.T) {
	if _, err := ReadCatalogJSON(bytes.NewBufferString("[]"), 0.8); err == nil {
		t.Fatal("empty catalog accepted")
	}
	if _, err := ReadCatalogJSON(bytes.NewBufferString("not json"), 0.8); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCatalogJSON(bytes.NewBufferString(`[{"id":5,"sizeKB":1}]`), 0.8); err == nil {
		t.Fatal("sparse IDs accepted")
	}
	if _, err := ReadCatalogJSON(bytes.NewBufferString(`[{"id":0,"sizeKB":0}]`), 0.8); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := ReadCatalogJSON(bytes.NewBufferString(`[{"id":0,"sizeKB":1,"updateRatePerSec":-1}]`), 0.8); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestReadRequestsJSONLGarbage(t *testing.T) {
	if _, err := ReadRequestsJSONL(bytes.NewBufferString("{bad")); err == nil {
		t.Fatal("garbage request log accepted")
	}
	if _, err := ReadUpdatesJSONL(bytes.NewBufferString("{bad")); err == nil {
		t.Fatal("garbage update log accepted")
	}
}

func TestRequestDocAlwaysInRangeProperty(t *testing.T) {
	c := testCatalog(t, 20)
	f := func(seed int64) bool {
		params := TraceParams{DurationSec: 10, RequestRatePerCache: 2, Similarity: 0.5}
		reqs, err := GenerateRequests(c, 3, params, simrand.New(seed))
		if err != nil {
			return false
		}
		for _, r := range reqs {
			if int(r.Doc) < 0 || int(r.Doc) >= c.NumDocuments() {
				return false
			}
			if math.IsNaN(r.TimeSec) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
