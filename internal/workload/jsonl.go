package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"edgecachegroups/internal/simrand"
)

// WriteRequestsJSONL streams requests to w as JSON lines, the on-disk
// request-log format consumed by cmd/tracegen and cmd/ecgsim.
func WriteRequestsJSONL(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range reqs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("encode request %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadRequestsJSONL parses a JSON-lines request log.
func ReadRequestsJSONL(r io.Reader) ([]Request, error) {
	var out []Request
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var req Request
		if err := dec.Decode(&req); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode request %d: %w", len(out), err)
		}
		out = append(out, req)
	}
	return out, nil
}

// WriteUpdatesJSONL streams updates to w as JSON lines.
func WriteUpdatesJSONL(w io.Writer, ups []Update) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, u := range ups {
		if err := enc.Encode(u); err != nil {
			return fmt.Errorf("encode update %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadUpdatesJSONL parses a JSON-lines update log.
func ReadUpdatesJSONL(r io.Reader) ([]Update, error) {
	var out []Update
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var u Update
		if err := dec.Decode(&u); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode update %d: %w", len(out), err)
		}
		out = append(out, u)
	}
	return out, nil
}

// WriteCatalogJSON writes the catalog's documents as a single JSON array.
func WriteCatalogJSON(w io.Writer, c *Catalog) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c.docs)
}

// ReadCatalogJSON reads documents written by WriteCatalogJSON and rebuilds
// a catalog with the given popularity skew.
func ReadCatalogJSON(r io.Reader, zipfAlpha float64) (*Catalog, error) {
	var docs []Document
	if err := json.NewDecoder(r).Decode(&docs); err != nil {
		return nil, fmt.Errorf("decode catalog: %w", err)
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("workload: empty catalog")
	}
	for i, d := range docs {
		if d.ID != DocID(i) {
			return nil, fmt.Errorf("workload: catalog document %d has ID %d; IDs must be dense ranks", i, d.ID)
		}
		if d.SizeKB <= 0 {
			return nil, fmt.Errorf("workload: document %d has non-positive size %v", i, d.SizeKB)
		}
		if d.UpdateRatePerSec < 0 {
			return nil, fmt.Errorf("workload: document %d has negative update rate %v", i, d.UpdateRatePerSec)
		}
	}
	zipf, err := simrand.NewZipf(len(docs), zipfAlpha)
	if err != nil {
		return nil, err
	}
	return &Catalog{docs: docs, zipf: zipf}, nil
}
