package workload

import (
	"fmt"
	"sort"

	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// Request is one client request arriving at an edge cache.
type Request struct {
	// TimeSec is the arrival time in seconds from simulation start.
	TimeSec float64 `json:"timeSec"`
	// Cache is the edge cache the request arrives at.
	Cache topology.CacheIndex `json:"cache"`
	// Doc is the requested document.
	Doc DocID `json:"doc"`
}

// Update is one origin-side document update.
type Update struct {
	// TimeSec is the update time in seconds from simulation start.
	TimeSec float64 `json:"timeSec"`
	// Doc is the updated document.
	Doc DocID `json:"doc"`
}

// TraceParams configures request-log synthesis.
type TraceParams struct {
	// DurationSec is the trace length.
	DurationSec float64
	// RequestRatePerCache is the Poisson arrival rate at each cache
	// (requests/sec).
	RequestRatePerCache float64
	// Similarity in [0,1] is the probability that a request follows the
	// global popularity profile; the rest follow a cache-local profile,
	// modelling per-region interest variation.
	Similarity float64
}

// DefaultTraceParams returns the trace configuration used by the
// experiments.
func DefaultTraceParams() TraceParams {
	return TraceParams{
		DurationSec:         600,
		RequestRatePerCache: 0.6,
		Similarity:          0.8,
	}
}

// Validate reports whether the parameters are usable.
func (p TraceParams) Validate() error {
	switch {
	case p.DurationSec <= 0:
		return fmt.Errorf("workload: DurationSec must be > 0, got %v", p.DurationSec)
	case p.RequestRatePerCache <= 0:
		return fmt.Errorf("workload: RequestRatePerCache must be > 0, got %v", p.RequestRatePerCache)
	case p.Similarity < 0 || p.Similarity > 1:
		return fmt.Errorf("workload: Similarity must be in [0,1], got %v", p.Similarity)
	}
	return nil
}

// localProfile maps the global rank distribution through a per-cache
// permutation, giving each cache its own long tail while hot global
// documents remain broadly popular.
type localProfile struct {
	perm []int
}

func newLocalProfile(n int, src *simrand.Source) localProfile {
	return localProfile{perm: src.Perm(n)}
}

func (lp localProfile) sample(c *Catalog, src *simrand.Source) DocID {
	rank := int(c.SampleGlobal(src))
	return DocID(lp.perm[rank])
}

// GenerateRequests synthesizes the per-cache request logs for numCaches
// caches and merges them into one time-ordered stream.
func GenerateRequests(c *Catalog, numCaches int, params TraceParams, src *simrand.Source) ([]Request, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if numCaches < 1 {
		return nil, fmt.Errorf("workload: numCaches must be >= 1, got %d", numCaches)
	}
	var out []Request
	for i := 0; i < numCaches; i++ {
		cacheSrc := src.SplitN("cache", i)
		lp := newLocalProfile(c.NumDocuments(), cacheSrc.Split("perm"))
		t := 0.0
		for {
			t += cacheSrc.Exponential(params.RequestRatePerCache)
			if t >= params.DurationSec {
				break
			}
			var doc DocID
			if cacheSrc.Float64() < params.Similarity {
				doc = c.SampleGlobal(cacheSrc)
			} else {
				doc = lp.sample(c, cacheSrc)
			}
			out = append(out, Request{TimeSec: t, Cache: topology.CacheIndex(i), Doc: doc})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].TimeSec < out[b].TimeSec })
	return out, nil
}

// GenerateUpdates synthesizes the origin server's update log over the given
// duration: each dynamic document receives Poisson updates at its own rate.
func GenerateUpdates(c *Catalog, durationSec float64, src *simrand.Source) ([]Update, error) {
	if durationSec <= 0 {
		return nil, fmt.Errorf("workload: durationSec must be > 0, got %v", durationSec)
	}
	var out []Update
	for i := 0; i < c.NumDocuments(); i++ {
		doc := c.docs[i]
		if doc.UpdateRatePerSec <= 0 {
			continue
		}
		docSrc := src.SplitN("doc", i)
		t := 0.0
		for {
			t += docSrc.Exponential(doc.UpdateRatePerSec)
			if t >= durationSec {
				break
			}
			out = append(out, Update{TimeSec: t, Doc: doc.ID})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].TimeSec < out[b].TimeSec })
	return out, nil
}
