package workload

import (
	"fmt"
	"sort"

	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// FlashCrowdParams describes a flash-crowd episode layered on top of a
// base trace: during [StartSec, EndSec) every cache redirects a share of
// its requests to a small set of suddenly-hot documents (think: a medal
// final on an event site). This is the workload regime that stresses
// cooperative groups hardest — the hot set is identical everywhere, so
// group hit rates spike while origin updates keep invalidating the hot
// documents.
type FlashCrowdParams struct {
	// StartSec and EndSec bound the episode.
	StartSec float64
	EndSec   float64
	// HotDocs is the number of flash-hot documents (drawn uniformly from
	// the catalog).
	HotDocs int
	// Share is the probability a request during the episode targets the
	// hot set.
	Share float64
	// RateBoost multiplies every cache's request rate during the episode.
	RateBoost float64
	// UpdateRatePerSec is the update rate applied to each hot document
	// during the episode (0 keeps the documents' own rates).
	UpdateRatePerSec float64
}

// Validate reports whether the parameters are usable against a catalog of
// numDocs documents.
func (p FlashCrowdParams) Validate(numDocs int) error {
	switch {
	case p.StartSec < 0 || p.EndSec <= p.StartSec:
		return fmt.Errorf("workload: flash crowd window [%v,%v) invalid", p.StartSec, p.EndSec)
	case p.HotDocs < 1 || p.HotDocs > numDocs:
		return fmt.Errorf("workload: HotDocs must be in [1,%d], got %d", numDocs, p.HotDocs)
	case p.Share < 0 || p.Share > 1:
		return fmt.Errorf("workload: Share must be in [0,1], got %v", p.Share)
	case p.RateBoost < 1:
		return fmt.Errorf("workload: RateBoost must be >= 1, got %v", p.RateBoost)
	case p.UpdateRatePerSec < 0:
		return fmt.Errorf("workload: UpdateRatePerSec must be >= 0, got %v", p.UpdateRatePerSec)
	}
	return nil
}

// FlashCrowd is a materialized episode: the hot set plus the parameters.
type FlashCrowd struct {
	Params  FlashCrowdParams
	HotSet  []DocID
	catalog *Catalog
}

// NewFlashCrowd draws the hot set for an episode.
func NewFlashCrowd(c *Catalog, params FlashCrowdParams, src *simrand.Source) (*FlashCrowd, error) {
	if err := params.Validate(c.NumDocuments()); err != nil {
		return nil, err
	}
	idx, err := src.SampleWithoutReplacement(c.NumDocuments(), params.HotDocs)
	if err != nil {
		return nil, fmt.Errorf("draw hot set: %w", err)
	}
	hot := make([]DocID, len(idx))
	for i, v := range idx {
		hot[i] = DocID(v)
	}
	sort.Slice(hot, func(a, b int) bool { return hot[a] < hot[b] })
	return &FlashCrowd{Params: params, HotSet: hot, catalog: c}, nil
}

// GenerateRequests synthesizes a request log with the flash-crowd episode
// applied: outside the window it behaves like GenerateRequests; inside it,
// arrival rates are boosted by RateBoost and a Share of requests target
// the hot set uniformly.
func (fc *FlashCrowd) GenerateRequests(numCaches int, base TraceParams, src *simrand.Source) ([]Request, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if numCaches < 1 {
		return nil, fmt.Errorf("workload: numCaches must be >= 1, got %d", numCaches)
	}
	var out []Request
	for i := 0; i < numCaches; i++ {
		cacheSrc := src.SplitN("cache", i)
		lp := newLocalProfile(fc.catalog.NumDocuments(), cacheSrc.Split("perm"))
		t := 0.0
		for {
			rate := base.RequestRatePerCache
			inEpisode := t >= fc.Params.StartSec && t < fc.Params.EndSec
			if inEpisode {
				rate *= fc.Params.RateBoost
			}
			t += cacheSrc.Exponential(rate)
			if t >= base.DurationSec {
				break
			}
			// Re-evaluate episode membership at the arrival instant.
			inEpisode = t >= fc.Params.StartSec && t < fc.Params.EndSec
			var doc DocID
			switch {
			case inEpisode && cacheSrc.Float64() < fc.Params.Share:
				doc = fc.HotSet[cacheSrc.Intn(len(fc.HotSet))]
			case cacheSrc.Float64() < base.Similarity:
				doc = fc.catalog.SampleGlobal(cacheSrc)
			default:
				doc = lp.sample(fc.catalog, cacheSrc)
			}
			out = append(out, Request{TimeSec: t, Cache: topology.CacheIndex(i), Doc: doc})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].TimeSec < out[b].TimeSec })
	return out, nil
}

// GenerateUpdates synthesizes the update log with the episode applied: the
// base per-document rates everywhere, plus Poisson updates at
// UpdateRatePerSec for each hot document inside the window.
func (fc *FlashCrowd) GenerateUpdates(durationSec float64, src *simrand.Source) ([]Update, error) {
	out, err := GenerateUpdates(fc.catalog, durationSec, src.Split("base"))
	if err != nil {
		return nil, err
	}
	if fc.Params.UpdateRatePerSec > 0 {
		end := fc.Params.EndSec
		if end > durationSec {
			end = durationSec
		}
		for i, doc := range fc.HotSet {
			docSrc := src.SplitN("hot", i)
			t := fc.Params.StartSec
			for {
				t += docSrc.Exponential(fc.Params.UpdateRatePerSec)
				if t >= end {
					break
				}
				out = append(out, Update{TimeSec: t, Doc: doc})
			}
		}
		sort.SliceStable(out, func(a, b int) bool { return out[a].TimeSec < out[b].TimeSec })
	}
	return out, nil
}
