// Package workload generates the synthetic traces that drive the
// cooperative edge cache simulator. The paper drives its simulator with
// request logs derived from the 2000 Sydney Olympics IBM web site trace and
// an update log applied at the origin server; that trace is not publicly
// available, so this package synthesizes traces with the two properties the
// paper relies on:
//
//  1. request patterns across edge caches exhibit considerable similarity
//     (a shared Zipf-popular core plus per-cache variation), and
//  2. content is dynamic — documents are updated at the origin, which
//     invalidates cached copies.
package workload

import (
	"fmt"
	"math"

	"edgecachegroups/internal/simrand"
)

// DocID identifies a document. IDs double as global popularity ranks:
// document 0 is the most popular.
type DocID int

// Document describes one item of origin content.
type Document struct {
	ID DocID `json:"id"`
	// SizeKB is the transfer size of the document.
	SizeKB float64 `json:"sizeKB"`
	// UpdateRatePerSec is the Poisson rate at which the origin updates this
	// document; zero means static content.
	UpdateRatePerSec float64 `json:"updateRatePerSec"`
}

// CatalogParams configures document catalog synthesis.
type CatalogParams struct {
	// NumDocuments is the catalog size.
	NumDocuments int
	// ZipfAlpha is the popularity skew (web workloads: 0.6–1.0).
	ZipfAlpha float64
	// MeanSizeKB and SizeSigma parameterize the lognormal document size
	// distribution (sigma is the lognormal shape parameter).
	MeanSizeKB float64
	SizeSigma  float64
	// DynamicFraction is the fraction of documents that receive origin
	// updates.
	DynamicFraction float64
	// UpdateRateMin/Max bound the per-document update rate (updates/sec)
	// drawn uniformly for dynamic documents.
	UpdateRateMin float64
	UpdateRateMax float64
}

// DefaultCatalogParams returns the catalog used by the experiments:
// 2000 documents, Zipf(0.8), ~12KB mean size, 30% dynamic.
func DefaultCatalogParams() CatalogParams {
	return CatalogParams{
		NumDocuments:    2000,
		ZipfAlpha:       0.8,
		MeanSizeKB:      12,
		SizeSigma:       0.6,
		DynamicFraction: 0.3,
		UpdateRateMin:   0.001,
		UpdateRateMax:   0.05,
	}
}

// Validate reports whether the parameters are usable.
func (p CatalogParams) Validate() error {
	switch {
	case p.NumDocuments < 1:
		return fmt.Errorf("workload: NumDocuments must be >= 1, got %d", p.NumDocuments)
	case p.ZipfAlpha < 0 || math.IsNaN(p.ZipfAlpha):
		return fmt.Errorf("workload: ZipfAlpha must be >= 0, got %v", p.ZipfAlpha)
	case p.MeanSizeKB <= 0:
		return fmt.Errorf("workload: MeanSizeKB must be > 0, got %v", p.MeanSizeKB)
	case p.SizeSigma < 0:
		return fmt.Errorf("workload: SizeSigma must be >= 0, got %v", p.SizeSigma)
	case p.DynamicFraction < 0 || p.DynamicFraction > 1:
		return fmt.Errorf("workload: DynamicFraction must be in [0,1], got %v", p.DynamicFraction)
	case p.UpdateRateMin < 0 || p.UpdateRateMax < p.UpdateRateMin:
		return fmt.Errorf("workload: update rate range [%v,%v] invalid", p.UpdateRateMin, p.UpdateRateMax)
	}
	return nil
}

// Catalog is an immutable set of documents with a global Zipf popularity
// profile. It is safe for concurrent reads.
type Catalog struct {
	docs []Document
	zipf *simrand.Zipf
}

// NewCatalog synthesizes a catalog.
func NewCatalog(params CatalogParams, src *simrand.Source) (*Catalog, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	zipf, err := simrand.NewZipf(params.NumDocuments, params.ZipfAlpha)
	if err != nil {
		return nil, fmt.Errorf("popularity profile: %w", err)
	}
	// Lognormal with the requested mean: mean = exp(mu + sigma^2/2).
	mu := math.Log(params.MeanSizeKB) - params.SizeSigma*params.SizeSigma/2

	docs := make([]Document, params.NumDocuments)
	for i := range docs {
		size := src.LogNormal(mu, params.SizeSigma)
		if size < 0.1 {
			size = 0.1
		}
		var rate float64
		if src.Float64() < params.DynamicFraction {
			rate = src.Uniform(params.UpdateRateMin, params.UpdateRateMax)
		}
		docs[i] = Document{ID: DocID(i), SizeKB: size, UpdateRatePerSec: rate}
	}
	return &Catalog{docs: docs, zipf: zipf}, nil
}

// NumDocuments returns the catalog size.
func (c *Catalog) NumDocuments() int { return len(c.docs) }

// Doc returns document d.
func (c *Catalog) Doc(d DocID) (Document, error) {
	if int(d) < 0 || int(d) >= len(c.docs) {
		return Document{}, fmt.Errorf("workload: document %d out of range [0,%d)", d, len(c.docs))
	}
	return c.docs[int(d)], nil
}

// SampleGlobal draws a document from the global Zipf popularity profile.
func (c *Catalog) SampleGlobal(src *simrand.Source) DocID {
	return DocID(c.zipf.Sample(src))
}

// MeanSizeKB returns the mean document size of the catalog.
func (c *Catalog) MeanSizeKB() float64 {
	var sum float64
	for _, d := range c.docs {
		sum += d.SizeKB
	}
	return sum / float64(len(c.docs))
}
