// Package verify is the pipeline-wide invariant-checking and
// run-verification layer. The paper's headline claims (the U-shaped
// latency-vs-K curve, SDSL beating SL) are only reproducible if the
// clustering, probing, and simulation layers are internally consistent, so
// every stage's output can be audited here:
//
//   - Plan checks partition well-formedness (every cache in exactly one
//     group, no empty groups after repair), centers-are-means-of-
//     assignments, and feature/point dimension consistency;
//   - Report checks simulator conservation laws (per-outcome counts sum to
//     recorded requests, origin bytes consistent with origin-served
//     requests, invalidation counters non-negative and bounded);
//   - Digest provides stable FNV-1a checksums so a (seed, config) pair
//     replays bit-identically regardless of concurrency schedule;
//   - Stages provides per-stage timing/counter instrumentation in the
//     Prober overhead-counter style.
//
// The package is dependency-light (it imports only the cluster vector
// type), so the core and netsim layers can call into it behind their debug
// flags without import cycles; edgecachegroups re-exports the friendly
// entry points ecg.VerifyPlan and ecg.VerifyReport.
package verify

import (
	"fmt"
	"math"

	"edgecachegroups/internal/cluster"
)

// Error is returned by the checkers; Stage names the pipeline stage whose
// invariant failed.
type Error struct {
	Stage string
	Err   error
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("verify %s: %v", e.Stage, e.Err) }

// Unwrap supports errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

func fail(stage, format string, args ...any) error {
	return &Error{Stage: stage, Err: fmt.Errorf(format, args...)}
}

// PlanData is the flattened view of a group-formation plan, decoupled from
// the core package to avoid an import cycle (core calls into verify).
type PlanData struct {
	// NumCaches is the network size the plan must cover; 0 skips the check
	// against Assignments' length.
	NumCaches int
	// K is the requested number of groups.
	K int
	// Assignments maps cache index -> group in [0,K).
	Assignments []int
	// Points are the clustered positions; Centers the final group centers.
	Points  []cluster.Vector
	Centers []cluster.Vector
	// Features are the raw RTT feature vectors (may differ in dimension
	// from Points under an embedding representation).
	Features []cluster.Vector
	// CentersAreMeans asserts that every center equals the mean of its
	// members' Points — true for K-means output whose assignments have not
	// been post-edited (balancing, incremental joins), false for K-medoids.
	CentersAreMeans bool
}

// meanTolerance is the relative tolerance for the centers-are-means check;
// recomputing a mean accumulates per-coordinate rounding of order n·eps.
const meanTolerance = 1e-9

// Plan checks the structural invariants of a formed plan. It returns the
// first violated invariant as a *Error.
func Plan(p PlanData) error {
	if err := Partition(p.Assignments, p.K); err != nil {
		return err
	}
	if p.NumCaches != 0 && len(p.Assignments) != p.NumCaches {
		return fail("plan", "plan covers %d caches, network has %d", len(p.Assignments), p.NumCaches)
	}
	if len(p.Points) != len(p.Assignments) {
		return fail("plan", "%d points for %d assignments", len(p.Points), len(p.Assignments))
	}
	if len(p.Features) != 0 && len(p.Features) != len(p.Assignments) {
		return fail("plan", "%d feature vectors for %d assignments", len(p.Features), len(p.Assignments))
	}
	if len(p.Centers) != p.K {
		return fail("plan", "%d centers for K=%d", len(p.Centers), p.K)
	}
	if err := Dimensions(p.Points, p.Centers); err != nil {
		return err
	}
	if err := uniformDims("features", p.Features); err != nil {
		return err
	}
	if p.CentersAreMeans {
		if err := CentersAreMeans(p.Points, p.Assignments, p.Centers); err != nil {
			return err
		}
	}
	return nil
}

// Partition checks that assignments form a well-formed K-way partition:
// every element lies in [0,k) and every group has at least one member
// (empty-cluster repair guarantees non-degenerate groups).
func Partition(assignments []int, k int) error {
	if k < 1 {
		return fail("partition", "k must be >= 1, got %d", k)
	}
	if len(assignments) < k {
		return fail("partition", "%d caches cannot fill %d non-empty groups", len(assignments), k)
	}
	sizes := make([]int, k)
	for i, a := range assignments {
		if a < 0 || a >= k {
			return fail("partition", "cache %d assigned to group %d, out of range [0,%d)", i, a, k)
		}
		sizes[a]++
	}
	for g, n := range sizes {
		if n == 0 {
			return fail("partition", "group %d is empty after repair", g)
		}
	}
	return nil
}

// Dimensions checks that all points and centers share one non-zero
// dimension, so every distance computed during clustering and incremental
// assignment was well-defined.
func Dimensions(points, centers []cluster.Vector) error {
	if err := uniformDims("points", points); err != nil {
		return err
	}
	if err := uniformDims("centers", centers); err != nil {
		return err
	}
	if len(points) > 0 && len(centers) > 0 && len(points[0]) != len(centers[0]) {
		return fail("dimensions", "points have dimension %d, centers %d", len(points[0]), len(centers[0]))
	}
	return nil
}

func uniformDims(what string, vs []cluster.Vector) error {
	if len(vs) == 0 {
		return nil
	}
	dim := len(vs[0])
	if dim == 0 {
		return fail("dimensions", "%s are zero-dimensional", what)
	}
	for i, v := range vs {
		if len(v) != dim {
			return fail("dimensions", "%s[%d] has dimension %d, want %d", what, i, len(v), dim)
		}
		for j, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fail("dimensions", "%s[%d][%d] is %v", what, i, j, x)
			}
		}
	}
	return nil
}

// CentersAreMeans checks that each center is the mean of its assigned
// points, within floating-point tolerance. This is the invariant the
// K-means iteration must restore after empty-cluster repair: a stale
// donor-cluster center silently skews WithinClusterSS and every
// center-distance decision downstream (balancing, incremental joins).
func CentersAreMeans(points []cluster.Vector, assignments []int, centers []cluster.Vector) error {
	if len(points) != len(assignments) {
		return fail("centers", "%d points for %d assignments", len(points), len(assignments))
	}
	k := len(centers)
	if k == 0 {
		return fail("centers", "no centers")
	}
	dim := len(centers[0])
	sums := make([][]float64, k)
	counts := make([]int, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	for i, a := range assignments {
		if a < 0 || a >= k {
			return fail("centers", "point %d assigned to group %d, out of range [0,%d)", i, a, k)
		}
		if len(points[i]) != dim {
			return fail("centers", "point %d has dimension %d, want %d", i, len(points[i]), dim)
		}
		counts[a]++
		for j, x := range points[i] {
			sums[a][j] += x
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue // empty groups are Partition's complaint, not ours
		}
		for j := 0; j < dim; j++ {
			mean := sums[c][j] / float64(counts[c])
			got := centers[c][j]
			scale := math.Max(math.Abs(mean), math.Abs(got))
			if diff := math.Abs(got - mean); diff > meanTolerance*math.Max(scale, 1) {
				return fail("centers",
					"center %d component %d is %v, want member mean %v (diff %v): centers are stale relative to assignments",
					c, j, got, mean, diff)
			}
		}
	}
	return nil
}

// StatVector checks one ingested measurement vector before it enters the
// maintenance pipeline: the expected dimension (wantDim 0 skips the
// check), every component finite, and every component non-negative (RTTs
// are non-negative by construction). The serving daemon audits every
// POSTed per-cache stat report through this check so malformed input is
// rejected at the edge instead of corrupting feature vectors, drift
// detection, or plan checksums downstream.
func StatVector(name string, v []float64, wantDim int) error {
	if len(v) == 0 {
		return fail("ingest", "%s is empty", name)
	}
	if wantDim > 0 && len(v) != wantDim {
		return fail("ingest", "%s has dimension %d, want %d", name, len(v), wantDim)
	}
	for j, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fail("ingest", "%s[%d] is %v", name, j, x)
		}
		if x < 0 {
			return fail("ingest", "%s[%d] is negative: %v", name, j, x)
		}
	}
	return nil
}

// ReportData is the flattened view of a simulation report, decoupled from
// the netsim package to avoid an import cycle (netsim calls into verify).
type ReportData struct {
	// Requests is the number of recorded (post-warmup) requests; the
	// outcome counters below must sum to it.
	Requests int64
	// LocalHits/GroupHits/OriginFetches/FailoverFetches classify every
	// recorded request.
	LocalHits       int64
	GroupHits       int64
	OriginFetches   int64
	FailoverFetches int64
	// Updates is the number of recorded origin updates.
	Updates int64
	// OfferedRequests/OfferedUpdates are the log lengths fed to the run;
	// recorded counts can never exceed them. Negative values skip the
	// check.
	OfferedRequests int64
	OfferedUpdates  int64
	// OriginKB is the recorded origin-served volume. With positive
	// MinDocKB/MaxDocKB it must lie within the bounds implied by the
	// origin-served request count; zero bounds skip the check.
	OriginKB float64
	MinDocKB float64
	MaxDocKB float64
	// InvalidationsOrigin/InvalidationsForwarded are the push-invalidation
	// counters. NumGroups bounds the per-update origin fan-out; 0 skips
	// that bound.
	InvalidationsOrigin    int64
	InvalidationsForwarded int64
	NumGroups              int
	// PerCacheCounts/PerGroupCounts are recorded request counts from the
	// per-cache and per-group aggregates; when non-nil each must sum to
	// Requests (they are updated at independent call sites, so agreement
	// is a real cross-check).
	PerCacheCounts []int64
	PerGroupCounts []int64
}

// kbTolerance absorbs float accumulation error in volume sums.
const kbTolerance = 1e-6

// Report checks the conservation invariants of a simulation report. It
// returns the first violated invariant as a *Error.
func Report(r ReportData) error {
	counters := []struct {
		name string
		v    int64
	}{
		{"requests", r.Requests},
		{"local hits", r.LocalHits},
		{"group hits", r.GroupHits},
		{"origin fetches", r.OriginFetches},
		{"failover fetches", r.FailoverFetches},
		{"updates", r.Updates},
		{"origin invalidations", r.InvalidationsOrigin},
		{"forwarded invalidations", r.InvalidationsForwarded},
	}
	for _, c := range counters {
		if c.v < 0 {
			return fail("report", "%s counter is negative: %d", c.name, c.v)
		}
	}
	if sum := r.LocalHits + r.GroupHits + r.OriginFetches + r.FailoverFetches; sum != r.Requests {
		return fail("report", "outcome counts sum to %d, recorded requests %d", sum, r.Requests)
	}
	if r.OfferedRequests >= 0 && r.Requests > r.OfferedRequests {
		return fail("report", "recorded %d requests, only %d offered", r.Requests, r.OfferedRequests)
	}
	if r.OfferedUpdates >= 0 && r.Updates > r.OfferedUpdates {
		return fail("report", "recorded %d updates, only %d offered", r.Updates, r.OfferedUpdates)
	}
	if r.OriginKB < 0 || math.IsNaN(r.OriginKB) || math.IsInf(r.OriginKB, 0) {
		return fail("report", "origin volume is %v KB", r.OriginKB)
	}
	originServed := r.OriginFetches + r.FailoverFetches
	if originServed == 0 && r.OriginKB > kbTolerance {
		return fail("report", "origin volume %v KB with no origin-served requests", r.OriginKB)
	}
	if r.MinDocKB > 0 && r.OriginKB < float64(originServed)*r.MinDocKB-kbTolerance {
		return fail("report", "origin volume %v KB below %d origin-served requests x min document %v KB",
			r.OriginKB, originServed, r.MinDocKB)
	}
	if r.MaxDocKB > 0 && r.OriginKB > float64(originServed)*r.MaxDocKB+kbTolerance {
		return fail("report", "origin volume %v KB exceeds %d origin-served requests x max document %v KB",
			r.OriginKB, originServed, r.MaxDocKB)
	}
	if r.NumGroups > 0 && r.InvalidationsOrigin > r.Updates*int64(r.NumGroups) {
		return fail("report", "%d origin invalidations exceed %d updates x %d groups",
			r.InvalidationsOrigin, r.Updates, r.NumGroups)
	}
	if r.InvalidationsOrigin == 0 && r.InvalidationsForwarded > 0 {
		return fail("report", "%d forwarded invalidations without origin invalidations", r.InvalidationsForwarded)
	}
	for _, agg := range []struct {
		name   string
		counts []int64
	}{
		{"per-cache", r.PerCacheCounts},
		{"per-group", r.PerGroupCounts},
	} {
		if agg.counts == nil {
			continue
		}
		var sum int64
		for i, c := range agg.counts {
			if c < 0 {
				return fail("report", "%s count %d is negative: %d", agg.name, i, c)
			}
			sum += c
		}
		if sum != r.Requests {
			return fail("report", "%s counts sum to %d, recorded requests %d", agg.name, sum, r.Requests)
		}
	}
	return nil
}
