package verify

import (
	"errors"
	"strings"
	"testing"
)

func validProtocolData() ProtocolData {
	return ProtocolData{
		NumCaches:        10,
		NumGroups:        3,
		GroupSizes:       []int{3, 3, 2},
		Assigned:         8,
		Unresponsive:     2,
		Unacked:          1,
		MessagesSent:     40,
		Retries:          5,
		DuplicateReplies: 2,
		TimedOutWaits:    3,
	}
}

func TestProtocolChecks(t *testing.T) {
	if err := Protocol(validProtocolData()); err != nil {
		t.Fatalf("valid data rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*ProtocolData)
		want   string
	}{
		{"no caches", func(d *ProtocolData) { d.NumCaches = 0 }, "NumCaches"},
		{"negative accounting", func(d *ProtocolData) { d.Unacked = -1 }, "negative accounting"},
		{"conservation", func(d *ProtocolData) { d.Unresponsive = 3 }, "conservation"},
		{"unacked exceeds assigned", func(d *ProtocolData) { d.Unacked = 9; d.Assigned = 8 }, "unacked"},
		{"group count mismatch", func(d *ProtocolData) { d.NumGroups = 2 }, "GroupSizes"},
		{"assigned without groups", func(d *ProtocolData) { d.NumGroups = 0; d.GroupSizes = nil }, "no groups"},
		{"empty group", func(d *ProtocolData) { d.GroupSizes = []int{4, 0, 4} }, "empty"},
		{"sizes do not tile", func(d *ProtocolData) { d.GroupSizes = []int{3, 3, 3} }, "sum"},
		{"negative counters", func(d *ProtocolData) { d.Retries = -1 }, "negative traffic"},
		{"sent below floor", func(d *ProtocolData) { d.MessagesSent = 17 }, "floor"},
		{"retries exceed sent", func(d *ProtocolData) { d.Retries = 41 }, "Retries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := validProtocolData()
			tc.mutate(&d)
			err := Protocol(d)
			if err == nil {
				t.Fatalf("violation accepted: %+v", d)
			}
			var ve *Error
			if !errors.As(err, &ve) || ve.Stage != "protocol" {
				t.Fatalf("error is not a protocol-stage *Error: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestProtocolFullyUnresponsiveRun(t *testing.T) {
	// A run where nobody answered still conserves: 0 assigned, n
	// unresponsive, no groups — but the coordinator must have tried.
	d := ProtocolData{
		NumCaches:     5,
		Unresponsive:  5,
		MessagesSent:  5,
		Retries:       5,
		TimedOutWaits: 1,
	}
	if err := Protocol(d); err != nil {
		t.Fatalf("fully-unresponsive accounting rejected: %v", err)
	}
}
