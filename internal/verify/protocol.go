package verify

// ProtocolData is the flattened view of a distributed protocol run's
// outcome, decoupled from the protocol package (protocol calls into
// verify, not the other way around).
type ProtocolData struct {
	// NumCaches is the network size the run covered.
	NumCaches int
	// NumGroups is the number of groups formed; GroupSizes its per-group
	// member counts.
	NumGroups  int
	GroupSizes []int
	// Assigned counts caches given a group; Unresponsive those that never
	// answered the feature round; Unacked those whose assignment was sent
	// but never acknowledged.
	Assigned     int
	Unresponsive int
	Unacked      int
	// MessagesSent, Retries, DuplicateReplies, and TimedOutWaits are the
	// coordinator's traffic counters.
	MessagesSent     int64
	Retries          int64
	DuplicateReplies int64
	TimedOutWaits    int64
}

// Protocol checks the conservation invariants of a distributed run: every
// cache is accounted for exactly once (assigned or unresponsive), group
// sizes tile the assigned set with no empty groups, degradation counts
// stay within their bounds, and the traffic counters are consistent. It
// returns the first violated invariant as a *Error.
func Protocol(d ProtocolData) error {
	const stage = "protocol"
	if d.NumCaches < 1 {
		return fail(stage, "NumCaches = %d, want >= 1", d.NumCaches)
	}
	if d.Assigned < 0 || d.Unresponsive < 0 || d.Unacked < 0 {
		return fail(stage, "negative accounting: assigned=%d unresponsive=%d unacked=%d",
			d.Assigned, d.Unresponsive, d.Unacked)
	}
	if d.Assigned+d.Unresponsive != d.NumCaches {
		return fail(stage, "cache conservation violated: assigned %d + unresponsive %d != %d caches",
			d.Assigned, d.Unresponsive, d.NumCaches)
	}
	if d.Unacked > d.Assigned {
		return fail(stage, "unacked %d exceeds assigned %d", d.Unacked, d.Assigned)
	}
	if d.NumGroups != len(d.GroupSizes) {
		return fail(stage, "NumGroups %d != len(GroupSizes) %d", d.NumGroups, len(d.GroupSizes))
	}
	if d.Assigned > 0 && d.NumGroups < 1 {
		return fail(stage, "%d caches assigned but no groups", d.Assigned)
	}
	total := 0
	for g, size := range d.GroupSizes {
		if size < 1 {
			return fail(stage, "group %d is empty", g)
		}
		total += size
	}
	if total != d.Assigned {
		return fail(stage, "group sizes sum to %d, want assigned count %d", total, d.Assigned)
	}
	if d.MessagesSent < 0 || d.Retries < 0 || d.DuplicateReplies < 0 || d.TimedOutWaits < 0 {
		return fail(stage, "negative traffic counters: sent=%d retries=%d dups=%d timeouts=%d",
			d.MessagesSent, d.Retries, d.DuplicateReplies, d.TimedOutWaits)
	}
	// Every cache got at least one feature request and every assigned cache
	// at least one assign message, so the send counter has a hard floor.
	if min := int64(d.NumCaches + d.Assigned); d.MessagesSent < min {
		return fail(stage, "MessagesSent %d below the %d-message floor (n=%d + assigned=%d)",
			d.MessagesSent, min, d.NumCaches, d.Assigned)
	}
	if d.Retries > d.MessagesSent {
		return fail(stage, "Retries %d exceeds MessagesSent %d", d.Retries, d.MessagesSent)
	}
	return nil
}
