package verify

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stages records per-pipeline-stage wall time and invocation counts, in the
// same spirit as the Prober's probesSent/measurements overhead counters: a
// cheap, always-available account of where a run spent its effort
// (landmark selection, feature probing, embedding, clustering, simulation).
// It is safe for concurrent use. The zero value is ready to use.
//
// Timings are diagnostics only — they are never folded into determinism
// checksums.
type Stages struct {
	mu     sync.Mutex
	stages map[string]*stageEntry
}

type stageEntry struct {
	count       int64
	nanos       int64
	items       int64
	allocs      int64
	parallelism int
}

// StageStat is a snapshot of one stage's counters.
type StageStat struct {
	// Name identifies the stage (e.g. "probe-features", "cluster").
	Name string
	// Count is the number of completed invocations.
	Count int64
	// Duration is the total wall time across invocations.
	Duration time.Duration
	// Items is a stage-defined work counter (caches probed, points
	// clustered, events simulated).
	Items int64
	// Allocs is the total heap allocation count attributed to the stage by
	// StartMem invocations (0 when only Start was used).
	Allocs int64
	// Parallelism is the widest worker-pool bound recorded for the stage
	// via SetParallelism (0 when never recorded).
	Parallelism int
}

func (s *Stages) entry(name string) *stageEntry {
	if s.stages == nil {
		s.stages = make(map[string]*stageEntry)
	}
	e := s.stages[name]
	if e == nil {
		e = &stageEntry{}
		s.stages[name] = e
	}
	return e
}

// Observe records one completed invocation of the named stage.
func (s *Stages) Observe(name string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry(name)
	e.count++
	e.nanos += int64(d)
}

// Add increments the named stage's work-item counter without recording an
// invocation.
func (s *Stages) Add(name string, items int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entry(name).items += items
}

// Start begins timing one invocation of the named stage and returns the
// function that completes it.
func (s *Stages) Start(name string) func() {
	begin := time.Now()
	return func() { s.Observe(name, time.Since(begin)) }
}

// SetParallelism records the worker-pool bound the named stage ran under.
// The widest bound seen wins, so a run that mixes serial and parallel
// invocations reports the pool it actually had available.
func (s *Stages) SetParallelism(name string, workers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry(name)
	if workers > e.parallelism {
		e.parallelism = workers
	}
}

// AddAllocs increments the named stage's allocation counter.
func (s *Stages) AddAllocs(name string, allocs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entry(name).allocs += allocs
}

// StartMem begins timing one invocation of the named stage like Start and
// additionally attributes the heap-allocation delta (runtime Mallocs) of
// the enclosed region to the stage. ReadMemStats stops the world briefly,
// so this is meant for coarse pipeline stages (a handful of calls per run),
// not inner loops. The delta counts allocations by every goroutine in the
// process, so attribution assumes stages do not overlap.
func (s *Stages) StartMem(name string) func() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	before := ms.Mallocs
	begin := time.Now()
	return func() {
		d := time.Since(begin)
		runtime.ReadMemStats(&ms)
		s.Observe(name, d)
		s.AddAllocs(name, int64(ms.Mallocs-before))
	}
}

// Snapshot returns the current per-stage counters, sorted by stage name.
func (s *Stages) Snapshot() []StageStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StageStat, 0, len(s.stages))
	for name, e := range s.stages {
		out = append(out, StageStat{
			Name:        name,
			Count:       e.count,
			Duration:    time.Duration(e.nanos),
			Items:       e.items,
			Allocs:      e.allocs,
			Parallelism: e.parallelism,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset zeroes all counters.
func (s *Stages) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stages = nil
}

// String implements fmt.Stringer with one "name: count×, duration, items"
// segment per stage.
func (s *Stages) String() string {
	snap := s.Snapshot()
	if len(snap) == 0 {
		return "no stages recorded"
	}
	parts := make([]string, 0, len(snap))
	for _, st := range snap {
		p := fmt.Sprintf("%s: %dx %v", st.Name, st.Count, st.Duration.Round(time.Microsecond))
		if st.Items > 0 {
			p += fmt.Sprintf(" (%d items)", st.Items)
		}
		if st.Parallelism > 0 {
			p += fmt.Sprintf(" [par %d]", st.Parallelism)
		}
		if st.Allocs > 0 {
			p += fmt.Sprintf(" [%d allocs]", st.Allocs)
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, "; ")
}
