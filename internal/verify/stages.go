package verify

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stages records per-pipeline-stage wall time and invocation counts, in the
// same spirit as the Prober's probesSent/measurements overhead counters: a
// cheap, always-available account of where a run spent its effort
// (landmark selection, feature probing, embedding, clustering, simulation).
// It is safe for concurrent use. The zero value is ready to use.
//
// Timings are diagnostics only — they are never folded into determinism
// checksums.
type Stages struct {
	mu     sync.Mutex
	stages map[string]*stageEntry
}

type stageEntry struct {
	count int64
	nanos int64
	items int64
}

// StageStat is a snapshot of one stage's counters.
type StageStat struct {
	// Name identifies the stage (e.g. "probe-features", "cluster").
	Name string
	// Count is the number of completed invocations.
	Count int64
	// Duration is the total wall time across invocations.
	Duration time.Duration
	// Items is a stage-defined work counter (caches probed, points
	// clustered, events simulated).
	Items int64
}

func (s *Stages) entry(name string) *stageEntry {
	if s.stages == nil {
		s.stages = make(map[string]*stageEntry)
	}
	e := s.stages[name]
	if e == nil {
		e = &stageEntry{}
		s.stages[name] = e
	}
	return e
}

// Observe records one completed invocation of the named stage.
func (s *Stages) Observe(name string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry(name)
	e.count++
	e.nanos += int64(d)
}

// Add increments the named stage's work-item counter without recording an
// invocation.
func (s *Stages) Add(name string, items int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entry(name).items += items
}

// Start begins timing one invocation of the named stage and returns the
// function that completes it.
func (s *Stages) Start(name string) func() {
	begin := time.Now()
	return func() { s.Observe(name, time.Since(begin)) }
}

// Snapshot returns the current per-stage counters, sorted by stage name.
func (s *Stages) Snapshot() []StageStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StageStat, 0, len(s.stages))
	for name, e := range s.stages {
		out = append(out, StageStat{
			Name:     name,
			Count:    e.count,
			Duration: time.Duration(e.nanos),
			Items:    e.items,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset zeroes all counters.
func (s *Stages) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stages = nil
}

// String implements fmt.Stringer with one "name: count×, duration, items"
// segment per stage.
func (s *Stages) String() string {
	snap := s.Snapshot()
	if len(snap) == 0 {
		return "no stages recorded"
	}
	parts := make([]string, 0, len(snap))
	for _, st := range snap {
		p := fmt.Sprintf("%s: %dx %v", st.Name, st.Count, st.Duration.Round(time.Microsecond))
		if st.Items > 0 {
			p += fmt.Sprintf(" (%d items)", st.Items)
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, "; ")
}
