package verify

import "math"

// Digest is a stable FNV-1a accumulator used to fingerprint run artifacts
// (group assignments, report aggregates) for determinism checks: a given
// (seed, config) pair must replay to bit-identical checksums regardless of
// concurrency schedule or platform. Floats are hashed via their IEEE-754
// bit patterns, so equality is exact, not approximate.
//
// The zero Digest is not valid; construct with NewDigest.
type Digest struct {
	h uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewDigest returns a Digest initialized with the FNV-1a offset basis.
func NewDigest() *Digest {
	return &Digest{h: fnvOffset64}
}

// byte folds one byte into the hash.
func (d *Digest) byte(b byte) {
	d.h ^= uint64(b)
	d.h *= fnvPrime64
}

// Uint64 folds v into the digest (little-endian byte order).
func (d *Digest) Uint64(v uint64) *Digest {
	for i := 0; i < 8; i++ {
		d.byte(byte(v >> (8 * i)))
	}
	return d
}

// Int64 folds v into the digest.
func (d *Digest) Int64(v int64) *Digest { return d.Uint64(uint64(v)) }

// Int folds v into the digest.
func (d *Digest) Int(v int) *Digest { return d.Uint64(uint64(int64(v))) }

// Float64 folds v's IEEE-754 bit pattern into the digest. All NaN payloads
// collapse to one canonical NaN so semantically equal aggregates hash
// equally.
func (d *Digest) Float64(v float64) *Digest {
	bits := math.Float64bits(v)
	if v != v { // NaN
		bits = math.Float64bits(math.NaN())
	}
	return d.Uint64(bits)
}

// Ints folds a length-prefixed int slice into the digest.
func (d *Digest) Ints(vs []int) *Digest {
	d.Int(len(vs))
	for _, v := range vs {
		d.Int(v)
	}
	return d
}

// Floats folds a length-prefixed float slice into the digest.
func (d *Digest) Floats(vs []float64) *Digest {
	d.Int(len(vs))
	for _, v := range vs {
		d.Float64(v)
	}
	return d
}

// String folds a length-prefixed string into the digest.
func (d *Digest) String(s string) *Digest {
	d.Int(len(s))
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
	return d
}

// Sum64 returns the current hash value.
func (d *Digest) Sum64() uint64 { return d.h }
