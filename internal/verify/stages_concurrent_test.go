package verify

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStagesConcurrent hammers one Stages value from many goroutines —
// observers, item counters, parallelism reporters, and snapshotters all
// interleaved — and checks the final totals. Run under -race this pins
// the "safe for concurrent use" contract the obs layer now leans on
// (PublishStages snapshots while pipeline workers are still recording).
func TestStagesConcurrent(t *testing.T) {
	const (
		goroutines = 8
		iters      = 500
	)
	var s Stages
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("stage-%d", g%4)
			for i := 0; i < iters; i++ {
				s.Observe(name, time.Millisecond)
				s.Add(name, 2)
				s.SetParallelism(name, g+1)
				s.AddAllocs(name, 1)
				if i%100 == 0 {
					_ = s.Snapshot()
					_ = s.String()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("got %d stages, want 4: %v", len(snap), snap)
	}
	var count, items, allocs int64
	var dur time.Duration
	for _, st := range snap {
		count += st.Count
		items += st.Items
		allocs += st.Allocs
		dur += st.Duration
	}
	total := int64(goroutines * iters)
	if count != total {
		t.Errorf("total count %d, want %d", count, total)
	}
	if items != 2*total {
		t.Errorf("total items %d, want %d", items, 2*total)
	}
	if allocs != total {
		t.Errorf("total allocs %d, want %d", allocs, total)
	}
	if dur != time.Duration(total)*time.Millisecond {
		t.Errorf("total duration %v, want %v", dur, time.Duration(total)*time.Millisecond)
	}
	// stage-2 and stage-3 were only touched by goroutines 2,3,6,7; the
	// widest pool bound recorded for each stage must have won.
	for _, st := range snap {
		want := map[string]int{"stage-0": 5, "stage-1": 6, "stage-2": 7, "stage-3": 8}[st.Name]
		if st.Parallelism != want {
			t.Errorf("%s parallelism %d, want %d", st.Name, st.Parallelism, want)
		}
	}
}

// TestStagesSnapshotOrderDeterministic pins Snapshot()'s ordering
// contract: stage stats come back sorted by name regardless of insertion
// order, so exposition built from a snapshot walk renders byte-identically
// across runs.
func TestStagesSnapshotOrderDeterministic(t *testing.T) {
	insertions := [][]string{
		{"cluster", "embed", "probe-features", "landmark-select"},
		{"probe-features", "landmark-select", "embed", "cluster"},
		{"embed", "cluster", "landmark-select", "probe-features"},
	}
	want := []string{"cluster", "embed", "landmark-select", "probe-features"}
	for _, order := range insertions {
		var s Stages
		for _, name := range order {
			s.Observe(name, time.Millisecond)
		}
		snap := s.Snapshot()
		if len(snap) != len(want) {
			t.Fatalf("insertion %v: got %d stages, want %d", order, len(snap), len(want))
		}
		for i, st := range snap {
			if st.Name != want[i] {
				t.Fatalf("insertion %v: snapshot[%d] = %q, want %q", order, i, st.Name, want[i])
			}
		}
	}
}
