package verify

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/simrand"
)

func TestPartition(t *testing.T) {
	if err := Partition([]int{0, 1, 2, 0}, 3); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	tests := []struct {
		name   string
		assign []int
		k      int
	}{
		{"empty group", []int{0, 0, 2}, 3},
		{"out of range high", []int{0, 3}, 2},
		{"out of range negative", []int{0, -1}, 2},
		{"k too large", []int{0}, 2},
		{"k zero", []int{0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Partition(tt.assign, tt.k)
			if err == nil {
				t.Fatal("expected error")
			}
			var ve *Error
			if !errors.As(err, &ve) {
				t.Fatalf("error %v is not a *verify.Error", err)
			}
		})
	}
}

func TestCentersAreMeans(t *testing.T) {
	points := []cluster.Vector{{0, 0}, {2, 0}, {10, 10}}
	assign := []int{0, 0, 1}
	good := []cluster.Vector{{1, 0}, {10, 10}}
	if err := CentersAreMeans(points, assign, good); err != nil {
		t.Fatalf("exact means rejected: %v", err)
	}

	// The pre-fix K-means bug shape: an empty-cluster repair stole point 2
	// from cluster 1 into a new cluster, but cluster 1's center still
	// includes point 2's contribution (stale donor mean).
	stale := []cluster.Vector{{4, 10.0 / 3}, {10, 10}}
	if err := CentersAreMeans(points, assign, stale); err == nil {
		t.Fatal("stale donor center not caught")
	} else if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("unexpected message: %v", err)
	}

	// Tiny float noise within tolerance is accepted.
	noisy := []cluster.Vector{{1 + 1e-13, 0}, {10, 10 - 1e-12}}
	if err := CentersAreMeans(points, assign, noisy); err != nil {
		t.Fatalf("rounding-level noise rejected: %v", err)
	}
}

func TestPlanChecks(t *testing.T) {
	base := func() PlanData {
		return PlanData{
			NumCaches:       3,
			K:               2,
			Assignments:     []int{0, 0, 1},
			Points:          []cluster.Vector{{0, 0}, {2, 0}, {10, 10}},
			Centers:         []cluster.Vector{{1, 0}, {10, 10}},
			Features:        []cluster.Vector{{0, 0}, {2, 0}, {10, 10}},
			CentersAreMeans: true,
		}
	}
	if err := Plan(base()); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*PlanData)
	}{
		{"wrong cache count", func(p *PlanData) { p.NumCaches = 4 }},
		{"missing point", func(p *PlanData) { p.Points = p.Points[:2] }},
		{"center count mismatch", func(p *PlanData) { p.Centers = p.Centers[:1] }},
		{"dimension mismatch", func(p *PlanData) { p.Points[1] = cluster.Vector{1} }},
		{"NaN center", func(p *PlanData) { p.Centers[0] = cluster.Vector{0, nan()} }},
		{"stale center", func(p *PlanData) { p.Centers[0] = cluster.Vector{5, 5} }},
		{"feature count mismatch", func(p *PlanData) { p.Features = p.Features[:1] }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base()
			tt.mutate(&p)
			if err := Plan(p); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	// K-medoids plans skip the means check (centers are real points).
	p := base()
	p.CentersAreMeans = false
	p.Centers[0] = cluster.Vector{0, 0}
	if err := Plan(p); err != nil {
		t.Fatalf("medoid-style plan rejected: %v", err)
	}
}

func TestReportChecks(t *testing.T) {
	base := func() ReportData {
		return ReportData{
			Requests:               10,
			LocalHits:              4,
			GroupHits:              3,
			OriginFetches:          2,
			FailoverFetches:        1,
			Updates:                5,
			OfferedRequests:        12,
			OfferedUpdates:         5,
			OriginKB:               30,
			MinDocKB:               5,
			MaxDocKB:               20,
			InvalidationsOrigin:    4,
			InvalidationsForwarded: 2,
			NumGroups:              2,
			PerCacheCounts:         []int64{6, 4},
			PerGroupCounts:         []int64{7, 3},
		}
	}
	if err := Report(base()); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*ReportData)
	}{
		{"outcome sum mismatch", func(r *ReportData) { r.LocalHits = 5 }},
		{"negative counter", func(r *ReportData) { r.GroupHits = -1 }},
		{"more recorded than offered", func(r *ReportData) { r.OfferedRequests = 9 }},
		{"more updates than offered", func(r *ReportData) { r.OfferedUpdates = 4 }},
		{"origin volume too small", func(r *ReportData) { r.OriginKB = 10 }},
		{"origin volume too large", func(r *ReportData) { r.OriginKB = 100 }},
		{"origin volume without fetches", func(r *ReportData) {
			r.OriginFetches, r.FailoverFetches, r.LocalHits = 0, 0, 7
		}},
		{"invalidation fan-out too high", func(r *ReportData) { r.InvalidationsOrigin = 11 }},
		{"forwarded without origin", func(r *ReportData) { r.InvalidationsOrigin = 0 }},
		{"per-cache sum mismatch", func(r *ReportData) { r.PerCacheCounts = []int64{6, 5} }},
		{"per-group sum mismatch", func(r *ReportData) { r.PerGroupCounts = []int64{7, 4} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := base()
			tt.mutate(&r)
			if err := Report(r); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	// Negative offered counts skip the bound checks.
	r := base()
	r.OfferedRequests, r.OfferedUpdates = -1, -1
	r.Requests = 10
	if err := Report(r); err != nil {
		t.Fatalf("skip-bounds report rejected: %v", err)
	}
}

func TestStatVector(t *testing.T) {
	if err := StatVector("rtt", []float64{1, 2, 3}, 3); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
	if err := StatVector("rtt", []float64{1, 2, 3}, 0); err != nil {
		t.Fatalf("wantDim 0 must skip the dimension check: %v", err)
	}
	bad := []struct {
		name    string
		v       []float64
		wantDim int
	}{
		{"empty", nil, 0},
		{"wrong dim", []float64{1, 2}, 3},
		{"NaN", []float64{1, nan()}, 2},
		{"Inf", []float64{inf(), 1}, 2},
		{"negative", []float64{1, -0.5}, 2},
	}
	for _, tc := range bad {
		err := StatVector("rtt", tc.v, tc.wantDim)
		if err == nil {
			t.Fatalf("%s vector accepted", tc.name)
		}
		var ve *Error
		if !errors.As(err, &ve) || ve.Stage != "ingest" {
			t.Fatalf("%s: error %v is not a verify ingest error", tc.name, err)
		}
	}
}

func nan() float64 { return math.NaN() }
func inf() float64 { return math.Inf(1) }

func TestDigestStability(t *testing.T) {
	mk := func() uint64 {
		d := NewDigest()
		d.Int(3).Ints([]int{1, 2, 3}).Floats([]float64{1.5, -2.25}).String("scheme")
		return d.Sum64()
	}
	if mk() != mk() {
		t.Fatal("digest not deterministic")
	}
	d1 := NewDigest().Ints([]int{1, 2}).Sum64()
	d2 := NewDigest().Ints([]int{2, 1}).Sum64()
	if d1 == d2 {
		t.Fatal("digest ignores order")
	}
	// Length prefixes keep [1],[2] distinct from [1,2],[].
	a := NewDigest().Ints([]int{1}).Ints([]int{2}).Sum64()
	b := NewDigest().Ints([]int{1, 2}).Ints(nil).Sum64()
	if a == b {
		t.Fatal("digest concatenation ambiguity")
	}
	// NaN payloads collapse to one canonical value.
	n1 := NewDigest().Float64(nan()).Sum64()
	n2 := NewDigest().Float64(nan()).Sum64()
	if n1 != n2 {
		t.Fatal("NaN digests differ")
	}
}

func TestStages(t *testing.T) {
	var s Stages
	stop := s.Start("cluster")
	stop()
	s.Observe("probe", 5*time.Millisecond)
	s.Observe("probe", 3*time.Millisecond)
	s.Add("probe", 100)
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d stages, want 2", len(snap))
	}
	// Sorted by name: cluster, probe.
	if snap[0].Name != "cluster" || snap[1].Name != "probe" {
		t.Fatalf("unexpected order: %v", snap)
	}
	if snap[1].Count != 2 || snap[1].Items != 100 || snap[1].Duration != 8*time.Millisecond {
		t.Fatalf("probe stage counters wrong: %+v", snap[1])
	}
	if !strings.Contains(s.String(), "probe") {
		t.Fatalf("String() missing stage: %s", s.String())
	}
	s.Reset()
	if len(s.Snapshot()) != 0 {
		t.Fatal("Reset did not clear stages")
	}
}

// pickSeeds is a cluster.Seeder returning fixed indices.
type pickSeeds struct {
	indices []int
}

func (p pickSeeds) Seed([]cluster.Vector, int, *simrand.Source) ([]int, error) {
	return p.indices, nil
}

func TestCentersAreMeansCatchesKMeansRepair(t *testing.T) {
	// End-to-end regression for the stale-centers K-means bug: this input
	// empties cluster 0 on the final reassignment round, forcing the
	// post-loop empty-cluster repair to steal a point. If K-means ever
	// again skips recomputing the donor's mean after that repair (the
	// pre-fix behavior), this invariant check is what catches it.
	points := []cluster.Vector{{0}, {10}, {-1}, {-3}, {21}, {10.6}, {10.7}}
	res, err := cluster.KMeans(points, 3, pickSeeds{[]int{0, 2, 4}}, cluster.Options{MaxIterations: 1}, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := CentersAreMeans(points, res.Assignments, res.Centers); err != nil {
		t.Fatalf("K-means emitted stale centers: %v", err)
	}
	if err := Partition(res.Assignments, res.K()); err != nil {
		t.Fatalf("K-means emitted a malformed partition: %v", err)
	}
}

func TestStagesParallelismAndAllocs(t *testing.T) {
	var s Stages
	s.SetParallelism("cluster", 4)
	s.SetParallelism("cluster", 8)
	s.SetParallelism("cluster", 2) // widest bound wins
	s.AddAllocs("cluster", 10)
	s.AddAllocs("cluster", 5)
	stop := s.StartMem("embed")
	buf := make([]float64, 1024)
	_ = buf
	stop()
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d stages, want 2", len(snap))
	}
	cl, em := snap[0], snap[1]
	if cl.Name != "cluster" || em.Name != "embed" {
		t.Fatalf("unexpected order: %v", snap)
	}
	if cl.Parallelism != 8 {
		t.Fatalf("cluster parallelism = %d, want widest bound 8", cl.Parallelism)
	}
	if cl.Allocs != 15 {
		t.Fatalf("cluster allocs = %d, want 15", cl.Allocs)
	}
	if em.Count != 1 || em.Allocs < 1 {
		t.Fatalf("StartMem stage %+v: want 1 invocation and >= 1 attributed alloc", em)
	}
	out := s.String()
	if !strings.Contains(out, "[par 8]") || !strings.Contains(out, "allocs]") {
		t.Fatalf("String() missing parallelism/alloc segments: %s", out)
	}
}
