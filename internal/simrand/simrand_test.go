package simrand

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Float64(), b.Float64(); got != want {
			t.Fatalf("draw %d: sources diverged: %v vs %v", i, got, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split("alpha")
	b := parent.Split("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look correlated: %d/100 identical draws", same)
	}
}

func TestSplitStableAcrossCreationOrder(t *testing.T) {
	p1 := New(99)
	x1 := p1.Split("x").Float64()

	p2 := New(99)
	_ = p2.Split("y") // creating another child first must not affect "x"
	x2 := p2.Split("x").Float64()

	if x1 != x2 {
		t.Fatalf("Split not order-independent: %v vs %v", x1, x2)
	}
}

func TestSplitNDistinct(t *testing.T) {
	p := New(1)
	seen := make(map[int64]bool)
	for i := 0; i < 50; i++ {
		s := p.SplitN("worker", i)
		if seen[s.Seed()] {
			t.Fatalf("SplitN produced duplicate seed at index %d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform(10,20) out of range: %v", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	// p <= 0 must not consume from the stream; p >= 1 must. Two sources
	// that differ only in disabled draws must stay in lockstep.
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Bernoulli(0) || a.Bernoulli(-1) {
			t.Fatal("Bernoulli(<=0) fired")
		}
		if !a.Bernoulli(1) || !b.Bernoulli(1) {
			t.Fatal("Bernoulli(1) did not fire")
		}
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("disabled draws desynced the stream: %v != %v", av, bv)
		}
	}
	// Empirical rate for an interior p.
	s := New(9)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(5)
	const rate = 2.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.02 {
		t.Fatalf("Exponential(%v) mean = %v, want ~%v", rate, mean, 1/rate)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestLogNormalPositive(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %v", v)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	tests := []struct {
		name    string
		n, k    int
		wantErr bool
	}{
		{name: "basic", n: 10, k: 5},
		{name: "all", n: 10, k: 10},
		{name: "none", n: 10, k: 0},
		{name: "too many", n: 3, k: 4, wantErr: true},
		{name: "negative n", n: -1, k: 0, wantErr: true},
		{name: "negative k", n: 5, k: -2, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := New(13)
			got, err := s.SampleWithoutReplacement(tt.n, tt.k)
			if tt.wantErr {
				if err == nil {
					t.Fatal("expected error, got nil")
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(got) != tt.k {
				t.Fatalf("got %d samples, want %d", len(got), tt.k)
			}
			seen := make(map[int]bool)
			for _, v := range got {
				if v < 0 || v >= tt.n {
					t.Fatalf("sample %d out of range [0,%d)", v, tt.n)
				}
				if seen[v] {
					t.Fatalf("duplicate sample %d", v)
				}
				seen[v] = true
			}
		})
	}
}

func TestSampleWithoutReplacementIsUniformish(t *testing.T) {
	s := New(17)
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		got, err := s.SampleWithoutReplacement(10, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range got {
			counts[v]++
		}
	}
	// Each index should be picked ~ trials*3/10 times.
	want := float64(trials) * 3 / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("index %d picked %d times, want ~%v", i, c, want)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	s := New(19)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const trials = 40000
	for i := 0; i < trials; i++ {
		idx, err := s.WeightedChoice(weights)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceErrors(t *testing.T) {
	s := New(23)
	tests := []struct {
		name    string
		weights []float64
	}{
		{name: "empty", weights: nil},
		{name: "all zero", weights: []float64{0, 0}},
		{name: "negative", weights: []float64{1, -1}},
		{name: "nan", weights: []float64{math.NaN()}},
		{name: "inf", weights: []float64{math.Inf(1)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := s.WeightedChoice(tt.weights); err == nil {
				t.Fatal("expected error, got nil")
			}
		})
	}
}

func TestWeightedSampleWithoutReplacement(t *testing.T) {
	s := New(29)
	weights := []float64{1, 2, 3, 4}
	got, err := s.WeightedSampleWithoutReplacement(weights, 4)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("full sample missing index %d: %v", i, got)
		}
	}
	if _, err := s.WeightedSampleWithoutReplacement(weights, 5); err == nil {
		t.Fatal("oversized sample did not error")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		p := s.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfBasics(t *testing.T) {
	z, err := NewZipf(100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 100 {
		t.Fatalf("N = %d, want 100", z.N())
	}
	if z.Alpha() != 0.8 {
		t.Fatalf("Alpha = %v, want 0.8", z.Alpha())
	}
	var total float64
	for r := 0; r < 100; r++ {
		p := z.Prob(r)
		if p <= 0 {
			t.Fatalf("Prob(%d) = %v, want > 0", r, p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v, want 1", total)
	}
	if z.Prob(-1) != 0 || z.Prob(100) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("NewZipf(0, 1) should error")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatal("NewZipf(10, -1) should error")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Fatal("NewZipf(10, NaN) should error")
	}
}

func TestZipfRankOrdering(t *testing.T) {
	z, err := NewZipf(50, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	s := New(31)
	counts := make([]int, 50)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(s)]++
	}
	// Lower ranks must be sampled more often; check a few well-separated
	// pairs rather than strict monotonicity (sampling noise).
	pairs := [][2]int{{0, 5}, {5, 20}, {20, 45}}
	for _, p := range pairs {
		if counts[p[0]] <= counts[p[1]] {
			t.Fatalf("rank %d count (%d) <= rank %d count (%d); Zipf ordering violated",
				p[0], counts[p[0]], p[1], counts[p[1]])
		}
	}
}

func TestZipfAlphaZeroIsUniform(t *testing.T) {
	z, err := NewZipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		if math.Abs(z.Prob(r)-0.1) > 1e-9 {
			t.Fatalf("alpha=0 Prob(%d) = %v, want 0.1", r, z.Prob(r))
		}
	}
}

func TestZipfSampleInRangeProperty(t *testing.T) {
	z, err := NewZipf(37, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			r := z.Sample(s)
			if r < 0 || r >= 37 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSeedZeroNotDegenerate(t *testing.T) {
	// Seed 0 is the only fixed point of the seed*prime fold: without the
	// offset-basis remap, every child of a seed-0 parent would be seeded
	// with the pure FNV-1a label hash, independent of the parent entirely.
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	labelHash := func(label string) int64 {
		fh := offset64
		for i := 0; i < len(label); i++ {
			fh ^= uint64(label[i])
			fh *= prime64
		}
		return int64(fh)
	}
	child := New(0).Split("topo")
	if child.Seed() == labelHash("topo") {
		t.Fatal("seed-0 Split degenerates to the pure label hash")
	}
	// The guard must not disturb any nonzero parent's streams.
	if got, want := New(7).Split("topo").Seed(), int64((uint64(7)*prime64)^uint64(labelHash("topo"))); got != want {
		t.Fatalf("nonzero parent stream changed: got seed %d, want %d", got, want)
	}
	// Distinct labels still yield distinct streams under seed 0.
	a, b := New(0).Split("a"), New(0).Split("b")
	if a.Seed() == b.Seed() {
		t.Fatal("seed-0 children collide across labels")
	}
	same := 0
	for i := 0; i < 16; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("seed-0 children emit identical streams")
	}
}

func TestSplitIntoMatchesSplit(t *testing.T) {
	for _, seed := range []int64{0, 1, 77, -5} {
		parent := New(seed)
		child := New(999) // arbitrary prior state: SplitInto must overwrite it
		for _, label := range []string{"pair/ec1/ec2", "pair/ec10/os", "x", ""} {
			want := parent.Split(label)
			parent.SplitInto(child, []byte(label))
			if child.Seed() != want.Seed() {
				t.Fatalf("seed=%d label=%q: SplitInto seed %d != Split seed %d",
					seed, label, child.Seed(), want.Seed())
			}
			for i := 0; i < 20; i++ {
				if g, w := child.Float64(), want.Float64(); g != w {
					t.Fatalf("seed=%d label=%q draw %d: %v != %v", seed, label, i, g, w)
				}
			}
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	s := New(1)
	s.Float64() // advance: Reseed must reset position, not just the seed
	s.Reseed(42)
	want := New(42)
	if s.Seed() != 42 {
		t.Fatalf("Seed() = %d after Reseed(42)", s.Seed())
	}
	for i := 0; i < 20; i++ {
		if g, w := s.Normal(0, 1), want.Normal(0, 1); g != w {
			t.Fatalf("draw %d: %v != %v", i, g, w)
		}
	}
}

func TestSplitIntoAllocationFree(t *testing.T) {
	parent := New(7)
	child := New(0)
	label := []byte("pair/ec123/os")
	if a := testing.AllocsPerRun(100, func() {
		parent.SplitInto(child, label)
		child.Float64()
	}); a != 0 {
		t.Fatalf("SplitInto allocates %v per call, want 0", a)
	}
}
