package simrand

import (
	"fmt"
	"math"
)

// Zipf samples ranks from a Zipf(α) distribution over [0, n): the
// probability of rank r is proportional to 1/(r+1)^α. The standard
// library's rand.Zipf requires α > 1; web workloads are routinely modelled
// with α in [0.6, 1.0], so we implement inverse-CDF sampling over a
// precomputed table instead.
type Zipf struct {
	cdf   []float64
	alpha float64
}

// NewZipf builds a Zipf sampler over n items with exponent alpha.
// It returns an error when n <= 0 or alpha < 0.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simrand: Zipf needs n > 0, got %d", n)
	}
	if alpha < 0 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("simrand: Zipf needs alpha >= 0, got %v", alpha)
	}
	cdf := make([]float64, n)
	var total float64
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), alpha)
		cdf[r] = total
	}
	for r := range cdf {
		cdf[r] /= total
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, alpha: alpha}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Alpha returns the exponent.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Prob returns the probability mass of rank r.
func (z *Zipf) Prob(r int) float64 {
	if r < 0 || r >= len(z.cdf) {
		return 0
	}
	if r == 0 {
		return z.cdf[0]
	}
	return z.cdf[r] - z.cdf[r-1]
}

// Sample draws a rank in [0, n) using src.
func (z *Zipf) Sample(src *Source) int {
	u := src.Float64()
	// Binary search for the first rank whose CDF exceeds u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
