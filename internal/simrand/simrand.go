// Package simrand provides deterministic random-number utilities shared by
// the topology generator, workload generator, prober, and clustering code.
//
// Every stochastic component in this repository owns an explicit *Source
// derived from a user-provided seed, so experiments are reproducible
// bit-for-bit. There is no package-level mutable state.
package simrand

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Source is a deterministic random source. It wraps math/rand.Rand and adds
// the distributions used across the simulator. Source is NOT safe for
// concurrent use; derive independent child sources with Split for parallel
// work.
type Source struct {
	rng  *rand.Rand
	seed int64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
	}
}

// Seed returns the seed this source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Split derives an independent child source. The child's stream is a pure
// function of (parent seed, label), so concurrent consumers can be given
// stable, non-overlapping streams regardless of the order in which they are
// created.
//
// The parent's contribution is seed*prime folded with an FNV-1a hash of
// the label. Seed 0 is remapped to the FNV offset basis first: without the
// remap, seed*prime collapses to 0 (the prime is odd, so 0 is the only
// fixed point) and every child of a seed-0 parent would be a function of
// the label alone — the same label tree rooted at seed 0 would collide
// with itself across nominally independent components.
func (s *Source) Split(label string) *Source {
	return New(childSeed(s.seed, label))
}

// SplitInto repositions child at the start of the exact stream that
// s.Split(string(label)) would produce, reusing child's allocations. It
// exists for hot paths (per-pair probe measurement) that derive a child
// stream per item and must not allocate per item. It only reads s's
// immutable seed, so concurrent SplitInto calls on a shared parent are
// safe; child itself must be goroutine-private.
func (s *Source) SplitInto(child *Source, label []byte) {
	child.Reseed(childSeed(s.seed, label))
}

// Reseed repositions s at the start of the stream a fresh New(seed) source
// would produce, reusing s's allocations.
func (s *Source) Reseed(seed int64) {
	s.seed = seed
	s.rng.Seed(seed)
}

// childSeed derives the child seed for Split/SplitInto: the parent's
// contribution is seed*prime folded with an FNV-1a hash of the label (see
// the Split doc comment for the seed-0 remap rationale).
func childSeed[T string | []byte](seed int64, label T) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(seed)
	if h == 0 {
		h = offset64
	}
	// FNV-1a over the label, folded into the parent seed.
	var fh uint64 = offset64
	for i := 0; i < len(label); i++ {
		fh ^= uint64(label[i])
		fh *= prime64
	}
	h = (h * prime64) ^ fh
	return int64(h)
}

// SplitN derives an independent child source labelled by an index.
func (s *Source) SplitN(label string, n int) *Source {
	return s.Split(fmt.Sprintf("%s/%d", label, n))
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Bernoulli returns true with probability p. p <= 0 never draws from the
// stream (and never fires), so a disabled fault knob consumes no
// randomness; p >= 1 always draws and always fires, keeping stream
// consumption a pure function of the call sequence for every p > 0.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	return s.rng.Float64() < p
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Uniform returns a uniform float in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Normal returns a normally distributed float with the given mean and
// standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// LogNormal returns a log-normally distributed float where mu and sigma are
// the parameters of the underlying normal distribution.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed float with the given
// rate (events per unit time). It panics if rate <= 0.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("simrand: Exponential rate must be > 0")
	}
	return s.rng.ExpFloat64() / rate
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It returns an error if k > n or either argument is negative.
func (s *Source) SampleWithoutReplacement(n, k int) ([]int, error) {
	if n < 0 || k < 0 {
		return nil, errors.New("simrand: negative argument to SampleWithoutReplacement")
	}
	if k > n {
		return nil, fmt.Errorf("simrand: cannot sample %d from %d items", k, n)
	}
	// Partial Fisher-Yates: O(n) space, O(k) swaps.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k], nil
}

// WeightedChoice returns an index in [0, len(weights)) drawn with
// probability proportional to weights[i]. Weights must be non-negative and
// sum to a positive value.
func (s *Source) WeightedChoice(weights []float64) (int, error) {
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return 0, fmt.Errorf("simrand: invalid weight %v at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return 0, errors.New("simrand: weights sum to zero")
	}
	target := s.rng.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if target < cum {
			return i, nil
		}
	}
	// Floating-point slack: return the last index with positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i, nil
		}
	}
	return 0, errors.New("simrand: unreachable weighted choice state")
}

// WeightedSampleWithoutReplacement draws k distinct indices with probability
// proportional to the (remaining) weights at each step.
func (s *Source) WeightedSampleWithoutReplacement(weights []float64, k int) ([]int, error) {
	if k > len(weights) {
		return nil, fmt.Errorf("simrand: cannot sample %d from %d weighted items", k, len(weights))
	}
	w := make([]float64, len(weights))
	copy(w, weights)
	out := make([]int, 0, k)
	for len(out) < k {
		i, err := s.WeightedChoice(w)
		if err != nil {
			return nil, fmt.Errorf("weighted sample step %d: %w", len(out), err)
		}
		out = append(out, i)
		w[i] = 0
	}
	return out, nil
}
