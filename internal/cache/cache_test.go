package cache

import (
	"errors"
	"testing"
	"testing/quick"

	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/workload"
)

func doc(id int, sizeKB, updateRate float64) workload.Document {
	return workload.Document{ID: workload.DocID(id), SizeKB: sizeKB, UpdateRatePerSec: updateRate}
}

func newCache(t *testing.T, capacityKB float64) *EdgeCache {
	t.Helper()
	ec, err := New(Config{CapacityKB: capacityKB, MissPenaltyMS: 100})
	if err != nil {
		t.Fatal(err)
	}
	return ec
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero capacity", Config{MissPenaltyMS: 1}},
		{"negative capacity", Config{CapacityKB: -1, MissPenaltyMS: 1}},
		{"zero penalty", Config{CapacityKB: 10}},
		{"negative min age", Config{CapacityKB: 10, MissPenaltyMS: 1, MinAgeSec: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestInsertAndLookup(t *testing.T) {
	ec := newCache(t, 100)
	if err := ec.Insert(doc(1, 10, 0), 1, 0); err != nil {
		t.Fatal(err)
	}
	if !ec.Lookup(1, 1, 1) {
		t.Fatal("fresh lookup missed")
	}
	if ec.Lookup(2, 1, 1) {
		t.Fatal("phantom hit")
	}
	st := ec.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if ec.UsedKB() != 10 || ec.Len() != 1 {
		t.Fatalf("used=%v len=%d", ec.UsedKB(), ec.Len())
	}
}

func TestStaleVersionIsConsistencyMiss(t *testing.T) {
	ec := newCache(t, 100)
	if err := ec.Insert(doc(1, 10, 0.5), 1, 0); err != nil {
		t.Fatal(err)
	}
	if ec.Lookup(1, 2, 1) {
		t.Fatal("stale copy served")
	}
	st := ec.Stats()
	if st.StaleDrops != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if ec.Len() != 0 {
		t.Fatal("stale copy not dropped")
	}
}

func TestContainsNoSideEffects(t *testing.T) {
	ec := newCache(t, 100)
	if err := ec.Insert(doc(1, 10, 0), 3, 0); err != nil {
		t.Fatal(err)
	}
	if !ec.Contains(1, 3) {
		t.Fatal("Contains missed fresh copy")
	}
	if ec.Contains(1, 4) {
		t.Fatal("Contains accepted stale copy")
	}
	if ec.Contains(2, 3) {
		t.Fatal("Contains found phantom")
	}
	st := ec.Stats()
	if st.Hits != 0 && st.Misses != 0 {
		t.Fatalf("Contains affected stats: %+v", st)
	}
	if ec.Len() != 1 {
		t.Fatal("Contains dropped entry")
	}
}

func TestCapacityEviction(t *testing.T) {
	ec := newCache(t, 30)
	for i := 1; i <= 3; i++ {
		if err := ec.Insert(doc(i, 10, 0), 1, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ec.UsedKB() != 30 {
		t.Fatalf("used = %v", ec.UsedKB())
	}
	// Access docs 2,3 so doc 1 has the lowest utility.
	ec.Lookup(2, 1, 4)
	ec.Lookup(2, 1, 4)
	ec.Lookup(3, 1, 4)
	ec.Lookup(3, 1, 4)
	if err := ec.Insert(doc(4, 10, 0), 1, 5); err != nil {
		t.Fatal(err)
	}
	if ec.Len() != 3 {
		t.Fatalf("len = %d, want 3", ec.Len())
	}
	if ec.Contains(1, 1) {
		t.Fatal("low-utility doc 1 survived eviction")
	}
	if !ec.Contains(2, 1) || !ec.Contains(3, 1) || !ec.Contains(4, 1) {
		t.Fatal("wrong eviction victim")
	}
	if ec.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", ec.Stats().Evictions)
	}
}

func TestUtilityPrefersSmallHotStableDocs(t *testing.T) {
	ec := newCache(t, 1000)
	// hot small static doc vs cold large dynamic doc.
	if err := ec.Insert(doc(1, 5, 0), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := ec.Insert(doc(2, 50, 1.0), 1, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ec.Lookup(1, 1, 10)
	}
	u1, ok := ec.Utility(1, 10)
	if !ok {
		t.Fatal("doc 1 missing")
	}
	u2, ok := ec.Utility(2, 10)
	if !ok {
		t.Fatal("doc 2 missing")
	}
	if u1 <= u2 {
		t.Fatalf("hot small static utility %v <= cold large dynamic %v", u1, u2)
	}
	if _, ok := ec.Utility(9, 10); ok {
		t.Fatal("utility of absent doc reported")
	}
}

func TestInsertTooLarge(t *testing.T) {
	ec := newCache(t, 10)
	err := ec.Insert(doc(1, 11, 0), 1, 0)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if err := ec.Insert(doc(2, 0, 0), 1, 0); err == nil {
		t.Fatal("zero-size doc accepted")
	}
}

func TestReinsertRefreshesVersion(t *testing.T) {
	ec := newCache(t, 100)
	if err := ec.Insert(doc(1, 10, 0), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := ec.Insert(doc(1, 10, 0), 2, 5); err != nil {
		t.Fatal(err)
	}
	if ec.Len() != 1 || ec.UsedKB() != 10 {
		t.Fatalf("reinsert duplicated entry: len=%d used=%v", ec.Len(), ec.UsedKB())
	}
	if !ec.Contains(1, 2) {
		t.Fatal("version not refreshed")
	}
	if ec.Contains(1, 1) {
		t.Fatal("old version still visible")
	}
}

// TestReinsertUpdatesMetadata pins the refresh-path fix: a re-insert
// must adopt the document's new size and update rate, adjust usedKB,
// run eviction when the document grew past the remaining capacity, and
// count as an insert — the old in-place refresh did none of these.
func TestReinsertUpdatesMetadata(t *testing.T) {
	ec := newCache(t, 30)
	var evicted []workload.DocID
	ec.SetEvictionHook(func(d workload.DocID) { evicted = append(evicted, d) })
	if err := ec.Insert(doc(1, 10, 0), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := ec.Insert(doc(2, 10, 0), 1, 0); err != nil {
		t.Fatal(err)
	}
	// Doc 1 grew from 10KB to 25KB: the refresh must free its old copy and
	// evict doc 2 to make room.
	if err := ec.Insert(doc(1, 25, 0.5), 2, 5); err != nil {
		t.Fatal(err)
	}
	if ec.Len() != 1 || ec.UsedKB() != 25 {
		t.Fatalf("grown reinsert: len=%d used=%v, want 1/25", ec.Len(), ec.UsedKB())
	}
	if !ec.Contains(1, 2) {
		t.Fatal("version not refreshed")
	}
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("eviction hook calls = %v, want [2] (replaced doc must not notify)", evicted)
	}
	st := ec.Stats()
	if st.Inserts != 3 {
		t.Fatalf("Inserts = %d, want 3 (re-insert counted)", st.Inserts)
	}
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	// Shrinking releases space.
	if err := ec.Insert(doc(1, 5, 0.5), 3, 6); err != nil {
		t.Fatal(err)
	}
	if ec.UsedKB() != 5 {
		t.Fatalf("shrunk reinsert used=%v, want 5", ec.UsedKB())
	}
}

func TestInvalidate(t *testing.T) {
	ec := newCache(t, 100)
	if err := ec.Insert(doc(1, 10, 0), 1, 0); err != nil {
		t.Fatal(err)
	}
	if !ec.Invalidate(1) {
		t.Fatal("Invalidate missed cached doc")
	}
	if ec.Invalidate(1) {
		t.Fatal("Invalidate hit absent doc")
	}
	if ec.Len() != 0 {
		t.Fatal("doc survived invalidation")
	}
}

func TestEvictionHook(t *testing.T) {
	ec := newCache(t, 20)
	var evicted []workload.DocID
	ec.SetEvictionHook(func(d workload.DocID) { evicted = append(evicted, d) })
	if err := ec.Insert(doc(1, 10, 0), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := ec.Insert(doc(2, 10, 0), 1, 0); err != nil {
		t.Fatal(err)
	}
	// Make doc 2 hot so doc 1 is evicted.
	ec.Lookup(2, 1, 1)
	ec.Lookup(2, 1, 1)
	if err := ec.Insert(doc(3, 10, 0), 1, 2); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v, want [1]", evicted)
	}
	// Invalidation also notifies.
	ec.Invalidate(2)
	if len(evicted) != 2 || evicted[1] != 2 {
		t.Fatalf("evicted = %v, want [1 2]", evicted)
	}
}

// TestCapacityInvariantProperty: under arbitrary insert/lookup sequences the
// cache never exceeds its capacity and Len matches the entry map.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := simrand.New(seed)
		ec, err := New(Config{CapacityKB: 50, MissPenaltyMS: 100})
		if err != nil {
			return false
		}
		now := 0.0
		for op := 0; op < 300; op++ {
			now += src.Float64()
			id := src.Intn(30)
			switch src.Intn(3) {
			case 0:
				size := src.Uniform(1, 20)
				_ = ec.Insert(doc(id, size, src.Float64()), int64(src.Intn(3)), now)
			case 1:
				ec.Lookup(workload.DocID(id), int64(src.Intn(3)), now)
			case 2:
				ec.Invalidate(workload.DocID(id))
			}
			if ec.UsedKB() > 50+1e-9 {
				return false
			}
			if ec.UsedKB() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyUtility.String() != "utility" || PolicyLRU.String() != "lru" {
		t.Fatal("Policy String mismatch")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown Policy String mismatch")
	}
}

func TestPolicyValidation(t *testing.T) {
	cfg := Config{CapacityKB: 10, MissPenaltyMS: 1, Policy: Policy(9)}
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	ec, err := New(Config{CapacityKB: 30, MissPenaltyMS: 100, Policy: PolicyLRU})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := ec.Insert(doc(i, 10, 0), 1, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 and 3 so 2 is the LRU victim.
	ec.Lookup(1, 1, 10)
	ec.Lookup(3, 1, 11)
	if err := ec.Insert(doc(4, 10, 0), 1, 12); err != nil {
		t.Fatal(err)
	}
	if ec.Contains(2, 1) {
		t.Fatal("LRU kept the least recently used doc")
	}
	if !ec.Contains(1, 1) || !ec.Contains(3, 1) || !ec.Contains(4, 1) {
		t.Fatal("LRU evicted the wrong victim")
	}
}

// TestUtilityVsLRUKeepsExpensiveDoc: the utility policy retains a rarely
// used but tiny, never-updated doc over a big, frequently updated one; LRU
// only looks at recency.
func TestUtilityVsLRUDiffer(t *testing.T) {
	run := func(p Policy) *EdgeCache {
		ec, err := New(Config{CapacityKB: 30, MissPenaltyMS: 100, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		// small static doc (1) inserted early, never touched again.
		if err := ec.Insert(doc(1, 2, 0), 1, 0); err != nil {
			t.Fatal(err)
		}
		// big dynamic doc (2) touched recently.
		if err := ec.Insert(doc(2, 20, 2.0), 1, 1); err != nil {
			t.Fatal(err)
		}
		ec.Lookup(2, 1, 50)
		// Force one eviction.
		if err := ec.Insert(doc(3, 10, 0), 1, 51); err != nil {
			t.Fatal(err)
		}
		return ec
	}
	lru := run(PolicyLRU)
	if lru.Contains(1, 1) {
		t.Fatal("LRU should have evicted the old small doc")
	}
	util := run(PolicyUtility)
	if !util.Contains(1, 1) {
		t.Fatal("utility policy should keep the small static doc")
	}
	if util.Contains(2, 1) {
		t.Fatal("utility policy should evict the big dynamic doc")
	}
}

// TestEvictVictimOrderIndependent pins the determinism contract the
// //ecglint:allow maporder annotation in evictOne relies on: with tied
// utility scores, the (score, doc) tie-break picks the same victim no
// matter which order the entries were inserted in — and therefore no
// matter how the entry map happens to iterate.
func TestEvictVictimOrderIndependent(t *testing.T) {
	for _, order := range [][]int{{1, 2, 3}, {3, 2, 1}, {2, 3, 1}, {3, 1, 2}} {
		ec := newCache(t, 30)
		for _, i := range order {
			if err := ec.Insert(doc(i, 10, 0), 1, 0); err != nil {
				t.Fatal(err)
			}
		}
		var evicted []workload.DocID
		ec.SetEvictionHook(func(d workload.DocID) { evicted = append(evicted, d) })
		if err := ec.Insert(doc(4, 10, 0), 1, 1); err != nil {
			t.Fatal(err)
		}
		if len(evicted) != 1 || evicted[0] != 1 {
			t.Fatalf("insertion order %v evicted %v, want [1]", order, evicted)
		}
	}
}
