// Package cache implements an edge cache node with the utility-based
// document placement and replacement scheme of the Cache Clouds system
// (Ramaswamy, Liu & Iyengar, ICDCS 2005 — reference [7] of the paper).
//
// The utility of a cached document combines how often it is accessed, how
// expensive a miss is for this cache, how large the document is, and how
// frequently the origin updates it:
//
//	utility = (accessRate × missPenalty) / (sizeKB × (1 + updateRate))
//
// On capacity pressure the lowest-utility entries are evicted first. Cached
// copies carry the document version observed at fetch time; a lookup with a
// newer current version is a consistency miss (the origin has updated the
// document) and drops the stale copy.
package cache

import (
	"errors"
	"fmt"

	"edgecachegroups/internal/workload"
)

// Policy selects the replacement policy.
type Policy int

// Replacement policies.
const (
	// PolicyUtility is the Cache Clouds utility-based replacement scheme
	// (the paper's caches use this).
	PolicyUtility Policy = iota + 1
	// PolicyLRU is the least-recently-used baseline the Cache Clouds paper
	// compares against.
	PolicyLRU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyUtility:
		return "utility"
	case PolicyLRU:
		return "lru"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config configures one edge cache node.
type Config struct {
	// CapacityKB is the storage budget.
	CapacityKB float64
	// MissPenaltyMS is the cost of re-fetching from the origin (typically
	// ~2× the cache's RTT to the origin server). It weights utility so
	// far-away caches hold on to documents harder.
	MissPenaltyMS float64
	// MinAgeSec guards the access-rate estimate of very young entries
	// (age is clamped below to this value). Zero means the default (1s).
	MinAgeSec float64
	// Policy selects the replacement policy; zero means PolicyUtility.
	Policy Policy
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	if c.CapacityKB <= 0 {
		return fmt.Errorf("cache: CapacityKB must be > 0, got %v", c.CapacityKB)
	}
	if c.MissPenaltyMS <= 0 {
		return fmt.Errorf("cache: MissPenaltyMS must be > 0, got %v", c.MissPenaltyMS)
	}
	if c.MinAgeSec < 0 {
		return fmt.Errorf("cache: MinAgeSec must be >= 0, got %v", c.MinAgeSec)
	}
	switch c.Policy {
	case 0, PolicyUtility, PolicyLRU:
	default:
		return fmt.Errorf("cache: unknown policy %v", c.Policy)
	}
	return nil
}

// entry is one cached document copy.
type entry struct {
	doc        workload.DocID
	sizeKB     float64
	updateRate float64
	version    int64
	insertedAt float64
	accesses   int
	lastAccess float64
}

// utility computes the Cache Clouds utility of e at time now.
func (e *entry) utility(now, minAge, missPenalty float64) float64 {
	age := now - e.insertedAt
	if age < minAge {
		age = minAge
	}
	accessRate := float64(e.accesses+1) / age
	return (accessRate * missPenalty) / (e.sizeKB * (1 + e.updateRate))
}

// Stats counts cache-local events.
type Stats struct {
	// Hits is the number of fresh local hits.
	Hits int64
	// Misses is the number of lookups that found nothing.
	Misses int64
	// StaleDrops is the number of lookups that found a stale copy
	// (consistency miss).
	StaleDrops int64
	// Evictions is the number of entries displaced by capacity pressure.
	Evictions int64
	// Inserts is the number of admitted documents.
	Inserts int64
}

// EdgeCache is a single cache node. It is not safe for concurrent use; the
// simulator's event loop serializes access.
type EdgeCache struct {
	cfg     Config
	entries map[workload.DocID]*entry
	usedKB  float64
	stats   Stats

	// onEvict, when set, is invoked for every entry leaving the cache
	// (eviction or stale drop) so a group directory can stay consistent.
	onEvict func(workload.DocID)
}

// New builds an empty edge cache.
func New(cfg Config) (*EdgeCache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MinAgeSec == 0 {
		cfg.MinAgeSec = 1
	}
	if cfg.Policy == 0 {
		cfg.Policy = PolicyUtility
	}
	return &EdgeCache{
		cfg:     cfg,
		entries: make(map[workload.DocID]*entry),
	}, nil
}

// SetEvictionHook registers fn to be called whenever a document leaves the
// cache — a capacity eviction, a stale copy dropped during Lookup, or an
// Invalidate. Re-Inserting a document the cache already holds replaces the
// old copy silently, without firing the hook.
func (ec *EdgeCache) SetEvictionHook(fn func(workload.DocID)) { ec.onEvict = fn }

// Stats returns a copy of the counters.
func (ec *EdgeCache) Stats() Stats { return ec.stats }

// UsedKB returns the occupied storage.
func (ec *EdgeCache) UsedKB() float64 { return ec.usedKB }

// Len returns the number of cached documents.
func (ec *EdgeCache) Len() int { return len(ec.entries) }

// Contains reports whether doc is cached at exactly version (fresh), with
// no side effects on statistics or entry state. Used for cooperative
// lookups by group peers.
func (ec *EdgeCache) Contains(doc workload.DocID, version int64) bool {
	e, ok := ec.entries[doc]
	return ok && e.version == version
}

// Lookup performs a client-driven lookup at time nowSec against the
// current document version. It returns true on a fresh hit. Stale copies
// are dropped and counted as consistency misses.
func (ec *EdgeCache) Lookup(doc workload.DocID, version int64, nowSec float64) bool {
	e, ok := ec.entries[doc]
	if !ok {
		ec.stats.Misses++
		return false
	}
	if e.version != version {
		ec.removeEntry(e, true)
		ec.stats.StaleDrops++
		ec.stats.Misses++
		return false
	}
	e.accesses++
	e.lastAccess = nowSec
	ec.stats.Hits++
	return true
}

// ErrTooLarge is returned when a document exceeds the cache capacity
// outright.
var ErrTooLarge = errors.New("cache: document larger than capacity")

// Insert admits a document copy fetched at time nowSec with the given
// version, evicting low-utility entries as needed. A document larger than
// the entire cache is rejected with ErrTooLarge. Inserting a document that
// is already cached refreshes its version and metadata.
func (ec *EdgeCache) Insert(d workload.Document, version int64, nowSec float64) error {
	if d.SizeKB <= 0 {
		return fmt.Errorf("cache: document %d has non-positive size %v", d.ID, d.SizeKB)
	}
	if d.SizeKB > ec.cfg.CapacityKB {
		return fmt.Errorf("cache: document %d (%.1fKB > %.1fKB): %w", d.ID, d.SizeKB, ec.cfg.CapacityKB, ErrTooLarge)
	}
	if old, ok := ec.entries[d.ID]; ok {
		// Re-insert of a cached document: remove the old copy (without the
		// eviction hook — the owner still holds the document) and fall
		// through to the normal insert path, so the new size and update
		// rate are recorded, usedKB stays true to the stored bytes, a grown
		// document triggers eviction like any other admission, and the
		// re-insert is counted. The old code refreshed version/time in
		// place and kept stale sizeKB/updateRate forever.
		ec.removeEntry(old, false)
	}
	for ec.usedKB+d.SizeKB > ec.cfg.CapacityKB {
		if !ec.evictOne(nowSec) {
			return fmt.Errorf("cache: cannot make room for document %d", d.ID)
		}
	}
	ec.entries[d.ID] = &entry{
		doc:        d.ID,
		sizeKB:     d.SizeKB,
		updateRate: d.UpdateRatePerSec,
		version:    version,
		insertedAt: nowSec,
		lastAccess: nowSec,
	}
	ec.usedKB += d.SizeKB
	ec.stats.Inserts++
	return nil
}

// Invalidate drops doc if cached (push-based consistency). It reports
// whether a copy was present.
func (ec *EdgeCache) Invalidate(doc workload.DocID) bool {
	e, ok := ec.entries[doc]
	if !ok {
		return false
	}
	ec.removeEntry(e, true)
	return true
}

// evictOne removes the replacement-policy victim. It returns false when
// the cache is already empty.
func (ec *EdgeCache) evictOne(nowSec float64) bool {
	var victim *entry
	var victimScore float64
	//ecglint:allow maporder argmin with a total-order tie-break on (score, doc): the victim is order-independent
	for _, e := range ec.entries {
		var score float64
		if ec.cfg.Policy == PolicyLRU {
			score = e.lastAccess
		} else {
			score = e.utility(nowSec, ec.cfg.MinAgeSec, ec.cfg.MissPenaltyMS)
		}
		if victim == nil || score < victimScore || (score == victimScore && e.doc < victim.doc) {
			victim, victimScore = e, score
		}
	}
	if victim == nil {
		return false
	}
	ec.removeEntry(victim, true)
	ec.stats.Evictions++
	return true
}

func (ec *EdgeCache) removeEntry(e *entry, notify bool) {
	delete(ec.entries, e.doc)
	ec.usedKB -= e.sizeKB
	if ec.usedKB < 0 {
		ec.usedKB = 0
	}
	if notify && ec.onEvict != nil {
		ec.onEvict(e.doc)
	}
}

// Utility exposes the current utility of a cached document for tests and
// diagnostics. The boolean result is false when the document is not
// cached.
func (ec *EdgeCache) Utility(doc workload.DocID, nowSec float64) (float64, bool) {
	e, ok := ec.entries[doc]
	if !ok {
		return 0, false
	}
	return e.utility(nowSec, ec.cfg.MinAgeSec, ec.cfg.MissPenaltyMS), true
}
