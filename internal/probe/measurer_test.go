package probe

import (
	"testing"

	"edgecachegroups/internal/simrand"
)

// TestMeasurerMatchesProberMeasure pins the Measurer contract: the reusable
// scratch path must reproduce Prober.Measure bit-for-bit — same per-pair
// stream derivation, same canonical pair ordering (including the byte-wise
// key comparison matching the string one), same self-measurement shortcut —
// across origin/cache pairs in both argument orders and with loss/retries
// enabled.
func TestMeasurerMatchesProberMeasure(t *testing.T) {
	nw := testNetwork(t, 30)
	cfg := DefaultConfig()
	cfg.LossProb = 0.2 // exercise the retry path too
	p, err := NewProber(nw, cfg, simrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMeasurer()
	endpoints := []Endpoint{
		Origin(), Cache(0), Cache(1), Cache(2), Cache(9), Cache(10), Cache(25),
	}
	for _, a := range endpoints {
		for _, b := range endpoints {
			want, errWant := p.Measure(a, b)
			got, errGot := m.Measure(a, b)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("%v<->%v: error mismatch: %v vs %v", a, b, errWant, errGot)
			}
			if got != want {
				t.Fatalf("%v<->%v: Measurer %v != Prober %v", a, b, got, want)
			}
		}
	}
}

// TestMeasurerMeasureToIntoMatchesMeasureTo pins the batch path and the
// serial Prober.MeasureToInto fast path against the parallel fan-out.
func TestMeasurerMeasureToIntoMatchesMeasureTo(t *testing.T) {
	nw := testNetwork(t, 30)
	p, err := NewProber(nw, DefaultConfig(), simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	targets := []Endpoint{Origin(), Cache(3), Cache(14), Cache(7), Cache(7)}
	want, err := p.MeasureTo(Cache(1), targets)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(targets))
	if err := p.NewMeasurer().MeasureToInto(Cache(1), targets, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("target %d: Measurer %v != MeasureTo %v", i, got[i], want[i])
		}
	}
	serialCfg := DefaultConfig()
	serialCfg.Parallelism = 1
	ps, err := NewProber(nw, serialCfg, simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]float64, len(targets))
	if err := ps.MeasureToInto(Cache(1), targets, serial); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if serial[i] != want[i] {
			t.Fatalf("target %d: serial MeasureToInto %v != parallel %v", i, serial[i], want[i])
		}
	}
	if err := p.NewMeasurer().MeasureToInto(Cache(1), targets, make([]float64, 2)); err == nil {
		t.Fatal("MeasureToInto accepted a short out slice")
	}
}

// TestMeasurerAllocationFree pins the whole point of Measurer: repeated
// measurements must not allocate in steady state, so probing N caches
// against L landmarks costs O(1) allocations, not O(N·L).
func TestMeasurerAllocationFree(t *testing.T) {
	nw := testNetwork(t, 30)
	p, err := NewProber(nw, DefaultConfig(), simrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMeasurer()
	targets := []Endpoint{Origin(), Cache(3), Cache(14), Cache(29)}
	out := make([]float64, len(targets))
	// Warm once so the scratch buffers reach steady-state capacity.
	if err := m.MeasureToInto(Cache(12), targets, out); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(50, func() {
		if err := m.MeasureToInto(Cache(12), targets, out); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("Measurer.MeasureToInto allocates %v per row, want 0", a)
	}
}
