package probe

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

func testNetwork(t *testing.T, numCaches int) *topology.Network {
	t.Helper()
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: numCaches}, simrand.New(78))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestEndpointString(t *testing.T) {
	if got := Origin().String(); got != "Os" {
		t.Fatalf("Origin String = %q", got)
	}
	if got := Cache(3).String(); got != "Ec3" {
		t.Fatalf("Cache String = %q", got)
	}
	if !Origin().IsOrigin() {
		t.Fatal("Origin().IsOrigin() = false")
	}
	if Cache(1).IsOrigin() {
		t.Fatal("Cache(1).IsOrigin() = true")
	}
	if Cache(5).CacheIndex() != 5 {
		t.Fatal("CacheIndex mismatch")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero samples", func(c *Config) { c.Samples = 0 }},
		{"negative noise", func(c *Config) { c.NoiseFrac = -0.1 }},
		{"nan noise", func(c *Config) { c.NoiseFrac = math.NaN() }},
		{"negative floor", func(c *Config) { c.FloorMS = -1 }},
		{"loss prob 1", func(c *Config) { c.LossProb = 1 }},
		{"negative retries", func(c *Config) { c.MaxRetries = -1 }},
		{"negative parallelism", func(c *Config) { c.Parallelism = -2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestNewProberErrors(t *testing.T) {
	nw := testNetwork(t, 5)
	bad := DefaultConfig()
	bad.Samples = 0
	if _, err := NewProber(nw, bad, simrand.New(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewProber(nil, DefaultConfig(), simrand.New(1)); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestTrueRTT(t *testing.T) {
	nw := testNetwork(t, 5)
	p, err := NewProber(nw, DefaultConfig(), simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.TrueRTT(Origin(), Origin()); got != 0 {
		t.Fatalf("TrueRTT(Os,Os) = %v, want 0", got)
	}
	if got, want := p.TrueRTT(Origin(), Cache(2)), nw.DistToOrigin(2); got != want {
		t.Fatalf("TrueRTT(Os,Ec2) = %v, want %v", got, want)
	}
	if got, want := p.TrueRTT(Cache(2), Origin()), nw.DistToOrigin(2); got != want {
		t.Fatalf("TrueRTT(Ec2,Os) = %v, want %v", got, want)
	}
	if got, want := p.TrueRTT(Cache(1), Cache(3)), nw.Dist(1, 3); got != want {
		t.Fatalf("TrueRTT(Ec1,Ec3) = %v, want %v", got, want)
	}
}

func TestMeasureDeterministicAndSymmetric(t *testing.T) {
	nw := testNetwork(t, 10)
	p, err := NewProber(nw, DefaultConfig(), simrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := p.Measure(Cache(0), Cache(7))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p.Measure(Cache(7), Cache(0))
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("Measure not symmetric: %v vs %v", v1, v2)
	}
	v3, err := p.Measure(Cache(0), Cache(7))
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v3 {
		t.Fatalf("Measure not deterministic: %v vs %v", v1, v3)
	}
}

func TestMeasureNoiseIsBounded(t *testing.T) {
	nw := testNetwork(t, 20)
	cfg := DefaultConfig()
	cfg.NoiseFrac = 0.05
	cfg.Samples = 11
	p, err := NewProber(nw, cfg, simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, err := p.Measure(Origin(), Cache(topology.CacheIndex(i)))
		if err != nil {
			t.Fatal(err)
		}
		trueRTT := nw.DistToOrigin(topology.CacheIndex(i))
		// With 11 samples at 5% noise the mean should be within ~10%.
		if math.Abs(got-trueRTT) > trueRTT*0.12+2 {
			t.Fatalf("cache %d: measured %v, true %v", i, got, trueRTT)
		}
	}
}

func TestMeasureZeroNoiseIsExact(t *testing.T) {
	nw := testNetwork(t, 5)
	cfg := Config{Samples: 1}
	p, err := NewProber(nw, cfg, simrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Measure(Cache(1), Cache(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := nw.Dist(1, 2); got != want {
		t.Fatalf("zero-noise measure = %v, want %v", got, want)
	}
}

func TestMeasureWithLossRetries(t *testing.T) {
	nw := testNetwork(t, 5)
	cfg := DefaultConfig()
	cfg.LossProb = 0.4
	cfg.MaxRetries = 10
	p, err := NewProber(nw, cfg, simrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Measure(Cache(0), Cache(1)); err != nil {
		t.Fatalf("measurement with retries failed: %v", err)
	}
}

func TestMeasureAllLost(t *testing.T) {
	nw := testNetwork(t, 5)
	cfg := DefaultConfig()
	cfg.LossProb = 0.99
	cfg.MaxRetries = 0
	cfg.Samples = 2
	p, err := NewProber(nw, cfg, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// With 99% loss and no retries, some pair should fail quickly.
	failed := false
	for i := 0; i < 4 && !failed; i++ {
		for j := i + 1; j < 5; j++ {
			if _, err := p.Measure(Cache(topology.CacheIndex(i)), Cache(topology.CacheIndex(j))); err != nil {
				if !errors.Is(err, ErrProbeFailed) {
					t.Fatalf("wrong error type: %v", err)
				}
				failed = true
				break
			}
		}
	}
	if !failed {
		t.Fatal("expected at least one ErrProbeFailed at 99% loss")
	}
}

func TestMeasureToAlignsWithTargets(t *testing.T) {
	nw := testNetwork(t, 10)
	p, err := NewProber(nw, DefaultConfig(), simrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	targets := []Endpoint{Origin(), Cache(3), Cache(9)}
	got, err := p.MeasureTo(Cache(0), targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	for i, tgt := range targets {
		want, err := p.Measure(Cache(0), tgt)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("MeasureTo[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestMeasureMatrixPropertiesAndConcurrencyInvariance(t *testing.T) {
	nw := testNetwork(t, 12)
	endpoints := []Endpoint{Origin()}
	for i := 0; i < 12; i++ {
		endpoints = append(endpoints, Cache(topology.CacheIndex(i)))
	}

	cfgSerial := DefaultConfig()
	cfgSerial.Parallelism = 1
	cfgPar := DefaultConfig()
	cfgPar.Parallelism = 8

	ps, err := NewProber(nw, cfgSerial, simrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewProber(nw, cfgPar, simrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := ps.MeasureMatrix(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := pp.MeasureMatrix(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	n := len(endpoints)
	for i := 0; i < n; i++ {
		if ms[i][i] != 0 {
			t.Fatalf("diagonal [%d][%d] = %v, want 0", i, i, ms[i][i])
		}
		for j := 0; j < n; j++ {
			if ms[i][j] != ms[j][i] {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
			if ms[i][j] != mp[i][j] {
				t.Fatalf("parallelism changed measurement at (%d,%d): %v vs %v", i, j, ms[i][j], mp[i][j])
			}
		}
	}
}

func TestMeasureNonNegativeProperty(t *testing.T) {
	nw := testNetwork(t, 8)
	f := func(seed int64) bool {
		cfg := DefaultConfig()
		cfg.NoiseFrac = 0.5 // extreme noise
		p, err := NewProber(nw, cfg, simrand.New(seed))
		if err != nil {
			return false
		}
		for i := 0; i < 8; i++ {
			v, err := p.Measure(Origin(), Cache(topology.CacheIndex(i)))
			if err != nil || v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeCounters(t *testing.T) {
	nw := testNetwork(t, 5)
	cfg := DefaultConfig() // 5 samples, no loss
	p, err := NewProber(nw, cfg, simrand.New(60))
	if err != nil {
		t.Fatal(err)
	}
	if p.ProbesSent() != 0 || p.Measurements() != 0 {
		t.Fatal("fresh prober has non-zero counters")
	}
	if _, err := p.Measure(Cache(0), Cache(1)); err != nil {
		t.Fatal(err)
	}
	if got := p.Measurements(); got != 1 {
		t.Fatalf("Measurements = %d, want 1", got)
	}
	if got := p.ProbesSent(); got != 5 {
		t.Fatalf("ProbesSent = %d, want 5 (one per sample)", got)
	}
	if _, err := p.MeasureTo(Cache(0), []Endpoint{Origin(), Cache(2)}); err != nil {
		t.Fatal(err)
	}
	if got := p.Measurements(); got != 3 {
		t.Fatalf("Measurements after MeasureTo = %d, want 3", got)
	}
	p.ResetCounters()
	if p.ProbesSent() != 0 || p.Measurements() != 0 {
		t.Fatal("ResetCounters did not zero counters")
	}
}

func TestProbeCountersIncludeRetries(t *testing.T) {
	nw := testNetwork(t, 5)
	cfg := DefaultConfig()
	cfg.LossProb = 0.5
	cfg.MaxRetries = 4
	p, err := NewProber(nw, cfg, simrand.New(61))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Measure(Cache(0), Cache(1)); err != nil {
		t.Fatal(err)
	}
	// With 50% loss, more packets than samples must have been sent.
	if got := p.ProbesSent(); got <= int64(cfg.Samples) {
		t.Fatalf("ProbesSent = %d, want > %d with retries", got, cfg.Samples)
	}
}

func TestMeasureSelfIsZero(t *testing.T) {
	// A cache's RTT to itself is zero by definition. Measure must agree
	// with the MeasureMatrix diagonal instead of synthesizing a noisy
	// nonzero sample for the self pair.
	nw := testNetwork(t, 8)
	cfg := DefaultConfig()
	cfg.NoiseFrac = 0.2
	p, err := NewProber(nw, cfg, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range []Endpoint{Origin(), Cache(0), Cache(5)} {
		got, err := p.Measure(ep, ep)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Fatalf("Measure(%v, %v) = %v, want 0", ep, ep, got)
		}
	}
	eps := []Endpoint{Origin(), Cache(0), Cache(1), Cache(2)}
	m, err := p.MeasureMatrix(eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range eps {
		if m[i][i] != 0 {
			t.Fatalf("matrix diagonal [%d][%d] = %v, want 0", i, i, m[i][i])
		}
		single, err := p.Measure(eps[i], eps[i])
		if err != nil {
			t.Fatal(err)
		}
		if single != m[i][i] {
			t.Fatalf("self Measure %v disagrees with matrix diagonal %v", single, m[i][i])
		}
	}
}

func TestMeasureSelfCountsAsMeasurement(t *testing.T) {
	nw := testNetwork(t, 4)
	p, err := NewProber(nw, DefaultConfig(), simrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Measure(Cache(1), Cache(1)); err != nil {
		t.Fatal(err)
	}
	if got := p.Measurements(); got != 1 {
		t.Fatalf("Measurements() = %d after a self measure, want 1", got)
	}
	if got := p.ProbesSent(); got != 0 {
		t.Fatalf("ProbesSent() = %d after a self measure, want 0 (no packets on the wire)", got)
	}
}
