// Package probe simulates the RTT measurement layer of the edge cache
// network. In the paper, caches and the origin server determine their
// relative positions by probing Internet landmarks multiple times and
// averaging the observed round-trip times. Here the "network" is a
// topology.Network, and a probe observes the true shortest-path RTT
// perturbed by configurable measurement noise, with optional probe loss and
// retries.
//
// All randomness is derived from per-pair split sources, so measurement
// results are a pure function of (seed, endpoint pair) regardless of the
// concurrency schedule.
package probe

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"

	"edgecachegroups/internal/par"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// Endpoint addresses a probe-capable node: the origin server or one of the
// edge caches.
type Endpoint struct {
	origin bool
	cache  topology.CacheIndex
}

// Origin returns the endpoint for the origin server.
func Origin() Endpoint { return Endpoint{origin: true} }

// Cache returns the endpoint for edge cache i.
func Cache(i topology.CacheIndex) Endpoint { return Endpoint{cache: i} }

// IsOrigin reports whether e addresses the origin server.
func (e Endpoint) IsOrigin() bool { return e.origin }

// CacheIndex returns the cache index; valid only when !IsOrigin().
func (e Endpoint) CacheIndex() topology.CacheIndex { return e.cache }

// String implements fmt.Stringer.
func (e Endpoint) String() string {
	if e.origin {
		return "Os"
	}
	return fmt.Sprintf("Ec%d", int(e.cache))
}

// key returns a stable label for split-source derivation.
func (e Endpoint) key() string {
	if e.origin {
		return "os"
	}
	return fmt.Sprintf("ec%d", int(e.cache))
}

// Config controls the measurement model.
type Config struct {
	// Samples is the number of probes averaged per measurement. Must be >= 1.
	Samples int
	// NoiseFrac is the standard deviation of multiplicative measurement
	// noise as a fraction of the true RTT (e.g. 0.1 = 10%).
	NoiseFrac float64
	// FloorMS is an additive measurement floor in milliseconds; each sample
	// gains |N(0, FloorMS)| to model queueing and clock granularity.
	FloorMS float64
	// LossProb is the probability that a single probe is lost.
	LossProb float64
	// MaxRetries is the number of retries for a lost probe.
	MaxRetries int
	// Parallelism bounds the worker pool for batch probing; 0 means a
	// sensible default.
	Parallelism int
}

// DefaultConfig returns the measurement model used in the experiments:
// 5 samples, 8% multiplicative noise, 0.3ms floor, no loss.
func DefaultConfig() Config {
	return Config{
		Samples:     5,
		NoiseFrac:   0.08,
		FloorMS:     0.3,
		LossProb:    0,
		MaxRetries:  3,
		Parallelism: 8,
	}
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	switch {
	case c.Samples < 1:
		return fmt.Errorf("probe: Samples must be >= 1, got %d", c.Samples)
	case c.NoiseFrac < 0 || math.IsNaN(c.NoiseFrac):
		return fmt.Errorf("probe: NoiseFrac must be >= 0, got %v", c.NoiseFrac)
	case c.FloorMS < 0:
		return fmt.Errorf("probe: FloorMS must be >= 0, got %v", c.FloorMS)
	case c.LossProb < 0 || c.LossProb >= 1:
		return fmt.Errorf("probe: LossProb must be in [0,1), got %v", c.LossProb)
	case c.MaxRetries < 0:
		return fmt.Errorf("probe: MaxRetries must be >= 0, got %v", c.MaxRetries)
	case c.Parallelism < 0:
		return fmt.Errorf("probe: Parallelism must be >= 0, got %d", c.Parallelism)
	}
	return nil
}

// ErrProbeFailed is returned when every sample of a measurement was lost
// despite retries.
var ErrProbeFailed = errors.New("probe: all samples lost")

// Prober measures RTTs over a placed network. It is safe for concurrent
// use.
type Prober struct {
	nw   *topology.Network
	cfg  Config
	seed *simrand.Source

	// measurement-overhead accounting (the paper repeatedly weighs scheme
	// accuracy against probing overhead; these counters quantify it).
	probesSent   atomic.Int64
	measurements atomic.Int64
}

// NewProber builds a Prober over nw. The source seeds the per-pair
// measurement streams.
func NewProber(nw *topology.Network, cfg Config, src *simrand.Source) (*Prober, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nw == nil {
		return nil, errors.New("probe: nil network")
	}
	return &Prober{nw: nw, cfg: cfg, seed: src}, nil
}

// Config returns the prober's configuration.
func (p *Prober) Config() Config { return p.cfg }

// TrueRTT returns the noiseless RTT between two endpoints.
func (p *Prober) TrueRTT(a, b Endpoint) float64 {
	switch {
	case a.origin && b.origin:
		return 0
	case a.origin:
		return p.nw.DistToOrigin(b.cache)
	case b.origin:
		return p.nw.DistToOrigin(a.cache)
	default:
		return p.nw.Dist(a.cache, b.cache)
	}
}

// Measure performs a full measurement between a and b: Samples probes
// (each retried on loss), averaged. The result is deterministic for a
// given (seed, a, b) and symmetric in (a, b). Measuring an endpoint
// against itself is exactly 0 — no probe is sent, matching the zero
// diagonal of MeasureMatrix (a cache that is itself a landmark must not
// see a spurious noise-floor self-distance in its feature vector).
func (p *Prober) Measure(a, b Endpoint) (float64, error) {
	// Canonical pair order so Measure(a,b) == Measure(b,a).
	ka, kb := a.key(), b.key()
	if ka == kb {
		p.measurements.Add(1)
		return 0, nil
	}
	if ka > kb {
		ka, kb = kb, ka
	}
	src := p.seed.Split("pair/" + ka + "/" + kb)
	trueRTT := p.TrueRTT(a, b)
	p.measurements.Add(1)

	var sum float64
	var got int
	for s := 0; s < p.cfg.Samples; s++ {
		v, ok := p.sampleOnce(trueRTT, src)
		if !ok {
			continue
		}
		sum += v
		got++
	}
	if got == 0 {
		return 0, fmt.Errorf("measure %v<->%v: %w", a, b, ErrProbeFailed)
	}
	return sum / float64(got), nil
}

// sampleOnce draws one probe sample, retrying on loss. The boolean result
// is false when the sample (and all its retries) were lost.
func (p *Prober) sampleOnce(trueRTT float64, src *simrand.Source) (float64, bool) {
	for attempt := 0; attempt <= p.cfg.MaxRetries; attempt++ {
		p.probesSent.Add(1)
		if p.cfg.LossProb > 0 && src.Float64() < p.cfg.LossProb {
			continue
		}
		v := trueRTT * (1 + src.Normal(0, p.cfg.NoiseFrac))
		if p.cfg.FloorMS > 0 {
			v += math.Abs(src.Normal(0, p.cfg.FloorMS))
		}
		if v < 0 {
			v = 0
		}
		return v, true
	}
	return 0, false
}

// MeasureTo measures from one endpoint to each target, fanning the probes
// out across a bounded worker pool. Results align with targets.
func (p *Prober) MeasureTo(from Endpoint, targets []Endpoint) ([]float64, error) {
	out := make([]float64, len(targets))
	if err := p.MeasureToInto(from, targets, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MeasureToInto is MeasureTo writing into a caller-supplied slice (one row
// of a flat feature matrix, typically). With Parallelism 1 it probes
// through a scratch Measurer, costing O(1) allocations per call regardless
// of the target count — callers that probe many rows (the feature-building
// stage fans out per cache, making per-target fan-out here redundant)
// should hold their own Measurer per worker and pay O(1) total. out must
// have len(targets) elements.
func (p *Prober) MeasureToInto(from Endpoint, targets []Endpoint, out []float64) error {
	if p.cfg.Parallelism == 1 {
		// Per-pair measurement randomness is a pure function of the pair,
		// so the serial loop measures the same values the parallel
		// fan-out would.
		return p.NewMeasurer().MeasureToInto(from, targets, out)
	}
	if len(out) != len(targets) {
		return fmt.Errorf("probe: out has %d slots for %d targets", len(out), len(targets))
	}
	errs := make([]error, len(targets))
	p.forEach(len(targets), func(i int) {
		out[i], errs[i] = p.Measure(from, targets[i])
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("target %d: %w", i, err)
		}
	}
	return nil
}

// Measurer is a reusable single-goroutine measurement context. It performs
// the same measurements as Prober.Measure — bit-identical values, same
// per-pair stream derivation — but reuses a scratch random source and
// label buffers so repeated measurements allocate nothing in steady state.
// The flat-matrix feature build holds one Measurer per worker, making the
// whole N-cache probing stage O(workers) allocations instead of O(N·L).
//
// A Measurer must not be shared across goroutines; create one per worker
// with NewMeasurer. The overhead counters still aggregate on the parent
// Prober.
type Measurer struct {
	p   *Prober
	src *simrand.Source // scratch child source, reseeded per pair
	ka  []byte          // scratch endpoint keys and pair label
	kb  []byte
	lbl []byte
}

// NewMeasurer returns a fresh measurement context bound to p.
func (p *Prober) NewMeasurer() *Measurer {
	return &Measurer{
		p:   p,
		src: simrand.New(0),
		ka:  make([]byte, 0, 16),
		kb:  make([]byte, 0, 16),
		lbl: make([]byte, 0, 40),
	}
}

// appendKey appends e's split-source key (Endpoint.key) to dst without
// allocating once dst has capacity.
func appendKey(dst []byte, e Endpoint) []byte {
	if e.origin {
		return append(dst, "os"...)
	}
	dst = append(dst, "ec"...)
	return strconv.AppendInt(dst, int64(e.cache), 10)
}

// Measure is Prober.Measure through the reusable scratch: identical
// results, zero steady-state allocations.
func (m *Measurer) Measure(a, b Endpoint) (float64, error) {
	p := m.p
	// Canonical pair order so Measure(a,b) == Measure(b,a). The byte-wise
	// comparison matches the string comparison Prober.Measure performs on
	// the same keys.
	m.ka = appendKey(m.ka[:0], a)
	m.kb = appendKey(m.kb[:0], b)
	if bytes.Equal(m.ka, m.kb) {
		p.measurements.Add(1)
		return 0, nil
	}
	ka, kb := m.ka, m.kb
	if bytes.Compare(ka, kb) > 0 {
		ka, kb = kb, ka
	}
	m.lbl = append(m.lbl[:0], "pair/"...)
	m.lbl = append(m.lbl, ka...)
	m.lbl = append(m.lbl, '/')
	m.lbl = append(m.lbl, kb...)
	p.seed.SplitInto(m.src, m.lbl)
	trueRTT := p.TrueRTT(a, b)
	p.measurements.Add(1)

	var sum float64
	var got int
	for s := 0; s < p.cfg.Samples; s++ {
		v, ok := p.sampleOnce(trueRTT, m.src)
		if !ok {
			continue
		}
		sum += v
		got++
	}
	if got == 0 {
		return 0, fmt.Errorf("measure %v<->%v: %w", a, b, ErrProbeFailed)
	}
	return sum / float64(got), nil
}

// MeasureToInto measures from one endpoint to each target serially into
// out, with zero steady-state allocations. out must have len(targets)
// elements.
func (m *Measurer) MeasureToInto(from Endpoint, targets []Endpoint, out []float64) error {
	if len(out) != len(targets) {
		return fmt.Errorf("probe: out has %d slots for %d targets", len(out), len(targets))
	}
	for i := range targets {
		v, err := m.Measure(from, targets[i])
		if err != nil {
			return fmt.Errorf("target %d: %w", i, err)
		}
		out[i] = v
	}
	return nil
}

// MeasureMatrix measures the full symmetric matrix among endpoints.
// result[i][j] is the measured RTT between endpoints[i] and endpoints[j];
// the diagonal is zero.
func (p *Prober) MeasureMatrix(endpoints []Endpoint) ([][]float64, error) {
	n := len(endpoints)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	errs := make([]error, len(pairs))
	p.forEach(len(pairs), func(k int) {
		pr := pairs[k]
		v, err := p.Measure(endpoints[pr.i], endpoints[pr.j])
		if err != nil {
			errs[k] = err
			return
		}
		out[pr.i][pr.j] = v
		out[pr.j][pr.i] = v
	})
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pair (%d,%d): %w", pairs[k].i, pairs[k].j, err)
		}
	}
	return out, nil
}

// ProbesSent returns the total number of individual probe packets issued
// (including retries) — the measurement overhead the landmark parameters
// L and M trade off against accuracy.
func (p *Prober) ProbesSent() int64 { return p.probesSent.Load() }

// Measurements returns the number of completed Measure calls.
func (p *Prober) Measurements() int64 { return p.measurements.Load() }

// ResetCounters zeroes the overhead counters.
func (p *Prober) ResetCounters() {
	p.probesSent.Store(0)
	p.measurements.Store(0)
}

// forEach runs fn(0..n-1) over the shared worker pool. Results are
// schedule-independent because every measurement draws from its own
// per-pair split source.
func (p *Prober) forEach(n int, fn func(i int)) {
	par.ForEach(n, p.cfg.Parallelism, fn)
}
