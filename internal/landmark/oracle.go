package landmark

import (
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// Oracle is an idealized selector that runs the same greedy max-min
// algorithm as the SL scheme but over TRUE (noise-free) RTTs and over the
// entire cache set rather than a sampled PLSet. It is an upper bound on
// what landmark selection can achieve: the gap between Oracle and Greedy
// quantifies what the PLSet sampling and measurement noise cost.
//
// Oracle is not deployable (it assumes free global knowledge); it exists
// for ablations and tests.
type Oracle struct{}

var _ Selector = Oracle{}

// Name implements Selector.
func (Oracle) Name() string { return "oracle" }

// Select implements Selector.
func (Oracle) Select(p *probe.Prober, numCaches int, params Params, _ *simrand.Source) ([]probe.Endpoint, error) {
	if err := params.Validate(numCaches); err != nil {
		return nil, err
	}
	// Candidate set: every cache.
	all := make([]probe.Endpoint, 0, numCaches+1)
	all = append(all, probe.Origin())
	for i := 0; i < numCaches; i++ {
		all = append(all, probe.Cache(topology.CacheIndex(i)))
	}

	chosen := []int{0}
	inSet := make([]bool, len(all))
	inSet[0] = true
	minToSet := make([]float64, len(all))
	for i := range minToSet {
		minToSet[i] = p.TrueRTT(all[i], all[0])
	}
	for len(chosen) < params.L {
		best := -1
		for i := 1; i < len(all); i++ {
			if inSet[i] {
				continue
			}
			if best < 0 || minToSet[i] > minToSet[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		inSet[best] = true
		for i := range minToSet {
			if d := p.TrueRTT(all[i], all[best]); d < minToSet[i] {
				minToSet[i] = d
			}
		}
	}
	out := make([]probe.Endpoint, len(chosen))
	for i, idx := range chosen {
		out[i] = all[idx]
	}
	return out, nil
}
