// Package landmark implements the landmark-set selection strategies of the
// paper (§3.1 and §5.1):
//
//   - Greedy: the SL scheme's approximation-based greedy strategy. The
//     GF-coordinator samples M·(L−1) caches as the potential landmark set
//     (PLSet), measures pairwise RTTs among PLSet ∪ {Os}, and then greedily
//     grows the landmark set from {Os}, each step adding the candidate that
//     maximizes the minimum pairwise distance of the set.
//   - Random: landmarks drawn uniformly from the caches (plus the origin).
//   - MinDist: the adversarial baseline that minimizes landmark dispersion
//     (each step adds the candidate closest to the current set).
//
// All selectors always include the origin server, as the paper prescribes.
package landmark

import (
	"fmt"
	"math"

	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// Params configures landmark selection.
type Params struct {
	// L is the total number of landmarks including the origin server.
	L int
	// M is the PLSet multiplier: the potential landmark set holds M·(L−1)
	// caches. Only the Greedy and MinDist selectors use it.
	M int
}

// Validate checks the parameters against a network of numCaches caches.
func (p Params) Validate(numCaches int) error {
	switch {
	case p.L < 2:
		return fmt.Errorf("landmark: L must be >= 2 (origin plus at least one cache), got %d", p.L)
	case p.M < 1:
		return fmt.Errorf("landmark: M must be >= 1, got %d", p.M)
	case p.L-1 > numCaches:
		return fmt.Errorf("landmark: need %d cache landmarks but only %d caches", p.L-1, numCaches)
	case p.M*(p.L-1) > numCaches:
		return fmt.Errorf("landmark: PLSet size M*(L-1)=%d exceeds cache count %d", p.M*(p.L-1), numCaches)
	}
	return nil
}

// Selector chooses a landmark set.
type Selector interface {
	// Select returns exactly params.L endpoints, the first of which is the
	// origin server.
	Select(p *probe.Prober, numCaches int, params Params, src *simrand.Source) ([]probe.Endpoint, error)
	// Name identifies the strategy in reports.
	Name() string
}

// Compile-time interface checks.
var (
	_ Selector = Greedy{}
	_ Selector = Random{}
	_ Selector = MinDist{}
)

// MinPairwiseDist returns the minimum measured distance over all unordered
// pairs in set (MinDist(LmSet) in the paper). Sets with fewer than two
// elements have an undefined minimum; +Inf is returned.
func MinPairwiseDist(p *probe.Prober, set []probe.Endpoint) (float64, error) {
	minD := math.Inf(1)
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			d, err := p.Measure(set[i], set[j])
			if err != nil {
				return 0, fmt.Errorf("measure pair (%v,%v): %w", set[i], set[j], err)
			}
			if d < minD {
				minD = d
			}
		}
	}
	return minD, nil
}

// pickPLSet samples the potential landmark set.
func pickPLSet(numCaches int, params Params, src *simrand.Source) ([]probe.Endpoint, error) {
	size := params.M * (params.L - 1)
	idx, err := src.SampleWithoutReplacement(numCaches, size)
	if err != nil {
		return nil, fmt.Errorf("sample PLSet: %w", err)
	}
	out := make([]probe.Endpoint, size)
	for i, c := range idx {
		out[i] = probe.Cache(topology.CacheIndex(c))
	}
	return out, nil
}

// Greedy is the SL scheme's landmark selector.
type Greedy struct{}

// Name implements Selector.
func (Greedy) Name() string { return "greedy" }

// Select implements Selector.
func (Greedy) Select(p *probe.Prober, numCaches int, params Params, src *simrand.Source) ([]probe.Endpoint, error) {
	return selectByDispersion(p, numCaches, params, src, true)
}

// MinDist is the adversarial baseline that clumps landmarks together.
type MinDist struct{}

// Name implements Selector.
func (MinDist) Name() string { return "min-dist" }

// Select implements Selector.
func (MinDist) Select(p *probe.Prober, numCaches int, params Params, src *simrand.Source) ([]probe.Endpoint, error) {
	return selectByDispersion(p, numCaches, params, src, false)
}

// selectByDispersion grows the landmark set from {Os}. When maximize is
// true each step adds the PLSet candidate with the largest minimum distance
// to the chosen set (greedy max-min, SL scheme); when false, the smallest
// (min-dist baseline).
func selectByDispersion(p *probe.Prober, numCaches int, params Params, src *simrand.Source, maximize bool) ([]probe.Endpoint, error) {
	if err := params.Validate(numCaches); err != nil {
		return nil, err
	}
	plset, err := pickPLSet(numCaches, params, src)
	if err != nil {
		return nil, err
	}
	// The potential landmark points measure their distances to each other
	// and to the origin server (paper §3.1, phase 1).
	all := append([]probe.Endpoint{probe.Origin()}, plset...)
	dist, err := p.MeasureMatrix(all)
	if err != nil {
		return nil, fmt.Errorf("probe PLSet: %w", err)
	}

	chosen := []int{0} // index into all; 0 is the origin
	inSet := make([]bool, len(all))
	inSet[0] = true
	// minToSet[i] = min distance from candidate i to the chosen set.
	minToSet := make([]float64, len(all))
	for i := range minToSet {
		minToSet[i] = dist[i][0]
	}
	for len(chosen) < params.L {
		best := -1
		for i := 1; i < len(all); i++ {
			if inSet[i] {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			if maximize && minToSet[i] > minToSet[best] {
				best = i
			} else if !maximize && minToSet[i] < minToSet[best] {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("landmark: PLSet exhausted at %d of %d landmarks", len(chosen), params.L)
		}
		chosen = append(chosen, best)
		inSet[best] = true
		for i := range minToSet {
			if d := dist[i][best]; d < minToSet[i] {
				minToSet[i] = d
			}
		}
	}

	out := make([]probe.Endpoint, len(chosen))
	for i, idx := range chosen {
		out[i] = all[idx]
	}
	return out, nil
}

// Random selects L−1 cache landmarks uniformly (plus the origin).
type Random struct{}

// Name implements Selector.
func (Random) Name() string { return "random" }

// Select implements Selector.
func (Random) Select(_ *probe.Prober, numCaches int, params Params, src *simrand.Source) ([]probe.Endpoint, error) {
	if err := params.Validate(numCaches); err != nil {
		return nil, err
	}
	idx, err := src.SampleWithoutReplacement(numCaches, params.L-1)
	if err != nil {
		return nil, fmt.Errorf("sample random landmarks: %w", err)
	}
	out := make([]probe.Endpoint, 0, params.L)
	out = append(out, probe.Origin())
	for _, c := range idx {
		out = append(out, probe.Cache(topology.CacheIndex(c)))
	}
	return out, nil
}
