package landmark

import (
	"math"
	"testing"

	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

func testProber(t *testing.T, numCaches int, seed int64) (*topology.Network, *probe.Prober) {
	t.Helper()
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: numCaches}, simrand.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := probe.NewProber(nw, probe.DefaultConfig(), simrand.New(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	return nw, p
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name      string
		params    Params
		numCaches int
		wantErr   bool
	}{
		{name: "ok", params: Params{L: 5, M: 2}, numCaches: 100},
		{name: "L too small", params: Params{L: 1, M: 2}, numCaches: 100, wantErr: true},
		{name: "M zero", params: Params{L: 5, M: 0}, numCaches: 100, wantErr: true},
		{name: "more landmarks than caches", params: Params{L: 12, M: 1}, numCaches: 10, wantErr: true},
		{name: "PLSet too big", params: Params{L: 5, M: 10}, numCaches: 20, wantErr: true},
		{name: "PLSet exactly fits", params: Params{L: 5, M: 5}, numCaches: 20},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.params.Validate(tt.numCaches)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSelectorNames(t *testing.T) {
	if (Greedy{}).Name() != "greedy" || (Random{}).Name() != "random" || (MinDist{}).Name() != "min-dist" {
		t.Fatal("selector name mismatch")
	}
}

func TestSelectShapes(t *testing.T) {
	_, p := testProber(t, 60, 20)
	params := Params{L: 8, M: 3}
	selectors := []Selector{Greedy{}, Random{}, MinDist{}}
	for _, sel := range selectors {
		t.Run(sel.Name(), func(t *testing.T) {
			set, err := sel.Select(p, 60, params, simrand.New(21))
			if err != nil {
				t.Fatal(err)
			}
			if len(set) != 8 {
				t.Fatalf("got %d landmarks, want 8", len(set))
			}
			if !set[0].IsOrigin() {
				t.Fatal("first landmark must be the origin")
			}
			seen := make(map[string]bool)
			for _, e := range set {
				if seen[e.String()] {
					t.Fatalf("duplicate landmark %v", e)
				}
				seen[e.String()] = true
			}
		})
	}
}

func TestSelectRejectsBadParams(t *testing.T) {
	_, p := testProber(t, 10, 22)
	bad := Params{L: 1, M: 1}
	for _, sel := range []Selector{Greedy{}, Random{}, MinDist{}} {
		if _, err := sel.Select(p, 10, bad, simrand.New(23)); err == nil {
			t.Fatalf("%s accepted invalid params", sel.Name())
		}
	}
}

func TestGreedyBeatsMinDistOnDispersion(t *testing.T) {
	_, p := testProber(t, 120, 24)
	params := Params{L: 10, M: 4}

	greedySet, err := Greedy{}.Select(p, 120, params, simrand.New(25))
	if err != nil {
		t.Fatal(err)
	}
	minSet, err := MinDist{}.Select(p, 120, params, simrand.New(25))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := MinPairwiseDist(p, greedySet)
	if err != nil {
		t.Fatal(err)
	}
	md, err := MinPairwiseDist(p, minSet)
	if err != nil {
		t.Fatal(err)
	}
	if gd <= md {
		t.Fatalf("greedy dispersion %v not better than min-dist %v", gd, md)
	}
}

func TestGreedyBeatsRandomOnDispersionAveraged(t *testing.T) {
	_, p := testProber(t, 120, 26)
	params := Params{L: 10, M: 4}
	var gSum, rSum float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		src := simrand.New(int64(30 + trial))
		gSet, err := Greedy{}.Select(p, 120, params, src.Split("g"))
		if err != nil {
			t.Fatal(err)
		}
		rSet, err := Random{}.Select(p, 120, params, src.Split("r"))
		if err != nil {
			t.Fatal(err)
		}
		gd, err := MinPairwiseDist(p, gSet)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := MinPairwiseDist(p, rSet)
		if err != nil {
			t.Fatal(err)
		}
		gSum += gd
		rSum += rd
	}
	if gSum <= rSum {
		t.Fatalf("greedy mean dispersion %v not better than random %v", gSum/trials, rSum/trials)
	}
}

func TestSelectDeterministic(t *testing.T) {
	_, p := testProber(t, 80, 27)
	params := Params{L: 6, M: 2}
	for _, sel := range []Selector{Greedy{}, Random{}, MinDist{}} {
		a, err := sel.Select(p, 80, params, simrand.New(28))
		if err != nil {
			t.Fatal(err)
		}
		b, err := sel.Select(p, 80, params, simrand.New(28))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s not deterministic at landmark %d", sel.Name(), i)
			}
		}
	}
}

func TestMinPairwiseDistSmallSets(t *testing.T) {
	_, p := testProber(t, 10, 29)
	d, err := MinPairwiseDist(p, []probe.Endpoint{probe.Origin()})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Fatalf("singleton MinPairwiseDist = %v, want +Inf", d)
	}
	d, err = MinPairwiseDist(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Fatalf("empty MinPairwiseDist = %v, want +Inf", d)
	}
}

// TestGreedyMatchesPaperWorkedExample reproduces Figure 1 of the paper: a
// 6-cache network where the PLSet is {Ec0, Ec1, Ec3, Ec4} and the greedy
// algorithm, starting from {Os}, should pick a final landmark set whose
// MinDist is 12.0 — i.e. it must pick Ec0 (or the symmetric Ec2/Ec4 row
// positions) and then the cache at distance >= 12 from both.
func TestGreedyMatchesPaperWorkedExample(t *testing.T) {
	// Build a star topology that realizes the paper's distance matrix rows
	// for Os, Ec0, Ec4: Dist(Os,Ec0)=12, Dist(Os,Ec4)=12, Dist(Ec0,Ec4)=17.
	// We verify the greedy max-min logic directly on a measured matrix via a
	// tiny synthetic graph with exactly these RTTs.
	g := topology.NewGraph()
	hub := g.AddNode(topology.KindStub, 0)
	os := g.AddNode(topology.KindStub, 0)
	ec0 := g.AddNode(topology.KindStub, 0)
	ec4 := g.AddNode(topology.KindStub, 0)
	ec1 := g.AddNode(topology.KindStub, 0)
	// Distances via hub: Os=4, Ec0=8, Ec4=8.5, Ec1=4.2 =>
	// Os-Ec0=12, Os-Ec4=12.5, Ec0-Ec4=16.5, Os-Ec1=8.2, Ec0-Ec1=12.2,
	// Ec4-Ec1=12.7.
	for _, e := range []struct {
		n topology.NodeID
		w float64
	}{{os, 4}, {ec0, 8}, {ec4, 8.5}, {ec1, 4.2}} {
		if err := g.AddEdge(hub, e.n, e.w); err != nil {
			t.Fatal(err)
		}
	}
	nw, err := topology.NewNetworkAt(g, os, []topology.NodeID{ec0, ec4, ec1})
	if err != nil {
		t.Fatal(err)
	}
	// Noise-free prober so the greedy decision is exact.
	p, err := probe.NewProber(nw, probe.Config{Samples: 1}, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// PLSet must include all 3 caches: M*(L-1) = 3 whenever M=1? L=3 -> 2.
	// Use M set so PLSet covers everything: L=3, M=1 gives PLSet size 2 —
	// not deterministic. Instead use the maximal PLSet: L=3, M=1 with 2
	// caches sampled; to keep the check exact we set M so PLSet = all.
	params := Params{L: 3, M: 1}
	// With 3 caches and PLSet size 2, sampling matters; run over seeds and
	// check the greedy invariant rather than one fixed outcome: the chosen
	// set must always have MinDist >= any other same-size subset of its
	// PLSet that includes Os... simplest exact check: when PLSet includes
	// Ec0 and Ec4, greedy must pick Ec0 first (farthest from Os) and the
	// result set {Os, Ec0, Ec4} has MinDist 12.
	for seed := int64(0); seed < 20; seed++ {
		set, err := Greedy{}.Select(p, 3, params, simrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		md, err := MinPairwiseDist(p, set)
		if err != nil {
			t.Fatal(err)
		}
		// Whatever the PLSet, the greedy pick must first add the candidate
		// farthest from Os among the PLSet; the worst possible MinDist over
		// this topology's 2-subsets including the far pair is 8.2.
		if md < 8.19 {
			t.Fatalf("seed %d: greedy MinDist = %v, below the worst admissible value", seed, md)
		}
	}
}

func TestOracleSelector(t *testing.T) {
	_, p := testProber(t, 80, 300)
	params := Params{L: 8, M: 4}
	set, err := Oracle{}.Select(p, 80, params, simrand.New(301))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 8 || !set[0].IsOrigin() {
		t.Fatalf("oracle set = %v", set)
	}
	if (Oracle{}).Name() != "oracle" {
		t.Fatal("oracle name mismatch")
	}
	// Oracle selection is independent of the random source.
	set2, err := Oracle{}.Select(p, 80, params, simrand.New(999))
	if err != nil {
		t.Fatal(err)
	}
	for i := range set {
		if set[i] != set2[i] {
			t.Fatal("oracle selection depends on the random source")
		}
	}
	if _, err := (Oracle{}).Select(p, 80, Params{L: 1, M: 1}, simrand.New(1)); err == nil {
		t.Fatal("bad params accepted")
	}
}

// TestOracleDispersionAtLeastGreedy: over TRUE distances, the oracle's
// min-dispersion must be >= the PLSet-restricted greedy's (it optimizes
// over a superset with exact information).
func TestOracleDispersionAtLeastGreedy(t *testing.T) {
	nw, p := testProber(t, 100, 302)
	params := Params{L: 10, M: 4}
	oracleSet, err := Oracle{}.Select(p, 100, params, simrand.New(303))
	if err != nil {
		t.Fatal(err)
	}
	greedySet, err := Greedy{}.Select(p, 100, params, simrand.New(303))
	if err != nil {
		t.Fatal(err)
	}
	trueMin := func(set []probe.Endpoint) float64 {
		best := math.Inf(1)
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				if d := p.TrueRTT(set[i], set[j]); d < best {
					best = d
				}
			}
		}
		return best
	}
	_ = nw
	if trueMin(oracleSet) < trueMin(greedySet)*0.999 {
		t.Fatalf("oracle dispersion %v below greedy %v", trueMin(oracleSet), trueMin(greedySet))
	}
}
