// Package par provides the shared bounded worker pool used by the probing,
// clustering, embedding, and experiment layers.
//
// All helpers dispatch work by index so callers keep results in
// deterministic, index-addressed slices: parallelism must never leak into
// outcomes, only into wall-clock time. The work channel is buffered to the
// full item count so the producer never blocks behind slow workers.
package par

import "sync"

// DefaultWorkers is the pool size used when a caller passes workers <= 0,
// matching the probing layer's historical default.
const DefaultWorkers = 8

// normalize clamps a requested worker count to [1, n].
func normalize(n, workers int) int {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Workers returns the effective worker count ForEach/ForEachWorker will
// use for n items and the requested bound — the size to allocate for
// per-worker scratch.
func Workers(n, workers int) int {
	if n <= 0 {
		return 0
	}
	return normalize(n, workers)
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines. With workers <= 1 (or n <= 1) it runs inline with no
// goroutines and no channel, so serial callers pay nothing. fn must be safe
// for concurrent invocation when workers > 1.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the worker's identity passed to fn, so
// callers can give each worker private scratch space. Worker IDs are in
// [0, effective workers).
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = normalize(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Buffered to n: the producer enqueues everything up front and never
	// blocks behind a slow worker.
	work := make(chan int, n)
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range work {
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForEachErr runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the error of the lowest index that failed (all
// items run regardless). The error selection is deterministic: which worker
// happened to observe a failure first never changes the result.
func ForEachErr(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEach(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Chunks returns the number of fixed-size chunks covering [0, n). Chunk
// boundaries depend only on n and size — never on the worker count — so
// per-chunk reductions performed in chunk order are bit-identical across
// every parallelism setting.
func Chunks(n, size int) int {
	if n <= 0 || size <= 0 {
		return 0
	}
	return (n + size - 1) / size
}

// ChunkBounds returns the half-open index range [lo, hi) of chunk c for
// fixed chunk size size over n items.
func ChunkBounds(n, size, c int) (lo, hi int) {
	lo = c * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ForEachChunk runs fn(chunk, lo, hi) for every fixed-size chunk of [0, n)
// across at most workers goroutines. Because the chunk structure is a pure
// function of (n, size), any chunk-order reduction over the results is
// invariant to workers.
func ForEachChunk(n, size, workers int, fn func(chunk, lo, hi int)) {
	nc := Chunks(n, size)
	ForEach(nc, workers, func(c int) {
		lo, hi := ChunkBounds(n, size, c)
		fn(c, lo, hi)
	})
}
