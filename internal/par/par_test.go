package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 57
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachWorkerIDsBounded(t *testing.T) {
	var bad atomic.Int32
	ForEachWorker(100, 4, func(worker, _ int) {
		if worker < 0 || worker >= 4 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker id out of range")
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 8} {
		err := ForEachErr(50, workers, func(i int) error {
			switch i {
			case 7:
				return errA
			case 31:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want lowest-index error %v", workers, err, errA)
		}
	}
	if err := ForEachErr(10, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestChunkStructureIndependentOfWorkers(t *testing.T) {
	n, size := 103, 16
	want := Chunks(n, size)
	if want != 7 {
		t.Fatalf("Chunks(103,16) = %d, want 7", want)
	}
	covered := make([]bool, n)
	for c := 0; c < want; c++ {
		lo, hi := ChunkBounds(n, size, c)
		if lo >= hi {
			t.Fatalf("chunk %d empty: [%d,%d)", c, lo, hi)
		}
		for i := lo; i < hi; i++ {
			if covered[i] {
				t.Fatalf("index %d covered twice", i)
			}
			covered[i] = true
		}
	}
	for i, ok := range covered {
		if !ok {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestForEachChunkMatchesBounds(t *testing.T) {
	n, size := 70, 9
	seen := make([]int32, n)
	ForEachChunk(n, size, 4, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, h := range seen {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}
