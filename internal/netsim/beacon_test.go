package netsim

import (
	"math"
	"testing"

	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/workload"
)

func beaconConfig(b int) Config {
	cfg := exactConfig()
	cfg.BeaconsPerGroup = b
	return cfg
}

func TestBeaconConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BeaconsPerGroup = -1
	if err := cfg.Validate(5); err == nil {
		t.Fatal("negative beacons accepted")
	}
}

func TestChooseBeaconsPicksCentralMembers(t *testing.T) {
	// Line: o -10- c0 -10- c1 -10- c2; c1 is the most central of {0,1,2}.
	g := topology.NewGraph()
	o := g.AddNode(topology.KindStub, 0)
	var nodes []topology.NodeID
	prev := o
	for i := 0; i < 3; i++ {
		n := g.AddNode(topology.KindStub, 0)
		if err := g.AddEdge(prev, n, 10); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		prev = n
	}
	nw, err := topology.NewNetworkAt(g, o, nodes)
	if err != nil {
		t.Fatal(err)
	}
	members := []topology.CacheIndex{0, 1, 2}
	got := chooseBeacons(nw, members, make([]bool, 3), 1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("beacon = %v, want [1]", got)
	}
	// Failed central member: the next-best live member is chosen.
	failed := make([]bool, 3)
	failed[1] = true
	got = chooseBeacons(nw, members, failed, 1)
	if len(got) != 1 || got[0] == 1 {
		t.Fatalf("beacon with failed center = %v", got)
	}
	// Requesting more beacons than live members clamps.
	got = chooseBeacons(nw, members, failed, 5)
	if len(got) != 2 {
		t.Fatalf("clamped beacons = %v", got)
	}
}

func TestBeaconModeExactLatencies(t *testing.T) {
	// o -10- c0 -10- c1; both in one group; with one beacon the central
	// member is c0 (symmetric pair, tie broken by index).
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, oneGroup(), cat, beaconConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	requests := []workload.Request{
		// c0 is the beacon itself: no directory leg. Group empty ->
		// origin: 1 + 5 + 2*10 = 26.
		req(1, 0, 0),
		// c1 -> beacon c0 (RTT 10) + group hit at c0 (2*10): 1+10+20 = 31.
		req(2, 1, 0),
		// c1 local hit after its fetch completes: 1.
		req(3, 1, 0),
	}
	rep, err := sim.Run(requests, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OriginFetches != 1 || rep.GroupHits != 1 || rep.LocalHits != 1 {
		t.Fatalf("hit mix = %d/%d/%d", rep.LocalHits, rep.GroupHits, rep.OriginFetches)
	}
	wantMean := (26.0 + 31 + 1) / 3
	if math.Abs(rep.MeanLatency()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", rep.MeanLatency(), wantMean)
	}
}

func TestBeaconModeMissPaysDirectoryLeg(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, oneGroup(), cat, beaconConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// c1 misses everywhere: beacon leg (10) + origin (5 + 2*20): 1+10+45=56.
	rep, err := sim.Run([]workload.Request{req(1, 1, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeanLatency()-56) > 1e-9 {
		t.Fatalf("miss latency = %v, want 56", rep.MeanLatency())
	}
}

func TestBeaconModeEndToEnd(t *testing.T) {
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(130))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 60}, simrand.New(131))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := workload.NewCatalog(workload.DefaultCatalogParams(), simrand.New(132))
	if err != nil {
		t.Fatal(err)
	}
	tp := workload.TraceParams{DurationSec: 200, RequestRatePerCache: 1, Similarity: 0.85}
	reqs, err := workload.GenerateRequests(cat, 60, tp, simrand.New(133))
	if err != nil {
		t.Fatal(err)
	}
	groups := make([][]topology.CacheIndex, 6)
	for i := 0; i < 60; i++ {
		groups[i%6] = append(groups[i%6], topology.CacheIndex(i))
	}
	cfg := DefaultConfig()
	cfg.BeaconsPerGroup = 2
	sim, err := New(nw, groups, cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GroupHits == 0 {
		t.Fatal("beacon mode produced no group hits")
	}
	if rep.MeanLatency() <= 0 {
		t.Fatal("degenerate latency")
	}
}
