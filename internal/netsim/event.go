// Package netsim implements a discrete event simulator for the cooperative
// edge cache network (the paper's evaluation substrate, §5). Edge caches
// are driven by request logs; the origin server replays an update log;
// caches inside a cooperative group handle misses cooperatively before
// falling back to the origin server.
package netsim

import (
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/workload"
)

// eventKind discriminates simulator events.
type eventKind int

const (
	evRequest eventKind = iota + 1
	evUpdate
	evFetchComplete
)

// event is one entry in the simulation's event queue.
type event struct {
	timeSec float64
	seq     int64 // tie-breaker for deterministic ordering
	kind    eventKind
	cache   topology.CacheIndex
	doc     workload.DocID
	version int64 // version carried by fetch completions
}

// eventQueue is a min-heap over (timeSec, seq). The heap operations work on
// the concrete event type directly rather than through container/heap,
// whose interface{} parameters box every pushed and popped event — two heap
// allocations per simulated event on the hot path.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) less(i, j int) bool {
	if q[i].timeSec != q[j].timeSec {
		return q[i].timeSec < q[j].timeSec
	}
	return q[i].seq < q[j].seq
}

// push adds ev and restores the heap invariant.
func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The queue must be non-empty.
func (q *eventQueue) pop() event {
	h := *q
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return ev
}
