// Package netsim implements a discrete event simulator for the cooperative
// edge cache network (the paper's evaluation substrate, §5). Edge caches
// are driven by request logs; the origin server replays an update log;
// caches inside a cooperative group handle misses cooperatively before
// falling back to the origin server.
package netsim

import (
	"container/heap"

	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/workload"
)

// eventKind discriminates simulator events.
type eventKind int

const (
	evRequest eventKind = iota + 1
	evUpdate
	evFetchComplete
)

// event is one entry in the simulation's event queue.
type event struct {
	timeSec float64
	seq     int64 // tie-breaker for deterministic ordering
	kind    eventKind
	cache   topology.CacheIndex
	doc     workload.DocID
	version int64 // version carried by fetch completions
}

// eventQueue is a min-heap over (timeSec, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].timeSec != q[j].timeSec {
		return q[i].timeSec < q[j].timeSec
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}

var _ heap.Interface = (*eventQueue)(nil)
