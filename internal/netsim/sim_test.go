package netsim

import (
	"math"
	"strings"
	"testing"

	"edgecachegroups/internal/cache"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/workload"
)

// lineNetwork builds o -10- c0 -10- c1.
func lineNetwork(t *testing.T) *topology.Network {
	t.Helper()
	g := topology.NewGraph()
	o := g.AddNode(topology.KindStub, 0)
	c0 := g.AddNode(topology.KindStub, 0)
	c1 := g.AddNode(topology.KindStub, 0)
	if err := g.AddEdge(o, c0, 10); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(c0, c1, 10); err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetworkAt(g, o, []topology.NodeID{c0, c1})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// fixedCatalog builds a catalog of n static docs of exactly 10KB each.
func fixedCatalog(t *testing.T, n int) *workload.Catalog {
	t.Helper()
	params := workload.CatalogParams{
		NumDocuments:    n,
		ZipfAlpha:       0.8,
		MeanSizeKB:      10,
		SizeSigma:       0,
		DynamicFraction: 0,
	}
	c, err := workload.NewCatalog(params, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// exactConfig removes size-proportional costs for analytic latencies.
func exactConfig() Config {
	return Config{
		LocalHitMS:         1,
		OriginProcessingMS: 5,
		RTTsPerTransfer:    2,
		PerKBMS:            0,
		GroupLookupFactor:  1,
		CacheCapacityKB:    1000,
	}
}

func oneGroup() [][]topology.CacheIndex {
	return [][]topology.CacheIndex{{0, 1}}
}

func singletons() [][]topology.CacheIndex {
	return [][]topology.CacheIndex{{0}, {1}}
}

func req(t float64, c topology.CacheIndex, d workload.DocID) workload.Request {
	return workload.Request{TimeSec: t, Cache: c, Doc: d}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(10); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative local hit", func(c *Config) { c.LocalHitMS = -1 }},
		{"negative origin", func(c *Config) { c.OriginProcessingMS = -1 }},
		{"zero transfer", func(c *Config) { c.RTTsPerTransfer = 0 }},
		{"negative per kb", func(c *Config) { c.PerKBMS = -1 }},
		{"negative lookup", func(c *Config) { c.GroupLookupFactor = -1 }},
		{"zero capacity", func(c *Config) { c.CacheCapacityKB = 0 }},
		{"negative warmup", func(c *Config) { c.WarmupSec = -1 }},
		{"bad failed cache", func(c *Config) { c.FailedCaches = []topology.CacheIndex{10} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(10); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestNewValidatesPartition(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	cfg := exactConfig()
	tests := []struct {
		name   string
		groups [][]topology.CacheIndex
	}{
		{"missing cache", [][]topology.CacheIndex{{0}}},
		{"duplicate cache", [][]topology.CacheIndex{{0, 1}, {1}}},
		{"out of range", [][]topology.CacheIndex{{0, 1, 2}}},
		{"negative", [][]topology.CacheIndex{{0, -1}, {1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(nw, tt.groups, cat, cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	if _, err := New(nil, oneGroup(), cat, cfg); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := New(nw, oneGroup(), nil, cfg); err == nil {
		t.Fatal("nil catalog accepted")
	}
}

func TestExactLatencies(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	requests := []workload.Request{
		req(1, 0, 0), // miss everywhere: 1 + lookup(10) + 5 + 2*10 = 36
		req(2, 0, 0), // local hit: 1
		req(3, 1, 0), // group hit at c0: 1 + 2*10 = 21
	}
	rep, err := sim.Run(requests, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests() != 3 {
		t.Fatalf("requests = %d", rep.Requests())
	}
	if rep.LocalHits != 1 || rep.GroupHits != 1 || rep.OriginFetches != 1 {
		t.Fatalf("hits = %d/%d/%d", rep.LocalHits, rep.GroupHits, rep.OriginFetches)
	}
	wantMean := (36.0 + 1 + 21) / 3
	if math.Abs(rep.MeanLatency()-wantMean) > 1e-9 {
		t.Fatalf("mean latency = %v, want %v", rep.MeanLatency(), wantMean)
	}
	// Per-cache means.
	if got := rep.MeanLatencyOf([]topology.CacheIndex{0}); math.Abs(got-18.5) > 1e-9 {
		t.Fatalf("c0 mean = %v, want 18.5", got)
	}
	if got := rep.MeanLatencyOf([]topology.CacheIndex{1}); math.Abs(got-21) > 1e-9 {
		t.Fatalf("c1 mean = %v, want 21", got)
	}
}

func TestSingletonGroupsSkipLookupCost(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, singletons(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run([]workload.Request{req(1, 0, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 5 + 2*10 = 26, no group lookup.
	if math.Abs(rep.MeanLatency()-26) > 1e-9 {
		t.Fatalf("mean = %v, want 26", rep.MeanLatency())
	}
	if rep.OriginFetches != 1 || rep.GroupHits != 0 {
		t.Fatalf("counters = %+v", rep)
	}
}

func TestUpdateInvalidatesCachedCopy(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, singletons(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	requests := []workload.Request{
		req(1, 0, 0), // origin fetch
		req(2, 0, 0), // local hit
		req(4, 0, 0), // after update at t=3: consistency miss -> origin
	}
	updates := []workload.Update{{TimeSec: 3, Doc: 0}}
	rep, err := sim.Run(requests, updates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LocalHits != 1 || rep.OriginFetches != 2 {
		t.Fatalf("local=%d origin=%d, want 1/2", rep.LocalHits, rep.OriginFetches)
	}
	if rep.Updates != 1 {
		t.Fatalf("updates = %d", rep.Updates)
	}
	st, err := sim.CacheStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.StaleDrops != 1 {
		t.Fatalf("stale drops = %d, want 1", st.StaleDrops)
	}
}

func TestInFlightFetchDiscardedOnUpdate(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, singletons(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fetch for the request at t=1 completes at t=1.026; the update at
	// t=1.01 must prevent the stale copy from being cached, so the request
	// at t=2 is another origin fetch.
	requests := []workload.Request{req(1, 0, 0), req(2, 0, 0)}
	updates := []workload.Update{{TimeSec: 1.01, Doc: 0}}
	rep, err := sim.Run(requests, updates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LocalHits != 0 || rep.OriginFetches != 2 {
		t.Fatalf("local=%d origin=%d, want 0/2", rep.LocalHits, rep.OriginFetches)
	}
}

func TestGroupPeerServesAfterFetchCompletes(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The second request arrives before c0's fetch completes, so it misses
	// the group too and fetches from the origin itself; by t=2 its own copy
	// has arrived, so the third request is a local hit.
	requests := []workload.Request{
		req(1, 0, 0),
		req(1.001, 1, 0), // c0 fetch completes at ~1.036 -> group miss
		req(2, 1, 0),     // served from c1's own copy now
	}
	rep, err := sim.Run(requests, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GroupHits != 0 || rep.OriginFetches != 2 || rep.LocalHits != 1 {
		t.Fatalf("group=%d origin=%d local=%d, want 0/2/1", rep.GroupHits, rep.OriginFetches, rep.LocalHits)
	}
}

func TestFailedCacheFailsOverToOrigin(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	cfg := exactConfig()
	cfg.FailedCaches = []topology.CacheIndex{0}
	sim, err := New(nw, oneGroup(), cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requests := []workload.Request{
		req(1, 0, 0), // failed cache: failover, 5 + 2*10 = 25
		req(2, 1, 0), // c1's only peer is failed: direct origin (no lookup), 1+5+2*20=46
		req(3, 1, 0), // local hit
	}
	rep, err := sim.Run(requests, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailoverFetches != 1 {
		t.Fatalf("failover = %d", rep.FailoverFetches)
	}
	if rep.OriginFetches != 1 || rep.LocalHits != 1 {
		t.Fatalf("origin=%d local=%d", rep.OriginFetches, rep.LocalHits)
	}
	// c1 must have zero lookup overhead (its one peer is down).
	if got := rep.PerCache[1].Max(); math.Abs(got-46) > 1e-9 {
		t.Fatalf("c1 max latency = %v, want 46", got)
	}
}

func TestWarmupExcludesSamples(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	cfg := exactConfig()
	cfg.WarmupSec = 1.5
	sim, err := New(nw, singletons(), cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run([]workload.Request{req(1, 0, 0), req(2, 0, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests() != 1 {
		t.Fatalf("recorded %d requests, want 1 (warmup)", rep.Requests())
	}
	// The warm-up request still warmed the cache: the recorded one is a hit.
	if rep.LocalHits != 1 {
		t.Fatalf("local hits = %d, want 1", rep.LocalHits)
	}
}

func TestRunTwiceFails(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(nil, nil); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestRunValidatesEvents(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run([]workload.Request{req(1, 5, 0)}, nil); err == nil {
		t.Fatal("bad cache index accepted")
	}
	sim2, err := New(nw, oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim2.Run([]workload.Request{req(1, 0, 99)}, nil); err == nil {
		t.Fatal("bad doc accepted")
	}
	sim3, err := New(nw, oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim3.Run(nil, []workload.Update{{TimeSec: 1, Doc: 99}}); err == nil {
		t.Fatal("bad update doc accepted")
	}
}

func TestCacheStatsRange(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.CacheStats(5); err == nil {
		t.Fatal("out-of-range CacheStats accepted")
	}
}

func TestHitRatesAndString(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run([]workload.Request{req(1, 0, 0), req(2, 0, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, g, o := rep.HitRates()
	if math.Abs(l-0.5) > 1e-9 || g != 0 || math.Abs(o-0.5) > 1e-9 {
		t.Fatalf("hit rates = %v/%v/%v", l, g, o)
	}
	if !strings.Contains(rep.String(), "requests=2") {
		t.Fatalf("String() = %q", rep.String())
	}
	var empty Report
	l, g, o = empty.HitRates()
	if l != 0 || g != 0 || o != 0 {
		t.Fatal("empty report hit rates not zero")
	}
}

// TestEndToEndRealisticRun exercises the full pipeline on a generated
// topology and workload and checks global sanity properties.
func TestEndToEndRealisticRun(t *testing.T) {
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(90))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 60}, simrand.New(91))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := workload.NewCatalog(workload.DefaultCatalogParams(), simrand.New(92))
	if err != nil {
		t.Fatal(err)
	}
	tp := workload.TraceParams{DurationSec: 200, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := workload.GenerateRequests(cat, 60, tp, simrand.New(93))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := workload.GenerateUpdates(cat, 200, simrand.New(94))
	if err != nil {
		t.Fatal(err)
	}
	// 6 groups of 10 by index (not proximity-aware; fine for sanity).
	groups := make([][]topology.CacheIndex, 6)
	for i := 0; i < 60; i++ {
		groups[i%6] = append(groups[i%6], topology.CacheIndex(i))
	}
	sim, err := New(nw, groups, cat, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(reqs, ups)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests() != int64(len(reqs)) {
		t.Fatalf("recorded %d of %d requests", rep.Requests(), len(reqs))
	}
	if rep.LocalHits == 0 || rep.GroupHits == 0 || rep.OriginFetches == 0 {
		t.Fatalf("degenerate hit mix: %s", rep)
	}
	if rep.Updates != int64(len(ups)) {
		t.Fatalf("applied %d of %d updates", rep.Updates, len(ups))
	}
	if rep.MeanLatency() <= 0 {
		t.Fatal("non-positive mean latency")
	}
}

// TestCooperationHelpsFarCaches: at realistic cache density, cooperative
// groups of mutually proximate caches must reduce mean latency versus
// singleton groups (the paper's premise for why groups exist at all).
func TestCooperationHelpsFarCaches(t *testing.T) {
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(95))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 150}, simrand.New(96))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := workload.NewCatalog(workload.DefaultCatalogParams(), simrand.New(97))
	if err != nil {
		t.Fatal(err)
	}
	tp := workload.TraceParams{DurationSec: 300, RequestRatePerCache: 1, Similarity: 0.85}
	reqs, err := workload.GenerateRequests(cat, 150, tp, simrand.New(98))
	if err != nil {
		t.Fatal(err)
	}

	run := func(groups [][]topology.CacheIndex) float64 {
		sim, err := New(nw, groups, cat, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(reqs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanLatency()
	}

	solo := make([][]topology.CacheIndex, 150)
	for i := range solo {
		solo[i] = []topology.CacheIndex{topology.CacheIndex(i)}
	}
	soloLat := run(solo)

	// Mutually-proximate groups of 8: repeatedly seed a group with an
	// unassigned cache and add its 7 nearest unassigned neighbours.
	assigned := make([]bool, 150)
	var grouped [][]topology.CacheIndex
	for seed := 0; seed < 150; seed++ {
		if assigned[seed] {
			continue
		}
		group := []topology.CacheIndex{topology.CacheIndex(seed)}
		assigned[seed] = true
		for len(group) < 8 {
			best := -1
			var bestD float64
			for j := 0; j < 150; j++ {
				if assigned[j] {
					continue
				}
				d := nw.Dist(topology.CacheIndex(seed), topology.CacheIndex(j))
				if best < 0 || d < bestD {
					best, bestD = j, d
				}
			}
			if best < 0 {
				break
			}
			assigned[best] = true
			group = append(group, topology.CacheIndex(best))
		}
		grouped = append(grouped, group)
	}
	groupLat := run(grouped)

	if groupLat >= soloLat {
		t.Fatalf("cooperation did not help: grouped %vms vs solo %vms", groupLat, soloLat)
	}
}

func TestPerGroupStats(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	requests := []workload.Request{
		req(1, 0, 0), // origin fetch (36ms)
		req(2, 0, 0), // local hit (1ms)
		req(3, 1, 0), // group hit (21ms)
	}
	rep, err := sim.Run(requests, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerGroup) != 1 {
		t.Fatalf("PerGroup has %d entries, want 1", len(rep.PerGroup))
	}
	g := rep.PerGroup[0]
	if g.Requests != 3 || g.LocalHits != 1 || g.GroupHits != 1 || g.OriginFetches != 1 {
		t.Fatalf("group stats = %+v", g)
	}
	wantMean := (36.0 + 1 + 21) / 3
	if math.Abs(g.MeanLatency()-wantMean) > 1e-9 {
		t.Fatalf("group mean latency = %v, want %v", g.MeanLatency(), wantMean)
	}
	if math.Abs(g.GroupHitRate()-1.0/3) > 1e-9 {
		t.Fatalf("group hit rate = %v, want 1/3", g.GroupHitRate())
	}
}

func TestPerGroupStatsSplitAcrossGroups(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	sim, err := New(nw, singletons(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run([]workload.Request{req(1, 0, 0), req(2, 1, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerGroup) != 2 {
		t.Fatalf("PerGroup has %d entries, want 2", len(rep.PerGroup))
	}
	if rep.PerGroup[0].Requests != 1 || rep.PerGroup[1].Requests != 1 {
		t.Fatalf("per-group requests = %d/%d", rep.PerGroup[0].Requests, rep.PerGroup[1].Requests)
	}
	var empty GroupStat
	if empty.MeanLatency() != 0 || empty.GroupHitRate() != 0 {
		t.Fatal("empty GroupStat should report zeros")
	}
}

func TestOriginLoadAccounting(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3) // every doc exactly 10KB
	sim, err := New(nw, oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	requests := []workload.Request{
		req(1, 0, 0), // origin fetch: +10KB
		req(2, 0, 0), // local hit: no origin traffic
		req(3, 1, 0), // group hit: no origin traffic
	}
	rep, err := sim.Run(requests, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.OriginKB-10) > 1e-9 {
		t.Fatalf("OriginKB = %v, want 10", rep.OriginKB)
	}
}

func TestCachePolicyConfig(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	cfg := exactConfig()
	cfg.CachePolicy = cache.PolicyLRU
	if _, err := New(nw, oneGroup(), cat, cfg); err != nil {
		t.Fatalf("LRU policy rejected: %v", err)
	}
	cfg.CachePolicy = cache.Policy(9)
	if _, err := New(nw, oneGroup(), cat, cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestUtilityPolicyBeatsLRUOnDynamicWorkload: under a skewed workload with
// dynamic documents and far-away caches, utility-based replacement should
// produce at least as good latency as plain LRU (the Cache Clouds result).
func TestUtilityPolicyNotWorseThanLRU(t *testing.T) {
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(120))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 60}, simrand.New(121))
	if err != nil {
		t.Fatal(err)
	}
	catParams := workload.DefaultCatalogParams()
	catParams.SizeSigma = 1.2 // strong size variance: utility has signal
	cat, err := workload.NewCatalog(catParams, simrand.New(122))
	if err != nil {
		t.Fatal(err)
	}
	tp := workload.TraceParams{DurationSec: 300, RequestRatePerCache: 1, Similarity: 0.85}
	reqs, err := workload.GenerateRequests(cat, 60, tp, simrand.New(123))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := workload.GenerateUpdates(cat, 300, simrand.New(124))
	if err != nil {
		t.Fatal(err)
	}
	groups := make([][]topology.CacheIndex, 6)
	for i := 0; i < 60; i++ {
		groups[i%6] = append(groups[i%6], topology.CacheIndex(i))
	}
	run := func(p cache.Policy) float64 {
		cfg := DefaultConfig()
		cfg.CachePolicy = p
		sim, err := New(nw, groups, cat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(reqs, ups)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanLatency()
	}
	utility := run(cache.PolicyUtility)
	lru := run(cache.PolicyLRU)
	if utility > lru*1.05 {
		t.Fatalf("utility policy latency %v clearly worse than LRU %v", utility, lru)
	}
}

// TestSimulatorDeterministic: identical inputs yield bit-identical reports.
func TestSimulatorDeterministic(t *testing.T) {
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(140))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 30}, simrand.New(141))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := workload.NewCatalog(workload.DefaultCatalogParams(), simrand.New(142))
	if err != nil {
		t.Fatal(err)
	}
	tp := workload.TraceParams{DurationSec: 100, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := workload.GenerateRequests(cat, 30, tp, simrand.New(143))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := workload.GenerateUpdates(cat, 100, simrand.New(144))
	if err != nil {
		t.Fatal(err)
	}
	groups := make([][]topology.CacheIndex, 5)
	for i := 0; i < 30; i++ {
		groups[i%5] = append(groups[i%5], topology.CacheIndex(i))
	}
	run := func() *Report {
		sim, err := New(nw, groups, cat, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(reqs, ups)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.MeanLatency() != b.MeanLatency() || a.Requests() != b.Requests() ||
		a.LocalHits != b.LocalHits || a.GroupHits != b.GroupHits ||
		a.OriginFetches != b.OriginFetches || a.OriginKB != b.OriginKB {
		t.Fatalf("simulator not deterministic:\n%s\n%s", a, b)
	}
	for g := range a.PerGroup {
		if a.PerGroup[g] != b.PerGroup[g] {
			t.Fatalf("per-group stats differ for group %d", g)
		}
	}
}

func TestPushInvalidationAccounting(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	cfg := exactConfig()
	cfg.PushInvalidation = true
	sim, err := New(nw, oneGroup(), cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requests := []workload.Request{
		req(1, 0, 0), // c0 fetches doc 0
		req(2, 1, 0), // c1 group-hits and caches it too
		req(4, 0, 0), // after push invalidation at t=3: origin again
	}
	updates := []workload.Update{{TimeSec: 3, Doc: 0}}
	rep, err := sim.Run(requests, updates)
	if err != nil {
		t.Fatal(err)
	}
	// Both caches held doc 0 in one group: 1 origin message + 1 forward.
	if rep.InvalidationsOrigin != 1 || rep.InvalidationsForwarded != 1 {
		t.Fatalf("invalidation msgs = %d origin / %d forwarded, want 1/1",
			rep.InvalidationsOrigin, rep.InvalidationsForwarded)
	}
	// The copies are gone: the request at t=4 is an origin fetch, and the
	// cache records no stale drop (eager, not lazy, invalidation).
	if rep.OriginFetches != 2 {
		t.Fatalf("origin fetches = %d, want 2", rep.OriginFetches)
	}
	st, err := sim.CacheStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.StaleDrops != 0 {
		t.Fatalf("push mode left lazy stale drops: %d", st.StaleDrops)
	}
}

func TestPushInvalidationSavesOriginMessages(t *testing.T) {
	// 4 caches in 2 groups, all holding the same doc: per-cache push would
	// cost 4 origin messages; group push costs 2 (+2 forwards).
	g := topology.NewGraph()
	o := g.AddNode(topology.KindStub, 0)
	var nodes []topology.NodeID
	prev := o
	for i := 0; i < 4; i++ {
		n := g.AddNode(topology.KindStub, 0)
		if err := g.AddEdge(prev, n, 5); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		prev = n
	}
	nw, err := topology.NewNetworkAt(g, o, nodes)
	if err != nil {
		t.Fatal(err)
	}
	cat := fixedCatalog(t, 2)
	cfg := exactConfig()
	cfg.PushInvalidation = true
	groups := [][]topology.CacheIndex{{0, 1}, {2, 3}}
	sim, err := New(nw, groups, cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var requests []workload.Request
	for i := 0; i < 4; i++ {
		requests = append(requests, req(float64(i+1), topology.CacheIndex(i), 0))
	}
	updates := []workload.Update{{TimeSec: 10, Doc: 0}}
	rep, err := sim.Run(requests, updates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InvalidationsOrigin != 2 {
		t.Fatalf("origin invalidations = %d, want 2 (one per group)", rep.InvalidationsOrigin)
	}
	if rep.InvalidationsOrigin+rep.InvalidationsForwarded != 4 {
		t.Fatalf("total invalidation msgs = %d, want 4 (all holders)",
			rep.InvalidationsOrigin+rep.InvalidationsForwarded)
	}
}

func TestWarmupExcludesUpdatesAndInvalidations(t *testing.T) {
	// Update accounting must honor the same warm-up cutoff as request
	// accounting: the update at t=1 (inside warm-up) still invalidates the
	// cached copies — the recorded request at t=2 goes back to the origin —
	// but it must not appear in Updates or the invalidation-message
	// counters. Only the update at t=3 is recorded.
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	cfg := exactConfig()
	cfg.WarmupSec = 1.5
	cfg.PushInvalidation = true
	sim, err := New(nw, oneGroup(), cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requests := []workload.Request{
		req(0.2, 0, 0), // warm-up: c0 fetches doc 0 from the origin
		req(0.5, 1, 0), // warm-up: c1 group-hits and caches a copy
		req(2.0, 0, 0), // recorded: origin again (warm-up update invalidated)
		req(2.5, 1, 0), // recorded: group hit, c1 holds a copy again
		req(4.0, 0, 0), // recorded: origin again after the recorded update
	}
	updates := []workload.Update{
		{TimeSec: 1, Doc: 0}, // warm-up: invalidates, but is not counted
		{TimeSec: 3, Doc: 0}, // recorded
	}
	rep, err := sim.Run(requests, updates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests() != 3 {
		t.Fatalf("recorded %d requests, want 3", rep.Requests())
	}
	if rep.OriginFetches != 2 || rep.GroupHits != 1 {
		t.Fatalf("origin=%d group=%d, want 2/1 (warm-up update must still invalidate)", rep.OriginFetches, rep.GroupHits)
	}
	if rep.Updates != 1 {
		t.Fatalf("Updates = %d, want 1 (warm-up update leaked into the count)", rep.Updates)
	}
	// At t=3 both caches in the one group hold doc 0: one origin message
	// plus one intra-group forward. The warm-up invalidation contributes
	// nothing.
	if rep.InvalidationsOrigin != 1 || rep.InvalidationsForwarded != 1 {
		t.Fatalf("invalidation msgs = %d origin / %d forwarded, want 1/1",
			rep.InvalidationsOrigin, rep.InvalidationsForwarded)
	}
}

func TestRequestPathAllocationLean(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 4)
	s, err := New(nw, oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.ran = true // drive handleRequest directly; Run must not be reused
	// Cache 1 holds doc 0, so cache 0's requests exercise the longest path:
	// local miss, holder scan, group hit, fetch scheduling.
	d, err := cat.Doc(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.caches[1].Insert(d, 0, 0); err != nil {
		t.Fatal(err)
	}
	sh := &simShard{queue: make(eventQueue, 0, 4096), seq: 1}
	ev := event{timeSec: 1, kind: evRequest, cache: 0, doc: 0}
	avg := testing.AllocsPerRun(500, func() {
		s.handleRequest(sh, ev)
		sh.queue = sh.queue[:0] // discard scheduled fetch completions
		sh.recs = sh.recs[:0]   // discard the recorded fragment
	})
	// The only remaining allocation is the amortized growth of the shard's
	// record fragment; everything else runs on reused scratch.
	if avg >= 1 {
		t.Fatalf("request path averaged %v allocs/request, want < 1", avg)
	}
}

func TestPushInvalidateAllocationFree(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 4)
	cfg := exactConfig()
	cfg.PushInvalidation = true
	s, err := New(nw, oneGroup(), cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One priming round with a real holder exercises the touched-group
	// bookkeeping and leaves the scratch buffers at their working size.
	d, err := cat.Doc(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.caches[0].Insert(d, 0, 0); err != nil {
		t.Fatal(err)
	}
	rep := newReport(2, 1, s.groupOf)
	s.pushInvalidate(1, rep, true)
	if rep.InvalidationsOrigin != 1 {
		t.Fatalf("priming round recorded %d origin invalidations, want 1", rep.InvalidationsOrigin)
	}
	// The sweep itself must not allocate (the old implementation built a
	// fresh map per update even when nothing was held).
	avg := testing.AllocsPerRun(200, func() {
		s.pushInvalidate(1, rep, true)
	})
	if avg != 0 {
		t.Fatalf("pushInvalidate averaged %v allocs/update, want 0", avg)
	}
}
