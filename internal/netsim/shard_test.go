package netsim

import (
	"strings"
	"testing"

	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/workload"
)

// realisticWorkload builds a 60-cache transit-stub network with generated
// request/update logs and 6 index-dealt groups — enough groups, fetch
// completions, and cross-window updates to exercise every sharding path.
func realisticWorkload(t *testing.T, seed int64) (*topology.Network, *workload.Catalog, [][]topology.CacheIndex, []workload.Request, []workload.Update) {
	t.Helper()
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 60}, simrand.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := workload.NewCatalog(workload.DefaultCatalogParams(), simrand.New(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	tp := workload.TraceParams{DurationSec: 120, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := workload.GenerateRequests(cat, 60, tp, simrand.New(seed+3))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := workload.GenerateUpdates(cat, 120, simrand.New(seed+4))
	if err != nil {
		t.Fatal(err)
	}
	groups := make([][]topology.CacheIndex, 6)
	for i := 0; i < 60; i++ {
		groups[i%6] = append(groups[i%6], topology.CacheIndex(i))
	}
	return nw, cat, groups, reqs, ups
}

// TestShardCountChecksumInvariant pins the sharding contract: the merged
// Report must be bit-identical to the serial run at any shard count, across
// every simulator mode (plain, push invalidation, warmup plus failures,
// beacon cooperation).
func TestShardCountChecksumInvariant(t *testing.T) {
	nw, cat, groups, reqs, ups := realisticWorkload(t, 200)
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"default", func(*Config) {}},
		{"push-invalidation", func(c *Config) { c.PushInvalidation = true }},
		{"warmup-failures", func(c *Config) {
			c.WarmupSec = 30
			c.FailedCaches = []topology.CacheIndex{3, 17, 41}
		}},
		{"beacons", func(c *Config) { c.BeaconsPerGroup = 2 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			run := func(shards int) *Report {
				cfg := DefaultConfig()
				cfg.Verify = true
				v.mutate(&cfg)
				cfg.Shards = shards
				sim, err := New(nw, groups, cat, cfg)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := sim.Run(reqs, ups)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			base := run(1)
			for _, n := range []int{2, 4, 8} {
				rep := run(n)
				if got, want := rep.Checksum(), base.Checksum(); got != want {
					t.Fatalf("Shards=%d checksum %016x != serial %016x", n, got, want)
				}
				if rep.MeanLatency() != base.MeanLatency() {
					t.Fatalf("Shards=%d mean latency %v != serial %v", n, rep.MeanLatency(), base.MeanLatency())
				}
				if rep.OriginKB != base.OriginKB {
					t.Fatalf("Shards=%d OriginKB %v != serial %v", n, rep.OriginKB, base.OriginKB)
				}
			}
		})
	}
}

// TestShardedTraceOrderMatchesSerial: TraceFn must observe the exact serial
// trace stream — same order, same fields — regardless of shard count.
func TestShardedTraceOrderMatchesSerial(t *testing.T) {
	nw, cat, groups, reqs, ups := realisticWorkload(t, 210)
	collect := func(shards int) []RequestTrace {
		var traces []RequestTrace
		cfg := DefaultConfig()
		cfg.Shards = shards
		cfg.TraceFn = func(tr RequestTrace) { traces = append(traces, tr) }
		sim, err := New(nw, groups, cat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(reqs, ups); err != nil {
			t.Fatal(err)
		}
		return traces
	}
	serial := collect(1)
	sharded := collect(4)
	if len(serial) != len(sharded) {
		t.Fatalf("trace counts differ: serial %d, sharded %d", len(serial), len(sharded))
	}
	if len(serial) == 0 {
		t.Fatal("no traces recorded")
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("trace %d differs:\nserial  %+v\nsharded %+v", i, serial[i], sharded[i])
		}
	}
}

// TestShardHammer re-runs a sharded simulation repeatedly so the race
// detector sees the window fan-out many times, and checks the checksum
// never wavers between repetitions.
func TestShardHammer(t *testing.T) {
	nw, cat, groups, reqs, ups := realisticWorkload(t, 300)
	run := func() uint64 {
		cfg := DefaultConfig()
		cfg.PushInvalidation = true
		cfg.Shards = 8
		sim, err := New(nw, groups, cat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(reqs, ups)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Checksum()
	}
	first := run()
	for trial := 1; trial < 3; trial++ {
		if got := run(); got != first {
			t.Fatalf("trial %d checksum %016x != first %016x", trial, got, first)
		}
	}
}

func TestShardsConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = -1
	if err := cfg.Validate(10); err == nil || !strings.Contains(err.Error(), "Shards") {
		t.Fatalf("negative Shards not rejected: %v", err)
	}
}

// TestShardStagesRecorded: a sharded run must expose per-shard event
// counts, the window count, and the shard parallelism in Stages.
func TestShardStagesRecorded(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	cfg := exactConfig()
	cfg.Shards = 8 // clamps to the 2 singleton groups
	sim, err := New(nw, singletons(), cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []workload.Request{req(1, 0, 0), req(2, 1, 1), req(3, 0, 2)}
	ups := []workload.Update{{TimeSec: 2.5, Doc: 0}}
	if _, err := sim.Run(reqs, ups); err != nil {
		t.Fatal(err)
	}
	stats := make(map[string]int64)
	par := 0
	for _, st := range sim.Stages().Snapshot() {
		stats[st.Name] = st.Items
		if st.Name == "simulate" {
			par = st.Parallelism
		}
	}
	if par != 2 {
		t.Fatalf("simulate parallelism = %d, want 2 (Shards clamped to groups)", par)
	}
	// Each request schedules a fetch completion on a cold cache, so the
	// shards process 2 events per request: 6 total across both shards.
	if got := stats["sim-shard-0"] + stats["sim-shard-1"]; got != 6 {
		t.Fatalf("per-shard event counts sum to %d, want 6", got)
	}
	if stats["sim-windows"] < 1 {
		t.Fatalf("sim-windows = %d, want >= 1", stats["sim-windows"])
	}
}

// TestMeanLatencyOfMatchesOverallMean pins the report-merge fix: over all
// caches, MeanLatencyOf must equal Overall.Mean() exactly. The old
// implementation rebuilt per-cache sums as Mean()*Count(), and 29/7*7 != 29
// in float64, so a cache with seven requests summing to 29ms exposed the
// round-trip drift.
func TestMeanLatencyOfMatchesOverallMean(t *testing.T) {
	rep := newReport(2, 1, []int{0, 0})
	for _, lat := range []float64{1, 1, 5, 5, 5, 6, 6} { // sum 29 over 7
		rep.record(0, lat, outcomeLocal)
	}
	for _, lat := range []float64{3, 4} {
		rep.record(1, lat, outcomeLocal)
	}
	all := []topology.CacheIndex{0, 1}
	if got, want := rep.MeanLatencyOf(all), rep.Overall.Mean(); got != want {
		t.Fatalf("MeanLatencyOf(all) = %v, Overall.Mean() = %v", got, want)
	}
	if want := 4.0; rep.Overall.Mean() != want { // 36ms over 9 requests
		t.Fatalf("Overall.Mean() = %v, want %v", rep.Overall.Mean(), want)
	}
}

// TestDocSizeBoundsSmallestLast pins the first-seen fix in docSizeBounds: a
// catalog whose smallest document is listed last must still yield the true
// minimum, and the walk must report catalog errors instead of skipping
// them.
func TestDocSizeBoundsSmallestLast(t *testing.T) {
	js := `[{"id":0,"sizeKB":5},{"id":1,"sizeKB":3},{"id":2,"sizeKB":0.25}]`
	cat, err := workload.ReadCatalogJSON(strings.NewReader(js), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(lineNetwork(t), oneGroup(), cat, exactConfig())
	if err != nil {
		t.Fatal(err)
	}
	minKB, maxKB, err := sim.docSizeBounds()
	if err != nil {
		t.Fatal(err)
	}
	if minKB != 0.25 || maxKB != 5 {
		t.Fatalf("bounds = [%v, %v], want [0.25, 5]", minKB, maxKB)
	}
}

// TestSoleLiveMemberPaysNoCooperativeCharge pins the latency-model
// alignment between the two cooperation modes: a requester whose group
// peers are all down pays the plain origin path — local miss, origin
// processing, transfer — with no multicast wait and no beacon directory
// round trip. On the line network that is 1 + 5 + 2×10 = 26ms.
func TestSoleLiveMemberPaysNoCooperativeCharge(t *testing.T) {
	for _, beacons := range []int{0, 1} {
		cfg := exactConfig()
		cfg.BeaconsPerGroup = beacons
		cfg.FailedCaches = []topology.CacheIndex{1}
		sim, err := New(lineNetwork(t), oneGroup(), fixedCatalog(t, 2), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run([]workload.Request{req(1, 0, 0)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Overall.Mean(); got != 26 {
			t.Fatalf("beacons=%d: sole live member latency = %vms, want 26", beacons, got)
		}
		if rep.OriginFetches != 1 {
			t.Fatalf("beacons=%d: origin fetches = %d, want 1", beacons, rep.OriginFetches)
		}
	}
}
