package netsim

import (
	"fmt"

	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/workload"
)

// Outcome classifies how a request was served, for trace consumers.
type Outcome int

// Request outcomes.
const (
	// OutcomeLocal is a fresh local cache hit.
	OutcomeLocal Outcome = iota + 1
	// OutcomeGroup is a cooperative hit at a group peer.
	OutcomeGroup
	// OutcomeOrigin is an origin fetch after a group-wide miss.
	OutcomeOrigin
	// OutcomeFailover is a request at a failed cache routed straight to
	// the origin.
	OutcomeFailover
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeLocal:
		return "local"
	case OutcomeGroup:
		return "group"
	case OutcomeOrigin:
		return "origin"
	case OutcomeFailover:
		return "failover"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// public converts the report-internal outcome to its exported trace
// constant.
func (o outcome) public() Outcome {
	switch o {
	case outcomeLocal:
		return OutcomeLocal
	case outcomeGroup:
		return OutcomeGroup
	case outcomeOrigin:
		return OutcomeOrigin
	case outcomeFailover:
		return OutcomeFailover
	default:
		return Outcome(o)
	}
}

// RequestTrace describes one served request for the Config.TraceFn hook.
type RequestTrace struct {
	// TimeSec is the request's arrival time.
	TimeSec float64
	// Cache is the edge cache the request arrived at.
	Cache topology.CacheIndex
	// Group is the cache's cooperative group.
	Group int
	// Doc is the requested document.
	Doc workload.DocID
	// Outcome classifies the routing decision.
	Outcome Outcome
	// LatencyMS is the request's edge cache latency.
	LatencyMS float64
	// Peer is the serving group peer (OutcomeGroup only; -1 otherwise).
	Peer topology.CacheIndex
}
