package netsim

import (
	"fmt"

	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/topology"
)

// outcome classifies how a request was served.
type outcome int

const (
	outcomeLocal outcome = iota + 1
	outcomeGroup
	outcomeOrigin
	outcomeFailover
)

// GroupStat aggregates per-cooperative-group counters.
type GroupStat struct {
	// Requests is the number of recorded requests arriving at the group's
	// members.
	Requests int64
	// LocalHits / GroupHits / OriginFetches classify those requests.
	LocalHits     int64
	GroupHits     int64
	OriginFetches int64

	latencySum float64
}

// MeanLatency returns the group's average latency, or 0 with no requests.
func (g *GroupStat) MeanLatency() float64 {
	if g.Requests == 0 {
		return 0
	}
	return g.latencySum / float64(g.Requests)
}

// GroupHitRate returns the share of the group's requests served by a peer.
func (g *GroupStat) GroupHitRate() float64 {
	if g.Requests == 0 {
		return 0
	}
	return float64(g.GroupHits) / float64(g.Requests)
}

// Report aggregates the outcome of one simulation run.
type Report struct {
	// Overall aggregates latency over every recorded request.
	Overall metrics.LatencyStats
	// PerCache aggregates latency per edge cache.
	PerCache []metrics.LatencyStats
	// PerGroup aggregates counters per cooperative group.
	PerGroup []GroupStat

	// LocalHits counts fresh local cache hits.
	LocalHits int64
	// GroupHits counts requests served by a cooperative group peer.
	GroupHits int64
	// OriginFetches counts requests served by the origin after a group-wide
	// miss.
	OriginFetches int64
	// FailoverFetches counts requests at failed caches routed straight to
	// the origin.
	FailoverFetches int64
	// Updates counts applied origin updates.
	Updates int64
	// OriginKB is the total volume fetched from the origin server — the
	// origin load that cooperation exists to reduce.
	OriginKB float64
	// InvalidationsOrigin counts invalidation messages the origin sent
	// (one per group holding an updated document; push mode only).
	InvalidationsOrigin int64
	// InvalidationsForwarded counts intra-group invalidation forwards
	// (push mode only). Origin + forwarded equals the per-cache push bill,
	// so InvalidationsOrigin alone is the origin's saving.
	InvalidationsForwarded int64

	requests int64
	groupOf  []int
}

func newReport(numCaches, numGroups int, groupOf []int) *Report {
	return &Report{
		PerCache: make([]metrics.LatencyStats, numCaches),
		PerGroup: make([]GroupStat, numGroups),
		groupOf:  groupOf,
	}
}

func (r *Report) record(c topology.CacheIndex, latencyMS float64, how outcome) {
	r.Overall.Add(latencyMS)
	r.PerCache[int(c)].Add(latencyMS)
	r.requests++
	switch how {
	case outcomeLocal:
		r.LocalHits++
	case outcomeGroup:
		r.GroupHits++
	case outcomeOrigin:
		r.OriginFetches++
	case outcomeFailover:
		r.FailoverFetches++
	}
	if len(r.groupOf) > int(c) {
		g := &r.PerGroup[r.groupOf[int(c)]]
		g.Requests++
		g.latencySum += latencyMS
		switch how {
		case outcomeLocal:
			g.LocalHits++
		case outcomeGroup:
			g.GroupHits++
		case outcomeOrigin, outcomeFailover:
			g.OriginFetches++
		}
	}
}

// Requests returns the number of recorded (post-warmup) requests.
func (r *Report) Requests() int64 { return r.requests }

// MeanLatency returns the network-wide average edge cache latency — the
// paper's client-side performance metric.
func (r *Report) MeanLatency() float64 { return r.Overall.Mean() }

// MeanLatencyOf returns the average latency over a subset of caches (used
// for the paper's 50-nearest / 50-farthest breakdown in Fig 3). Caches with
// no recorded requests are skipped.
func (r *Report) MeanLatencyOf(subset []topology.CacheIndex) float64 {
	var sum float64
	var count int64
	for _, c := range subset {
		if int(c) < 0 || int(c) >= len(r.PerCache) {
			continue
		}
		st := &r.PerCache[int(c)]
		if st.Count() == 0 {
			continue
		}
		sum += st.Mean() * float64(st.Count())
		count += int64(st.Count())
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// HitRates returns the local, group, and origin shares of recorded
// requests (excluding failover traffic).
func (r *Report) HitRates() (local, group, origin float64) {
	total := float64(r.LocalHits + r.GroupHits + r.OriginFetches)
	if total == 0 {
		return 0, 0, 0
	}
	return float64(r.LocalHits) / total, float64(r.GroupHits) / total, float64(r.OriginFetches) / total
}

// String implements fmt.Stringer with a one-line summary.
func (r *Report) String() string {
	l, g, o := r.HitRates()
	return fmt.Sprintf("requests=%d meanLatency=%.2fms local=%.1f%% group=%.1f%% origin=%.1f%% updates=%d",
		r.requests, r.MeanLatency(), l*100, g*100, o*100, r.Updates)
}
