package netsim

import (
	"fmt"

	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/verify"
	"edgecachegroups/internal/workload"
)

// outcome classifies how a request was served.
type outcome int

const (
	outcomeLocal outcome = iota + 1
	outcomeGroup
	outcomeOrigin
	outcomeFailover
)

// GroupStat aggregates per-cooperative-group counters.
type GroupStat struct {
	// Requests is the number of recorded requests arriving at the group's
	// members.
	Requests int64
	// LocalHits / GroupHits / OriginFetches classify those requests.
	LocalHits     int64
	GroupHits     int64
	OriginFetches int64

	latencySum float64
}

// MeanLatency returns the group's average latency, or 0 with no requests.
func (g *GroupStat) MeanLatency() float64 {
	if g.Requests == 0 {
		return 0
	}
	return g.latencySum / float64(g.Requests)
}

// GroupHitRate returns the share of the group's requests served by a peer.
func (g *GroupStat) GroupHitRate() float64 {
	if g.Requests == 0 {
		return 0
	}
	return float64(g.GroupHits) / float64(g.Requests)
}

// Report aggregates the outcome of one simulation run.
type Report struct {
	// Overall aggregates latency over every recorded request.
	Overall metrics.LatencyStats
	// PerCache aggregates latency per edge cache.
	PerCache []metrics.LatencyStats
	// PerGroup aggregates counters per cooperative group.
	PerGroup []GroupStat

	// LocalHits counts fresh local cache hits.
	LocalHits int64
	// GroupHits counts requests served by a cooperative group peer.
	GroupHits int64
	// OriginFetches counts requests served by the origin after a group-wide
	// miss.
	OriginFetches int64
	// FailoverFetches counts requests at failed caches routed straight to
	// the origin.
	FailoverFetches int64
	// Updates counts applied origin updates.
	Updates int64
	// OriginKB is the total volume fetched from the origin server — the
	// origin load that cooperation exists to reduce.
	OriginKB float64
	// InvalidationsOrigin counts invalidation messages the origin sent
	// (one per group holding an updated document; push mode only).
	InvalidationsOrigin int64
	// InvalidationsForwarded counts intra-group invalidation forwards
	// (push mode only). Origin + forwarded equals the per-cache push bill,
	// so InvalidationsOrigin alone is the origin's saving.
	InvalidationsForwarded int64

	requests int64
	groupOf  []int
}

func newReport(numCaches, numGroups int, groupOf []int) *Report {
	return &Report{
		PerCache: make([]metrics.LatencyStats, numCaches),
		PerGroup: make([]GroupStat, numGroups),
		groupOf:  groupOf,
	}
}

func (r *Report) record(c topology.CacheIndex, latencyMS float64, how outcome) {
	r.Overall.Add(latencyMS)
	r.PerCache[int(c)].Add(latencyMS)
	r.requests++
	switch how {
	case outcomeLocal:
		r.LocalHits++
	case outcomeGroup:
		r.GroupHits++
	case outcomeOrigin:
		r.OriginFetches++
	case outcomeFailover:
		r.FailoverFetches++
	}
	if len(r.groupOf) > int(c) {
		g := &r.PerGroup[r.groupOf[int(c)]]
		g.Requests++
		g.latencySum += latencyMS
		switch how {
		case outcomeLocal:
			g.LocalHits++
		case outcomeGroup:
			g.GroupHits++
		case outcomeOrigin, outcomeFailover:
			g.OriginFetches++
		}
	}
}

// Requests returns the number of recorded (post-warmup) requests.
func (r *Report) Requests() int64 { return r.requests }

// MeanLatency returns the network-wide average edge cache latency — the
// paper's client-side performance metric.
func (r *Report) MeanLatency() float64 { return r.Overall.Mean() }

// MeanLatencyOf returns the average latency over a subset of caches (used
// for the paper's 50-nearest / 50-farthest breakdown in Fig 3). Caches with
// no recorded requests are skipped.
func (r *Report) MeanLatencyOf(subset []topology.CacheIndex) float64 {
	var sum float64
	var count int64
	for _, c := range subset {
		if int(c) < 0 || int(c) >= len(r.PerCache) {
			continue
		}
		st := &r.PerCache[int(c)]
		if st.Count() == 0 {
			continue
		}
		// Use the exact running sum; reconstructing it as Mean()*Count()
		// round-trips through a division and drifts from the recorded
		// total.
		sum += st.Sum()
		count += int64(st.Count())
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// HitRates returns the local, group, and origin shares of recorded
// requests (excluding failover traffic).
func (r *Report) HitRates() (local, group, origin float64) {
	total := float64(r.LocalHits + r.GroupHits + r.OriginFetches)
	if total == 0 {
		return 0, 0, 0
	}
	return float64(r.LocalHits) / total, float64(r.GroupHits) / total, float64(r.OriginFetches) / total
}

// Verify checks the report's conservation invariants against the offered
// request and update logs: per-outcome counts sum to recorded requests,
// recorded counts never exceed offered ones, origin volume is consistent
// with origin-served requests, invalidation counters are non-negative and
// bounded, and the per-cache/per-group aggregates agree with the overall
// counters. It is called automatically by Run when Config.Verify is set.
func (r *Report) Verify(requests []workload.Request, updates []workload.Update) error {
	return r.verifyWithBounds(int64(len(requests)), int64(len(updates)), 0, 0)
}

func (r *Report) verifyWithBounds(offeredRequests, offeredUpdates int64, minDocKB, maxDocKB float64) error {
	perCache := make([]int64, len(r.PerCache))
	for i := range r.PerCache {
		perCache[i] = int64(r.PerCache[i].Count())
	}
	perGroup := make([]int64, len(r.PerGroup))
	for g := range r.PerGroup {
		perGroup[g] = r.PerGroup[g].Requests
	}
	if c := int64(r.Overall.Count()); c != r.requests {
		return fmt.Errorf("verify report: overall aggregate holds %d samples, recorded requests %d", c, r.requests)
	}
	return verify.Report(verify.ReportData{
		Requests:               r.requests,
		LocalHits:              r.LocalHits,
		GroupHits:              r.GroupHits,
		OriginFetches:          r.OriginFetches,
		FailoverFetches:        r.FailoverFetches,
		Updates:                r.Updates,
		OfferedRequests:        offeredRequests,
		OfferedUpdates:         offeredUpdates,
		OriginKB:               r.OriginKB,
		MinDocKB:               minDocKB,
		MaxDocKB:               maxDocKB,
		InvalidationsOrigin:    r.InvalidationsOrigin,
		InvalidationsForwarded: r.InvalidationsForwarded,
		NumGroups:              len(r.PerGroup),
		PerCacheCounts:         perCache,
		PerGroupCounts:         perGroup,
	})
}

// Checksum returns a stable FNV-1a digest of the report's aggregates:
// request/outcome/update counters, origin volume, invalidation counters,
// and the per-cache and per-group sums. Replaying the same (seed, config)
// pair must reproduce the checksum bit-for-bit.
func (r *Report) Checksum() uint64 {
	d := verify.NewDigest()
	d.Int64(r.requests)
	d.Int64(r.LocalHits).Int64(r.GroupHits).Int64(r.OriginFetches).Int64(r.FailoverFetches)
	d.Int64(r.Updates)
	d.Float64(r.OriginKB)
	d.Int64(r.InvalidationsOrigin).Int64(r.InvalidationsForwarded)
	d.Int(r.Overall.Count()).Float64(r.Overall.Sum())
	d.Int(len(r.PerCache))
	for i := range r.PerCache {
		d.Int(r.PerCache[i].Count()).Float64(r.PerCache[i].Sum())
	}
	d.Int(len(r.PerGroup))
	for g := range r.PerGroup {
		gs := &r.PerGroup[g]
		d.Int64(gs.Requests).Int64(gs.LocalHits).Int64(gs.GroupHits).Int64(gs.OriginFetches)
		d.Float64(gs.latencySum)
	}
	return d.Sum64()
}

// String implements fmt.Stringer with a one-line summary.
func (r *Report) String() string {
	l, g, o := r.HitRates()
	return fmt.Sprintf("requests=%d meanLatency=%.2fms local=%.1f%% group=%.1f%% origin=%.1f%% updates=%d",
		r.requests, r.MeanLatency(), l*100, g*100, o*100, r.Updates)
}
