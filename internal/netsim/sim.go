package netsim

import (
	"errors"
	"fmt"
	"sort"

	"edgecachegroups/internal/cache"
	"edgecachegroups/internal/obs"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/verify"
	"edgecachegroups/internal/workload"
)

// Config tunes the simulator's latency and cache model.
type Config struct {
	// LocalHitMS is the service time of a fresh local hit.
	LocalHitMS float64
	// OriginProcessingMS is the origin server's per-request processing time.
	OriginProcessingMS float64
	// RTTsPerTransfer scales RTT into a document transfer cost (TCP setup
	// plus data round trips).
	RTTsPerTransfer float64
	// PerKBMS adds a size-proportional transfer cost.
	PerKBMS float64
	// GroupLookupFactor scales the cooperative lookup overhead: a miss at
	// cache i costs GroupLookupFactor × (mean RTT from i to its live group
	// peers) before the document is served from a peer or the origin.
	GroupLookupFactor float64
	// CacheCapacityKB is the per-cache storage budget.
	CacheCapacityKB float64
	// CachePolicy selects the replacement policy (zero = utility-based,
	// the paper's setting; cache.PolicyLRU gives the classic baseline).
	CachePolicy cache.Policy
	// BeaconsPerGroup switches cooperative lookups to the Cache Clouds
	// beacon-point mechanism: each group designates this many beacon
	// members; each document hashes to one responsible beacon, which the
	// requesting cache queries before fetching from a holder or the
	// origin. Zero keeps the default multicast-style model.
	BeaconsPerGroup int
	// PushInvalidation makes origin updates actively invalidate cached
	// copies through the groups ("collaborative document freshness
	// maintenance"): the origin sends one invalidation per group holding
	// the document and the group fans it out internally. The report
	// records the origin's message savings versus per-cache push.
	PushInvalidation bool
	// TraceFn, when set, is invoked for every recorded request with its
	// routing outcome — an observability hook for custom analyses. Calls
	// happen on Run's goroutine in global event order regardless of the
	// Shards setting (traces are buffered per shard and replayed during
	// the deterministic merge). It must not retain the trace beyond the
	// call.
	TraceFn func(RequestTrace)
	// WarmupSec excludes the initial cold-cache phase from all recorded
	// statistics — request latencies AND update/invalidation counters use
	// the same cutoff, so overhead-vs-latency comparisons are measured
	// over one window (events still execute).
	WarmupSec float64
	// Shards partitions the simulation by cache group for parallel
	// execution: groups are dealt round-robin onto this many shards, each
	// with its own event heap, scratch state, and report fragment, and the
	// shards run concurrently inside conservative virtual-time windows
	// bounded by origin updates (the only cross-group events). A
	// deterministic ordered merge reassembles the final Report, so the
	// Report's Checksum is bit-identical to the serial run at any shard
	// count — the knob trades goroutines for wall-clock time only. 0 or 1
	// runs single-shard; values above the group count are clamped.
	Shards int
	// Verify enables the invariant-checking layer: Run audits the finished
	// report's conservation laws (outcome counts sum to recorded requests,
	// origin volume consistent with origin-served requests, bounded
	// invalidation counters) and fails loudly instead of returning silently
	// inconsistent numbers.
	Verify bool
	// Obs is the optional observability sink: request latencies and
	// outcomes feed a histogram and counters during the deterministic
	// merge, window barriers and per-shard stall are recorded in virtual
	// time, cache hit/miss/eviction counters are aggregated after the run,
	// and evictions emit trace events through the cache eviction hook. Nil
	// disables instrumentation; enabling it never changes the Report (see
	// internal/obs — every write is a side channel, and the simulator
	// never reads the wall clock for it).
	Obs *obs.Obs
	// FailedCaches lists caches that are down for the whole run: they serve
	// no cooperative lookups and their own clients fail over to the origin.
	FailedCaches []topology.CacheIndex
}

// DefaultConfig returns the latency model used by the experiments.
func DefaultConfig() Config {
	return Config{
		LocalHitMS:         1,
		OriginProcessingMS: 5,
		RTTsPerTransfer:    2,
		PerKBMS:            0.02,
		GroupLookupFactor:  1,
		CacheCapacityKB:    600,
		WarmupSec:          0,
	}
}

// Validate reports whether the config is usable for a network of numCaches
// caches.
func (c Config) Validate(numCaches int) error {
	switch {
	case c.LocalHitMS < 0:
		return fmt.Errorf("netsim: LocalHitMS must be >= 0, got %v", c.LocalHitMS)
	case c.OriginProcessingMS < 0:
		return fmt.Errorf("netsim: OriginProcessingMS must be >= 0, got %v", c.OriginProcessingMS)
	case c.RTTsPerTransfer <= 0:
		return fmt.Errorf("netsim: RTTsPerTransfer must be > 0, got %v", c.RTTsPerTransfer)
	case c.PerKBMS < 0:
		return fmt.Errorf("netsim: PerKBMS must be >= 0, got %v", c.PerKBMS)
	case c.GroupLookupFactor < 0:
		return fmt.Errorf("netsim: GroupLookupFactor must be >= 0, got %v", c.GroupLookupFactor)
	case c.CacheCapacityKB <= 0:
		return fmt.Errorf("netsim: CacheCapacityKB must be > 0, got %v", c.CacheCapacityKB)
	case c.WarmupSec < 0:
		return fmt.Errorf("netsim: WarmupSec must be >= 0, got %v", c.WarmupSec)
	case c.Shards < 0:
		return fmt.Errorf("netsim: Shards must be >= 0, got %d", c.Shards)
	}
	switch c.CachePolicy {
	case 0, cache.PolicyUtility, cache.PolicyLRU:
	default:
		return fmt.Errorf("netsim: unknown cache policy %v", c.CachePolicy)
	}
	if c.BeaconsPerGroup < 0 {
		return fmt.Errorf("netsim: BeaconsPerGroup must be >= 0, got %d", c.BeaconsPerGroup)
	}
	for _, f := range c.FailedCaches {
		if int(f) < 0 || int(f) >= numCaches {
			return fmt.Errorf("netsim: failed cache %d out of range [0,%d)", f, numCaches)
		}
	}
	return nil
}

// Simulator executes a cooperative edge cache network run. Build one with
// New, then call Run exactly once.
type Simulator struct {
	nw      *topology.Network
	catalog *workload.Catalog
	cfg     Config

	caches    []*cache.EdgeCache
	peers     [][]topology.CacheIndex // live group peers of each cache (excl. self)
	lookup    []float64               // cooperative lookup overhead per cache
	failed    []bool
	version   []int64 // current document versions
	groupOf   []int   // group ID of each cache
	numGroups int
	beacons   [][]topology.CacheIndex // per-group beacon members (beacon mode)

	ran               bool
	groupHolderCounts []int // reused per-update per-group holder tally
	touchedGroups     []int // reused per-update list of groups with holders
	stages            verify.Stages

	// Observability handles, hoisted at New so the hot paths pay one nil
	// check when cfg.Obs is nil. All durations below are virtual time —
	// this package never reads the wall clock (ecglint detclock).
	obsLatency    *obs.Histogram // recorded request latency (ms)
	obsLocal      *obs.Counter   // per-outcome recorded request counts
	obsGroup      *obs.Counter
	obsOrigin     *obs.Counter
	obsFailover   *obs.Counter
	obsEvictions  *obs.Counter   // cache eviction-hook firings
	obsWindows    *obs.Counter   // conservative windows with work
	obsWindowMS   *obs.Histogram // virtual span of each active window (ms)
	obsStallMS    *obs.Histogram // per-shard virtual idle time at barriers (ms)
	obsPrevBoundT float64        // previous window boundary (virtual seconds)
	obsPrevEvents int64          // total events at the previous boundary
}

// New builds a simulator for the given group partition. groups must cover
// every cache exactly once.
func New(nw *topology.Network, groups [][]topology.CacheIndex, catalog *workload.Catalog, cfg Config) (*Simulator, error) {
	if nw == nil {
		return nil, errors.New("netsim: nil network")
	}
	if catalog == nil {
		return nil, errors.New("netsim: nil catalog")
	}
	n := nw.NumCaches()
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}

	// Validate the partition.
	groupOf := make([]int, n)
	for i := range groupOf {
		groupOf[i] = -1
	}
	for g, members := range groups {
		for _, c := range members {
			if int(c) < 0 || int(c) >= n {
				return nil, fmt.Errorf("netsim: group %d references cache %d, out of range [0,%d)", g, c, n)
			}
			if groupOf[int(c)] != -1 {
				return nil, fmt.Errorf("netsim: cache %d appears in groups %d and %d", c, groupOf[int(c)], g)
			}
			groupOf[int(c)] = g
		}
	}
	for i, g := range groupOf {
		if g == -1 {
			return nil, fmt.Errorf("netsim: cache %d not assigned to any group", i)
		}
	}

	failed := make([]bool, n)
	for _, f := range cfg.FailedCaches {
		failed[int(f)] = true
	}

	s := &Simulator{
		nw:        nw,
		catalog:   catalog,
		cfg:       cfg,
		caches:    make([]*cache.EdgeCache, n),
		peers:     make([][]topology.CacheIndex, n),
		lookup:    make([]float64, n),
		failed:    failed,
		version:   make([]int64, catalog.NumDocuments()),
		groupOf:   groupOf,
		numGroups: len(groups),

		groupHolderCounts: make([]int, len(groups)),
	}

	for i := 0; i < n; i++ {
		ci := topology.CacheIndex(i)
		missPenalty := cfg.OriginProcessingMS + s.transferCost(nw.DistToOrigin(ci), catalog.MeanSizeKB())
		ec, err := cache.New(cache.Config{
			CapacityKB:    cfg.CacheCapacityKB,
			MissPenaltyMS: missPenalty,
			Policy:        cfg.CachePolicy,
		})
		if err != nil {
			return nil, fmt.Errorf("cache %d: %w", i, err)
		}
		s.caches[i] = ec
	}

	// Precompute live peers and cooperative lookup overheads. The O(g²)
	// pairwise distances of each group feed both the lookup overheads and
	// the beacon placement, so they are gathered once per group into a
	// scratch matrix shared by both consumers (previously each recomputed
	// every pair).
	if cfg.BeaconsPerGroup > 0 {
		s.beacons = make([][]topology.CacheIndex, len(groups))
	}
	maxGroup := 0
	for _, members := range groups {
		if len(members) > maxGroup {
			maxGroup = len(members)
		}
	}
	distBuf := make([]float64, maxGroup*maxGroup)
	for g, members := range groups {
		gl := len(members)
		dm := distBuf[:gl*gl]
		for a := 0; a < gl; a++ {
			dm[a*gl+a] = 0
			for b := a + 1; b < gl; b++ {
				d := nw.Dist(members[a], members[b])
				dm[a*gl+b] = d
				dm[b*gl+a] = d
			}
		}
		for ai, c := range members {
			if failed[int(c)] {
				continue
			}
			var ps []topology.CacheIndex
			var sum float64
			for bi, other := range members {
				if other == c || failed[int(other)] {
					continue
				}
				ps = append(ps, other)
				sum += dm[ai*gl+bi]
			}
			s.peers[int(c)] = ps
			if len(ps) > 0 {
				s.lookup[int(c)] = cfg.GroupLookupFactor * sum / float64(len(ps))
			}
		}
		if cfg.BeaconsPerGroup > 0 {
			s.beacons[g] = chooseBeaconsDist(members, failed, cfg.BeaconsPerGroup, dm)
		}
	}

	if cfg.Obs != nil {
		s.obsLatency = cfg.Obs.Histogram("sim_request_latency_ms")
		s.obsLocal = cfg.Obs.Counter("sim_requests_local_total")
		s.obsGroup = cfg.Obs.Counter("sim_requests_group_total")
		s.obsOrigin = cfg.Obs.Counter("sim_requests_origin_total")
		s.obsFailover = cfg.Obs.Counter("sim_requests_failover_total")
		s.obsEvictions = cfg.Obs.Counter("cache_drops_total")
		s.obsWindows = cfg.Obs.Counter("sim_windows_total")
		s.obsWindowMS = cfg.Obs.Histogram("sim_window_span_virtual_ms")
		s.obsStallMS = cfg.Obs.Histogram("sim_shard_stall_virtual_ms")
		// The eviction hook fires on shard goroutines during windows;
		// counter adds are atomic and the trace ring is mutex-guarded, so
		// both are safe there. The hook carries no clock, so eviction
		// events use TimeSec -1 ("unknown"); the Value is the document ID.
		for i, ec := range s.caches {
			ci := i
			ec.SetEvictionHook(func(doc workload.DocID) {
				s.obsEvictions.Inc()
				cfg.Obs.Emit(obs.Event{
					Kind:    obs.KindCacheEvict,
					TimeSec: -1,
					Value:   int64(doc),
					Cache:   ci,
				})
			})
		}
	}
	return s, nil
}

// chooseBeacons picks the b most central live members of a group (lowest
// total RTT to the other members) as its beacon points, mirroring Cache
// Clouds' placement of per-group lookup machinery.
func chooseBeacons(nw *topology.Network, members []topology.CacheIndex, failed []bool, b int) []topology.CacheIndex {
	gl := len(members)
	dm := make([]float64, gl*gl)
	for a := 0; a < gl; a++ {
		for bi := a + 1; bi < gl; bi++ {
			d := nw.Dist(members[a], members[bi])
			dm[a*gl+bi] = d
			dm[bi*gl+a] = d
		}
	}
	return chooseBeaconsDist(members, failed, b, dm)
}

// chooseBeaconsDist is chooseBeacons over a precomputed row-major pairwise
// distance matrix dm (len(members)² entries), so New can reuse the distances
// it already gathered for the lookup overheads.
func chooseBeaconsDist(members []topology.CacheIndex, failed []bool, b int, dm []float64) []topology.CacheIndex {
	type cand struct {
		c    topology.CacheIndex
		cost float64
	}
	gl := len(members)
	var cands []cand
	for ci, c := range members {
		if failed[int(c)] {
			continue
		}
		var sum float64
		for oi, o := range members {
			if o != c && !failed[int(o)] {
				sum += dm[ci*gl+oi]
			}
		}
		cands = append(cands, cand{c: c, cost: sum})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].c < cands[j].c
	})
	if b > len(cands) {
		b = len(cands)
	}
	out := make([]topology.CacheIndex, b)
	for i := 0; i < b; i++ {
		out[i] = cands[i].c
	}
	return out
}

// transferCost models moving a document of the given size across a path
// with the given RTT.
func (s *Simulator) transferCost(rtt, sizeKB float64) float64 {
	return rtt*s.cfg.RTTsPerTransfer + sizeKB*s.cfg.PerKBMS
}

// Run replays the request and update logs and returns the collected
// report. Run may be called only once per Simulator.
//
// Execution is partitioned by cache group into Config.Shards shards (see
// shard.go). Requests and fetch completions stay inside their shard;
// updates are coordinator events applied between conservative virtual-time
// windows, so every shard observes each update at the same virtual time.
// The per-shard report fragments are merged in global event order at the
// end, making the Report — including its Checksum — bit-identical to a
// serial run regardless of shard count.
func (s *Simulator) Run(requests []workload.Request, updates []workload.Update) (*Report, error) {
	if s.ran {
		return nil, errors.New("netsim: Run called twice")
	}
	s.ran = true

	for _, r := range requests {
		if int(r.Cache) < 0 || int(r.Cache) >= len(s.caches) {
			return nil, fmt.Errorf("netsim: request for unknown cache %d", r.Cache)
		}
		if _, err := s.catalog.Doc(r.Doc); err != nil {
			return nil, fmt.Errorf("netsim: request: %w", err)
		}
	}
	for _, u := range updates {
		if _, err := s.catalog.Doc(u.Doc); err != nil {
			return nil, fmt.Errorf("netsim: update: %w", err)
		}
	}

	shards := s.buildShards(requests, len(updates))
	updOrder := updateOrder(updates)

	stopSim := s.stages.Start("simulate")
	s.stages.Add("simulate", int64(len(requests)+len(updates)))
	s.stages.SetParallelism("simulate", len(shards))
	rep := newReport(len(s.caches), s.numGroups, s.groupOf)
	var windows int64
	for _, ui := range updOrder {
		u := updates[ui]
		w := s.runWindow(shards, u.TimeSec, int64(len(requests)+ui), false)
		windows += w
		if w > 0 {
			s.obsWindow(shards, u.TimeSec, false)
		}
		// The update applies while no shard is running, after every shard
		// has processed all earlier events and before any later one.
		s.version[int(u.Doc)]++
		// Update-side counters honor the same warmup window as the
		// request-side stats, so overhead-vs-latency comparisons are
		// measured over one window. The update itself (version bump,
		// invalidation of cached copies) always executes.
		record := u.TimeSec >= s.cfg.WarmupSec
		if record {
			rep.Updates++
		}
		if s.cfg.PushInvalidation {
			s.pushInvalidate(u.Doc, rep, record)
		}
	}
	wf := s.runWindow(shards, 0, 0, true)
	windows += wf
	if wf > 0 {
		s.obsWindow(shards, 0, true)
	}
	stopSim()

	stopMerge := s.stages.Start("sim-merge")
	s.mergeFragments(shards, rep)
	stopMerge()
	s.stages.Add("sim-windows", windows)
	for i, sh := range shards {
		s.stages.Add(fmt.Sprintf("sim-shard-%d", i), sh.events)
	}

	if s.cfg.Verify {
		stopVerify := s.stages.Start("verify")
		minKB, maxKB, err := s.docSizeBounds()
		if err == nil {
			err = rep.verifyWithBounds(int64(len(requests)), int64(len(updates)), minKB, maxKB)
		}
		stopVerify()
		if err != nil {
			return nil, fmt.Errorf("netsim: report failed verification: %w", err)
		}
	}
	s.publishObs(shards)
	return rep, nil
}

// obsWindow records the diagnostics of one completed (active) window on
// Run's goroutine, while no shard is running. Everything here is virtual
// time: the window span is the distance between update boundaries and a
// shard's stall is how long before the boundary it ran out of work — the
// conservative-parallelism cost the Shards knob pays. For the final
// (unbounded) window the latest event time stands in for the boundary
// and stalls are undefined.
func (s *Simulator) obsWindow(shards []*simShard, boundT float64, final bool) {
	if s.cfg.Obs == nil {
		return
	}
	var events int64
	var maxT float64
	for _, sh := range shards {
		events += sh.events
		if sh.lastT > maxT {
			maxT = sh.lastT
		}
	}
	t := boundT
	if final {
		t = maxT
	}
	spanMS := (t - s.obsPrevBoundT) * 1000
	if spanMS < 0 {
		spanMS = 0
	}
	s.obsWindows.Inc()
	s.obsWindowMS.Record(spanMS)
	if !final {
		for _, sh := range shards {
			if sh.events > 0 && sh.lastT <= boundT {
				s.obsStallMS.Record((boundT - sh.lastT) * 1000)
			}
		}
	}
	s.cfg.Obs.Emit(obs.Event{
		Kind:    obs.KindShardWindow,
		TimeSec: t,
		DurMS:   spanMS,
		Value:   events - s.obsPrevEvents,
		Cache:   -1,
	})
	s.obsPrevBoundT = t
	s.obsPrevEvents = events
}

// publishObs mirrors the post-run aggregates into the observability
// registry: cache counters summed across caches, per-shard event counts,
// and the verify.Stages snapshot (including the wall-clock simulate and
// merge timings measured by verify, which detclock exempts).
func (s *Simulator) publishObs(shards []*simShard) {
	o := s.cfg.Obs
	if o == nil {
		return
	}
	var st cache.Stats
	for _, ec := range s.caches {
		cs := ec.Stats()
		st.Hits += cs.Hits
		st.Misses += cs.Misses
		st.StaleDrops += cs.StaleDrops
		st.Evictions += cs.Evictions
		st.Inserts += cs.Inserts
	}
	o.Counter("cache_hits_total").Add(st.Hits)
	o.Counter("cache_misses_total").Add(st.Misses)
	o.Counter("cache_stale_drops_total").Add(st.StaleDrops)
	o.Counter("cache_evictions_total").Add(st.Evictions)
	o.Counter("cache_inserts_total").Add(st.Inserts)
	o.Gauge("sim_shards").Set(float64(len(shards)))
	for i, sh := range shards {
		o.Gauge(fmt.Sprintf("sim_shard_%d_events", i)).Set(float64(sh.events))
	}
	obs.PublishStages(o, s.stages.Snapshot())
}

// docSizeBounds returns the smallest and largest document size in the
// catalog, bounding the origin volume a given origin-served request count
// can legitimately produce. An explicit first-seen flag tracks whether
// minKB has been set (a plain minKB == 0 sentinel would mistake a
// zero-size document for "not yet seen"), and catalog errors propagate
// instead of silently shrinking the bounds.
func (s *Simulator) docSizeBounds() (minKB, maxKB float64, err error) {
	seen := false
	for id := 0; id < s.catalog.NumDocuments(); id++ {
		d, err := s.catalog.Doc(workload.DocID(id))
		if err != nil {
			return 0, 0, fmt.Errorf("doc size bounds: %w", err)
		}
		if !seen || d.SizeKB < minKB {
			minKB = d.SizeKB
			seen = true
		}
		if d.SizeKB > maxKB {
			maxKB = d.SizeKB
		}
	}
	return minKB, maxKB, nil
}

// Stages returns the simulator's timing/counter instrumentation, in the
// same style as the Prober's overhead counters.
func (s *Simulator) Stages() *verify.Stages { return &s.stages }

// handleRequest serves one client request and records its latency into the
// owning shard's report fragment.
func (s *Simulator) handleRequest(sh *simShard, ev event) {
	i := int(ev.cache)
	now := ev.timeSec
	record := now >= s.cfg.WarmupSec
	cur := s.version[int(ev.doc)]
	//ecglint:allow errdrop every DocID is validated during Run setup; Doc cannot fail here
	d, _ := s.catalog.Doc(ev.doc)

	// A failed cache's clients fail over directly to the origin.
	if s.failed[i] {
		lat := s.cfg.OriginProcessingMS + s.transferCost(s.nw.DistToOrigin(ev.cache), d.SizeKB)
		if record {
			sh.note(ev, outcomeFailover, lat, d.SizeKB, -1)
		}
		return
	}

	// 1. Local lookup.
	if s.caches[i].Lookup(ev.doc, cur, now) {
		if record {
			sh.note(ev, outcomeLocal, s.cfg.LocalHitMS, 0, -1)
		}
		return
	}

	if s.cfg.BeaconsPerGroup > 0 {
		s.handleRequestBeacon(sh, ev, d, cur, now, record)
		return
	}

	// 2. Cooperative lookup within the group. On a hit, the group's
	// lookup machinery (beacon/directory in Cache Clouds terms) returns
	// one fresh holder — not necessarily the nearest — so the expected
	// transfer distance tracks the group's average pairwise RTT, which is
	// exactly the paper's group interaction cost. The holder choice is a
	// deterministic hash over (document, requester) for reproducibility.
	// On a group-wide miss, the cache waits out its peers' negative
	// answers (the precomputed lookup[i] overhead) before escalating to
	// the origin.
	lat := s.cfg.LocalHitMS
	if len(s.peers[i]) > 0 {
		holders := sh.holders[:0]
		for _, p := range s.peers[i] {
			if s.caches[int(p)].Contains(ev.doc, cur) {
				holders = append(holders, p)
			}
		}
		holder := topology.CacheIndex(-1)
		if len(holders) > 0 {
			h := (uint64(ev.doc)*2654435761 + uint64(ev.cache)*40503) % uint64(len(holders))
			holder = holders[h]
		}
		// The scratch goes back to the shard only after its last read;
		// resetting before the holder selection aliased the live entries
		// and worked by accident alone.
		sh.holders = holders[:0]
		if holder >= 0 {
			lat += s.transferCost(s.nw.Dist(ev.cache, holder), d.SizeKB)
			if record {
				sh.note(ev, outcomeGroup, lat, 0, holder)
			}
			s.scheduleInsert(sh, ev.cache, ev.doc, cur, now, lat)
			return
		}
		lat += s.lookup[i]
	}

	// 3. Miss everywhere: fetch from the origin server.
	lat += s.cfg.OriginProcessingMS + s.transferCost(s.nw.DistToOrigin(ev.cache), d.SizeKB)
	if record {
		sh.note(ev, outcomeOrigin, lat, d.SizeKB, -1)
	}
	s.scheduleInsert(sh, ev.cache, ev.doc, cur, now, lat)
}

// handleRequestBeacon serves a local miss through the Cache Clouds beacon
// mechanism: the requesting cache queries the beacon responsible for the
// document (hash-partitioned within the group); the beacon either directs
// it to the nearest fresh holder or reports a group-wide miss, after which
// the cache fetches from the origin.
func (s *Simulator) handleRequestBeacon(sh *simShard, ev event, d workload.Document, cur int64, now float64, record bool) {
	i := int(ev.cache)
	lat := s.cfg.LocalHitMS
	// A requester with zero live peers pays no cooperative overhead in
	// either mode: the multicast path only charges lookup[i] when peers
	// exist, and the beacon directory round trip follows the same rule —
	// with nobody to ask about, there is no directory to consult.
	if len(s.peers[i]) > 0 {
		beacons := s.beacons[s.groupOf[i]]
		if len(beacons) > 0 {
			beacon := beacons[uint64(ev.doc)%uint64(len(beacons))]
			// Directory round trip (skipped when the requester is the beacon).
			if beacon != ev.cache {
				lat += s.cfg.GroupLookupFactor * s.nw.Dist(ev.cache, beacon)
			}
			best := -1
			var bestRTT float64
			for _, p := range s.peers[i] {
				if !s.caches[int(p)].Contains(ev.doc, cur) {
					continue
				}
				if rtt := s.nw.Dist(ev.cache, p); best < 0 || rtt < bestRTT {
					best, bestRTT = int(p), rtt
				}
			}
			if best >= 0 {
				lat += s.transferCost(bestRTT, d.SizeKB)
				if record {
					sh.note(ev, outcomeGroup, lat, 0, topology.CacheIndex(best))
				}
				s.scheduleInsert(sh, ev.cache, ev.doc, cur, now, lat)
				return
			}
		}
	}
	lat += s.cfg.OriginProcessingMS + s.transferCost(s.nw.DistToOrigin(ev.cache), d.SizeKB)
	if record {
		sh.note(ev, outcomeOrigin, lat, d.SizeKB, -1)
	}
	s.scheduleInsert(sh, ev.cache, ev.doc, cur, now, lat)
}

// scheduleInsert queues the arrival of a fetched document copy on the
// requesting cache's shard.
func (s *Simulator) scheduleInsert(sh *simShard, c topology.CacheIndex, doc workload.DocID, version int64, now, latencyMS float64) {
	ev := event{
		timeSec: now + latencyMS/1000,
		seq:     sh.seq,
		kind:    evFetchComplete,
		cache:   c,
		doc:     doc,
		version: version,
	}
	sh.seq++
	sh.queue.push(ev)
}

// handleFetchComplete admits a fetched document if it is still current.
func (s *Simulator) handleFetchComplete(ev event) {
	if s.version[int(ev.doc)] != ev.version {
		return // updated while in flight; don't cache a stale copy
	}
	//ecglint:allow errdrop every DocID is validated during Run setup; Doc cannot fail here
	d, _ := s.catalog.Doc(ev.doc)
	// Insert errors (document larger than the whole cache) deliberately
	// degrade to "not cached": the request was already served.
	//ecglint:allow errdrop oversized-document insert degrades to not-cached by design; the request was already served
	_ = s.caches[int(ev.cache)].Insert(d, ev.version, ev.timeSec)
}

// pushInvalidate actively drops every cached copy of doc and accounts for
// the invalidation traffic: one origin message per group holding the
// document, plus intra-group forwards to the remaining holders. Without
// groups the origin would message every holder directly. The counters are
// recorded only when record is true (post-warmup); the invalidation itself
// always happens.
func (s *Simulator) pushInvalidate(doc workload.DocID, rep *Report, record bool) {
	// Per-group tallies live in reused scratch (counts indexed by group,
	// plus the list of touched groups to zero afterwards) instead of a
	// freshly allocated map per update.
	counts := s.groupHolderCounts
	touched := s.touchedGroups[:0]
	for i, ec := range s.caches {
		if ec.Invalidate(doc) {
			g := s.groupOf[i]
			if counts[g] == 0 {
				touched = append(touched, g)
			}
			counts[g]++
		}
	}
	for _, g := range touched {
		if record {
			rep.InvalidationsOrigin++
			rep.InvalidationsForwarded += int64(counts[g] - 1)
		}
		counts[g] = 0
	}
	s.touchedGroups = touched[:0]
}

// CacheStats exposes the per-cache counters after a run, for diagnostics
// and tests.
func (s *Simulator) CacheStats(i topology.CacheIndex) (cache.Stats, error) {
	if int(i) < 0 || int(i) >= len(s.caches) {
		return cache.Stats{}, fmt.Errorf("netsim: cache %d out of range", i)
	}
	return s.caches[int(i)].Stats(), nil
}
