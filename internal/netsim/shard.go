package netsim

import (
	"sort"

	"edgecachegroups/internal/par"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/workload"
)

// This file holds the sharding machinery behind Config.Shards: the
// per-shard state, the partitioning of the request log, the conservative
// virtual-time window loop, and the deterministic merge that reassembles
// the final Report.
//
// The partition follows the paper's own group abstraction: requests,
// cooperative lookups, and fetch completions never cross group boundaries,
// so cache groups are dealt round-robin onto shards and each shard runs its
// own event heap. Origin updates are the only cross-shard events; they act
// as window boundaries and are applied by the coordinator while no shard is
// running, at an identical virtual time in every shard.

// simShard owns the event heap, scratch buffers, and report fragment of one
// partition of the cache network. Everything a request can touch — the
// requesting cache, its group peers, and its fetch completion — lives on a
// single shard, so shards share no mutable state inside a window.
type simShard struct {
	queue   eventQueue
	seq     int64                 // next fetch-completion sequence number
	holders []topology.CacheIndex // holder-scan scratch, reused per request
	recs    []record              // ordered report fragment
	events  int64                 // events processed (diagnostics)
	lastT   float64               // virtual time of the last processed event
}

// record is one recorded request outcome, buffered shard-locally during the
// run and replayed into the final Report by the deterministic merge. It
// carries everything Report.record, the OriginKB accumulation, and the
// TraceFn hook need, so the merge can reproduce the serial run's exact
// float-addition order.
type record struct {
	timeSec   float64
	latencyMS float64
	originKB  float64 // origin volume served (0 unless origin/failover)
	seq       int64
	cache     topology.CacheIndex
	peer      topology.CacheIndex
	doc       workload.DocID
	how       outcome
}

// note appends one recorded request outcome to the shard's fragment.
func (sh *simShard) note(ev event, how outcome, latencyMS, originKB float64, peer topology.CacheIndex) {
	sh.recs = append(sh.recs, record{
		timeSec:   ev.timeSec,
		latencyMS: latencyMS,
		originKB:  originKB,
		seq:       ev.seq,
		cache:     ev.cache,
		peer:      peer,
		doc:       ev.doc,
		how:       how,
	})
}

// eventBefore reports whether ev sorts strictly before the window boundary
// (t, seq) under the global (timeSec, seq) event order.
func eventBefore(ev *event, t float64, seq int64) bool {
	if ev.timeSec != t {
		return ev.timeSec < t
	}
	return ev.seq < seq
}

// buildShards partitions the request log into per-shard event heaps. The
// shard count is the Shards knob clamped to [1, numGroups]; more shards
// than groups would only add empty heaps.
//
// Sequence numbers preserve the serial tie-break order at equal virtual
// times: requests carry their log index (0..R-1), update boundaries use
// R+updateIndex, and fetch completions draw from per-shard counters that
// all start at R+U. At any timestamp, therefore, requests sort before the
// update boundary and completions after it — exactly the order a single
// global heap seeded the same way would produce. Completion counters can
// collide across shards, but completions never record anything and their
// effects stay shard-local, so only their intra-shard order matters.
func (s *Simulator) buildShards(requests []workload.Request, numUpdates int) []*simShard {
	numShards := s.cfg.Shards
	if numShards > s.numGroups {
		numShards = s.numGroups
	}
	if numShards < 1 {
		numShards = 1
	}
	counts := make([]int, numShards)
	for _, r := range requests {
		counts[s.groupOf[int(r.Cache)]%numShards]++
	}
	shards := make([]*simShard, numShards)
	base := int64(len(requests) + numUpdates)
	for i := range shards {
		// Every request can schedule one fetch completion on top of the
		// log, so size each heap for the worst case up front.
		shards[i] = &simShard{
			queue: make(eventQueue, 0, 2*counts[i]),
			seq:   base,
		}
	}
	for i, r := range requests {
		sh := shards[s.groupOf[int(r.Cache)]%numShards]
		sh.queue.push(event{timeSec: r.TimeSec, seq: int64(i), kind: evRequest, cache: r.Cache, doc: r.Doc})
	}
	return shards
}

// updateOrder returns the update log's indices sorted into the global
// (TimeSec, log index) event order — the same order the serial simulator
// processed updates in, since it enqueued them after all requests with
// sequence numbers following the log.
func updateOrder(updates []workload.Update) []int {
	order := make([]int, len(updates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ua, ub := updates[order[a]], updates[order[b]]
		if ua.TimeSec != ub.TimeSec {
			return ua.TimeSec < ub.TimeSec
		}
		return order[a] < order[b]
	})
	return order
}

// runWindow drains every shard's events that sort strictly before the
// window boundary (boundT, boundSeq), concurrently when the run is sharded.
// With final set, the boundary is +infinity and the shards drain
// completely. Returns 1 if any shard had work (feeding the window
// diagnostic counter), 0 otherwise.
func (s *Simulator) runWindow(shards []*simShard, boundT float64, boundSeq int64, final bool) int64 {
	// A cheap serial peek skips the fan-out for empty windows, which are
	// frequent when updates cluster between request batches.
	active := false
	for _, sh := range shards {
		if sh.queue.Len() > 0 && (final || eventBefore(&sh.queue[0], boundT, boundSeq)) {
			active = true
			break
		}
	}
	if !active {
		return 0
	}
	par.ForEach(len(shards), len(shards), func(i int) {
		sh := shards[i]
		for sh.queue.Len() > 0 {
			if !final && !eventBefore(&sh.queue[0], boundT, boundSeq) {
				break
			}
			ev := sh.queue.pop()
			sh.events++
			sh.lastT = ev.timeSec
			switch ev.kind {
			case evRequest:
				s.handleRequest(sh, ev)
			case evFetchComplete:
				s.handleFetchComplete(ev)
			}
		}
	})
	return 1
}

// mergeFragments replays every shard's report fragment into rep in global
// (timeSec, seq) order. The merge calls Report.record, accumulates origin
// volume, and fires the TraceFn hook in exactly the order the serial
// simulator would have, so the merged Report is bit-identical to a
// single-shard run: float-addition order, not just totals, is preserved,
// and the trace hook stays synchronous, ordered, and single-threaded.
func (s *Simulator) mergeFragments(shards []*simShard, rep *Report) {
	idx := make([]int, len(shards))
	for {
		best := -1
		for i, sh := range shards {
			if idx[i] >= len(sh.recs) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			a, b := &sh.recs[idx[i]], &shards[best].recs[idx[best]]
			if a.timeSec < b.timeSec || (a.timeSec == b.timeSec && a.seq < b.seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		rc := &shards[best].recs[idx[best]]
		idx[best]++
		rep.record(rc.cache, rc.latencyMS, rc.how)
		if rc.how == outcomeOrigin || rc.how == outcomeFailover {
			rep.OriginKB += rc.originKB
		}
		// Observability feeds from the merge, not the shard loops: this
		// runs single-threaded in global event order, so the latency
		// histogram and outcome counters see every recorded request in the
		// same deterministic order as the Report itself (handles are nil
		// no-ops when Config.Obs is unset).
		s.obsLatency.Record(rc.latencyMS)
		switch rc.how {
		case outcomeLocal:
			s.obsLocal.Inc()
		case outcomeGroup:
			s.obsGroup.Inc()
		case outcomeOrigin:
			s.obsOrigin.Inc()
		case outcomeFailover:
			s.obsFailover.Inc()
		}
		if s.cfg.TraceFn != nil {
			s.cfg.TraceFn(RequestTrace{
				TimeSec:   rc.timeSec,
				Cache:     rc.cache,
				Group:     s.groupOf[int(rc.cache)],
				Doc:       rc.doc,
				Outcome:   rc.how.public(),
				LatencyMS: rc.latencyMS,
				Peer:      rc.peer,
			})
		}
	}
}
