package netsim

import (
	"strings"
	"testing"

	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/workload"
)

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeLocal:    "local",
		OutcomeGroup:    "group",
		OutcomeOrigin:   "origin",
		OutcomeFailover: "failover",
	} {
		if o.String() != want {
			t.Fatalf("outcome %d string = %q", o, o.String())
		}
	}
	if !strings.Contains(Outcome(99).String(), "Outcome") {
		t.Fatal("unknown outcome string")
	}
}

func TestTraceHookMatchesCounters(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	cfg := exactConfig()
	var traces []RequestTrace
	cfg.TraceFn = func(tr RequestTrace) { traces = append(traces, tr) }
	sim, err := New(nw, oneGroup(), cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requests := []workload.Request{
		req(1, 0, 0), // origin fetch, 36ms
		req(2, 0, 0), // local hit, 1ms
		req(3, 1, 0), // group hit at c0, 21ms
	}
	rep, err := sim.Run(requests, nil)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(traces)) != rep.Requests() {
		t.Fatalf("%d traces for %d requests", len(traces), rep.Requests())
	}
	counts := make(map[Outcome]int64)
	var latSum float64
	for _, tr := range traces {
		counts[tr.Outcome]++
		latSum += tr.LatencyMS
		if tr.Group != 0 {
			t.Fatalf("trace group = %d, want 0", tr.Group)
		}
		if tr.Doc != 0 {
			t.Fatalf("trace doc = %d", tr.Doc)
		}
	}
	if counts[OutcomeLocal] != rep.LocalHits || counts[OutcomeGroup] != rep.GroupHits ||
		counts[OutcomeOrigin] != rep.OriginFetches {
		t.Fatalf("trace counts %v disagree with report %s", counts, rep)
	}
	if got := latSum / float64(len(traces)); got != rep.MeanLatency() {
		t.Fatalf("trace mean %v != report mean %v", got, rep.MeanLatency())
	}
	// The group hit must name its serving peer.
	found := false
	for _, tr := range traces {
		if tr.Outcome == OutcomeGroup {
			found = true
			if tr.Peer != 0 {
				t.Fatalf("group-hit peer = %d, want 0", tr.Peer)
			}
		} else if tr.Peer != -1 {
			t.Fatalf("non-group trace peer = %d, want -1", tr.Peer)
		}
	}
	if !found {
		t.Fatal("no group-hit trace recorded")
	}
}

func TestTraceHookFailover(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	cfg := exactConfig()
	cfg.FailedCaches = []topology.CacheIndex{0}
	var traces []RequestTrace
	cfg.TraceFn = func(tr RequestTrace) { traces = append(traces, tr) }
	sim, err := New(nw, oneGroup(), cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run([]workload.Request{req(1, 0, 0)}, nil); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Outcome != OutcomeFailover {
		t.Fatalf("traces = %+v", traces)
	}
}

func TestTraceHookRespectsWarmup(t *testing.T) {
	nw := lineNetwork(t)
	cat := fixedCatalog(t, 3)
	cfg := exactConfig()
	cfg.WarmupSec = 1.5
	calls := 0
	cfg.TraceFn = func(RequestTrace) { calls++ }
	sim, err := New(nw, oneGroup(), cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run([]workload.Request{req(1, 0, 0), req(2, 0, 0)}, nil); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("trace called %d times, want 1 (warmup excluded)", calls)
	}
}
