package serve

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/core"
	"edgecachegroups/internal/simrand"
)

func testConfig(plan *core.Plan) Config {
	return Config{
		Plan: plan,
		Rand: simrand.New(1),
		Maint: core.MaintainerConfig{
			Interval:          time.Hour, // tests drive Tick directly
			SampleFraction:    1,
			DriftThreshold:    0.2,
			ReclusterFraction: 0.9,
			Verify:            true,
		},
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{Rand: simrand.New(1)}); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, err := NewEngine(Config{Plan: testPlan(8)}); err == nil {
		t.Fatal("nil random source accepted")
	}
	embedded := testPlan(8)
	for i := range embedded.Features {
		// Raw landmark RTTs in 3-dim feature space, clustered in a 2-dim
		// embedding: ingested vectors would not live in the clustered space.
		embedded.Features[i] = cluster.Vector{1, 2, 3}
	}
	if _, err := NewEngine(Config{Plan: embedded, Rand: simrand.New(1)}); err == nil ||
		!strings.Contains(err.Error(), "embedded-representation") {
		t.Fatalf("embedded-representation plan accepted (err=%v)", err)
	}
}

func TestEngineBootEpoch(t *testing.T) {
	plan := testPlan(8)
	e, err := NewEngine(testConfig(plan))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ep := e.Epoch()
	if ep == nil || ep.Seq != 1 || ep.Plan != plan {
		t.Fatalf("boot epoch = %+v, want seq 1 over the boot plan", ep)
	}
	if g, _, err := e.Assign(0); err != nil || g != 0 {
		t.Fatalf("Assign(0) = %d, %v; want 0, nil", g, err)
	}
	if _, _, err := e.Assign(99); err == nil {
		t.Fatal("Assign(99) out of range accepted")
	}
	h := e.Health()
	if h.Status != "ok" {
		t.Fatalf("boot health %q, want ok", h.Status)
	}
}

func TestEngineIngestValidation(t *testing.T) {
	e, err := NewEngine(testConfig(testPlan(8)))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cases := []struct {
		name  string
		batch []CacheStat
	}{
		{"empty batch", nil},
		{"cache out of range", []CacheStat{{Cache: 8, RTTMS: []float64{1, 2}}}},
		{"negative cache", []CacheStat{{Cache: -1, RTTMS: []float64{1, 2}}}},
		{"wrong dimension", []CacheStat{{Cache: 0, RTTMS: []float64{1}}}},
		{"negative rtt", []CacheStat{{Cache: 0, RTTMS: []float64{-1, 2}}}},
		{"negative requests", []CacheStat{{Cache: 0, RTTMS: []float64{1, 2}, Requests: -1}}},
		{"one bad rejects all", []CacheStat{
			{Cache: 0, RTTMS: []float64{1, 2}},
			{Cache: 1, RTTMS: []float64{1}},
		}},
	}
	for _, tc := range cases {
		if err := e.Ingest(tc.batch); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if n := e.Stats().Total(); n != 0 {
		t.Fatalf("rejected batches half-applied: %d reports recorded", n)
	}
	if err := e.Ingest([]CacheStat{{Cache: 0, RTTMS: []float64{1, 2}, Requests: 3}}); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if n := e.Stats().Total(); n != 1 {
		t.Fatalf("Total = %d after one valid report, want 1", n)
	}
}

// TestEngineDriftReassign is the serving e2e: ingest a full stats report
// in which one cache drifted to the other group's neighborhood, tick, and
// check the published epoch advanced to a verified plan with the cache
// reassigned — while the old epoch snapshot stays intact.
func TestEngineDriftReassign(t *testing.T) {
	plan := testPlan(8)
	e, err := NewEngine(testConfig(plan))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	before := e.Epoch()
	beforeAssign := append([]int(nil), before.Plan.Assignments...)

	batch := statsFor(plan)
	batch[0].RTTMS = []float64{201, 199} // cache 0 now sits with group 1
	if err := e.Ingest(batch); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	ev, err := e.Tick()
	if err != nil {
		t.Fatalf("Tick: %v (event %+v)", err, ev)
	}
	if len(ev.Reassigned) != 1 || int(ev.Reassigned[0]) != 0 {
		t.Fatalf("reassigned %v, want [0]", ev.Reassigned)
	}

	after := e.Epoch()
	if after.Seq != before.Seq+1 {
		t.Fatalf("epoch %d after reassignment, want %d", after.Seq, before.Seq+1)
	}
	if after.Plan.Assignments[0] != 1 {
		t.Fatalf("cache 0 assigned to %d, want 1", after.Plan.Assignments[0])
	}
	if err := after.Plan.Verify(nil); err != nil {
		t.Fatalf("published plan fails verification: %v", err)
	}
	if after.Checksum != after.Plan.Checksum() {
		t.Fatal("epoch checksum does not match its plan")
	}
	// The superseded epoch is immutable: a long-running request that loaded
	// it before the swap still sees the old assignment.
	for i, a := range before.Plan.Assignments {
		if a != beforeAssign[i] {
			t.Fatalf("old epoch mutated at cache %d: %d -> %d", i, beforeAssign[i], a)
		}
	}

	h := e.Health()
	if h.Status != "ok" || h.Rounds != 1 || h.ConsecutiveFailures != 0 {
		t.Fatalf("health after a good round: %+v", h)
	}
	if h.ReportedCaches != 8 || h.IngestedRequests != 8 {
		t.Fatalf("ingest accounting: %d caches, %d requests, want 8/8", h.ReportedCaches, h.IngestedRequests)
	}
}

// TestEngineDefaultRecluster exercises the stats-based re-formation:
// widespread drift pushes past ReclusterFraction and the default
// recluster K-means over the ingested vectors replaces the plan.
func TestEngineDefaultRecluster(t *testing.T) {
	plan := testPlan(8)
	cfg := testConfig(plan)
	cfg.Maint.ReclusterFraction = 0.5
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Every cache drifts: the two clusters trade places and spread.
	batch := statsFor(plan)
	for i := range batch {
		if i < 4 {
			batch[i].RTTMS = []float64{500 + float64(i), 500}
		} else {
			batch[i].RTTMS = []float64{30 + float64(i), 30}
		}
	}
	if err := e.Ingest(batch); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	ev, err := e.Tick()
	if err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if !ev.Reclustered {
		t.Fatalf("expected a full recluster, got %+v", ev)
	}
	ep := e.Epoch()
	if ep.Seq != 2 {
		t.Fatalf("epoch %d after recluster, want 2", ep.Seq)
	}
	if err := ep.Plan.Verify(nil); err != nil {
		t.Fatalf("reclustered plan fails verification: %v", err)
	}
	// The new plan clusters the ingested geometry: caches 0-3 together,
	// 4-7 together.
	a := ep.Plan.Assignments
	for i := 1; i < 4; i++ {
		if a[i] != a[0] {
			t.Fatalf("caches 0-3 split across groups: %v", a)
		}
	}
	for i := 5; i < 8; i++ {
		if a[i] != a[4] {
			t.Fatalf("caches 4-7 split across groups: %v", a)
		}
	}
	if a[0] == a[4] {
		t.Fatalf("all caches in one group: %v", a)
	}
}

// TestEngineServesStaleThrough100Failures is the issue's acceptance
// criterion: with re-formation failing on every round, the daemon keeps
// answering assignment queries from the last good epoch for 100
// consecutive failures, reporting degraded (stale-but-serving) health the
// whole time.
func TestEngineServesStaleThrough100Failures(t *testing.T) {
	plan := testPlan(8)
	cfg := testConfig(plan)
	cfg.Maint.ReclusterFraction = 0.1
	reclusterErr := errors.New("quorum lost")
	recovered := testPlan(8)
	failing := true
	calls := 0
	cfg.Recluster = func() (*core.Plan, error) {
		calls++
		if failing {
			return nil, reclusterErr
		}
		return recovered, nil
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	good := e.Epoch()

	// Widespread drift, re-ingested every round: the failing recluster
	// never absorbs it, so every tick re-attempts and fails.
	for round := 1; round <= 100; round++ {
		batch := statsFor(plan)
		for i := range batch {
			batch[i].RTTMS = []float64{900 + float64(i), 900}
		}
		if err := e.Ingest(batch); err != nil {
			t.Fatalf("round %d: Ingest: %v", round, err)
		}
		if _, err := e.Tick(); err == nil {
			t.Fatalf("round %d: Tick succeeded with a failing recluster", round)
		}

		g, ep, err := e.Assign(0)
		if err != nil {
			t.Fatalf("round %d: Assign stopped serving: %v", round, err)
		}
		if ep != good || g != plan.Assignments[0] {
			t.Fatalf("round %d: serving epoch %d group %d, want the last good epoch %d group %d",
				round, ep.Seq, g, good.Seq, plan.Assignments[0])
		}
		h := e.Health()
		if h.Status != "degraded" || !h.ServingStalePlans {
			t.Fatalf("round %d: health %q (stale=%v), want degraded/stale", round, h.Status, h.ServingStalePlans)
		}
		if h.ConsecutiveFailures != round {
			t.Fatalf("round %d: %d consecutive failures recorded", round, h.ConsecutiveFailures)
		}
		if !strings.Contains(h.LastError, "quorum lost") {
			t.Fatalf("round %d: last error %q does not surface the cause", round, h.LastError)
		}
	}
	if calls != 100 {
		t.Fatalf("recluster attempted %d times, want 100", calls)
	}

	// Recovery: the drift never went away, so once re-formation works
	// again the very next round publishes a fresh epoch and health returns
	// to ok.
	failing = false
	batch := statsFor(plan)
	for i := range batch {
		batch[i].RTTMS = []float64{900 + float64(i), 900}
	}
	if err := e.Ingest(batch); err != nil {
		t.Fatalf("recovery ingest: %v", err)
	}
	ev, err := e.Tick()
	if err != nil {
		t.Fatalf("recovery tick: %v", err)
	}
	if !ev.Reclustered {
		t.Fatalf("recovery round did not recluster: %+v", ev)
	}
	ep := e.Epoch()
	if ep.Seq != good.Seq+1 || ep.Plan != recovered {
		t.Fatalf("recovery published epoch %d, want %d over the recovered plan", ep.Seq, good.Seq+1)
	}
	h := e.Health()
	if h.Status != "ok" || h.ConsecutiveFailures != 0 || h.ServingStalePlans {
		t.Fatalf("health after recovery: %+v", h)
	}
}

func TestEngineSnapshotPersistReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	plan := testPlan(8)
	cfg := testConfig(plan)
	cfg.SnapshotPath = path
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Boot publish already persisted; advance one epoch via drift.
	batch := statsFor(plan)
	batch[7].RTTMS = []float64{11, 9} // cache 7 drifts to group 0
	if err := e.Ingest(batch); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if _, err := e.Tick(); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	cur := e.Epoch()
	if cur.Seq != 2 {
		t.Fatalf("epoch %d, want 2", cur.Seq)
	}

	restored, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if restored.Seq != 2 || restored.Checksum != cur.Checksum {
		t.Fatalf("snapshot holds epoch %d checksum %016x, want 2/%016x", restored.Seq, restored.Checksum, cur.Checksum)
	}

	// A restarted daemon boots from the snapshot and keeps counting epochs.
	cfg2 := testConfig(restored.Plan)
	cfg2.SnapshotPath = path
	cfg2.ResumeEpoch = restored.Seq
	e2, err := NewEngine(cfg2)
	if err != nil {
		t.Fatalf("NewEngine after restore: %v", err)
	}
	ep2 := e2.Epoch()
	if ep2.Seq != 3 {
		t.Fatalf("restored boot epoch %d, want ResumeEpoch+1 = 3", ep2.Seq)
	}
	if ep2.Checksum != cur.Checksum {
		t.Fatalf("restored plan checksum %016x, want %016x", ep2.Checksum, cur.Checksum)
	}
	if g, _, err := e2.Assign(7); err != nil || g != 0 {
		t.Fatalf("restored Assign(7) = %d, %v; want the post-drift group 0", g, err)
	}
}

func TestEngineStartStop(t *testing.T) {
	plan := testPlan(8)
	cfg := testConfig(plan)
	cfg.Maint.Interval = 5 * time.Millisecond
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.Start()
	deadline := time.Now().Add(2 * time.Second)
	for e.Health().Rounds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	e.Stop() // idempotent
}
