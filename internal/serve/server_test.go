package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"edgecachegroups/internal/core"
	"edgecachegroups/internal/obs"
)

func newTestServer(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	o := obs.New()
	cfg := testConfig(testPlan(8))
	cfg.Obs = o
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ts := httptest.NewServer(NewHandler(e, o))
	t.Cleanup(ts.Close)
	return e, ts
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func postStats(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/stats", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /stats: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestServerPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var plan planResponse
	getJSON(t, ts.URL+"/plan", http.StatusOK, &plan)
	if plan.Epoch != 1 || plan.Caches != 8 || plan.K != 2 || plan.Scheme != "SL" {
		t.Fatalf("plan = %+v, want epoch 1, 8 caches, k=2, SL", plan)
	}
	if len(plan.GroupSizes) != 2 || plan.GroupSizes[0]+plan.GroupSizes[1] != 8 {
		t.Fatalf("group sizes %v do not partition 8 caches", plan.GroupSizes)
	}
	if len(plan.Assignments) != 0 {
		t.Fatalf("assignments leaked without full=1: %v", plan.Assignments)
	}

	getJSON(t, ts.URL+"/plan?full=1", http.StatusOK, &plan)
	if len(plan.Assignments) != 8 {
		t.Fatalf("full=1 returned %d assignments, want 8", len(plan.Assignments))
	}
}

func TestServerAssignEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var a assignResponse
	getJSON(t, ts.URL+"/assign?cache=5", http.StatusOK, &a)
	if a.Cache != 5 || a.Group != 1 || a.Epoch != 1 {
		t.Fatalf("assign = %+v, want cache 5 → group 1 @ epoch 1", a)
	}
	getJSON(t, ts.URL+"/assign", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/assign?cache=abc", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/assign?cache=99", http.StatusNotFound, nil)
}

func TestServerGroupEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var g groupResponse
	getJSON(t, ts.URL+"/groups/0", http.StatusOK, &g)
	if g.Group != 0 || g.Size != 4 || len(g.Members) != 4 || len(g.Center) != 2 {
		t.Fatalf("group 0 = %+v, want 4 members and a 2-dim center", g)
	}
	for _, m := range g.Members {
		if m >= 4 {
			t.Fatalf("group 0 contains cache %d, want caches 0-3", m)
		}
	}
	getJSON(t, ts.URL+"/groups/7", http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/groups/x", http.StatusBadRequest, nil)
}

func TestServerStatsIngestToReassign(t *testing.T) {
	e, ts := newTestServer(t)

	// Object form.
	batch := statsFor(e.Epoch().Plan)
	batch[0].RTTMS = []float64{201, 199}
	body, _ := json.Marshal(statsRequest{Stats: batch})
	resp := postStats(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /stats: status %d, want 202", resp.StatusCode)
	}

	if _, err := e.Tick(); err != nil {
		t.Fatalf("Tick: %v", err)
	}

	var a assignResponse
	getJSON(t, ts.URL+"/assign?cache=0", http.StatusOK, &a)
	if a.Group != 1 || a.Epoch != 2 {
		t.Fatalf("after drift, assign = %+v, want group 1 @ epoch 2", a)
	}
}

func TestServerStatsBareArrayAndErrors(t *testing.T) {
	e, ts := newTestServer(t)
	// Bare-array form.
	resp := postStats(t, ts.URL, `[{"cache":2,"rttMS":[10,10],"requests":4}]`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bare array: status %d, want 202", resp.StatusCode)
	}
	if e.Stats().Total() != 1 {
		t.Fatalf("bare array not recorded: total %d", e.Stats().Total())
	}
	// Malformed JSON.
	if resp := postStats(t, ts.URL, `{nope`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	// Validation failure (NaN is not valid JSON; use a bad dimension).
	if resp := postStats(t, ts.URL, `{"stats":[{"cache":0,"rttMS":[1]}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad dimension: status %d, want 400", resp.StatusCode)
	}
	// GET on /stats is not routed.
	getJSON(t, ts.URL+"/stats", http.StatusMethodNotAllowed, nil)
}

func TestServerHealthzDegraded(t *testing.T) {
	plan := testPlan(8)
	cfg := testConfig(plan)
	cfg.Maint.ReclusterFraction = 0.1
	cfg.Recluster = func() (*core.Plan, error) { return nil, fmt.Errorf("probe quorum lost") }
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ts := httptest.NewServer(NewHandler(e, obs.New()))
	defer ts.Close()

	var h Health
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" {
		t.Fatalf("boot health %q, want ok", h.Status)
	}

	batch := statsFor(plan)
	for i := range batch {
		batch[i].RTTMS = []float64{900 + float64(i), 900}
	}
	if err := e.Ingest(batch); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if _, err := e.Tick(); err == nil {
		t.Fatal("Tick succeeded with failing recluster")
	}

	// Degraded is still HTTP 200: stale-but-serving must not be evicted.
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "degraded" || !h.ServingStalePlans || h.ConsecutiveFailures != 1 {
		t.Fatalf("degraded health = %+v", h)
	}
	if !strings.Contains(h.LastError, "quorum lost") {
		t.Fatalf("health does not surface the failure: %+v", h)
	}
}

func TestServerObsEndpointsMounted(t *testing.T) {
	_, ts := newTestServer(t)
	// Touch an instrumented endpoint so request metrics exist.
	getJSON(t, ts.URL+"/plan", http.StatusOK, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, metric := range []string{"serve_epochs_published", "http_requests"} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/metrics missing %s:\n%s", metric, body)
		}
	}
	getJSON(t, ts.URL+"/debug/vars", http.StatusOK, nil)
}

func TestServeLifecycle(t *testing.T) {
	e, err := NewEngine(testConfig(testPlan(8)))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := Serve("127.0.0.1:0", e, obs.New())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	var a assignResponse
	getJSON(t, "http://"+s.Addr()+"/assign?cache=1", http.StatusOK, &a)
	if a.Group != 0 {
		t.Fatalf("assign over TCP = %+v", a)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := (*Server)(nil).Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

// Killing the listener out from under the accept loop must surface the
// loop's terminal error through ServeErr and Close instead of silently
// discarding it (the loop used to drop it with `_ = srv.Serve(ln)`).
func TestServeErrSurfacesAcceptLoopFailure(t *testing.T) {
	e, err := NewEngine(testConfig(testPlan(8)))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := Serve("127.0.0.1:0", e, obs.New())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := s.ServeErr(); err != nil {
		t.Fatalf("ServeErr before any failure = %v", err)
	}
	s.ln.Close() // simulate the listener dying while the server runs
	deadline := time.Now().Add(5 * time.Second)
	for s.ServeErr() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.ServeErr() == nil {
		t.Fatal("accept-loop failure never surfaced via ServeErr")
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close swallowed the accept-loop failure")
	}
}
