package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"edgecachegroups/internal/obs"
	"edgecachegroups/internal/topology"
)

// statsRequest is the POST /stats body: either a bare array of reports or
// an object wrapping one under "stats".
type statsRequest struct {
	Stats []CacheStat `json:"stats"`
}

// planResponse is the GET /plan body.
type planResponse struct {
	Epoch       uint64  `json:"epoch"`
	Checksum    string  `json:"planChecksum"`
	Scheme      string  `json:"scheme"`
	Caches      int     `json:"caches"`
	K           int     `json:"k"`
	GroupSizes  []int   `json:"groupSizes"`
	UpdatedUnix int64   `json:"updatedUnix"`
	AgeSec      float64 `json:"ageSec"`
	Assignments []int   `json:"assignments,omitempty"`
}

// assignResponse is the GET /assign body.
type assignResponse struct {
	Cache int    `json:"cache"`
	Group int    `json:"group"`
	Epoch uint64 `json:"epoch"`
}

// groupResponse is the GET /groups/{id} body.
type groupResponse struct {
	Group   int       `json:"group"`
	Epoch   uint64    `json:"epoch"`
	Size    int       `json:"size"`
	Members []int     `json:"members"`
	Center  []float64 `json:"center"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxStatsBody bounds one POST /stats body (16 MiB) so a misbehaving
// reporter cannot exhaust memory.
const maxStatsBody = 16 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	//ecglint:allow errdrop a failed response write means the client went away; the status line is already committed
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// NewHandler builds the daemon's mux: the serving API (/stats, /plan,
// /assign, /groups/{id}, /healthz) plus, when o is non-nil, the obs
// exposition endpoints (/metrics, /debug/vars, /debug/pprof, /trace) on
// the same listener. Query handlers read one immutable epoch per request
// via a single atomic pointer load, so the handler scales with the
// listener, not the maintenance loop.
func NewHandler(e *Engine, o *obs.Obs) http.Handler {
	mux := http.NewServeMux()
	requests := o.Counter("http_requests")
	latency := o.Histogram("http_request_ms")

	instrument := func(h http.HandlerFunc) http.HandlerFunc {
		if o == nil {
			return h
		}
		return func(w http.ResponseWriter, r *http.Request) {
			begin := time.Now()
			h(w, r)
			requests.Inc()
			latency.Record(float64(time.Since(begin)) / float64(time.Millisecond))
		}
	}

	mux.HandleFunc("POST /stats", instrument(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxStatsBody))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read stats body: %w", err))
			return
		}
		var req statsRequest
		if err := json.Unmarshal(body, &req); err != nil {
			// Accept a bare array of reports for curl-friendly bodies.
			if arrErr := json.Unmarshal(body, &req.Stats); arrErr != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decode stats: %w", err))
				return
			}
		}
		if err := e.Ingest(req.Stats); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"accepted": len(req.Stats)})
	}))

	mux.HandleFunc("GET /plan", instrument(func(w http.ResponseWriter, r *http.Request) {
		ep := e.Epoch()
		if ep == nil {
			writeError(w, http.StatusServiceUnavailable, errors.New("no plan formed yet"))
			return
		}
		resp := planResponse{
			Epoch:       ep.Seq,
			Checksum:    checksumHex(ep.Checksum),
			Scheme:      ep.Plan.Scheme,
			Caches:      ep.Plan.NumCaches(),
			K:           ep.Plan.NumGroups(),
			GroupSizes:  ep.Plan.Sizes(),
			UpdatedUnix: ep.Updated.Unix(),
			AgeSec:      time.Since(ep.Updated).Seconds(),
		}
		if r.URL.Query().Get("full") == "1" {
			resp.Assignments = ep.Plan.Assignments
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("GET /assign", instrument(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("cache")
		if q == "" {
			writeError(w, http.StatusBadRequest, errors.New("missing cache parameter"))
			return
		}
		cache, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad cache parameter %q", q))
			return
		}
		g, ep, err := e.Assign(cache)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, assignResponse{Cache: cache, Group: g, Epoch: ep.Seq})
	}))

	mux.HandleFunc("GET /groups/{id}", instrument(func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad group id %q", r.PathValue("id")))
			return
		}
		ep := e.Epoch()
		members, err := ep.Plan.Group(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		out := groupResponse{Group: id, Epoch: ep.Seq, Size: len(members), Members: cacheInts(members)}
		if id < len(ep.Plan.Centers) {
			out.Center = ep.Plan.Centers[id]
		}
		writeJSON(w, http.StatusOK, out)
	}))

	mux.HandleFunc("GET /healthz", instrument(func(w http.ResponseWriter, r *http.Request) {
		h := e.Health()
		status := http.StatusOK
		if h.Status == "down" {
			// Degraded stays 200: the daemon is still serving the last
			// good plan and a load balancer must not evict it.
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, h)
	}))

	if o != nil {
		oh := obs.Handler(o)
		mux.Handle("/metrics", oh)
		mux.Handle("/debug/", oh)
		mux.Handle("/trace", oh)
	}
	return mux
}

func cacheInts(members []topology.CacheIndex) []int {
	out := make([]int, len(members))
	for i, m := range members {
		out[i] = int(m)
	}
	return out
}

// Server is a live groupformd endpoint: the engine's background loop plus
// an HTTP listener. Construct with Serve; Close stops both.
type Server struct {
	engine *Engine
	srv    *http.Server
	ln     net.Listener

	errMu    sync.Mutex
	serveErr error // terminal accept-loop error other than a clean Close
}

// ServeErr returns the error that killed the background accept loop, if
// it died for a reason other than Close; nil while serving normally.
func (s *Server) ServeErr() error {
	if s == nil {
		return nil
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.serveErr
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Engine returns the serving engine.
func (s *Server) Engine() *Engine {
	if s == nil {
		return nil
	}
	return s.engine
}

// Close stops the maintenance loop, persists the current epoch (when a
// snapshot path is configured), and releases the listener. Safe on a nil
// receiver and idempotent.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.engine.Stop()
	persistErr := s.engine.Persist()
	closeErr := s.srv.Close()
	if persistErr != nil {
		return persistErr
	}
	if serveErr := s.ServeErr(); serveErr != nil {
		return serveErr
	}
	return closeErr
}

// Serve binds addr (host:port; ":0" for ephemeral), starts the engine's
// maintenance loop, and serves the daemon API on the listener in a
// background goroutine. The caller owns the returned Server.
func Serve(addr string, e *Engine, o *obs.Obs) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(e, o)}
	e.Start()
	s := &Server{engine: e, srv: srv, ln: ln}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.errMu.Lock()
			s.serveErr = err
			s.errMu.Unlock()
		}
	}()
	return s, nil
}
