// Package serve is the long-running group-formation service behind
// cmd/groupformd: it ingests live per-cache request/RTT statistics over
// HTTP/JSON (double-buffered, so the write path never blocks on
// aggregation), maintains the group plan incrementally through
// core.Maintainer, and serves plan/assignment queries at high RPS from
// immutable copy-on-write plan epochs (one atomic pointer load per
// query, no locks).
//
// Degradation discipline (after the EdgeComet Edge Gateway exemplar):
// when re-formation fails — quorum loss, probe errors, an invalid
// candidate plan — the daemon keeps serving the last good epoch, counts
// the failure, and reports "degraded" (stale-but-serving) on /healthz
// instead of going down. Plans persist crash-safely (tmp + fsync +
// rename) and reload on start.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/core"
	"edgecachegroups/internal/obs"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/verify"
)

// Epoch is one immutable published generation of the plan. Query handlers
// load the current epoch with one atomic pointer read and may keep using
// it for the whole request: maintenance never mutates a published epoch,
// it installs a successor.
type Epoch struct {
	// Seq numbers epochs from 1 (the boot plan).
	Seq uint64
	// Plan is the immutable plan snapshot.
	Plan *core.Plan
	// Checksum is Plan.Checksum(), precomputed so queries don't rehash.
	Checksum uint64
	// Updated is the wall-clock publication time.
	Updated time.Time
}

// Config configures an Engine.
type Config struct {
	// Plan is the boot plan (required). Restore a snapshot with
	// LoadSnapshot before constructing the engine to survive restarts.
	Plan *core.Plan
	// Recluster performs a full re-formation when drift is widespread.
	// Nil installs the default: re-cluster the current feature vectors
	// (plan features overlaid with the freshest ingested stats) with
	// K-means at the current group count.
	Recluster func() (*core.Plan, error)
	// Maint tunes the maintenance loop (zero value: defaults with
	// SampleFraction 1, since reading ingested stats is free).
	Maint core.MaintainerConfig
	// Rand seeds cache sampling and re-clustering (required).
	Rand *simrand.Source
	// Obs is the optional observability sink shared with the HTTP layer.
	Obs *obs.Obs
	// SnapshotPath, when non-empty, persists every published epoch
	// crash-safely (tmp + fsync + rename) for reload on restart.
	SnapshotPath string
	// ResumeEpoch seeds the epoch sequence when booting from a restored
	// snapshot, so epoch numbers keep rising across restarts. The boot
	// plan publishes as ResumeEpoch+1.
	ResumeEpoch uint64
}

// Engine owns the daemon's state: the double-buffered stat sink, the
// per-cache feature store, the maintainer, and the published epoch.
type Engine struct {
	cfg   Config
	stats *StatsBuffer
	maint *core.Maintainer
	dim   int

	featMu   sync.Mutex
	features map[int]cluster.Vector
	requests int64 // cumulative ingested request count

	epoch atomic.Pointer[Epoch]
	seq   atomic.Uint64

	healthMu       sync.Mutex
	rounds         int
	consecFailures int
	lastErr        error
	lastErrRound   int
	lastOK         time.Time
	persistErr     error

	ticks, tickErrors, epochs, persistErrors *obs.Counter
	epochGauge, failGauge                    *obs.Gauge

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewEngine builds the engine and publishes the boot plan as epoch 1.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Plan == nil {
		return nil, errors.New("serve: nil plan")
	}
	if cfg.Rand == nil {
		return nil, errors.New("serve: nil random source")
	}
	if cfg.Plan.NumCaches() == 0 || len(cfg.Plan.Points) != cfg.Plan.NumCaches() {
		return nil, fmt.Errorf("serve: plan has %d points for %d caches", len(cfg.Plan.Points), cfg.Plan.NumCaches())
	}
	if len(cfg.Plan.Features) > 0 && len(cfg.Plan.Features[0]) != len(cfg.Plan.Points[0]) {
		return nil, errors.New("serve: embedded-representation plans are not servable (ingested RTT vectors must live in the clustered space; use a feature-vector scheme)")
	}
	if cfg.Maint.SampleFraction == 0 { // zero value: daemon defaults
		m := core.DefaultMaintainerConfig()
		m.SampleFraction = 1 // reading ingested stats costs no probes
		m.Interval = cfg.Maint.Interval
		cfg.Maint = m
	}
	cfg.Maint.Obs = cfg.Obs
	e := &Engine{
		cfg:           cfg,
		stats:         NewStatsBuffer(),
		dim:           len(cfg.Plan.Points[0]),
		features:      make(map[int]cluster.Vector),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
		ticks:         cfg.Obs.Counter("serve_ticks"),
		tickErrors:    cfg.Obs.Counter("serve_tick_errors"),
		epochs:        cfg.Obs.Counter("serve_epochs_published"),
		persistErrors: cfg.Obs.Counter("serve_snapshot_errors"),
		epochGauge:    cfg.Obs.Gauge("serve_epoch"),
		failGauge:     cfg.Obs.Gauge("serve_consecutive_failures"),
	}
	recluster := cfg.Recluster
	if recluster == nil {
		recluster = e.reclusterFromStats
	}
	m, err := core.NewMaintainer(cfg.Plan, e.measure, recluster, cfg.Maint, cfg.Rand.Split("maintainer"))
	if err != nil {
		return nil, err
	}
	e.maint = m
	e.lastOK = time.Now()
	e.seq.Store(cfg.ResumeEpoch)
	e.publish(cfg.Plan)
	return e, nil
}

// FeatureDim returns the dimension ingested RTT vectors must have.
func (e *Engine) FeatureDim() int { return e.dim }

// Epoch returns the current published epoch (one atomic load).
func (e *Engine) Epoch() *Epoch { return e.epoch.Load() }

// Stats returns the ingest sink (the HTTP layer records into it).
func (e *Engine) Stats() *StatsBuffer { return e.stats }

// Ingest validates and records a batch of stat reports. The batch is
// all-or-nothing: any invalid record rejects the whole batch so a client
// bug cannot half-apply.
func (e *Engine) Ingest(batch []CacheStat) error {
	if len(batch) == 0 {
		return errors.New("serve: empty stats batch")
	}
	n := e.Epoch().Plan.NumCaches()
	for _, s := range batch {
		if s.Cache < 0 || s.Cache >= n {
			return fmt.Errorf("serve: cache index %d out of range [0,%d)", s.Cache, n)
		}
		if err := verify.StatVector(fmt.Sprintf("cache %d rttMS", s.Cache), s.RTTMS, e.dim); err != nil {
			return err
		}
		if s.Requests < 0 {
			return fmt.Errorf("serve: cache %d reports negative request count %d", s.Cache, s.Requests)
		}
	}
	for _, s := range batch {
		e.stats.Record(s)
	}
	return nil
}

// Assign returns the group of cache i under the current epoch.
func (e *Engine) Assign(cache int) (group int, ep *Epoch, err error) {
	ep = e.Epoch()
	g, err := ep.Plan.GroupOf(topology.CacheIndex(cache))
	if err != nil {
		return 0, ep, err
	}
	return g, ep, nil
}

// measure is the maintainer's FeatureSource: the freshest ingested RTT
// vector for the cache, or an error (→ the round skips and counts it)
// when the cache has not reported yet.
func (e *Engine) measure(i topology.CacheIndex) (cluster.Vector, error) {
	e.featMu.Lock()
	defer e.featMu.Unlock()
	fv, ok := e.features[int(i)]
	if !ok {
		return nil, fmt.Errorf("serve: no stats reported for cache %d", i)
	}
	return fv, nil
}

// reclusterFromStats is the default full re-formation: K-means over the
// current feature vectors (plan features overlaid with everything
// ingested so far) at the current group count. It runs inside a
// maintenance round, so the feature store is quiescent apart from
// concurrent ingest into the *other* buffer.
func (e *Engine) reclusterFromStats() (*core.Plan, error) {
	cur := e.maint.Plan()
	points := make([]cluster.Vector, cur.NumCaches())
	copy(points, cur.Points)
	e.featMu.Lock()
	for c := range points { // overlay by index walk: deterministic
		if v, ok := e.features[c]; ok {
			points[c] = v
		}
	}
	e.featMu.Unlock()
	k := cur.NumGroups()
	res, err := cluster.KMeans(points, k, cluster.SpreadSeeder{}, cluster.Options{}, e.cfg.Rand.Split("recluster"))
	if err != nil {
		return nil, err
	}
	next := &core.Plan{
		Scheme:      cur.Scheme,
		Landmarks:   cur.Landmarks,
		Features:    append([]cluster.Vector(nil), points...),
		Points:      points,
		ServerDist:  cur.ServerDist,
		Assignments: res.Assignments,
		Centers:     res.Centers,
		Algorithm:   core.AlgoKMeans,
		Iterations:  res.Iterations,
		Converged:   res.Converged,
	}
	return next, nil
}

// Tick runs one aggregation + maintenance round: drain the ingest
// buffer, fold the freshest vectors into the feature store, and let the
// maintainer reconcile the plan. On success the (possibly new) plan is
// published as a fresh epoch and persisted; on failure the last good
// epoch keeps serving and the failure is surfaced through Health and the
// serve_tick_errors counter.
func (e *Engine) Tick() (core.MaintainerEvent, error) {
	e.ticks.Inc()
	window, _ := e.stats.Swap()
	if len(window) > 0 {
		caches := make([]int, 0, len(window))
		for c := range window { // collect-then-sort: order-independent
			caches = append(caches, c)
		}
		sort.Ints(caches)
		e.featMu.Lock()
		for _, c := range caches {
			s := window[c]
			e.features[c] = cluster.Vector(s.RTTMS)
			e.requests += s.Requests
		}
		e.featMu.Unlock()
	}

	ev, err := e.maint.RunOnce()

	e.healthMu.Lock()
	e.rounds++
	if err != nil {
		e.consecFailures++
		e.lastErr = err
		e.lastErrRound = ev.Round
		e.tickErrors.Inc()
	} else {
		e.consecFailures = 0
		e.lastOK = time.Now()
	}
	e.failGauge.Set(float64(e.consecFailures))
	e.healthMu.Unlock()

	if err != nil {
		return ev, err
	}
	if plan := e.maint.Plan(); plan != e.Epoch().Plan {
		e.publish(plan)
	}
	return ev, nil
}

// publish installs plan as the next epoch and persists it if configured.
func (e *Engine) publish(plan *core.Plan) {
	ep := &Epoch{
		Seq:      e.seq.Add(1),
		Plan:     plan,
		Checksum: plan.Checksum(),
		Updated:  time.Now(),
	}
	e.epoch.Store(ep)
	e.epochs.Inc()
	e.epochGauge.Set(float64(ep.Seq))
	if e.cfg.SnapshotPath == "" {
		return
	}
	err := SaveSnapshot(e.cfg.SnapshotPath, ep)
	e.healthMu.Lock()
	e.persistErr = err
	e.healthMu.Unlock()
	if err != nil {
		e.persistErrors.Inc()
	}
}

// Persist writes the current epoch to the configured snapshot path (used
// for persist-on-shutdown; a no-op without a snapshot path).
func (e *Engine) Persist() error {
	if e.cfg.SnapshotPath == "" {
		return nil
	}
	return SaveSnapshot(e.cfg.SnapshotPath, e.Epoch())
}

// Health is the /healthz body.
type Health struct {
	// Status is "ok" (fresh plan), "degraded" (re-formation failing,
	// serving the last good plan), or "down" (no plan).
	Status string `json:"status"`
	// Epoch and PlanChecksum identify the serving plan.
	Epoch        uint64 `json:"epoch"`
	PlanChecksum string `json:"planChecksum"`
	// UpdatedUnix is when the serving epoch was published.
	UpdatedUnix int64 `json:"updatedUnix"`
	// Rounds counts maintenance rounds since boot.
	Rounds int `json:"rounds"`
	// ConsecutiveFailures counts failed rounds since the last success; a
	// non-zero value is what "degraded" means.
	ConsecutiveFailures int `json:"consecutiveFailures"`
	// LastError and LastErrorRound describe the most recent round failure.
	LastError      string `json:"lastError,omitempty"`
	LastErrorRound int    `json:"lastErrorRound,omitempty"`
	// LastSuccessUnix is when a round last completed successfully.
	LastSuccessUnix int64 `json:"lastSuccessUnix"`
	// PersistError is the most recent snapshot-write failure, if the last
	// write failed (plans keep serving regardless).
	PersistError string `json:"persistError,omitempty"`
	// StatReports counts ingested reports since boot; IngestedRequests
	// sums their request counters.
	StatReports       int64 `json:"statReports"`
	IngestedRequests  int64 `json:"ingestedRequests"`
	ReportedCaches    int   `json:"reportedCaches"`
	ServingStalePlans bool  `json:"servingStale"`
}

// Health snapshots the degradation state.
func (e *Engine) Health() Health {
	h := Health{Status: "down", StatReports: e.stats.Total()}
	if ep := e.Epoch(); ep != nil {
		h.Status = "ok"
		h.Epoch = ep.Seq
		h.PlanChecksum = checksumHex(ep.Checksum)
		h.UpdatedUnix = ep.Updated.Unix()
	}
	e.healthMu.Lock()
	h.Rounds = e.rounds
	h.ConsecutiveFailures = e.consecFailures
	if e.lastErr != nil {
		h.LastError = e.lastErr.Error()
		h.LastErrorRound = e.lastErrRound
	}
	h.LastSuccessUnix = e.lastOK.Unix()
	if e.persistErr != nil {
		h.PersistError = e.persistErr.Error()
	}
	e.healthMu.Unlock()
	e.featMu.Lock()
	h.IngestedRequests = e.requests
	h.ReportedCaches = len(e.features)
	e.featMu.Unlock()
	if h.Status == "ok" && h.ConsecutiveFailures > 0 {
		h.Status = "degraded"
		h.ServingStalePlans = true
	}
	return h
}

// Start launches the background tick loop at the maintenance interval.
func (e *Engine) Start() {
	e.startOnce.Do(func() {
		interval := e.cfg.Maint.Interval
		if interval <= 0 {
			interval = time.Minute
		}
		go func() {
			defer close(e.done)
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-e.stop:
					return
				case <-ticker.C:
					//ecglint:allow errdrop Tick failures surface via Health (lastErr, consecFailures) and the tick-errors counter
					_, _ = e.Tick()
				}
			}
		}()
	})
}

// Stop halts the tick loop and waits for it; idempotent, safe without
// Start.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.startOnce.Do(func() { close(e.done) })
	<-e.done
}
