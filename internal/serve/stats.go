package serve

import (
	"sync"
	"sync/atomic"
)

// CacheStat is one per-cache ingest record: the cache's freshest measured
// RTT vector to the plan's landmarks, plus an optional request-count
// delta for load accounting. Reports are idempotent per (cache, round):
// within one aggregation window the latest RTT vector wins and request
// counts accumulate.
type CacheStat struct {
	// Cache is the cache index in [0, NumCaches).
	Cache int `json:"cache"`
	// RTTMS is the cache's measured RTT to each plan landmark, in
	// milliseconds, in landmark order (the plan's feature-vector space).
	RTTMS []float64 `json:"rttMS"`
	// Requests is the number of client requests the cache served since its
	// previous report (optional).
	Requests int64 `json:"requests,omitempty"`
}

// ingestBuffer is one side of the double buffer. The sealed flag closes
// the race between a writer that loaded the pointer just before a swap
// and the drainer: the drainer seals under the buffer lock, so any writer
// that acquires the lock afterwards sees sealed and retries against the
// fresh buffer instead of writing into a drained one.
type ingestBuffer struct {
	mu      sync.Mutex
	sealed  bool
	latest  map[int]CacheStat
	reports int64
}

func newIngestBuffer() *ingestBuffer {
	return &ingestBuffer{latest: make(map[int]CacheStat)}
}

// StatsBuffer is the daemon's double-buffered stat sink, after the SSD
// exemplar: writers merge reports into the active buffer under a short
// per-buffer lock, and the aggregation tick publishes a fresh buffer with
// a single atomic pointer swap — the write path never blocks on
// aggregation, and the swap never blocks on writers.
type StatsBuffer struct {
	active atomic.Pointer[ingestBuffer]
	// total counts reports accepted across all windows (diagnostics).
	total atomic.Int64
}

// NewStatsBuffer returns an empty double-buffered sink.
func NewStatsBuffer() *StatsBuffer {
	b := &StatsBuffer{}
	b.active.Store(newIngestBuffer())
	return b
}

// Record merges one report into the active window: the report's RTT
// vector replaces the cache's previous one (freshest measurement wins)
// and its request count accumulates.
func (b *StatsBuffer) Record(s CacheStat) {
	for {
		buf := b.active.Load()
		buf.mu.Lock()
		if buf.sealed {
			buf.mu.Unlock()
			continue // lost the swap race: retry against the fresh buffer
		}
		if prev, ok := buf.latest[s.Cache]; ok {
			s.Requests += prev.Requests
		}
		buf.latest[s.Cache] = s //ecglint:allow cowmutate double-buffer write path: mutation happens under buf.mu with the sealed check, never on a retired buffer (covers reports++ below)
		buf.reports++
		buf.mu.Unlock()
		b.total.Add(1)
		return
	}
}

// Swap atomically installs a fresh active buffer and drains the previous
// window, returning its per-cache stats (keyed by cache index) and the
// number of reports it merged. The returned map is exclusively owned by
// the caller.
func (b *StatsBuffer) Swap() (map[int]CacheStat, int64) {
	old := b.active.Swap(newIngestBuffer())
	old.mu.Lock()
	old.sealed = true //ecglint:allow cowmutate sealing the swapped-out buffer under its mu is the handoff protocol; writers observe sealed and retry
	stats, n := old.latest, old.reports
	//ecglint:allow cowmutate the sealed buffer is exclusively owned here; clearing latest transfers the map to the caller
	old.latest = nil
	old.mu.Unlock()
	return stats, n
}

// Total returns the number of reports accepted since construction.
func (b *StatsBuffer) Total() int64 { return b.total.Load() }
