package serve

import (
	"sync"
	"testing"
)

func TestStatsBufferMergeSemantics(t *testing.T) {
	b := NewStatsBuffer()
	b.Record(CacheStat{Cache: 3, RTTMS: []float64{10, 20}, Requests: 5})
	b.Record(CacheStat{Cache: 3, RTTMS: []float64{11, 21}, Requests: 7})
	b.Record(CacheStat{Cache: 9, RTTMS: []float64{1, 2}})

	stats, n := b.Swap()
	if n != 3 {
		t.Fatalf("window merged %d reports, want 3", n)
	}
	if len(stats) != 2 {
		t.Fatalf("window has %d caches, want 2", len(stats))
	}
	got := stats[3]
	if got.RTTMS[0] != 11 || got.RTTMS[1] != 21 {
		t.Fatalf("cache 3 RTT = %v, want the latest report {11 21}", got.RTTMS)
	}
	if got.Requests != 12 {
		t.Fatalf("cache 3 requests = %d, want accumulated 12", got.Requests)
	}
	if b.Total() != 3 {
		t.Fatalf("Total = %d, want 3", b.Total())
	}

	// The next window starts empty.
	stats, n = b.Swap()
	if len(stats) != 0 || n != 0 {
		t.Fatalf("fresh window not empty: %d caches, %d reports", len(stats), n)
	}
}

// TestStatsBufferSwapRace hammers Record against Swap and checks
// conservation: every accepted report lands in exactly one window — the
// sealed-retry loop must not lose writes into drained buffers. Run with
// -race.
func TestStatsBufferSwapRace(t *testing.T) {
	b := NewStatsBuffer()
	const writers = 8
	const perWriter = 500

	var wg sync.WaitGroup
	var swapped sync.WaitGroup
	var mu sync.Mutex
	var drained int64
	stopSwaps := make(chan struct{})

	swapped.Add(1)
	go func() {
		defer swapped.Done()
		for {
			_, n := b.Swap()
			mu.Lock()
			drained += n
			mu.Unlock()
			select {
			case <-stopSwaps:
				return
			default:
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				b.Record(CacheStat{Cache: w, RTTMS: []float64{float64(i)}, Requests: 1})
			}
		}(w)
	}
	wg.Wait()
	close(stopSwaps)
	swapped.Wait()

	// A final drain catches writes that landed after the swapper's last pass.
	_, n := b.Swap()
	drained += n

	want := int64(writers * perWriter)
	if drained != want {
		t.Fatalf("drained %d reports across windows, want %d (lost writes)", drained, want)
	}
	if b.Total() != want {
		t.Fatalf("Total = %d, want %d", b.Total(), want)
	}
}
