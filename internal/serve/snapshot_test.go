package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	plan := testPlan(8)
	plan.Iterations = 4
	ep := &Epoch{Seq: 7, Plan: plan, Checksum: plan.Checksum(), Updated: time.Now()}
	path := filepath.Join(t.TempDir(), "plan.json")

	if err := SaveSnapshot(path, ep); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if got.Seq != 7 {
		t.Fatalf("restored epoch %d, want 7", got.Seq)
	}
	if got.Checksum != ep.Checksum {
		t.Fatalf("restored checksum %016x, want %016x", got.Checksum, ep.Checksum)
	}
	q := got.Plan
	if q.Scheme != plan.Scheme || q.NumCaches() != plan.NumCaches() || q.NumGroups() != plan.NumGroups() {
		t.Fatalf("restored plan shape %s/%d/%d, want %s/%d/%d",
			q.Scheme, q.NumCaches(), q.NumGroups(), plan.Scheme, plan.NumCaches(), plan.NumGroups())
	}
	if q.Algorithm != plan.Algorithm || q.Iterations != plan.Iterations || q.Converged != plan.Converged {
		t.Fatalf("restored algorithm metadata %v/%d/%v differs", q.Algorithm, q.Iterations, q.Converged)
	}
	if len(q.Landmarks) != 2 || !q.Landmarks[0].IsOrigin() || q.Landmarks[1].IsOrigin() {
		t.Fatalf("landmarks did not round-trip: %v", q.Landmarks)
	}
	for i := range plan.Assignments {
		if q.Assignments[i] != plan.Assignments[i] {
			t.Fatalf("assignment %d = %d, want %d", i, q.Assignments[i], plan.Assignments[i])
		}
	}
	if err := q.Verify(nil); err != nil {
		t.Fatalf("restored plan fails verification: %v", err)
	}
	if q.Checksum() != plan.Checksum() {
		t.Fatalf("restored plan digests to %016x, want %016x", q.Checksum(), plan.Checksum())
	}
}

func TestSnapshotEditedFlagRoundTrip(t *testing.T) {
	plan := testPlan(8)
	// Move one cache without recomputing centers: only legal as "edited".
	plan.Assignments[0] = 1
	plan.MarkEdited()
	ep := &Epoch{Seq: 2, Plan: plan, Checksum: plan.Checksum(), Updated: time.Now()}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SaveSnapshot(path, ep); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if !got.Plan.Edited() {
		t.Fatal("edited flag lost in round trip (restored plan would wrongly re-arm CentersAreMeans)")
	}
}

func TestSnapshotRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestSnapshotRejectsChecksumMismatch(t *testing.T) {
	plan := testPlan(8)
	ep := &Epoch{Seq: 1, Plan: plan, Checksum: plan.Checksum(), Updated: time.Now()}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SaveSnapshot(path, ep); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "\"planChecksum\":\"" + checksumHex(ep.Checksum) + "\""
	tampered := strings.Replace(string(data), want, "\"planChecksum\":\"deadbeefdeadbeef\"", 1)
	if tampered == string(data) {
		t.Fatalf("checksum field %q not found in snapshot", want)
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("tampered snapshot accepted (err=%v)", err)
	}
}

func TestSnapshotRejectsVersionSkew(t *testing.T) {
	plan := testPlan(8)
	ep := &Epoch{Seq: 1, Plan: plan, Checksum: plan.Checksum(), Updated: time.Now()}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SaveSnapshot(path, ep); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	data, _ := os.ReadFile(path)
	bumped := strings.Replace(string(data), "\"version\":1", "\"version\":99", 1)
	if err := os.WriteFile(path, []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-skewed snapshot accepted (err=%v)", err)
	}
}

func TestSnapshotLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	plan := testPlan(8)
	ep := &Epoch{Seq: 1, Plan: plan, Checksum: plan.Checksum(), Updated: time.Now()}
	path := filepath.Join(dir, "plan.json")
	for i := 0; i < 3; i++ {
		if err := SaveSnapshot(path, ep); err != nil {
			t.Fatalf("SaveSnapshot %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "plan.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("snapshot dir holds %v, want exactly [plan.json]", names)
	}
}
