package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/core"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/topology"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// checksumHex renders a plan digest the way it appears on the wire and on
// disk: 16 zero-padded hex digits.
func checksumHex(sum uint64) string { return fmt.Sprintf("%016x", sum) }

// landmarkJSON serializes one probe endpoint (opaque struct → explicit
// origin/cache-index form).
type landmarkJSON struct {
	Origin bool `json:"origin,omitempty"`
	Cache  int  `json:"cache,omitempty"`
}

// planJSON is the serialized core.Plan.
type planJSON struct {
	Scheme         string         `json:"scheme"`
	Landmarks      []landmarkJSON `json:"landmarks,omitempty"`
	Features       [][]float64    `json:"features,omitempty"`
	Points         [][]float64    `json:"points"`
	LandmarkCoords [][]float64    `json:"landmarkCoords,omitempty"`
	ServerDist     []float64      `json:"serverDist,omitempty"`
	Assignments    []int          `json:"assignments"`
	Centers        [][]float64    `json:"centers"`
	Algorithm      int            `json:"algorithm,omitempty"`
	Iterations     int            `json:"iterations,omitempty"`
	Converged      bool           `json:"converged,omitempty"`
	Edited         bool           `json:"edited,omitempty"`
}

// snapshotFile is the on-disk envelope. Checksum is the plan's FNV-1a
// digest recorded at save time; LoadSnapshot recomputes it from the
// decoded plan and rejects the file on mismatch, so a torn or hand-edited
// snapshot can never boot a corrupt plan.
type snapshotFile struct {
	Version   int      `json:"version"`
	SavedUnix int64    `json:"savedUnix"`
	Epoch     uint64   `json:"epoch"`
	Checksum  string   `json:"planChecksum"`
	Plan      planJSON `json:"plan"`
}

func vectorsToFloats(vs []cluster.Vector) [][]float64 {
	if vs == nil {
		return nil
	}
	out := make([][]float64, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

func floatsToVectors(fs [][]float64) []cluster.Vector {
	if fs == nil {
		return nil
	}
	out := make([]cluster.Vector, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

// SaveSnapshot writes the epoch's plan crash-safely: marshal to a
// temporary file in the target directory, fsync it, rename over the
// target, then fsync the directory. A crash at any point leaves either
// the previous snapshot or the new one, never a torn file.
func SaveSnapshot(path string, ep *Epoch) error {
	if ep == nil || ep.Plan == nil {
		return fmt.Errorf("serve: nil epoch")
	}
	p := ep.Plan
	lms := make([]landmarkJSON, len(p.Landmarks))
	for i, lm := range p.Landmarks {
		if lm.IsOrigin() {
			lms[i] = landmarkJSON{Origin: true}
		} else {
			lms[i] = landmarkJSON{Cache: int(lm.CacheIndex())}
		}
	}
	snap := snapshotFile{
		Version:   snapshotVersion,
		SavedUnix: time.Now().Unix(),
		Epoch:     ep.Seq,
		Checksum:  checksumHex(ep.Checksum),
		Plan: planJSON{
			Scheme:         p.Scheme,
			Landmarks:      lms,
			Features:       vectorsToFloats(p.Features),
			Points:         vectorsToFloats(p.Points),
			LandmarkCoords: p.LandmarkCoords,
			ServerDist:     p.ServerDist,
			Assignments:    p.Assignments,
			Centers:        vectorsToFloats(p.Centers),
			Algorithm:      int(p.Algorithm),
			Iterations:     p.Iterations,
			Converged:      p.Converged,
			Edited:         p.Edited(),
		},
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("serve: marshal snapshot: %w", err)
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: create snapshot tmp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: fsync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("serve: publish snapshot: %w", err)
	}
	// Durable rename: fsync the directory (best-effort on platforms that
	// reject directory fsync).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() //ecglint:allow errdrop directory fsync is best-effort by design; some platforms reject it (covers the Close below)
		_ = d.Close()
	}
	return nil
}

// LoadSnapshot reads a snapshot written by SaveSnapshot, rebuilds the
// plan, verifies its structural invariants, and checks the recorded
// checksum against the rebuilt plan's digest. The returned epoch carries
// the persisted sequence number so a restarted daemon resumes counting
// from where it stopped.
func LoadSnapshot(path string) (*Epoch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("serve: decode snapshot %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("serve: snapshot %s has version %d, want %d", path, snap.Version, snapshotVersion)
	}
	pj := snap.Plan
	lms := make([]probe.Endpoint, len(pj.Landmarks))
	for i, lm := range pj.Landmarks {
		if lm.Origin {
			lms[i] = probe.Origin()
		} else {
			lms[i] = probe.Cache(topology.CacheIndex(lm.Cache))
		}
	}
	plan := &core.Plan{
		Scheme:         pj.Scheme,
		Landmarks:      lms,
		Features:       floatsToVectors(pj.Features),
		Points:         floatsToVectors(pj.Points),
		LandmarkCoords: pj.LandmarkCoords,
		ServerDist:     pj.ServerDist,
		Assignments:    pj.Assignments,
		Centers:        floatsToVectors(pj.Centers),
		Algorithm:      core.Algorithm(pj.Algorithm),
		Iterations:     pj.Iterations,
		Converged:      pj.Converged,
	}
	if pj.Edited {
		plan.MarkEdited()
	}
	if err := plan.Verify(nil); err != nil {
		return nil, fmt.Errorf("serve: snapshot %s holds an invalid plan: %w", path, err)
	}
	sum := plan.Checksum()
	if got := checksumHex(sum); got != snap.Checksum {
		return nil, fmt.Errorf("serve: snapshot %s checksum mismatch: file records %s, plan digests to %s", path, snap.Checksum, got)
	}
	return &Epoch{
		Seq:      snap.Epoch,
		Plan:     plan,
		Checksum: sum,
		Updated:  time.Unix(snap.SavedUnix, 0),
	}, nil
}
