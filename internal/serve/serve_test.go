package serve

import (
	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/core"
	"edgecachegroups/internal/probe"
)

// testPlan builds a 2-group K-means plan over n caches in feature space
// (2 landmarks → 2-dim RTT vectors) with exact-mean centers, so the
// verify layer's CentersAreMeans check is active and passing.
func testPlan(n int) *core.Plan {
	points := make([]cluster.Vector, n)
	assigns := make([]int, n)
	dist := make([]float64, n)
	for i := range points {
		if i < n/2 {
			points[i] = cluster.Vector{10 + float64(i%3), 10}
			assigns[i] = 0
		} else {
			points[i] = cluster.Vector{200 + float64(i%3), 200}
			assigns[i] = 1
		}
		dist[i] = points[i][0]
	}
	p := &core.Plan{
		Scheme:      "SL",
		Landmarks:   []probe.Endpoint{probe.Origin(), probe.Cache(0)},
		Points:      points,
		Features:    append([]cluster.Vector(nil), points...),
		ServerDist:  dist,
		Assignments: assigns,
		Centers:     make([]cluster.Vector, 2),
		Algorithm:   core.AlgoKMeans,
		Converged:   true,
	}
	for g := range p.Centers {
		mean := make(cluster.Vector, 2)
		count := 0
		for i, a := range p.Assignments {
			if a != g {
				continue
			}
			for d := range mean {
				mean[d] += p.Points[i][d]
			}
			count++
		}
		for d := range mean {
			mean[d] /= float64(count)
		}
		p.Centers[g] = mean
	}
	return p
}

// statsFor converts every plan point into a CacheStat batch (a "no drift"
// full report).
func statsFor(p *core.Plan) []CacheStat {
	batch := make([]CacheStat, p.NumCaches())
	for i := range batch {
		batch[i] = CacheStat{Cache: i, RTTMS: append([]float64(nil), p.Points[i]...), Requests: 1}
	}
	return batch
}
