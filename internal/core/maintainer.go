package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// FeatureSource returns a cache's *current* feature vector (its RTTs to
// the plan's landmarks, freshly measured). The production implementation
// probes the landmark set; tests inject synthetic drift.
type FeatureSource func(i topology.CacheIndex) (cluster.Vector, error)

// MaintainerConfig tunes group maintenance. Internet RTTs drift as routes
// and load change, so a deployed edge cache network must refresh its
// groups; the paper fixes the group formation inputs ("caches repeatedly
// measure their network distance to these landmark nodes"), and this
// component supplies the missing operational loop: cheap incremental
// reassignment for isolated drift, full re-clustering when drift is
// widespread.
type MaintainerConfig struct {
	// Interval is the period between maintenance rounds (Start/Stop mode).
	// Zero means the default (1 minute).
	Interval time.Duration
	// SampleFraction is the fraction of caches re-measured per round, in
	// (0, 1]. Sampling keeps the monitoring probe bill bounded.
	SampleFraction float64
	// DriftThreshold is the relative L2 feature change that marks a cache
	// as drifted (e.g. 0.2 = 20%).
	DriftThreshold float64
	// ReclusterFraction: when more than this fraction of the sampled
	// caches drifted, the maintainer triggers a full re-clustering instead
	// of incremental reassignment.
	ReclusterFraction float64
}

// DefaultMaintainerConfig returns sensible maintenance defaults.
func DefaultMaintainerConfig() MaintainerConfig {
	return MaintainerConfig{
		Interval:          time.Minute,
		SampleFraction:    0.25,
		DriftThreshold:    0.2,
		ReclusterFraction: 0.5,
	}
}

// Validate reports whether the config is usable.
func (c MaintainerConfig) Validate() error {
	switch {
	case c.Interval < 0:
		return fmt.Errorf("core: Interval must be >= 0, got %v", c.Interval)
	case c.SampleFraction <= 0 || c.SampleFraction > 1:
		return fmt.Errorf("core: SampleFraction must be in (0,1], got %v", c.SampleFraction)
	case c.DriftThreshold <= 0:
		return fmt.Errorf("core: DriftThreshold must be > 0, got %v", c.DriftThreshold)
	case c.ReclusterFraction <= 0 || c.ReclusterFraction > 1:
		return fmt.Errorf("core: ReclusterFraction must be in (0,1], got %v", c.ReclusterFraction)
	}
	return nil
}

// MaintainerEvent describes one maintenance round's outcome.
type MaintainerEvent struct {
	// Round numbers rounds from 1.
	Round int
	// Sampled is the number of caches re-measured.
	Sampled int
	// Drifted lists sampled caches whose features moved beyond the
	// threshold.
	Drifted []topology.CacheIndex
	// Reassigned lists drifted caches that changed group incrementally.
	Reassigned []topology.CacheIndex
	// Reclustered reports whether a full re-clustering replaced the plan.
	Reclustered bool
	// Err carries a round-level failure (the maintainer keeps running).
	Err error
}

// Maintainer keeps a Plan aligned with current network conditions.
type Maintainer struct {
	cfg       MaintainerConfig
	source    FeatureSource
	recluster func() (*Plan, error)
	src       *simrand.Source

	mu    sync.Mutex
	plan  *Plan
	round int

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
	events    chan MaintainerEvent
}

// NewMaintainer builds a maintainer over plan. source measures current
// features; recluster performs a full group re-formation (typically
// Coordinator.FormGroups) and may be nil to disable full refreshes.
func NewMaintainer(plan *Plan, source FeatureSource, recluster func() (*Plan, error), cfg MaintainerConfig, src *simrand.Source) (*Maintainer, error) {
	if plan == nil {
		return nil, errors.New("core: nil plan")
	}
	if len(plan.Points) != plan.NumCaches() || plan.NumCaches() == 0 {
		return nil, fmt.Errorf("core: plan has %d points for %d caches", len(plan.Points), plan.NumCaches())
	}
	if source == nil {
		return nil, errors.New("core: nil feature source")
	}
	if src == nil {
		return nil, errors.New("core: nil random source")
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Minute
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Maintainer{
		cfg:       cfg,
		source:    source,
		recluster: recluster,
		src:       src,
		plan:      plan,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		events:    make(chan MaintainerEvent, 1),
	}, nil
}

// Plan returns the current plan (which RunOnce or the background loop may
// replace after a full re-clustering).
func (m *Maintainer) Plan() *Plan {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.plan
}

// Events returns the channel on which background rounds report; events are
// dropped if the consumer lags (capacity 1).
func (m *Maintainer) Events() <-chan MaintainerEvent { return m.events }

// RunOnce executes one synchronous maintenance round.
func (m *Maintainer) RunOnce() (MaintainerEvent, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.round++
	ev := MaintainerEvent{Round: m.round}

	n := m.plan.NumCaches()
	sample := int(math.Ceil(m.cfg.SampleFraction * float64(n)))
	if sample > n {
		sample = n
	}
	idx, err := m.src.SampleWithoutReplacement(n, sample)
	if err != nil {
		return ev, fmt.Errorf("sample caches: %w", err)
	}
	ev.Sampled = sample

	fresh := make(map[int]cluster.Vector, sample)
	for _, i := range idx {
		fv, err := m.source(topology.CacheIndex(i))
		if err != nil {
			continue // unreachable cache: skip this round
		}
		if len(fv) != len(m.plan.Points[i]) {
			return ev, fmt.Errorf("cache %d: feature dimension %d, want %d", i, len(fv), len(m.plan.Points[i]))
		}
		old := m.plan.Points[i]
		norm := vectorNorm(old)
		if norm < 1 {
			norm = 1
		}
		if cluster.L2(fv, old)/norm > m.cfg.DriftThreshold {
			ev.Drifted = append(ev.Drifted, topology.CacheIndex(i))
		}
		fresh[i] = fv
	}

	// Widespread drift: rebuild everything.
	if m.recluster != nil && sample > 0 &&
		float64(len(ev.Drifted))/float64(sample) > m.cfg.ReclusterFraction {
		newPlan, err := m.recluster()
		if err != nil {
			ev.Err = fmt.Errorf("recluster: %w", err)
			return ev, ev.Err
		}
		m.plan = newPlan
		ev.Reclustered = true
		return ev, nil
	}

	// Isolated drift: refresh the stored features and reassign to the
	// nearest center.
	for _, ci := range ev.Drifted {
		i := int(ci)
		m.plan.Points[i] = fresh[i]
		if i < len(m.plan.Features) {
			m.plan.Features[i] = fresh[i]
		}
		g, err := m.plan.AssignPoint(fresh[i])
		if err != nil {
			ev.Err = err
			return ev, err
		}
		if g != m.plan.Assignments[i] {
			m.plan.Assignments[i] = g
			ev.Reassigned = append(ev.Reassigned, ci)
		}
	}
	return ev, nil
}

// Start launches the background maintenance loop. Stop shuts it down.
func (m *Maintainer) Start() {
	m.startOnce.Do(func() {
		go func() {
			defer close(m.done)
			//ecglint:allow detclock the live maintenance loop refreshes on a wall-clock interval; simulated runs call RunOnce directly
			ticker := time.NewTicker(m.cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-m.stop:
					return
				case <-ticker.C:
					ev, err := m.RunOnce()
					if err != nil {
						ev.Err = err
					}
					select {
					case m.events <- ev:
					default: // consumer lagging: drop
					}
				}
			}
		}()
	})
}

// Stop signals the background loop to exit and waits for it. Stop is safe
// to call without Start and is idempotent.
func (m *Maintainer) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.startOnce.Do(func() { close(m.done) }) // never started: mark done
	<-m.done
}

func vectorNorm(v cluster.Vector) float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}
