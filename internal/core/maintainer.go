package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/obs"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// FeatureSource returns a cache's *current* feature vector (its RTTs to
// the plan's landmarks, freshly measured). The production implementation
// probes the landmark set; the serving daemon reads the latest ingested
// stats; tests inject synthetic drift. The returned vector must not be
// mutated afterwards: on drift it is stored verbatim in the next plan.
type FeatureSource func(i topology.CacheIndex) (cluster.Vector, error)

// MaintainerConfig tunes group maintenance. Internet RTTs drift as routes
// and load change, so a deployed edge cache network must refresh its
// groups; the paper fixes the group formation inputs ("caches repeatedly
// measure their network distance to these landmark nodes"), and this
// component supplies the missing operational loop: cheap incremental
// reassignment for isolated drift, full re-clustering when drift is
// widespread.
type MaintainerConfig struct {
	// Interval is the period between maintenance rounds (Start/Stop mode).
	// Zero means the default (1 minute).
	Interval time.Duration
	// SampleFraction is the fraction of caches re-measured per round, in
	// (0, 1]. Sampling keeps the monitoring probe bill bounded.
	SampleFraction float64
	// DriftThreshold is the relative L2 feature change that marks a cache
	// as drifted (e.g. 0.2 = 20%).
	DriftThreshold float64
	// ReclusterFraction: when more than this fraction of the *measured*
	// caches drifted, the maintainer triggers a full re-clustering instead
	// of incremental reassignment. Caches the FeatureSource could not
	// measure are excluded from the denominator, so failed probes never
	// dilute the trigger.
	ReclusterFraction float64
	// Verify audits every candidate plan against the invariant-checking
	// layer before it is published; a plan that fails verification is
	// discarded and the round reports an error while the last good plan
	// keeps serving.
	Verify bool
	// Obs is the optional observability sink: per-round counters
	// (maintainer_rounds, maintainer_round_errors, maintainer_reclusters,
	// maintainer_caches_{drifted,reassigned,skipped}) and a
	// maintainer_last_error_round gauge. Nil disables instrumentation.
	Obs *obs.Obs
}

// DefaultMaintainerConfig returns sensible maintenance defaults.
func DefaultMaintainerConfig() MaintainerConfig {
	return MaintainerConfig{
		Interval:          time.Minute,
		SampleFraction:    0.25,
		DriftThreshold:    0.2,
		ReclusterFraction: 0.5,
		Verify:            true,
	}
}

// Validate reports whether the config is usable.
func (c MaintainerConfig) Validate() error {
	switch {
	case c.Interval < 0:
		return fmt.Errorf("core: Interval must be >= 0, got %v", c.Interval)
	case c.SampleFraction <= 0 || c.SampleFraction > 1:
		return fmt.Errorf("core: SampleFraction must be in (0,1], got %v", c.SampleFraction)
	case c.DriftThreshold <= 0:
		return fmt.Errorf("core: DriftThreshold must be > 0, got %v", c.DriftThreshold)
	case c.ReclusterFraction <= 0 || c.ReclusterFraction > 1:
		return fmt.Errorf("core: ReclusterFraction must be in (0,1], got %v", c.ReclusterFraction)
	}
	return nil
}

// MaintainerEvent describes one maintenance round's outcome.
type MaintainerEvent struct {
	// Round numbers rounds from 1.
	Round int
	// Sampled is the number of caches actually re-measured (successful
	// FeatureSource calls). Caches selected for the round but skipped
	// because measurement failed are counted in Skipped instead.
	Sampled int
	// Skipped is the number of selected caches whose measurement failed
	// (unreachable caches, no fresh stats).
	Skipped int
	// Drifted lists measured caches whose features moved beyond the
	// threshold.
	Drifted []topology.CacheIndex
	// Reassigned lists drifted caches that changed group incrementally.
	Reassigned []topology.CacheIndex
	// Reclustered reports whether a full re-clustering replaced the plan.
	Reclustered bool
	// Err carries a round-level failure (the maintainer keeps running and
	// keeps serving the last good plan).
	Err error
}

// Maintainer keeps a Plan aligned with current network conditions.
//
// The published plan is copy-on-write: every maintenance round builds a
// fresh *Plan (or receives one from recluster) and installs it with one
// atomic pointer store, so Plan() hands out immutable snapshots that a
// concurrent query path can read without locks and without ever observing
// a half-applied round.
type Maintainer struct {
	cfg       MaintainerConfig
	source    FeatureSource
	recluster func() (*Plan, error)
	src       *simrand.Source

	plan atomic.Pointer[Plan]

	mu    sync.Mutex // serializes maintenance rounds
	round int

	errMu        sync.Mutex // guards lastErr; separate so LastError never blocks on a round
	lastErr      error
	lastErrRound int

	rounds, roundErrors, reclusters   *obs.Counter
	drifted, reassigned, skippedCount *obs.Counter
	lastErrGauge                      *obs.Gauge

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
	events    chan MaintainerEvent
}

// NewMaintainer builds a maintainer over plan. source measures current
// features; recluster performs a full group re-formation (typically
// Coordinator.FormGroups) and may be nil to disable full refreshes.
func NewMaintainer(plan *Plan, source FeatureSource, recluster func() (*Plan, error), cfg MaintainerConfig, src *simrand.Source) (*Maintainer, error) {
	if plan == nil {
		return nil, errors.New("core: nil plan")
	}
	if len(plan.Points) != plan.NumCaches() || plan.NumCaches() == 0 {
		return nil, fmt.Errorf("core: plan has %d points for %d caches", len(plan.Points), plan.NumCaches())
	}
	if source == nil {
		return nil, errors.New("core: nil feature source")
	}
	if src == nil {
		return nil, errors.New("core: nil random source")
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Minute
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Maintainer{
		cfg:          cfg,
		source:       source,
		recluster:    recluster,
		src:          src,
		rounds:       cfg.Obs.Counter("maintainer_rounds"),
		roundErrors:  cfg.Obs.Counter("maintainer_round_errors"),
		reclusters:   cfg.Obs.Counter("maintainer_reclusters"),
		drifted:      cfg.Obs.Counter("maintainer_caches_drifted"),
		reassigned:   cfg.Obs.Counter("maintainer_caches_reassigned"),
		skippedCount: cfg.Obs.Counter("maintainer_caches_skipped"),
		lastErrGauge: cfg.Obs.Gauge("maintainer_last_error_round"),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		events:       make(chan MaintainerEvent, 1),
	}
	m.plan.Store(plan)
	return m, nil
}

// Plan returns the current plan snapshot with one atomic pointer load.
// Published plans are immutable: maintenance rounds build a replacement
// and swap it in, so the returned plan is safe to read concurrently and
// indefinitely (it just goes stale).
func (m *Maintainer) Plan() *Plan { return m.plan.Load() }

// LastError returns the most recent round-level failure and the round it
// occurred in (0, nil when no round has failed yet). Unlike the Events
// channel it is never dropped, so a daemon health endpoint can always
// surface the latest failure.
func (m *Maintainer) LastError() (round int, err error) {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.lastErrRound, m.lastErr
}

// Events returns the channel on which background rounds report. Successful
// rounds are dropped if the consumer lags (capacity 1); a round that
// failed evicts a queued stale event so the freshest error is observable,
// and every failure is additionally recorded in LastError and the
// maintainer_round_errors counter regardless of channel state.
func (m *Maintainer) Events() <-chan MaintainerEvent { return m.events }

// RunOnce executes one synchronous maintenance round.
func (m *Maintainer) RunOnce() (MaintainerEvent, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.round++
	ev := MaintainerEvent{Round: m.round}
	err := m.runRound(&ev)
	ev.Err = err
	m.record(ev)
	return ev, err
}

// record updates the observability counters and the sticky last-error
// state for one completed round.
func (m *Maintainer) record(ev MaintainerEvent) {
	m.rounds.Inc()
	m.drifted.Add(int64(len(ev.Drifted)))
	m.reassigned.Add(int64(len(ev.Reassigned)))
	m.skippedCount.Add(int64(ev.Skipped))
	if ev.Reclustered {
		m.reclusters.Inc()
	}
	if ev.Err != nil {
		m.roundErrors.Inc()
		m.lastErrGauge.Set(float64(ev.Round))
		m.errMu.Lock()
		m.lastErr = ev.Err
		m.lastErrRound = ev.Round
		m.errMu.Unlock()
	}
}

// runRound measures a sample of caches against the current plan and either
// reclusters (widespread drift) or incrementally reassigns (isolated
// drift), publishing the next plan via one atomic store. The published
// plan is never mutated: on any error the last good plan stays installed.
func (m *Maintainer) runRound(ev *MaintainerEvent) error {
	cur := m.plan.Load()
	n := cur.NumCaches()
	sample := int(math.Ceil(m.cfg.SampleFraction * float64(n)))
	if sample > n {
		sample = n
	}
	idx, err := m.src.SampleWithoutReplacement(n, sample)
	if err != nil {
		return fmt.Errorf("sample caches: %w", err)
	}

	fresh := make(map[int]cluster.Vector, sample)
	for _, i := range idx {
		fv, err := m.source(topology.CacheIndex(i))
		if err != nil {
			ev.Skipped++ // unreachable cache: skip this round
			continue
		}
		if len(fv) != len(cur.Points[i]) {
			return fmt.Errorf("cache %d: feature dimension %d, want %d", i, len(fv), len(cur.Points[i]))
		}
		ev.Sampled++
		old := cur.Points[i]
		norm := vectorNorm(old)
		if norm < 1 {
			norm = 1
		}
		if cluster.L2(fv, old)/norm > m.cfg.DriftThreshold {
			ev.Drifted = append(ev.Drifted, topology.CacheIndex(i))
		}
		fresh[i] = fv
	}

	// Widespread drift among the caches actually measured: rebuild
	// everything. Skipped caches are excluded from the denominator so a
	// burst of probe failures cannot mask real drift.
	if m.recluster != nil && ev.Sampled > 0 &&
		float64(len(ev.Drifted))/float64(ev.Sampled) > m.cfg.ReclusterFraction {
		next, err := m.recluster()
		if err != nil {
			return fmt.Errorf("recluster: %w", err)
		}
		if next == nil || next.NumCaches() == 0 {
			return errors.New("recluster: returned an empty plan")
		}
		if m.cfg.Verify {
			if err := next.Verify(nil); err != nil {
				return fmt.Errorf("recluster produced invalid plan: %w", err)
			}
		}
		m.plan.Store(next)
		ev.Reclustered = true
		return nil
	}

	if len(ev.Drifted) == 0 {
		return nil
	}

	// Isolated drift: copy-on-write. Build the next plan with refreshed
	// features, nearest-center reassignments, and recomputed centers for
	// every touched group, then swap it in atomically.
	next := cur.cloneShallow()
	sizes := next.Sizes()
	touched := make([]bool, next.NumGroups())
	for _, ci := range ev.Drifted {
		i := int(ci)
		next.Points[i] = fresh[i]
		if i < len(next.Features) {
			next.Features[i] = fresh[i]
		}
		// A drifted cache moves its group's mean even if it stays put.
		touched[next.Assignments[i]] = true
	}
	for _, ci := range ev.Drifted {
		i := int(ci)
		g, err := next.AssignPoint(next.Points[i])
		if err != nil {
			return err
		}
		old := next.Assignments[i]
		if g == old {
			continue
		}
		if sizes[old] == 1 {
			// Moving the last member would empty its group and break the
			// partition invariant; keep the cache in place (its recomputed
			// singleton center follows the drifted point, so it stops
			// looking reassignable once the swap lands).
			continue
		}
		sizes[old]--
		sizes[g]++
		next.Assignments[i] = g
		touched[old] = true
		touched[g] = true
		ev.Reassigned = append(ev.Reassigned, ci)
	}
	refreshCenters(next, touched)
	if m.cfg.Verify {
		if err := next.Verify(nil); err != nil {
			return fmt.Errorf("maintenance produced invalid plan: %w", err)
		}
	}
	m.plan.Store(next)
	return nil
}

// refreshCenters recomputes the centers of the touched groups so the
// published plan's centers reflect its points: member means for K-means
// (and unknown-algorithm) plans — restoring the centers-are-means
// invariant Verify checks — and the exact medoid (member minimizing total
// distance, lowest index on ties) for K-medoids plans, preserving the
// centers-are-real-points property. Replacement center vectors are fresh
// allocations; the shared vectors of the plan this one was cloned from are
// never written.
func refreshCenters(p *Plan, touched []bool) {
	if p.Algorithm == AlgoKMedoids {
		refreshMedoids(p, touched)
		return
	}
	if len(p.Points) == 0 || len(p.Centers) == 0 {
		return
	}
	dim := len(p.Points[0])
	sums := make(map[int][]float64, len(touched))
	counts := make(map[int]int, len(touched))
	for g, t := range touched {
		if t {
			sums[g] = make([]float64, dim)
		}
	}
	for i, a := range p.Assignments {
		s, ok := sums[a]
		if !ok {
			continue
		}
		counts[a]++
		for j, x := range p.Points[i] {
			s[j] += x
		}
	}
	for g, t := range touched { // slice range: index order, deterministic
		if !t || counts[g] == 0 {
			continue
		}
		mean := sums[g]
		for j := range mean {
			mean[j] /= float64(counts[g])
		}
		p.Centers[g] = mean
	}
}

// refreshMedoids recomputes the medoid of each touched group: the member
// whose summed L2 distance to the other members is minimal, lowest index
// winning ties (the same tie-break the batch K-medoids uses).
func refreshMedoids(p *Plan, touched []bool) {
	for g, t := range touched {
		if !t {
			continue
		}
		var members []int
		for i, a := range p.Assignments {
			if a == g {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			continue
		}
		best, bestCost := members[0], math.Inf(1)
		for _, i := range members {
			var cost float64
			for _, j := range members {
				cost += cluster.L2(p.Points[i], p.Points[j])
			}
			if cost < bestCost {
				best, bestCost = i, cost
			}
		}
		p.Centers[g] = p.Points[best].Clone()
	}
}

// Start launches the background maintenance loop. Stop shuts it down.
func (m *Maintainer) Start() {
	m.startOnce.Do(func() {
		go func() {
			defer close(m.done)
			//ecglint:allow detclock the live maintenance loop refreshes on a wall-clock interval; simulated runs call RunOnce directly
			ticker := time.NewTicker(m.cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-m.stop:
					return
				case <-ticker.C:
					//ecglint:allow errdrop the round error rides in ev.Err and the round-error counters; publish delivers it
					ev, _ := m.RunOnce()
					m.publish(ev)
				}
			}
		}()
	})
}

// publish delivers one round event. Successful rounds keep the historical
// drop-on-lag contract (capacity 1, consumer lagging drops the event). A
// failed round must not vanish silently: it evicts a queued stale event
// and takes its slot, so the freshest error is always observable on the
// channel (and, independently of the channel, via LastError and the
// maintainer_round_errors counter).
func (m *Maintainer) publish(ev MaintainerEvent) {
	select {
	case m.events <- ev:
		return
	default:
	}
	if ev.Err == nil {
		return // consumer lagging: drop the success
	}
	select {
	case <-m.events:
	default:
	}
	select {
	case m.events <- ev:
	default:
	}
}

// Stop signals the background loop to exit and waits for it. Stop is safe
// to call without Start and is idempotent.
func (m *Maintainer) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.startOnce.Do(func() { close(m.done) }) // never started: mark done
	<-m.done
}

func vectorNorm(v cluster.Vector) float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}
