package core

import (
	"errors"
	"testing"
	"time"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// maintPlan builds a 2-group plan with well-separated centers.
func maintPlan(n int) *Plan {
	points := make([]cluster.Vector, n)
	assigns := make([]int, n)
	for i := range points {
		if i < n/2 {
			points[i] = cluster.Vector{10 + float64(i%3), 10}
			assigns[i] = 0
		} else {
			points[i] = cluster.Vector{200 + float64(i%3), 200}
			assigns[i] = 1
		}
	}
	return &Plan{
		Scheme:      "SL",
		Points:      points,
		Features:    append([]cluster.Vector(nil), points...),
		Assignments: assigns,
		Centers:     []cluster.Vector{{10, 10}, {200, 200}},
	}
}

// stableSource returns the plan's own points (no drift).
func stableSource(p *Plan) FeatureSource {
	return func(i topology.CacheIndex) (cluster.Vector, error) {
		return p.Points[int(i)].Clone(), nil
	}
}

func TestMaintainerConfigValidate(t *testing.T) {
	if err := DefaultMaintainerConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []MaintainerConfig{
		{Interval: -1, SampleFraction: 0.5, DriftThreshold: 0.1, ReclusterFraction: 0.5},
		{Interval: 1, SampleFraction: 0, DriftThreshold: 0.1, ReclusterFraction: 0.5},
		{Interval: 1, SampleFraction: 1.5, DriftThreshold: 0.1, ReclusterFraction: 0.5},
		{Interval: 1, SampleFraction: 0.5, DriftThreshold: 0, ReclusterFraction: 0.5},
		{Interval: 1, SampleFraction: 0.5, DriftThreshold: 0.1, ReclusterFraction: 0},
		{Interval: 1, SampleFraction: 0.5, DriftThreshold: 0.1, ReclusterFraction: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestNewMaintainerErrors(t *testing.T) {
	plan := maintPlan(10)
	cfg := DefaultMaintainerConfig()
	src := simrand.New(1)
	if _, err := NewMaintainer(nil, stableSource(plan), nil, cfg, src); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, err := NewMaintainer(plan, nil, nil, cfg, src); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewMaintainer(plan, stableSource(plan), nil, cfg, nil); err == nil {
		t.Fatal("nil rand accepted")
	}
	bad := cfg
	bad.SampleFraction = 0
	if _, err := NewMaintainer(plan, stableSource(plan), nil, bad, src); err == nil {
		t.Fatal("bad config accepted")
	}
	empty := &Plan{}
	if _, err := NewMaintainer(empty, stableSource(plan), nil, cfg, src); err == nil {
		t.Fatal("empty plan accepted")
	}
}

func TestRunOnceNoDrift(t *testing.T) {
	plan := maintPlan(20)
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, stableSource(plan), nil, cfg, simrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Round != 1 || ev.Sampled != 20 {
		t.Fatalf("event = %+v", ev)
	}
	if len(ev.Drifted) != 0 || len(ev.Reassigned) != 0 || ev.Reclustered {
		t.Fatalf("stable network produced changes: %+v", ev)
	}
}

func TestRunOnceIncrementalReassignment(t *testing.T) {
	plan := maintPlan(20)
	// Cache 0 (group 0) drifts to group 1's neighbourhood.
	drifting := map[int]cluster.Vector{0: {199, 201}}
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if fv, ok := drifting[int(i)]; ok {
			return fv.Clone(), nil
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Drifted) != 1 || ev.Drifted[0] != 0 {
		t.Fatalf("drifted = %v", ev.Drifted)
	}
	if len(ev.Reassigned) != 1 || ev.Reassigned[0] != 0 {
		t.Fatalf("reassigned = %v", ev.Reassigned)
	}
	if ev.Reclustered {
		t.Fatal("isolated drift triggered a full recluster")
	}
	g, err := m.Plan().GroupOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("cache 0 in group %d after drift, want 1", g)
	}
	// Stored features refreshed.
	if cluster.L2(m.Plan().Points[0], cluster.Vector{199, 201}) != 0 {
		t.Fatal("plan points not refreshed")
	}
}

func TestRunOnceWidespreadDriftTriggersRecluster(t *testing.T) {
	plan := maintPlan(20)
	// Everything drifts.
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		return cluster.Vector{1000 + float64(i), 1000}, nil
	}
	fresh := maintPlan(20)
	fresh.Scheme = "recustered"
	calls := 0
	recluster := func() (*Plan, error) {
		calls++
		return fresh, nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, source, recluster, cfg, simrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Reclustered || calls != 1 {
		t.Fatalf("recluster not triggered: %+v calls=%d", ev, calls)
	}
	if m.Plan() != fresh {
		t.Fatal("plan not replaced")
	}
}

func TestRunOnceReclusterErrorSurfaces(t *testing.T) {
	plan := maintPlan(10)
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		return cluster.Vector{9999, 9999}, nil
	}
	reclusterErr := errors.New("network down")
	m, err := NewMaintainer(plan, source, func() (*Plan, error) { return nil, reclusterErr },
		MaintainerConfig{Interval: time.Second, SampleFraction: 1, DriftThreshold: 0.1, ReclusterFraction: 0.3},
		simrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunOnce(); !errors.Is(err, reclusterErr) {
		t.Fatalf("err = %v, want wrapped recluster error", err)
	}
}

func TestRunOnceSkipsUnreachableCaches(t *testing.T) {
	plan := maintPlan(10)
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if i == 3 {
			return nil, errors.New("unreachable")
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunOnce(); err != nil {
		t.Fatalf("round failed on unreachable cache: %v", err)
	}
}

func TestMaintainerBackgroundLoop(t *testing.T) {
	plan := maintPlan(20)
	drifting := map[int]cluster.Vector{2: {198, 203}}
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if fv, ok := drifting[int(i)]; ok {
			return fv.Clone(), nil
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := MaintainerConfig{
		Interval:          5 * time.Millisecond,
		SampleFraction:    1,
		DriftThreshold:    0.2,
		ReclusterFraction: 0.9,
	}
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()
	select {
	case ev := <-m.Events():
		if ev.Round < 1 {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no maintenance event within 2s")
	}
	m.Stop()
	m.Stop() // idempotent
}

func TestMaintainerStopWithoutStart(t *testing.T) {
	plan := maintPlan(5)
	m, err := NewMaintainer(plan, stableSource(plan), nil, DefaultMaintainerConfig(), simrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	m.Stop() // must not hang
}

// TestMaintainerEndToEnd wires the maintainer to a real coordinator and
// prober: re-measured features (same conditions) must not churn groups.
func TestMaintainerEndToEnd(t *testing.T) {
	nw, p := testSetup(t, 40, 190)
	gf, err := NewCoordinator(nw, p, SL(6, 3), simrand.New(191))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(4)
	if err != nil {
		t.Fatal(err)
	}
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		vals, err := p.MeasureTo(probe.Cache(i), plan.Landmarks)
		if err != nil {
			return nil, err
		}
		return cluster.Vector(vals), nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, source, func() (*Plan, error) { return gf.FormGroups(4) }, cfg, simrand.New(192))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	// The prober is deterministic per pair, so re-measured features are
	// identical: zero drift.
	if len(ev.Drifted) != 0 || ev.Reclustered {
		t.Fatalf("stable conditions produced drift: %+v", ev)
	}
}
