package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// maintPlan builds a 2-group plan with well-separated centers.
func maintPlan(n int) *Plan {
	points := make([]cluster.Vector, n)
	assigns := make([]int, n)
	for i := range points {
		if i < n/2 {
			points[i] = cluster.Vector{10 + float64(i%3), 10}
			assigns[i] = 0
		} else {
			points[i] = cluster.Vector{200 + float64(i%3), 200}
			assigns[i] = 1
		}
	}
	return &Plan{
		Scheme:      "SL",
		Points:      points,
		Features:    append([]cluster.Vector(nil), points...),
		Assignments: assigns,
		Centers:     []cluster.Vector{{10, 10}, {200, 200}},
	}
}

// stableSource returns the plan's own points (no drift).
func stableSource(p *Plan) FeatureSource {
	return func(i topology.CacheIndex) (cluster.Vector, error) {
		return p.Points[int(i)].Clone(), nil
	}
}

func TestMaintainerConfigValidate(t *testing.T) {
	if err := DefaultMaintainerConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []MaintainerConfig{
		{Interval: -1, SampleFraction: 0.5, DriftThreshold: 0.1, ReclusterFraction: 0.5},
		{Interval: 1, SampleFraction: 0, DriftThreshold: 0.1, ReclusterFraction: 0.5},
		{Interval: 1, SampleFraction: 1.5, DriftThreshold: 0.1, ReclusterFraction: 0.5},
		{Interval: 1, SampleFraction: 0.5, DriftThreshold: 0, ReclusterFraction: 0.5},
		{Interval: 1, SampleFraction: 0.5, DriftThreshold: 0.1, ReclusterFraction: 0},
		{Interval: 1, SampleFraction: 0.5, DriftThreshold: 0.1, ReclusterFraction: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestNewMaintainerErrors(t *testing.T) {
	plan := maintPlan(10)
	cfg := DefaultMaintainerConfig()
	src := simrand.New(1)
	if _, err := NewMaintainer(nil, stableSource(plan), nil, cfg, src); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, err := NewMaintainer(plan, nil, nil, cfg, src); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewMaintainer(plan, stableSource(plan), nil, cfg, nil); err == nil {
		t.Fatal("nil rand accepted")
	}
	bad := cfg
	bad.SampleFraction = 0
	if _, err := NewMaintainer(plan, stableSource(plan), nil, bad, src); err == nil {
		t.Fatal("bad config accepted")
	}
	empty := &Plan{}
	if _, err := NewMaintainer(empty, stableSource(plan), nil, cfg, src); err == nil {
		t.Fatal("empty plan accepted")
	}
}

func TestRunOnceNoDrift(t *testing.T) {
	plan := maintPlan(20)
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, stableSource(plan), nil, cfg, simrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Round != 1 || ev.Sampled != 20 {
		t.Fatalf("event = %+v", ev)
	}
	if len(ev.Drifted) != 0 || len(ev.Reassigned) != 0 || ev.Reclustered {
		t.Fatalf("stable network produced changes: %+v", ev)
	}
}

func TestRunOnceIncrementalReassignment(t *testing.T) {
	plan := maintPlan(20)
	// Cache 0 (group 0) drifts to group 1's neighbourhood.
	drifting := map[int]cluster.Vector{0: {199, 201}}
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if fv, ok := drifting[int(i)]; ok {
			return fv.Clone(), nil
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Drifted) != 1 || ev.Drifted[0] != 0 {
		t.Fatalf("drifted = %v", ev.Drifted)
	}
	if len(ev.Reassigned) != 1 || ev.Reassigned[0] != 0 {
		t.Fatalf("reassigned = %v", ev.Reassigned)
	}
	if ev.Reclustered {
		t.Fatal("isolated drift triggered a full recluster")
	}
	g, err := m.Plan().GroupOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("cache 0 in group %d after drift, want 1", g)
	}
	// Stored features refreshed.
	if cluster.L2(m.Plan().Points[0], cluster.Vector{199, 201}) != 0 {
		t.Fatal("plan points not refreshed")
	}
}

func TestRunOnceWidespreadDriftTriggersRecluster(t *testing.T) {
	plan := maintPlan(20)
	// Everything drifts.
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		return cluster.Vector{1000 + float64(i), 1000}, nil
	}
	fresh := maintPlan(20)
	fresh.Scheme = "recustered"
	calls := 0
	recluster := func() (*Plan, error) {
		calls++
		return fresh, nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, source, recluster, cfg, simrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Reclustered || calls != 1 {
		t.Fatalf("recluster not triggered: %+v calls=%d", ev, calls)
	}
	if m.Plan() != fresh {
		t.Fatal("plan not replaced")
	}
}

func TestRunOnceReclusterErrorSurfaces(t *testing.T) {
	plan := maintPlan(10)
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		return cluster.Vector{9999, 9999}, nil
	}
	reclusterErr := errors.New("network down")
	m, err := NewMaintainer(plan, source, func() (*Plan, error) { return nil, reclusterErr },
		MaintainerConfig{Interval: time.Second, SampleFraction: 1, DriftThreshold: 0.1, ReclusterFraction: 0.3},
		simrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunOnce(); !errors.Is(err, reclusterErr) {
		t.Fatalf("err = %v, want wrapped recluster error", err)
	}
}

func TestRunOnceSkipsUnreachableCaches(t *testing.T) {
	plan := maintPlan(10)
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if i == 3 {
			return nil, errors.New("unreachable")
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunOnce(); err != nil {
		t.Fatalf("round failed on unreachable cache: %v", err)
	}
}

func TestMaintainerBackgroundLoop(t *testing.T) {
	plan := maintPlan(20)
	drifting := map[int]cluster.Vector{2: {198, 203}}
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if fv, ok := drifting[int(i)]; ok {
			return fv.Clone(), nil
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := MaintainerConfig{
		Interval:          5 * time.Millisecond,
		SampleFraction:    1,
		DriftThreshold:    0.2,
		ReclusterFraction: 0.9,
	}
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()
	select {
	case ev := <-m.Events():
		if ev.Round < 1 {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no maintenance event within 2s")
	}
	m.Stop()
	m.Stop() // idempotent
}

func TestMaintainerStopWithoutStart(t *testing.T) {
	plan := maintPlan(5)
	m, err := NewMaintainer(plan, stableSource(plan), nil, DefaultMaintainerConfig(), simrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	m.Stop() // must not hang
}

// kmeansMaintPlan builds a 2-group K-means plan whose centers are the
// exact member means, so it passes the centers-are-means verify check.
func kmeansMaintPlan(n int) *Plan {
	p := maintPlan(n)
	p.Algorithm = AlgoKMeans
	for g := range p.Centers {
		mean := make(cluster.Vector, len(p.Points[0]))
		count := 0
		for i, a := range p.Assignments {
			if a != g {
				continue
			}
			count++
			for j, x := range p.Points[i] {
				mean[j] += x
			}
		}
		for j := range mean {
			mean[j] /= float64(count)
		}
		p.Centers[g] = mean
	}
	return p
}

// TestRunOnceCopyOnWrite pins the COW contract: a plan snapshot taken
// before a round is never mutated by the round — the maintainer builds a
// replacement and swaps the pointer.
func TestRunOnceCopyOnWrite(t *testing.T) {
	plan := maintPlan(20)
	before := plan.Checksum()
	beforeAssign := append([]int(nil), plan.Assignments...)
	drifting := map[int]cluster.Vector{0: {199, 201}}
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if fv, ok := drifting[int(i)]; ok {
			return fv.Clone(), nil
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(31))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Reassigned) != 1 {
		t.Fatalf("reassigned = %v", ev.Reassigned)
	}
	if m.Plan() == plan {
		t.Fatal("round published the same *Plan it started from; want a copy-on-write replacement")
	}
	if plan.Checksum() != before {
		t.Fatal("round mutated the snapshot a concurrent reader could hold")
	}
	for i, a := range plan.Assignments {
		if a != beforeAssign[i] {
			t.Fatalf("snapshot assignment %d changed from %d to %d", i, beforeAssign[i], a)
		}
	}
	if g := m.Plan().Assignments[0]; g != 1 {
		t.Fatalf("published plan has cache 0 in group %d, want 1", g)
	}
}

// TestRunOncePlanVerifiesAfterReassignment is the regression test for the
// stale-centers bug: incremental reassignment moved points without
// recomputing Centers, so a maintained K-means plan failed the
// centers-are-means check and its checksum went stale.
func TestRunOncePlanVerifiesAfterReassignment(t *testing.T) {
	plan := kmeansMaintPlan(20)
	if err := plan.Verify(nil); err != nil {
		t.Fatalf("seed plan invalid: %v", err)
	}
	before := plan.Checksum()
	drifting := map[int]cluster.Vector{0: {199, 201}, 4: {15, 14}}
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if fv, ok := drifting[int(i)]; ok {
			return fv.Clone(), nil
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(32))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Drifted) != 2 {
		t.Fatalf("drifted = %v", ev.Drifted)
	}
	next := m.Plan()
	if err := next.Verify(nil); err != nil {
		t.Fatalf("maintained plan fails verification: %v", err)
	}
	if next.Checksum() == before {
		t.Fatal("maintained plan kept the pre-drift checksum despite moved points and centers")
	}
	// Cache 4 drifted without changing group: its group's center must
	// still have been recomputed to the new member mean.
	if cluster.L2(next.Points[4], cluster.Vector{15, 14}) != 0 {
		t.Fatal("drifted-in-place point not refreshed")
	}
}

// TestRunOnceSampledCountsMeasurements is the regression test for Sampled
// reporting the requested sample size: failed measurements must move to
// Skipped, not inflate Sampled.
func TestRunOnceSampledCountsMeasurements(t *testing.T) {
	plan := maintPlan(10)
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if int(i)%2 == 0 {
			return nil, errors.New("unreachable")
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(33))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Sampled != 5 || ev.Skipped != 5 {
		t.Fatalf("Sampled=%d Skipped=%d, want 5/5", ev.Sampled, ev.Skipped)
	}
}

// TestReclusterFractionUsesMeasuredCount pins the trigger denominator:
// with half the sample unreachable and every measured cache drifted, the
// drift fraction is 100% of measurements — the old requested-size
// denominator diluted it to 50% and suppressed the recluster.
func TestReclusterFractionUsesMeasuredCount(t *testing.T) {
	plan := maintPlan(10)
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if int(i) < 5 {
			return nil, errors.New("unreachable")
		}
		return cluster.Vector{5000 + float64(i), 5000}, nil
	}
	fresh := maintPlan(10)
	calls := 0
	recluster := func() (*Plan, error) {
		calls++
		return fresh, nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	cfg.ReclusterFraction = 0.5
	m, err := NewMaintainer(plan, source, recluster, cfg, simrand.New(34))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Reclustered || calls != 1 {
		t.Fatalf("recluster not triggered on 5/5 measured drift (5 skipped): %+v calls=%d", ev, calls)
	}
}

// TestRunOnceKeepsLastGroupMember: reassigning a group's only member away
// would break the partition invariant; the maintainer keeps it in place
// and the plan still verifies.
func TestRunOnceKeepsLastGroupMember(t *testing.T) {
	points := []cluster.Vector{{10, 10}, {11, 10}, {12, 10}, {200, 200}}
	plan := &Plan{
		Scheme:      "SL",
		Points:      points,
		Features:    append([]cluster.Vector(nil), points...),
		Assignments: []int{0, 0, 0, 1},
		Centers:     []cluster.Vector{{11, 10}, {200, 200}},
		Algorithm:   AlgoKMeans,
	}
	// Fix group 0's center to the exact mean so the seed plan verifies.
	plan.Centers[0] = cluster.Vector{11, 10}
	drifting := map[int]cluster.Vector{3: {13, 10}} // sole member of group 1 drifts into group 0
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if fv, ok := drifting[int(i)]; ok {
			return fv.Clone(), nil
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	cfg.ReclusterFraction = 1 // keep the incremental path
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(35))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Reassigned) != 0 {
		t.Fatalf("sole group member reassigned away: %+v", ev)
	}
	next := m.Plan()
	if g := next.Assignments[3]; g != 1 {
		t.Fatalf("cache 3 moved to group %d, emptying group 1", g)
	}
	if err := next.Verify(nil); err != nil {
		t.Fatalf("plan invalid after guarded round: %v", err)
	}
	// The singleton's center follows its drifted point.
	if cluster.L2(next.Centers[1], cluster.Vector{13, 10}) != 0 {
		t.Fatalf("singleton center = %v, want the drifted point", next.Centers[1])
	}
}

// TestRunOnceMedoidCentersStayReal: for K-medoids plans the maintainer
// recomputes the medoid of touched groups instead of a mean, preserving
// the centers-are-real-points property.
func TestRunOnceMedoidCentersStayReal(t *testing.T) {
	plan := maintPlan(6)
	plan.Algorithm = AlgoKMedoids
	plan.Centers = []cluster.Vector{plan.Points[1].Clone(), plan.Points[4].Clone()}
	drifting := map[int]cluster.Vector{0: {201, 199}}
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		if fv, ok := drifting[int(i)]; ok {
			return fv.Clone(), nil
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	cfg.ReclusterFraction = 1
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(36))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunOnce(); err != nil {
		t.Fatal(err)
	}
	next := m.Plan()
	for g, c := range next.Centers {
		found := false
		for i, a := range next.Assignments {
			if a == g && cluster.L2(next.Points[i], c) == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("medoid center %d (%v) is not a member point", g, c)
		}
	}
}

// TestMaintainerLastErrorSticky: round failures must stay observable via
// LastError (and not only on the droppable events channel).
func TestMaintainerLastErrorSticky(t *testing.T) {
	plan := maintPlan(10)
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		return cluster.Vector{9999, 9999}, nil
	}
	boom := errors.New("quorum lost")
	cfg := MaintainerConfig{Interval: time.Second, SampleFraction: 1, DriftThreshold: 0.1, ReclusterFraction: 0.3}
	m, err := NewMaintainer(plan, source, func() (*Plan, error) { return nil, boom }, cfg, simrand.New(37))
	if err != nil {
		t.Fatal(err)
	}
	if round, lastErr := m.LastError(); round != 0 || lastErr != nil {
		t.Fatalf("fresh maintainer reports error %d/%v", round, lastErr)
	}
	if _, err := m.RunOnce(); err == nil {
		t.Fatal("failing recluster reported success")
	}
	round, lastErr := m.LastError()
	if round != 1 || !errors.Is(lastErr, boom) {
		t.Fatalf("LastError = %d/%v, want round 1 wrapping recluster error", round, lastErr)
	}
}

// TestMaintainerErrorEventEvictsStaleSuccess pins the events-channel
// contract: with the capacity-1 channel already holding a stale success,
// an error round evicts it instead of being dropped silently.
func TestMaintainerErrorEventEvictsStaleSuccess(t *testing.T) {
	plan := maintPlan(10)
	m, err := NewMaintainer(plan, stableSource(plan), nil, DefaultMaintainerConfig(), simrand.New(38))
	if err != nil {
		t.Fatal(err)
	}
	m.publish(MaintainerEvent{Round: 1})
	m.publish(MaintainerEvent{Round: 2}) // lagging consumer: dropped
	m.publish(MaintainerEvent{Round: 3, Err: errors.New("round failed")})
	select {
	case ev := <-m.Events():
		if ev.Round != 3 || ev.Err == nil {
			t.Fatalf("queued event = %+v, want the round-3 error", ev)
		}
	default:
		t.Fatal("no event queued")
	}
}

// TestMaintainerConcurrentHammer drives Start/Stop/Plan/RunOnce and reader
// traversals concurrently; the -race run is the assertion (this is the
// regression test for RunOnce mutating the published plan in place).
func TestMaintainerConcurrentHammer(t *testing.T) {
	plan := kmeansMaintPlan(40)
	var flip int32
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		// Alternate rounds drift a handful of caches back and forth.
		if int(i) < 4 && atomic.LoadInt32(&flip)%2 == 0 {
			return cluster.Vector{195 + float64(i), 205}, nil
		}
		return plan.Points[int(i)].Clone(), nil
	}
	cfg := MaintainerConfig{
		Interval:          time.Millisecond,
		SampleFraction:    1,
		DriftThreshold:    0.2,
		ReclusterFraction: 0.9,
		Verify:            true,
	}
	m, err := NewMaintainer(plan, source, nil, cfg, simrand.New(39))
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	deadline := time.Now().Add(150 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				p := m.Plan()
				// Traverse everything a query path would read; the race
				// detector flags any in-place round mutation.
				var sum float64
				for i, a := range p.Assignments {
					sum += p.Points[i][0] + float64(a)
				}
				for _, c := range p.Centers {
					sum += c[0]
				}
				_ = sum
				_, _ = m.LastError()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			atomic.AddInt32(&flip, 1)
			if _, err := m.RunOnce(); err != nil {
				t.Errorf("RunOnce: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	m.Stop()
	if err := m.Plan().Verify(nil); err != nil {
		t.Fatalf("final plan invalid: %v", err)
	}
}

// TestMaintainerEndToEnd wires the maintainer to a real coordinator and
// prober: re-measured features (same conditions) must not churn groups.
func TestMaintainerEndToEnd(t *testing.T) {
	nw, p := testSetup(t, 40, 190)
	gf, err := NewCoordinator(nw, p, SL(6, 3), simrand.New(191))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(4)
	if err != nil {
		t.Fatal(err)
	}
	source := func(i topology.CacheIndex) (cluster.Vector, error) {
		vals, err := p.MeasureTo(probe.Cache(i), plan.Landmarks)
		if err != nil {
			return nil, err
		}
		return cluster.Vector(vals), nil
	}
	cfg := DefaultMaintainerConfig()
	cfg.SampleFraction = 1
	m, err := NewMaintainer(plan, source, func() (*Plan, error) { return gf.FormGroups(4) }, cfg, simrand.New(192))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	// The prober is deterministic per pair, so re-measured features are
	// identical: zero drift.
	if len(ev.Drifted) != 0 || ev.Reclustered {
		t.Fatalf("stable conditions produced drift: %+v", ev)
	}
}
