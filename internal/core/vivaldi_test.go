package core

import (
	"testing"

	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/simrand"
)

func TestVivaldiSchemeName(t *testing.T) {
	if got := VivaldiScheme(10, 4, 5).Name(); got != "SL+Vivaldi" {
		t.Fatalf("Name() = %q", got)
	}
	if Vivaldi.String() != "vivaldi" {
		t.Fatal("Representation string mismatch")
	}
}

func TestVivaldiSchemeValidate(t *testing.T) {
	cfg := VivaldiScheme(10, 4, 5)
	if err := cfg.Validate(100); err != nil {
		t.Fatalf("valid vivaldi config rejected: %v", err)
	}
	cfg.Vivaldi.Dim = 0
	if err := cfg.Validate(100); err == nil {
		t.Fatal("bad vivaldi config accepted")
	}
}

// TestVivaldiSchemeProducesComparableGroups: Vivaldi coordinates should
// cluster about as well as raw feature vectors (the paper's argument that
// coordinate systems and feature vectors are interchangeable here).
func TestVivaldiSchemeProducesComparableGroups(t *testing.T) {
	nw, p := testSetup(t, 80, 140)
	gfFV, err := NewCoordinator(nw, p, SL(10, 4), simrand.New(141))
	if err != nil {
		t.Fatal(err)
	}
	planFV, err := gfFV.FormGroups(8)
	if err != nil {
		t.Fatal(err)
	}
	gfVV, err := NewCoordinator(nw, p, VivaldiScheme(10, 4, 5), simrand.New(141))
	if err != nil {
		t.Fatal(err)
	}
	planVV, err := gfVV.FormGroups(8)
	if err != nil {
		t.Fatal(err)
	}
	costFV := metrics.AvgGroupInteractionCost(nw, planFV.Groups())
	costVV := metrics.AvgGroupInteractionCost(nw, planVV.Groups())
	if costVV > costFV*2 {
		t.Fatalf("vivaldi groups much worse: %v vs %v", costVV, costFV)
	}
	if len(planVV.Points[0]) != 5 {
		t.Fatalf("vivaldi point dim = %d, want 5", len(planVV.Points[0]))
	}
	if len(planVV.LandmarkCoords) != 10 {
		t.Fatalf("vivaldi landmark coords = %d, want 10", len(planVV.LandmarkCoords))
	}
	// Raw features preserved.
	if len(planVV.Features[0]) != 10 {
		t.Fatalf("feature dim = %d, want 10", len(planVV.Features[0]))
	}
}

func TestVivaldiSchemeDeterministic(t *testing.T) {
	nw, p := testSetup(t, 50, 142)
	cfg := VivaldiScheme(8, 3, 4)
	a, err := NewCoordinator(nw, p, cfg, simrand.New(143))
	if err != nil {
		t.Fatal(err)
	}
	planA, err := a.FormGroups(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCoordinator(nw, p, cfg, simrand.New(143))
	if err != nil {
		t.Fatal(err)
	}
	planB, err := b.FormGroups(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range planA.Assignments {
		if planA.Assignments[i] != planB.Assignments[i] {
			t.Fatalf("non-deterministic vivaldi assignment at %d", i)
		}
	}
}
