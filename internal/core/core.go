// Package core implements the paper's contribution: the formation of
// cooperative edge cache groups.
//
// A Coordinator plays the role of the paper's GF-Coordinator. It executes
// the three steps of the SL scheme (§3): choosing a high-quality landmark
// set, determining relative node positions by probing the landmarks, and
// creating groups by K-means clustering of the resulting feature vectors.
// The SDSL scheme (§4) reuses the same pipeline but seeds the K-means
// initial centers with probability inversely proportional to each cache's
// measured distance to the origin server, raised to the configurable
// sensitivity exponent θ.
//
// The Euclidean representation (§5.2 baseline) replaces raw feature
// vectors with GNP coordinates computed from the same landmark
// measurements.
package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/gnp"
	"edgecachegroups/internal/landmark"
	"edgecachegroups/internal/obs"
	"edgecachegroups/internal/par"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/verify"
	"edgecachegroups/internal/vivaldi"
)

// Representation selects how node positions are encoded for clustering.
type Representation int

// Position representations.
const (
	// FeatureVector is the paper's representation: the vector of measured
	// RTTs from a cache to each landmark.
	FeatureVector Representation = iota + 1
	// Euclidean maps nodes into a D-dimensional space with GNP before
	// clustering.
	Euclidean
	// Vivaldi maps nodes into a D-dimensional space with the Vivaldi
	// spring-relaxation coordinate system (the paper's reference [3])
	// before clustering.
	Vivaldi
)

// String implements fmt.Stringer.
func (r Representation) String() string {
	switch r {
	case FeatureVector:
		return "feature-vector"
	case Euclidean:
		return "euclidean"
	case Vivaldi:
		return "vivaldi"
	default:
		return fmt.Sprintf("Representation(%d)", int(r))
	}
}

// Algorithm selects the clustering algorithm used in step 3 of the
// pipeline. The paper uses K-means and notes that "any standard clustering
// algorithm may be similarly modified"; K-medoids is provided as the
// alternative (its centers are real caches, which gives each group a
// natural coordinator node).
type Algorithm int

// Clustering algorithms.
const (
	AlgoKMeans Algorithm = iota + 1
	AlgoKMedoids
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgoKMeans:
		return "k-means"
	case AlgoKMedoids:
		return "k-medoids"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config describes a group formation scheme.
type Config struct {
	// Landmarks holds the landmark-set size parameters (L and M).
	Landmarks landmark.Params
	// Selector picks the landmark set; nil means the SL greedy selector.
	Selector landmark.Selector
	// Cluster tunes the K-means iteration.
	Cluster cluster.Options
	// Algorithm selects the clustering algorithm; zero means K-means.
	Algorithm Algorithm
	// Theta is the SDSL server-distance sensitivity. Zero yields the plain
	// SL scheme (uniform seeding).
	Theta float64
	// Representation selects feature vectors (default) or GNP coordinates.
	Representation Representation
	// GNP configures the Euclidean embedding when Representation is
	// Euclidean.
	GNP gnp.Config
	// Vivaldi configures the spring-relaxation embedding when
	// Representation is Vivaldi.
	Vivaldi vivaldi.Config
	// ProbeParallelism bounds the concurrent per-cache probing fan-out; 0
	// means a sensible default.
	ProbeParallelism int
	// Verify enables the invariant-checking layer: FormGroups audits the
	// finished plan (partition well-formedness, centers-are-means,
	// dimension consistency) and fails loudly instead of returning a
	// silently inconsistent partition.
	Verify bool
	// Obs is the optional observability sink: FormGroups brackets each
	// pipeline stage with trace spans and mirrors the verify.Stages
	// snapshot into its registry. Nil disables instrumentation; enabling
	// it never changes the formed plan (see internal/obs).
	Obs *obs.Obs
}

// SL returns the paper's SL scheme configuration: greedy landmark
// selection, feature vectors, uniform K-means seeding.
func SL(l, m int) Config {
	return Config{
		Landmarks:      landmark.Params{L: l, M: m},
		Selector:       landmark.Greedy{},
		Cluster:        cluster.DefaultOptions(),
		Representation: FeatureVector,
	}
}

// SDSL returns the paper's SDSL scheme configuration with sensitivity
// theta.
func SDSL(l, m int, theta float64) Config {
	cfg := SL(l, m)
	cfg.Theta = theta
	return cfg
}

// EuclideanScheme returns the §5.2 baseline: the SL pipeline with GNP
// coordinates (dim dimensions) instead of raw feature vectors.
func EuclideanScheme(l, m, dim int) Config {
	cfg := SL(l, m)
	cfg.Representation = Euclidean
	cfg.GNP = gnp.DefaultConfig()
	cfg.GNP.Dim = dim
	return cfg
}

// VivaldiScheme returns the SL pipeline with Vivaldi spring-relaxation
// coordinates (dim dimensions) instead of raw feature vectors.
func VivaldiScheme(l, m, dim int) Config {
	cfg := SL(l, m)
	cfg.Representation = Vivaldi
	cfg.Vivaldi = vivaldi.DefaultConfig()
	cfg.Vivaldi.Dim = dim
	return cfg
}

// Name returns a short human-readable scheme identifier.
func (c Config) Name() string {
	sel := "greedy"
	if c.Selector != nil {
		sel = c.Selector.Name()
	}
	name := "SL"
	if c.Theta > 0 {
		name = "SDSL(theta=" + strconv.FormatFloat(c.Theta, 'g', -1, 64) + ")"
	}
	if c.Representation == Euclidean {
		name += "+GNP"
	}
	if c.Representation == Vivaldi {
		name += "+Vivaldi"
	}
	if sel != "greedy" {
		name += "[" + sel + "-landmarks]"
	}
	if c.Algorithm == AlgoKMedoids {
		name += "+kmedoids"
	}
	return name
}

// Validate reports whether the configuration is usable on a network of
// numCaches caches.
func (c Config) Validate(numCaches int) error {
	if err := c.Landmarks.Validate(numCaches); err != nil {
		return err
	}
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.Theta < 0 || math.IsNaN(c.Theta) {
		return fmt.Errorf("core: Theta must be >= 0, got %v", c.Theta)
	}
	switch c.Representation {
	case FeatureVector:
	case Euclidean:
		if err := c.GNP.Validate(); err != nil {
			return err
		}
	case Vivaldi:
		if err := c.Vivaldi.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown representation %v", c.Representation)
	}
	if c.ProbeParallelism < 0 {
		return fmt.Errorf("core: ProbeParallelism must be >= 0, got %d", c.ProbeParallelism)
	}
	switch c.Algorithm {
	case 0, AlgoKMeans, AlgoKMedoids:
	default:
		return fmt.Errorf("core: unknown clustering algorithm %v", c.Algorithm)
	}
	return nil
}

// Coordinator is the GF-Coordinator: it owns the network, the prober, and
// a scheme configuration, and forms cooperative groups on demand.
type Coordinator struct {
	nw     *topology.Network
	prober *probe.Prober
	cfg    Config
	src    *simrand.Source
	stages verify.Stages
}

// NewCoordinator builds a Coordinator. The source drives landmark
// sampling, K-means seeding, and GNP initialization.
func NewCoordinator(nw *topology.Network, prober *probe.Prober, cfg Config, src *simrand.Source) (*Coordinator, error) {
	if nw == nil {
		return nil, errors.New("core: nil network")
	}
	if prober == nil {
		return nil, errors.New("core: nil prober")
	}
	if src == nil {
		return nil, errors.New("core: nil random source")
	}
	if cfg.Selector == nil {
		cfg.Selector = landmark.Greedy{}
	}
	if err := cfg.Validate(nw.NumCaches()); err != nil {
		return nil, err
	}
	return &Coordinator{nw: nw, prober: prober, cfg: cfg, src: src}, nil
}

// Config returns the coordinator's scheme configuration.
func (gf *Coordinator) Config() Config { return gf.cfg }

// Network returns the underlying edge cache network.
func (gf *Coordinator) Network() *topology.Network { return gf.nw }

// Stages returns the coordinator's per-stage timing/counter instrumentation
// (landmark selection, feature probing, embedding, clustering),
// accumulated across FormGroups calls in the same style as the Prober's
// overhead counters.
func (gf *Coordinator) Stages() *verify.Stages { return &gf.stages }

// FormGroups partitions the network's caches into k cooperative groups.
// With Config.Verify set, the finished plan is audited against the
// invariant-checking layer before being returned.
func (gf *Coordinator) FormGroups(k int) (*Plan, error) {
	n := gf.nw.NumCaches()
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: k=%d out of range [1,%d]", k, n)
	}

	// Step 1: choose the landmark set.
	stopSelect := gf.stages.StartMem("landmark-select")
	spanSelect := gf.cfg.Obs.StartSpan("landmark-select")
	lms, err := gf.cfg.Selector.Select(gf.prober, n, gf.cfg.Landmarks, gf.src.Split("landmarks"))
	spanSelect()
	stopSelect()
	if err != nil {
		return nil, fmt.Errorf("select landmarks: %w", err)
	}
	gf.stages.Add("landmark-select", int64(len(lms)))

	// Step 2: every cache probes the landmarks to build its feature vector.
	stopProbe := gf.stages.StartMem("probe-features")
	spanProbe := gf.cfg.Obs.StartSpan("probe-features")
	features, serverDist, err := gf.measureFeatures(lms)
	spanProbe()
	stopProbe()
	if err != nil {
		return nil, fmt.Errorf("measure feature vectors: %w", err)
	}
	gf.stages.Add("probe-features", int64(n))
	gf.stages.SetParallelism("probe-features", gf.cfg.ProbeParallelism)

	// Optional representation change: GNP or Vivaldi coordinates.
	points := features
	var lmCoords [][]float64
	if gf.cfg.Representation == Euclidean || gf.cfg.Representation == Vivaldi {
		stopEmbed := gf.stages.StartMem("embed")
		spanEmbed := gf.cfg.Obs.StartSpan("embed")
		switch gf.cfg.Representation {
		case Euclidean:
			points, lmCoords, err = gf.embed(lms, features)
			gf.stages.SetParallelism("embed", gf.gnpConfig().Parallelism)
		case Vivaldi:
			points, lmCoords, err = gf.embedVivaldi(lms, features)
			gf.stages.SetParallelism("embed", gf.cfg.ProbeParallelism)
		}
		spanEmbed()
		stopEmbed()
		if err != nil {
			return nil, fmt.Errorf("%v embedding: %w", gf.cfg.Representation, err)
		}
		gf.stages.Add("embed", int64(points.Rows()))
	}

	// Step 3: cluster. SDSL biases the initial centers toward the origin.
	// The clustering consumes the flat feature matrix directly — at
	// million-cache scale the feature set is one contiguous allocation
	// end to end, from probe output through the K-means kernel.
	seeder, err := gf.seeder(serverDist)
	if err != nil {
		return nil, err
	}
	algo := gf.cfg.Algorithm
	if algo == 0 {
		algo = AlgoKMeans
	}
	clusterFn := cluster.KMeansMatrix
	if algo == AlgoKMedoids {
		clusterFn = cluster.KMedoidsMatrix
	}
	stopCluster := gf.stages.StartMem("cluster")
	spanCluster := gf.cfg.Obs.StartSpan("cluster")
	res, err := clusterFn(points, k, seeder, gf.cfg.Cluster, gf.src.Split("kmeans"))
	spanCluster()
	stopCluster()
	if err != nil {
		return nil, fmt.Errorf("cluster caches: %w", err)
	}
	gf.stages.Add("cluster", int64(points.Rows()))
	gf.stages.SetParallelism("cluster", gf.cfg.Cluster.Parallelism)

	// The plan's []Vector fields are row views of the flat matrices: one
	// header-slice allocation each, no data copies.
	featViews := features.RowViews()
	pointViews := featViews
	if !points.IsZero() && &points.Data()[0] != &features.Data()[0] {
		pointViews = points.RowViews()
	}
	plan := &Plan{
		Scheme:         gf.cfg.Name(),
		Landmarks:      lms,
		Features:       featViews,
		Points:         pointViews,
		LandmarkCoords: lmCoords,
		ServerDist:     serverDist,
		Assignments:    res.Assignments,
		Centers:        res.Centers,
		Algorithm:      algo,
		Iterations:     res.Iterations,
		Converged:      res.Converged,
	}
	if gf.cfg.Verify {
		stopVerify := gf.stages.Start("verify")
		spanVerify := gf.cfg.Obs.StartSpan("verify")
		err := plan.Verify(gf.nw)
		spanVerify()
		stopVerify()
		if err != nil {
			return nil, fmt.Errorf("core: plan failed verification: %w", err)
		}
	}
	// Mirror the accumulated stage counters into the observability
	// registry (diagnostics only; the plan is already final).
	obs.PublishStages(gf.cfg.Obs, gf.stages.Snapshot())
	return plan, nil
}

// measureFeatures probes all landmarks from every cache concurrently.
// It returns the flat per-cache feature matrix and the measured server
// distances (the component of the feature vector that corresponds to the
// origin landmark).
func (gf *Coordinator) measureFeatures(lms []probe.Endpoint) (cluster.Matrix, []float64, error) {
	return MeasureFeatureMatrix(gf.prober, gf.nw.NumCaches(), lms, gf.cfg.ProbeParallelism)
}

// MeasureFeatureMatrix probes every cache's RTT to each landmark, filling
// one flat n×len(lms) feature matrix: building features for n caches
// costs O(workers) allocations total (the matrix backing, fixed
// bookkeeping, and one probe.Measurer per worker), not one vector
// allocation per cache or one RNG allocation per probe. It also returns
// the per-cache server distances (the origin landmark's column). Exported
// so the hot-path allocation guards can exercise the exact pipeline path.
func MeasureFeatureMatrix(p *probe.Prober, n int, lms []probe.Endpoint, parallelism int) (cluster.Matrix, []float64, error) {
	features := cluster.NewMatrix(n, len(lms))
	serverDist := make([]float64, n)
	errs := make([]error, n)

	originIdx := -1
	for i, lm := range lms {
		if lm.IsOrigin() {
			originIdx = i
			break
		}
	}

	// One reusable measurement context per worker: each row is probed
	// serially by its worker (the per-cache fan-out already saturates the
	// pool), with zero per-probe allocations. Per-pair streams make the
	// values independent of which worker measures which row.
	meas := make([]*probe.Measurer, par.Workers(n, parallelism))
	for w := range meas {
		meas[w] = p.NewMeasurer()
	}
	par.ForEachWorker(n, parallelism, func(worker, i int) {
		self := probe.Cache(topology.CacheIndex(i))
		row := features.Row(i)
		if err := meas[worker].MeasureToInto(self, lms, row); err != nil {
			errs[i] = err
			return
		}
		if originIdx >= 0 {
			serverDist[i] = row[originIdx]
		}
	})

	for i, err := range errs {
		if err != nil {
			return cluster.Matrix{}, nil, fmt.Errorf("cache %d: %w", i, err)
		}
	}
	if originIdx < 0 {
		// Defensive: every selector includes the origin, but if a custom one
		// does not, measure server distances directly.
		for i := 0; i < n; i++ {
			d, err := p.Measure(probe.Cache(topology.CacheIndex(i)), probe.Origin())
			if err != nil {
				return cluster.Matrix{}, nil, fmt.Errorf("measure server distance for cache %d: %w", i, err)
			}
			serverDist[i] = d
		}
	}
	return features, serverDist, nil
}

// gnpConfig returns the GNP config with the embedding parallelism defaulted
// to the probing fan-out when the caller left it unset.
func (gf *Coordinator) gnpConfig() gnp.Config {
	cfg := gf.cfg.GNP
	if cfg.Parallelism == 0 {
		cfg.Parallelism = gf.cfg.ProbeParallelism
	}
	return cfg
}

// embed converts landmark feature measurements into GNP coordinates,
// assembled directly into one flat coordinate matrix.
func (gf *Coordinator) embed(lms []probe.Endpoint, features cluster.Matrix) (cluster.Matrix, [][]float64, error) {
	cfg := gf.gnpConfig()
	lmMatrix, err := gf.prober.MeasureMatrix(lms)
	if err != nil {
		return cluster.Matrix{}, nil, fmt.Errorf("probe landmark matrix: %w", err)
	}
	lmCoords, err := gnp.EmbedLandmarks(lmMatrix, cfg, gf.src.Split("gnp/landmarks"))
	if err != nil {
		return cluster.Matrix{}, nil, fmt.Errorf("embed landmarks: %w", err)
	}
	n := features.Rows()
	toLandmarks := make([][]float64, n)
	for i := range toLandmarks {
		toLandmarks[i] = features.Row(i)
	}
	points := cluster.NewMatrix(n, len(lmCoords[0]))
	if err := gnp.EmbedHostsInto(lmCoords, toLandmarks, points.Data(), cfg, gf.src.Split("gnp/hosts")); err != nil {
		return cluster.Matrix{}, nil, err
	}
	return points, lmCoords, nil
}

// embedVivaldi converts landmark feature measurements into Vivaldi
// coordinates: landmarks converge among themselves first, then each cache
// relaxes against the fixed landmark coordinates.
func (gf *Coordinator) embedVivaldi(lms []probe.Endpoint, features cluster.Matrix) (cluster.Matrix, [][]float64, error) {
	lmMatrix, err := gf.prober.MeasureMatrix(lms)
	if err != nil {
		return cluster.Matrix{}, nil, fmt.Errorf("probe landmark matrix: %w", err)
	}
	lmCoords, err := vivaldi.EmbedLandmarks(lmMatrix, gf.cfg.Vivaldi, gf.src.Split("vivaldi/landmarks"))
	if err != nil {
		return cluster.Matrix{}, nil, fmt.Errorf("embed landmarks: %w", err)
	}
	n := features.Rows()
	points := cluster.NewMatrix(n, len(lmCoords[0]))
	errs := make([]error, n)
	par.ForEach(n, gf.cfg.ProbeParallelism, func(i int) {
		coords, err := vivaldi.EmbedHost(lmCoords, features.Row(i), gf.cfg.Vivaldi, gf.src.SplitN("vivaldi/host", i))
		if err != nil {
			errs[i] = err
			return
		}
		copy(points.Row(i), coords)
	})
	for i, err := range errs {
		if err != nil {
			return cluster.Matrix{}, nil, fmt.Errorf("embed cache %d: %w", i, err)
		}
	}
	return points, lmCoords, nil
}

// minServerDistMS guards the SDSL weight 1/d^theta against near-zero
// measured distances.
const minServerDistMS = 1.0

// seeder builds the K-means seeder for the configured scheme.
func (gf *Coordinator) seeder(serverDist []float64) (cluster.Seeder, error) {
	if gf.cfg.Theta == 0 {
		return cluster.UniformSeeder{}, nil
	}
	weights := make([]float64, len(serverDist))
	for i, d := range serverDist {
		if d < minServerDistMS {
			d = minServerDistMS
		}
		weights[i] = 1 / math.Pow(d, gf.cfg.Theta)
	}
	return cluster.WeightedSeeder{Weights: weights}, nil
}
