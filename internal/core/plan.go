package core

import (
	"fmt"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/verify"
)

// Plan is the result of group formation: the partition of caches into K
// cooperative groups, plus the intermediate artifacts (landmarks, feature
// vectors, cluster centers) needed to assign new caches incrementally.
type Plan struct {
	// Scheme names the configuration that produced this plan.
	Scheme string
	// Landmarks is the chosen landmark set (origin first).
	Landmarks []probe.Endpoint
	// Features holds the raw RTT feature vector of each cache.
	Features []cluster.Vector
	// Points holds the clustered representation (equal to Features for the
	// feature-vector representation, GNP coordinates otherwise).
	Points []cluster.Vector
	// LandmarkCoords holds GNP landmark coordinates (Euclidean
	// representation only).
	LandmarkCoords [][]float64
	// ServerDist holds each cache's measured RTT to the origin server.
	ServerDist []float64
	// Assignments maps cache index -> group ID in [0,K).
	Assignments []int
	// Centers are the final cluster centers in the clustered space.
	Centers []cluster.Vector
	// Algorithm records which clustering algorithm produced the plan
	// (K-means centers are member means; K-medoids centers are real
	// points). Zero on plans built before this field existed.
	Algorithm Algorithm
	// Iterations and Converged report the K-means outcome.
	Iterations int
	Converged  bool

	// edited is set once assignments are changed without recomputing the
	// centers (Balance, AddCache, RemoveCache); it relaxes the
	// centers-are-means invariant in Verify.
	edited bool
}

// NumGroups returns K.
func (p *Plan) NumGroups() int { return len(p.Centers) }

// NumCaches returns the number of caches covered by the plan.
func (p *Plan) NumCaches() int { return len(p.Assignments) }

// GroupOf returns the group ID of cache i.
func (p *Plan) GroupOf(i topology.CacheIndex) (int, error) {
	if int(i) < 0 || int(i) >= len(p.Assignments) {
		return 0, fmt.Errorf("core: cache index %d out of range [0,%d)", i, len(p.Assignments))
	}
	return p.Assignments[int(i)], nil
}

// Group returns the members of group g.
func (p *Plan) Group(g int) ([]topology.CacheIndex, error) {
	if g < 0 || g >= len(p.Centers) {
		return nil, fmt.Errorf("core: group %d out of range [0,%d)", g, len(p.Centers))
	}
	var out []topology.CacheIndex
	for i, a := range p.Assignments {
		if a == g {
			out = append(out, topology.CacheIndex(i))
		}
	}
	return out, nil
}

// Groups returns all groups as slices of cache indices, indexed by group
// ID. Empty groups yield nil slices.
func (p *Plan) Groups() [][]topology.CacheIndex {
	out := make([][]topology.CacheIndex, len(p.Centers))
	for i, a := range p.Assignments {
		out[a] = append(out[a], topology.CacheIndex(i))
	}
	return out
}

// Sizes returns the member count of each group.
func (p *Plan) Sizes() []int {
	sizes := make([]int, len(p.Centers))
	for _, a := range p.Assignments {
		sizes[a]++
	}
	return sizes
}

// MeanGroupSize returns the average number of caches per group.
func (p *Plan) MeanGroupSize() float64 {
	if len(p.Centers) == 0 {
		return 0
	}
	return float64(len(p.Assignments)) / float64(len(p.Centers))
}

// AssignPoint returns the group whose center is nearest to the given point
// in the plan's clustered space. It supports incremental group membership:
// probe a new cache's feature vector (and embed it, for Euclidean plans),
// then assign it without re-clustering the network.
func (p *Plan) AssignPoint(point cluster.Vector) (int, error) {
	if len(p.Centers) == 0 {
		return 0, fmt.Errorf("core: plan has no centers")
	}
	if len(point) != len(p.Centers[0]) {
		return 0, fmt.Errorf("core: point dimension %d, want %d", len(point), len(p.Centers[0]))
	}
	best := 0
	bestD := cluster.L2(point, p.Centers[0])
	for c := 1; c < len(p.Centers); c++ {
		if d := cluster.L2(point, p.Centers[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best, nil
}

// AddCache appends a new cache with the given clustered-space point and
// raw server distance, assigning it to the nearest group. It returns the
// assigned group.
func (p *Plan) AddCache(point cluster.Vector, serverDist float64) (int, error) {
	g, err := p.AssignPoint(point)
	if err != nil {
		return 0, err
	}
	p.Points = append(p.Points, point)
	p.Features = append(p.Features, point) // raw features unavailable for embedded points
	p.ServerDist = append(p.ServerDist, serverDist)
	p.Assignments = append(p.Assignments, g)
	p.edited = true
	return g, nil
}

// RemoveCache removes cache i from the plan, preserving the indices of the
// remaining caches minus one (the slice compacts). It returns an error if
// removal would leave a group empty and no repair is possible, or if i is
// out of range.
func (p *Plan) RemoveCache(i topology.CacheIndex) error {
	idx := int(i)
	if idx < 0 || idx >= len(p.Assignments) {
		return fmt.Errorf("core: cache index %d out of range [0,%d)", i, len(p.Assignments))
	}
	p.Assignments = append(p.Assignments[:idx], p.Assignments[idx+1:]...)
	p.Points = append(p.Points[:idx], p.Points[idx+1:]...)
	if idx < len(p.Features) {
		p.Features = append(p.Features[:idx], p.Features[idx+1:]...)
	}
	if idx < len(p.ServerDist) {
		p.ServerDist = append(p.ServerDist[:idx], p.ServerDist[idx+1:]...)
	}
	p.edited = true
	return nil
}

// Edited reports whether the plan's assignments were changed without
// recomputing the centers (Balance, AddCache, RemoveCache), which relaxes
// the centers-are-means invariant in Verify.
func (p *Plan) Edited() bool { return p.edited }

// MarkEdited relaxes the centers-are-means invariant in Verify. It is for
// rebuilding a plan from a serialized snapshot (internal/serve), where the
// original edited state must survive the round trip; in-package editors
// set the flag directly.
func (p *Plan) MarkEdited() { p.edited = true }

// cloneShallow returns a copy of p with fresh top-level slice headers over
// the shared element vectors. Maintenance replaces elements wholesale
// (never mutating a vector in place), so readers of the original plan see
// a consistent snapshot while the clone is edited and swapped in.
func (p *Plan) cloneShallow() *Plan {
	q := *p
	q.Assignments = append([]int(nil), p.Assignments...)
	q.Points = append([]cluster.Vector(nil), p.Points...)
	q.Features = append([]cluster.Vector(nil), p.Features...)
	q.Centers = append([]cluster.Vector(nil), p.Centers...)
	return &q
}

// Verify checks the plan's structural invariants: a well-formed partition
// (every cache in exactly one group, no empty groups), consistent
// dimensions across points/features/centers, and — for unedited K-means
// plans — that every center is exactly the mean of its members. A nil nw
// skips the network-coverage check.
func (p *Plan) Verify(nw *topology.Network) error {
	numCaches := 0
	if nw != nil {
		numCaches = nw.NumCaches()
	}
	return verify.Plan(verify.PlanData{
		NumCaches:       numCaches,
		K:               len(p.Centers),
		Assignments:     p.Assignments,
		Points:          p.Points,
		Centers:         p.Centers,
		Features:        p.Features,
		CentersAreMeans: p.Algorithm == AlgoKMeans && !p.edited,
	})
}

// Checksum returns a stable FNV-1a digest of the plan's outcome: the
// scheme name, the group count, the assignments, and the measured/derived
// coordinates. Two runs of the same (seed, config) pair must produce equal
// checksums regardless of probing concurrency; different seeds must not.
func (p *Plan) Checksum() uint64 {
	d := verify.NewDigest()
	d.String(p.Scheme)
	d.Int(len(p.Centers))
	d.Ints(p.Assignments)
	d.Floats(p.ServerDist)
	for _, f := range p.Features {
		d.Floats(f)
	}
	for _, pt := range p.Points {
		d.Floats(pt)
	}
	for _, c := range p.Centers {
		d.Floats(c)
	}
	return d.Sum64()
}
