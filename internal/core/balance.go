package core

import (
	"fmt"
	"sort"

	"edgecachegroups/internal/cluster"
)

// BalanceOptions constrains group sizes after clustering. Operators often
// need bounds the raw clustering does not guarantee: a singleton group
// cannot cooperate at all, and an enormous group's interaction costs blow
// up. Balance enforces MinSize/MaxSize by moving boundary caches to their
// nearest center with room.
type BalanceOptions struct {
	// MinSize is the smallest allowed group (>= 1).
	MinSize int
	// MaxSize is the largest allowed group; 0 means unbounded.
	MaxSize int
}

// Validate reports whether the options are satisfiable for a plan with
// numCaches caches and k groups.
func (o BalanceOptions) Validate(numCaches, k int) error {
	if o.MinSize < 1 {
		return fmt.Errorf("core: MinSize must be >= 1, got %d", o.MinSize)
	}
	if o.MaxSize != 0 && o.MaxSize < o.MinSize {
		return fmt.Errorf("core: MaxSize %d < MinSize %d", o.MaxSize, o.MinSize)
	}
	if o.MinSize*k > numCaches {
		return fmt.Errorf("core: MinSize %d infeasible for %d caches in %d groups", o.MinSize, numCaches, k)
	}
	if o.MaxSize != 0 && o.MaxSize*k < numCaches {
		return fmt.Errorf("core: MaxSize %d infeasible for %d caches in %d groups", o.MaxSize, numCaches, k)
	}
	return nil
}

// Balance rewrites the plan's assignments in place so that every group
// size lies in [MinSize, MaxSize]. Caches are moved greedily: oversize
// groups shed their members that are farthest from the group center,
// undersize groups absorb the nearest available caches. The plan's
// clustering metadata (Iterations, Converged) is preserved; centers are
// not recomputed (they remain the clustering's centers, which keeps
// AssignPoint stable for future incremental joins).
func (p *Plan) Balance(opts BalanceOptions) error {
	n := p.NumCaches()
	k := p.NumGroups()
	if err := opts.Validate(n, k); err != nil {
		return err
	}
	if len(p.Points) != n {
		return fmt.Errorf("core: plan has %d points for %d caches", len(p.Points), n)
	}

	sizes := p.Sizes()

	// Phase 1: shrink oversize groups (only when a MaxSize is set).
	if opts.MaxSize > 0 {
		for g := 0; g < k; g++ {
			for sizes[g] > opts.MaxSize {
				idx := p.farthestMember(g)
				if idx < 0 {
					return fmt.Errorf("core: no movable member in oversize group %d", g)
				}
				dst := p.bestTarget(idx, g, sizes, opts.MaxSize)
				if dst < 0 {
					return fmt.Errorf("core: no target group with room for cache %d", idx)
				}
				p.Assignments[idx] = dst
				sizes[g]--
				sizes[dst]++
				p.edited = true
			}
		}
	}

	// Phase 2: grow undersize groups by pulling the nearest caches from
	// groups that can spare them.
	for g := 0; g < k; g++ {
		for sizes[g] < opts.MinSize {
			idx := p.nearestOutsider(g, sizes, opts.MinSize)
			if idx < 0 {
				return fmt.Errorf("core: cannot fill group %d to MinSize %d", g, opts.MinSize)
			}
			sizes[p.Assignments[idx]]--
			p.Assignments[idx] = g
			sizes[g]++
			p.edited = true
		}
	}
	return nil
}

// farthestMember returns the member of group g farthest from its center,
// or -1 when the group is empty.
func (p *Plan) farthestMember(g int) int {
	best := -1
	var bestD float64
	for i, a := range p.Assignments {
		if a != g {
			continue
		}
		d := cluster.L2(p.Points[i], p.Centers[g])
		if best < 0 || d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// bestTarget returns the nearest group (by center distance from cache idx)
// other than from with room under maxSize, or -1.
func (p *Plan) bestTarget(idx, from int, sizes []int, maxSize int) int {
	best := -1
	var bestD float64
	for g := range p.Centers {
		if g == from {
			continue
		}
		if maxSize > 0 && sizes[g] >= maxSize {
			continue
		}
		d := cluster.L2(p.Points[idx], p.Centers[g])
		if best < 0 || d < bestD {
			best, bestD = g, d
		}
	}
	return best
}

// nearestOutsider returns the cache outside group g nearest to g's center
// whose current group can spare it (stays >= minSize after the move), or
// -1.
func (p *Plan) nearestOutsider(g int, sizes []int, minSize int) int {
	type cand struct {
		idx int
		d   float64
	}
	var cands []cand
	for i, a := range p.Assignments {
		if a == g || sizes[a] <= minSize {
			continue
		}
		cands = append(cands, cand{idx: i, d: cluster.L2(p.Points[i], p.Centers[g])})
	}
	if len(cands) == 0 {
		return -1
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].idx < cands[b].idx
	})
	return cands[0].idx
}
