package core

import (
	"strings"
	"testing"

	"edgecachegroups/internal/landmark"
	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// testSetup builds a network and prober for core tests.
func testSetup(t *testing.T, numCaches int, seed int64) (*topology.Network, *probe.Prober) {
	t.Helper()
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: numCaches}, simrand.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := probe.NewProber(nw, probe.DefaultConfig(), simrand.New(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	return nw, p
}

func TestConfigNames(t *testing.T) {
	tests := []struct {
		cfg  Config
		want string
	}{
		{cfg: SL(25, 4), want: "SL"},
		{cfg: SDSL(25, 4, 1), want: "SDSL(theta=1)"},
		{cfg: EuclideanScheme(25, 4, 5), want: "SL+GNP"},
		{cfg: func() Config {
			c := SL(25, 4)
			c.Selector = landmark.Random{}
			return c
		}(), want: "SL[random-landmarks]"},
	}
	for _, tt := range tests {
		if got := tt.cfg.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestRepresentationString(t *testing.T) {
	if FeatureVector.String() != "feature-vector" || Euclidean.String() != "euclidean" {
		t.Fatal("Representation String mismatch")
	}
	if !strings.Contains(Representation(0).String(), "Representation") {
		t.Fatal("unknown representation String mismatch")
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad landmarks", func(c *Config) { c.Landmarks.L = 0 }},
		{"negative theta", func(c *Config) { c.Theta = -1 }},
		{"unknown representation", func(c *Config) { c.Representation = 0 }},
		{"bad gnp", func(c *Config) { c.Representation = Euclidean; c.GNP.Dim = 0 }},
		{"negative parallelism", func(c *Config) { c.ProbeParallelism = -1 }},
		{"bad cluster opts", func(c *Config) { c.Cluster.MaxIterations = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := SL(10, 2)
			tt.mutate(&cfg)
			if err := cfg.Validate(100); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
	if err := SL(10, 2).Validate(100); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestNewCoordinatorErrors(t *testing.T) {
	nw, p := testSetup(t, 30, 40)
	src := simrand.New(1)
	if _, err := NewCoordinator(nil, p, SL(5, 2), src); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewCoordinator(nw, nil, SL(5, 2), src); err == nil {
		t.Fatal("nil prober accepted")
	}
	if _, err := NewCoordinator(nw, p, SL(5, 2), nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewCoordinator(nw, p, SL(500, 4), src); err == nil {
		t.Fatal("oversized landmark config accepted")
	}
}

func TestNilSelectorDefaultsToGreedy(t *testing.T) {
	nw, p := testSetup(t, 30, 41)
	cfg := SL(5, 2)
	cfg.Selector = nil
	gf, err := NewCoordinator(nw, p, cfg, simrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if gf.Config().Selector == nil {
		t.Fatal("selector not defaulted")
	}
	if gf.Config().Selector.Name() != "greedy" {
		t.Fatalf("default selector = %q", gf.Config().Selector.Name())
	}
}

func TestFormGroupsBasic(t *testing.T) {
	nw, p := testSetup(t, 60, 42)
	gf, err := NewCoordinator(nw, p, SL(8, 3), simrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(6)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumGroups() != 6 {
		t.Fatalf("NumGroups = %d, want 6", plan.NumGroups())
	}
	if plan.NumCaches() != 60 {
		t.Fatalf("NumCaches = %d, want 60", plan.NumCaches())
	}
	if plan.Scheme != "SL" {
		t.Fatalf("Scheme = %q", plan.Scheme)
	}
	if len(plan.Landmarks) != 8 || !plan.Landmarks[0].IsOrigin() {
		t.Fatalf("landmarks = %v", plan.Landmarks)
	}
	// Every cache in exactly one group, no empty groups.
	sizes := plan.Sizes()
	total := 0
	for g, s := range sizes {
		if s == 0 {
			t.Fatalf("group %d empty", g)
		}
		total += s
	}
	if total != 60 {
		t.Fatalf("groups cover %d caches, want 60", total)
	}
	// Feature vectors have one component per landmark; component for the
	// origin equals ServerDist.
	for i, fv := range plan.Features {
		if len(fv) != 8 {
			t.Fatalf("feature vector %d has %d components", i, len(fv))
		}
		if fv[0] != plan.ServerDist[i] {
			t.Fatalf("cache %d: FV[0]=%v, ServerDist=%v", i, fv[0], plan.ServerDist[i])
		}
	}
	if plan.MeanGroupSize() != 10 {
		t.Fatalf("MeanGroupSize = %v, want 10", plan.MeanGroupSize())
	}
}

func TestFormGroupsKValidation(t *testing.T) {
	nw, p := testSetup(t, 20, 43)
	gf, err := NewCoordinator(nw, p, SL(5, 2), simrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gf.FormGroups(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := gf.FormGroups(21); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := gf.FormGroups(20); err != nil {
		t.Fatalf("k=n rejected: %v", err)
	}
}

func TestFormGroupsDeterministic(t *testing.T) {
	nw, p := testSetup(t, 50, 44)
	for _, cfg := range []Config{SL(6, 2), SDSL(6, 2, 1)} {
		gf1, err := NewCoordinator(nw, p, cfg, simrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		plan1, err := gf1.FormGroups(5)
		if err != nil {
			t.Fatal(err)
		}
		gf2, err := NewCoordinator(nw, p, cfg, simrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		plan2, err := gf2.FormGroups(5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range plan1.Assignments {
			if plan1.Assignments[i] != plan2.Assignments[i] {
				t.Fatalf("%s: non-deterministic assignment at cache %d", cfg.Name(), i)
			}
		}
	}
}

// TestSLGroupsAreProximityCoherent: SL groups should have far lower
// interaction cost than random partitions of the same sizes.
func TestSLGroupsAreProximityCoherent(t *testing.T) {
	nw, p := testSetup(t, 100, 45)
	gf, err := NewCoordinator(nw, p, SL(12, 4), simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(10)
	if err != nil {
		t.Fatal(err)
	}
	slCost := metrics.AvgGroupInteractionCost(nw, plan.Groups())

	// Random partition with the same K.
	src := simrand.New(7)
	randGroups := make([][]topology.CacheIndex, 10)
	for i := 0; i < 100; i++ {
		g := src.Intn(10)
		randGroups[g] = append(randGroups[g], topology.CacheIndex(i))
	}
	randCost := metrics.AvgGroupInteractionCost(nw, randGroups)

	if slCost >= randCost*0.8 {
		t.Fatalf("SL GICost %v not clearly better than random partition %v", slCost, randCost)
	}
}

// TestGreedyLandmarksBeatMinDistOnGICost reproduces the Fig 4/5 ordering:
// greedy landmark selection yields lower average group interaction cost
// than the min-dist baseline (averaged over seeds to suppress noise).
func TestGreedyLandmarksBeatMinDistOnGICost(t *testing.T) {
	nw, p := testSetup(t, 150, 46)
	var greedySum, minSum float64
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		seed := int64(100 + trial)

		cfgG := SL(10, 4)
		gfG, err := NewCoordinator(nw, p, cfgG, simrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		planG, err := gfG.FormGroups(15)
		if err != nil {
			t.Fatal(err)
		}
		greedySum += metrics.AvgGroupInteractionCost(nw, planG.Groups())

		cfgM := SL(10, 4)
		cfgM.Selector = landmark.MinDist{}
		gfM, err := NewCoordinator(nw, p, cfgM, simrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		planM, err := gfM.FormGroups(15)
		if err != nil {
			t.Fatal(err)
		}
		minSum += metrics.AvgGroupInteractionCost(nw, planM.Groups())
	}
	if greedySum >= minSum {
		t.Fatalf("greedy GICost %v not better than min-dist %v", greedySum/trials, minSum/trials)
	}
}

// TestSDSLGroupsSmallerNearOrigin verifies the SDSL design goal: caches
// near the origin end up in smaller groups than caches far from it.
func TestSDSLGroupsSmallerNearOrigin(t *testing.T) {
	nw, p := testSetup(t, 200, 47)
	var nearSum, farSum float64
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		gf, err := NewCoordinator(nw, p, SDSL(12, 4, 2), simrand.New(int64(200+trial)))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := gf.FormGroups(20)
		if err != nil {
			t.Fatal(err)
		}
		sizes := plan.Sizes()
		near := nw.NearestCaches(40)
		far := nw.FarthestCaches(40)
		for _, c := range near {
			g, err := plan.GroupOf(c)
			if err != nil {
				t.Fatal(err)
			}
			nearSum += float64(sizes[g])
		}
		for _, c := range far {
			g, err := plan.GroupOf(c)
			if err != nil {
				t.Fatal(err)
			}
			farSum += float64(sizes[g])
		}
	}
	if nearSum >= farSum {
		t.Fatalf("mean group size near origin (%v) not smaller than far (%v)",
			nearSum/(40*trials), farSum/(40*trials))
	}
}

func TestEuclideanSchemeProducesComparableGroups(t *testing.T) {
	nw, p := testSetup(t, 80, 48)
	gfFV, err := NewCoordinator(nw, p, SL(10, 4), simrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	planFV, err := gfFV.FormGroups(8)
	if err != nil {
		t.Fatal(err)
	}
	gfEU, err := NewCoordinator(nw, p, EuclideanScheme(10, 4, 5), simrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	planEU, err := gfEU.FormGroups(8)
	if err != nil {
		t.Fatal(err)
	}
	costFV := metrics.AvgGroupInteractionCost(nw, planFV.Groups())
	costEU := metrics.AvgGroupInteractionCost(nw, planEU.Groups())
	// The paper finds the two representations comparable; allow a generous
	// 2x band either way.
	if costEU > costFV*2 || costFV > costEU*2 {
		t.Fatalf("representations diverge: FV=%v EU=%v", costFV, costEU)
	}
	// Euclidean plan carries embedding artifacts.
	if len(planEU.LandmarkCoords) != 10 {
		t.Fatalf("landmark coords = %d, want 10", len(planEU.LandmarkCoords))
	}
	if len(planEU.Points[0]) != 5 {
		t.Fatalf("point dim = %d, want 5", len(planEU.Points[0]))
	}
	// Raw features preserved alongside embedded points.
	if len(planEU.Features[0]) != 10 {
		t.Fatalf("feature dim = %d, want 10", len(planEU.Features[0]))
	}
}

func TestProbeParallelismInvariance(t *testing.T) {
	nw, p := testSetup(t, 40, 49)
	cfgSerial := SL(6, 2)
	cfgSerial.ProbeParallelism = 1
	cfgPar := SL(6, 2)
	cfgPar.ProbeParallelism = 8

	gf1, err := NewCoordinator(nw, p, cfgSerial, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	plan1, err := gf1.FormGroups(4)
	if err != nil {
		t.Fatal(err)
	}
	gf2, err := NewCoordinator(nw, p, cfgPar, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := gf2.FormGroups(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan1.Assignments {
		if plan1.Assignments[i] != plan2.Assignments[i] {
			t.Fatalf("parallelism changed assignment of cache %d", i)
		}
	}
}
