package core

import (
	"testing"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// smallPlan builds a hand-crafted plan with 2 groups and 4 caches.
func smallPlan() *Plan {
	return &Plan{
		Scheme:      "SL",
		Landmarks:   []probe.Endpoint{probe.Origin(), probe.Cache(0)},
		Features:    []cluster.Vector{{0, 1}, {1, 0}, {10, 11}, {11, 10}},
		Points:      []cluster.Vector{{0, 1}, {1, 0}, {10, 11}, {11, 10}},
		ServerDist:  []float64{0, 1, 10, 11},
		Assignments: []int{0, 0, 1, 1},
		Centers:     []cluster.Vector{{0.5, 0.5}, {10.5, 10.5}},
	}
}

func TestPlanAccessors(t *testing.T) {
	p := smallPlan()
	if p.NumGroups() != 2 || p.NumCaches() != 4 {
		t.Fatalf("NumGroups=%d NumCaches=%d", p.NumGroups(), p.NumCaches())
	}
	g, err := p.GroupOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("GroupOf(2) = %d, want 1", g)
	}
	if _, err := p.GroupOf(4); err == nil {
		t.Fatal("out-of-range GroupOf accepted")
	}
	if _, err := p.GroupOf(-1); err == nil {
		t.Fatal("negative GroupOf accepted")
	}
	members, err := p.Group(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 || members[0] != 0 || members[1] != 1 {
		t.Fatalf("Group(0) = %v", members)
	}
	if _, err := p.Group(2); err == nil {
		t.Fatal("out-of-range Group accepted")
	}
	groups := p.Groups()
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 2 {
		t.Fatalf("Groups() = %v", groups)
	}
	sizes := p.Sizes()
	if sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("Sizes() = %v", sizes)
	}
	if p.MeanGroupSize() != 2 {
		t.Fatalf("MeanGroupSize = %v", p.MeanGroupSize())
	}
}

func TestAssignPoint(t *testing.T) {
	p := smallPlan()
	g, err := p.AssignPoint(cluster.Vector{0.4, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if g != 0 {
		t.Fatalf("AssignPoint near group 0 = %d", g)
	}
	g, err = p.AssignPoint(cluster.Vector{12, 12})
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("AssignPoint near group 1 = %d", g)
	}
	if _, err := p.AssignPoint(cluster.Vector{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	empty := &Plan{}
	if _, err := empty.AssignPoint(cluster.Vector{1}); err == nil {
		t.Fatal("empty plan accepted")
	}
}

func TestAddCache(t *testing.T) {
	p := smallPlan()
	g, err := p.AddCache(cluster.Vector{9, 9}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("AddCache assigned to %d, want 1", g)
	}
	if p.NumCaches() != 5 {
		t.Fatalf("NumCaches = %d, want 5", p.NumCaches())
	}
	got, err := p.GroupOf(4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("new cache in group %d", got)
	}
	if p.ServerDist[4] != 9 {
		t.Fatalf("ServerDist[4] = %v", p.ServerDist[4])
	}
	if _, err := p.AddCache(cluster.Vector{1, 2, 3}, 1); err == nil {
		t.Fatal("mismatched point accepted")
	}
}

func TestRemoveCache(t *testing.T) {
	p := smallPlan()
	if err := p.RemoveCache(1); err != nil {
		t.Fatal(err)
	}
	if p.NumCaches() != 3 {
		t.Fatalf("NumCaches = %d, want 3", p.NumCaches())
	}
	// Former cache 2 is now index 1.
	g, err := p.GroupOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("compacted cache group = %d, want 1", g)
	}
	if err := p.RemoveCache(10); err == nil {
		t.Fatal("out-of-range RemoveCache accepted")
	}
	if err := p.RemoveCache(-1); err == nil {
		t.Fatal("negative RemoveCache accepted")
	}
}

// TestIncrementalAssignMatchesCluster: a cache added at an existing cache's
// exact position must join that cache's group.
func TestIncrementalAssignMatchesCluster(t *testing.T) {
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(60))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 50}, simrand.New(61))
	if err != nil {
		t.Fatal(err)
	}
	prb, err := probe.NewProber(nw, probe.DefaultConfig(), simrand.New(62))
	if err != nil {
		t.Fatal(err)
	}
	gf, err := NewCoordinator(nw, prb, SL(8, 3), simrand.New(63))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i += 7 {
		wantGroup := plan.Assignments[i]
		got, err := plan.AssignPoint(plan.Points[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != wantGroup {
			// K-means convergence guarantees nearest-center assignment, so
			// this must hold exactly for converged plans.
			if plan.Converged {
				t.Fatalf("cache %d: AssignPoint = %d, cluster assignment = %d", i, got, wantGroup)
			}
		}
	}
}
