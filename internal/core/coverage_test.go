package core

import (
	"testing"

	"edgecachegroups/internal/landmark"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

func TestCoordinatorNetworkAccessor(t *testing.T) {
	nw, p := testSetup(t, 20, 180)
	gf, err := NewCoordinator(nw, p, SL(4, 2), simrand.New(181))
	if err != nil {
		t.Fatal(err)
	}
	if gf.Network() != nw {
		t.Fatal("Network() did not return the underlying network")
	}
}

func TestPlanMeanGroupSizeEmpty(t *testing.T) {
	var p Plan
	if p.MeanGroupSize() != 0 {
		t.Fatalf("empty plan MeanGroupSize = %v", p.MeanGroupSize())
	}
}

// cacheOnlySelector is a custom selector that omits the origin, exercising
// the coordinator's defensive direct measurement of server distances.
type cacheOnlySelector struct{}

func (cacheOnlySelector) Name() string { return "cache-only" }

func (cacheOnlySelector) Select(_ *probe.Prober, numCaches int, params landmark.Params, src *simrand.Source) ([]probe.Endpoint, error) {
	idx, err := src.SampleWithoutReplacement(numCaches, params.L)
	if err != nil {
		return nil, err
	}
	out := make([]probe.Endpoint, len(idx))
	for i, c := range idx {
		out[i] = probe.Cache(topology.CacheIndex(c))
	}
	return out, nil
}

func TestFormGroupsWithOriginlessSelector(t *testing.T) {
	nw, p := testSetup(t, 40, 182)
	cfg := SL(5, 2)
	cfg.Selector = cacheOnlySelector{}
	gf, err := NewCoordinator(nw, p, cfg, simrand.New(183))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(4)
	if err != nil {
		t.Fatal(err)
	}
	// Server distances must still be populated (measured directly).
	for i, d := range plan.ServerDist {
		if d <= 0 {
			t.Fatalf("cache %d server distance = %v, want > 0", i, d)
		}
	}
	// SDSL seeding must work off the direct measurements too.
	cfg2 := SDSL(5, 2, 1)
	cfg2.Selector = cacheOnlySelector{}
	gf2, err := NewCoordinator(nw, p, cfg2, simrand.New(184))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gf2.FormGroups(4); err != nil {
		t.Fatal(err)
	}
}
