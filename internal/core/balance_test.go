package core

import (
	"testing"
	"testing/quick"

	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

func TestBalanceOptionsValidate(t *testing.T) {
	tests := []struct {
		name      string
		opts      BalanceOptions
		caches, k int
		wantErr   bool
	}{
		{name: "ok", opts: BalanceOptions{MinSize: 2, MaxSize: 10}, caches: 50, k: 10},
		{name: "unbounded max", opts: BalanceOptions{MinSize: 1}, caches: 50, k: 10},
		{name: "zero min", opts: BalanceOptions{MinSize: 0}, caches: 50, k: 10, wantErr: true},
		{name: "max below min", opts: BalanceOptions{MinSize: 5, MaxSize: 3}, caches: 50, k: 10, wantErr: true},
		{name: "min infeasible", opts: BalanceOptions{MinSize: 10}, caches: 50, k: 10, wantErr: true},
		{name: "max infeasible", opts: BalanceOptions{MinSize: 1, MaxSize: 2}, caches: 50, k: 10, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.opts.Validate(tt.caches, tt.k)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestBalanceEnforcesBounds(t *testing.T) {
	nw, p := testSetup(t, 150, 160)
	// SDSL at high theta produces very skewed group sizes, the case that
	// needs balancing.
	gf, err := NewCoordinator(nw, p, SDSL(10, 4, 3), simrand.New(161))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(15)
	if err != nil {
		t.Fatal(err)
	}
	opts := BalanceOptions{MinSize: 4, MaxSize: 20}
	if err := plan.Balance(opts); err != nil {
		t.Fatal(err)
	}
	total := 0
	for g, s := range plan.Sizes() {
		if s < 4 || s > 20 {
			t.Fatalf("group %d has size %d outside [4,20]", g, s)
		}
		total += s
	}
	if total != 150 {
		t.Fatalf("balance lost caches: %d", total)
	}
}

func TestBalanceNoOpWhenSatisfied(t *testing.T) {
	nw, p := testSetup(t, 60, 162)
	gf, err := NewCoordinator(nw, p, SL(8, 3), simrand.New(163))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(6)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int(nil), plan.Assignments...)
	if err := plan.Balance(BalanceOptions{MinSize: 1}); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if plan.Assignments[i] != before[i] {
			t.Fatalf("no-op balance moved cache %d", i)
		}
	}
}

func TestBalanceRejectsInfeasible(t *testing.T) {
	nw, p := testSetup(t, 30, 164)
	gf, err := NewCoordinator(nw, p, SL(6, 3), simrand.New(165))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Balance(BalanceOptions{MinSize: 5}); err == nil {
		t.Fatal("infeasible MinSize accepted")
	}
	if err := plan.Balance(BalanceOptions{MinSize: 1, MaxSize: 2}); err == nil {
		t.Fatal("infeasible MaxSize accepted")
	}
}

// TestBalanceKeepsGroupsProximityCoherent: balancing should not wreck the
// clustering quality — the balanced partition must stay far better than a
// random one.
func TestBalanceKeepsGroupsProximityCoherent(t *testing.T) {
	nw, p := testSetup(t, 120, 166)
	gf, err := NewCoordinator(nw, p, SDSL(10, 4, 2), simrand.New(167))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gf.FormGroups(12)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Balance(BalanceOptions{MinSize: 3, MaxSize: 25}); err != nil {
		t.Fatal(err)
	}
	balanced := metrics.AvgGroupInteractionCost(nw, plan.Groups())

	src := simrand.New(168)
	randGroups := make([][]topology.CacheIndex, 12)
	for i := 0; i < 120; i++ {
		g := src.Intn(12)
		randGroups[g] = append(randGroups[g], topology.CacheIndex(i))
	}
	random := metrics.AvgGroupInteractionCost(nw, randGroups)
	if balanced >= random {
		t.Fatalf("balanced plan (%v) no better than random partition (%v)", balanced, random)
	}
}

// TestBalanceInvariantProperty: for random feasible bounds, balancing
// always yields a valid partition within bounds.
func TestBalanceInvariantProperty(t *testing.T) {
	nw, p := testSetup(t, 80, 169)
	gf, err := NewCoordinator(nw, p, SDSL(8, 3, 2), simrand.New(170))
	if err != nil {
		t.Fatal(err)
	}
	base, err := gf.FormGroups(8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		src := simrand.New(seed)
		// Feasible bounds: min in [1,5] (8*5=40<=80), max in [10,30] w/ 8*10=80>=80.
		minSize := 1 + src.Intn(5)
		maxSize := 10 + src.Intn(21)
		plan := &Plan{
			Scheme:      base.Scheme,
			Points:      base.Points,
			Centers:     base.Centers,
			Assignments: append([]int(nil), base.Assignments...),
		}
		if err := plan.Balance(BalanceOptions{MinSize: minSize, MaxSize: maxSize}); err != nil {
			return false
		}
		total := 0
		for _, s := range plan.Sizes() {
			if s < minSize || s > maxSize {
				return false
			}
			total += s
		}
		return total == 80
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
