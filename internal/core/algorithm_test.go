package core

import (
	"strings"
	"testing"

	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/simrand"
)

func TestAlgorithmString(t *testing.T) {
	if AlgoKMeans.String() != "k-means" || AlgoKMedoids.String() != "k-medoids" {
		t.Fatal("Algorithm String mismatch")
	}
	if !strings.Contains(Algorithm(9).String(), "Algorithm") {
		t.Fatal("unknown Algorithm String mismatch")
	}
}

func TestConfigValidateAlgorithm(t *testing.T) {
	cfg := SL(5, 2)
	cfg.Algorithm = Algorithm(9)
	if err := cfg.Validate(100); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	cfg.Algorithm = AlgoKMedoids
	if err := cfg.Validate(100); err != nil {
		t.Fatalf("k-medoids rejected: %v", err)
	}
}

func TestConfigNameWithKMedoids(t *testing.T) {
	cfg := SDSL(5, 2, 1)
	cfg.Algorithm = AlgoKMedoids
	if got := cfg.Name(); got != "SDSL(theta=1)+kmedoids" {
		t.Fatalf("Name() = %q", got)
	}
}

// TestKMedoidsSchemeFormsComparableGroups: the alternative clustering
// algorithm must produce proximity-coherent groups of quality comparable to
// K-means (the paper's "any standard clustering algorithm" claim).
func TestKMedoidsSchemeFormsComparableGroups(t *testing.T) {
	nw, p := testSetup(t, 100, 70)

	cfgMeans := SL(10, 4)
	gfMeans, err := NewCoordinator(nw, p, cfgMeans, simrand.New(71))
	if err != nil {
		t.Fatal(err)
	}
	planMeans, err := gfMeans.FormGroups(10)
	if err != nil {
		t.Fatal(err)
	}

	cfgMedoids := SL(10, 4)
	cfgMedoids.Algorithm = AlgoKMedoids
	gfMedoids, err := NewCoordinator(nw, p, cfgMedoids, simrand.New(71))
	if err != nil {
		t.Fatal(err)
	}
	planMedoids, err := gfMedoids.FormGroups(10)
	if err != nil {
		t.Fatal(err)
	}

	costMeans := metrics.AvgGroupInteractionCost(nw, planMeans.Groups())
	costMedoids := metrics.AvgGroupInteractionCost(nw, planMedoids.Groups())
	if costMedoids > costMeans*2 {
		t.Fatalf("k-medoids GICost %v far worse than k-means %v", costMedoids, costMeans)
	}
	// Partition invariants hold for the alternative algorithm too.
	sizes := planMedoids.Sizes()
	total := 0
	for g, s := range sizes {
		if s == 0 {
			t.Fatalf("k-medoids group %d empty", g)
		}
		total += s
	}
	if total != 100 {
		t.Fatalf("k-medoids covers %d caches, want 100", total)
	}
}

// TestKMedoidsWithSDSLSeeding: the SDSL seeding rule composes with the
// alternative clustering algorithm.
func TestKMedoidsWithSDSLSeeding(t *testing.T) {
	nw, p := testSetup(t, 150, 72)
	cfg := SDSL(10, 4, 2)
	cfg.Algorithm = AlgoKMedoids
	var nearSum, farSum float64
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		gf, err := NewCoordinator(nw, p, cfg, simrand.New(int64(73+trial)))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := gf.FormGroups(15)
		if err != nil {
			t.Fatal(err)
		}
		sizes := plan.Sizes()
		for _, c := range nw.NearestCaches(30) {
			g, err := plan.GroupOf(c)
			if err != nil {
				t.Fatal(err)
			}
			nearSum += float64(sizes[g])
		}
		for _, c := range nw.FarthestCaches(30) {
			g, err := plan.GroupOf(c)
			if err != nil {
				t.Fatal(err)
			}
			farSum += float64(sizes[g])
		}
	}
	if nearSum >= farSum {
		t.Fatalf("SDSL+kmedoids: near mean size %v not smaller than far %v",
			nearSum/(30*trials), farSum/(30*trials))
	}
}
