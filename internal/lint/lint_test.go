package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgecachegroups/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden findings file")

// loadFixtures type-checks the seeded-violation fixture tree.
func loadFixtures(t *testing.T, patterns ...string) []*lint.Package {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded for %v", patterns)
	}
	return pkgs
}

// render formats findings with paths relative to testdata/src so the
// golden file is position-stable.
func render(t *testing.T, findings []lint.Finding) string {
	t.Helper()
	base, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range findings {
		abs, err := filepath.Abs(f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		if rel, err := filepath.Rel(base, abs); err == nil {
			f.Pos.Filename = filepath.ToSlash(rel)
		}
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFixtureFindingsGolden runs the full suite over every seeded
// violation and compares against the golden findings file. Regenerate
// with `go test ./internal/lint -run Golden -update`.
func TestFixtureFindingsGolden(t *testing.T) {
	pkgs := loadFixtures(t, "testdata/src/...")
	got := render(t, lint.Run(pkgs, lint.Analyzers()))

	golden := filepath.Join("testdata", "findings.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestAllowSuppressesExactlyOneFinding pins the directive's scope: of
// two identical violations on consecutive statements, the annotated
// one disappears and the other is still reported.
func TestAllowSuppressesExactlyOneFinding(t *testing.T) {
	pkgs := loadFixtures(t, "testdata/src/allowonce")
	findings := lint.Run(pkgs, lint.Analyzers())
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s", len(findings), render(t, findings))
	}
	f := findings[0]
	if f.Rule != "detclock" || !strings.HasSuffix(f.Pos.Filename, "allowonce.go") {
		t.Fatalf("unexpected finding %s", f)
	}
	// The annotated call sits on line 12; the surviving twin on line 13.
	if f.Pos.Line != 13 {
		t.Fatalf("surviving finding on line %d, want 13 (the unannotated twin)", f.Pos.Line)
	}
}

// TestMalformedDirectivesAreFindings keeps directive hygiene honest: a
// typo'd allow must surface, not silently suppress nothing.
func TestMalformedDirectivesAreFindings(t *testing.T) {
	pkgs := loadFixtures(t, "testdata/src/badallow")
	findings := lint.Run(pkgs, lint.Analyzers())
	if len(findings) != 3 {
		t.Fatalf("got %d directive findings, want 3:\n%s", len(findings), render(t, findings))
	}
	for _, f := range findings {
		if f.Rule != "directive" {
			t.Fatalf("unexpected rule %q in %s", f.Rule, f)
		}
	}
}

// TestRepoIsLintClean runs the suite over the real module, so `go test`
// itself enforces the static invariants: a new wall-clock call, global
// math/rand import, order-dependent map range, or locked channel
// operation anywhere in the tree fails this test with its file:line.
func TestRepoIsLintClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(cwd, "..", "..")
	pkgs, err := lint.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; the walk lost most of the module", len(pkgs))
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "testdata") {
			t.Fatalf("recursive walk descended into testdata: %s", pkg.Path)
		}
	}
	findings, allows := lint.Audit(pkgs, lint.Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	// Every suppression in the tree must carry an audited reason and
	// still guard a live violation; stale ones already surfaced above as
	// directive findings, so this guards the reason text specifically.
	for _, a := range allows {
		if strings.TrimSpace(a.Reason) == "" {
			t.Errorf("%s:%d: ecglint:allow %s has no reason", a.Pos.Filename, a.Pos.Line, a.Rule)
		}
	}
}

// TestAnalyzerMetadata keeps every rule addressable from an allow
// directive and documented for -rules output.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.Analyzers() {
		name := a.Name()
		if name == "" || a.Doc() == "" {
			t.Fatalf("analyzer %T missing name or doc", a)
		}
		if seen[name] {
			t.Fatalf("duplicate rule name %q", name)
		}
		seen[name] = true
	}
	for _, want := range []string{"detclock", "detrand", "maporder", "lockedsend", "cowmutate", "errdrop", "scratchshare"} {
		if !seen[want] {
			t.Fatalf("suite is missing required rule %q", want)
		}
	}
}

// TestTransitiveOneCallDeep pins the acceptance criterion directly:
// detclock and lockedsend must catch violations hidden exactly one call
// level deep, with the witness chain naming the hidden frame.
func TestTransitiveOneCallDeep(t *testing.T) {
	pkgs := loadFixtures(t, "testdata/src/transitive/...")
	findings := lint.Run(pkgs, lint.Analyzers())
	var gotClock, gotLock bool
	for _, f := range findings {
		switch {
		case f.Rule == "detclock" && strings.Contains(f.Message, "clockutil.HiddenNow"):
			gotClock = true
		case f.Rule == "lockedsend" && strings.Contains(f.Message, "blockutil.Drain → channel receive"):
			gotLock = true
		}
	}
	if !gotClock {
		t.Errorf("detclock missed the wall-clock call one frame deep:\n%s", render(t, findings))
	}
	if !gotLock {
		t.Errorf("lockedsend missed the blocking call one frame deep:\n%s", render(t, findings))
	}
}

// TestStaleAllowIsReported keeps suppressions from outliving their
// violation: a well-formed directive guarding nothing must surface.
func TestStaleAllowIsReported(t *testing.T) {
	pkgs := loadFixtures(t, "testdata/src/staleallow")
	findings := lint.Run(pkgs, lint.Analyzers())
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 stale-directive report:\n%s", len(findings), render(t, findings))
	}
	f := findings[0]
	if f.Rule != "directive" || !strings.Contains(f.Message, "stale") {
		t.Fatalf("unexpected finding %s", f)
	}
}
