// Package errdrop seeds the silent-error-loss violations: the pre-fix
// events-channel shape (non-blocking send of an error-carrying payload
// with an empty default) and blank-identifier discards of error
// results, next to their sanctioned counterparts.
package errdrop

type event struct {
	Round int
	Err   error
}

type bus struct {
	events  chan event
	dropped int
}

// publishBad is the pre-fix shape: when the channel is full the event —
// and the error inside it — vanishes without a trace.
func (b *bus) publishBad(ev event) {
	select {
	case b.events <- ev:
	default:
	}
}

// publishRecorded counts the drop in the default clause: clean.
func (b *bus) publishRecorded(ev event) {
	select {
	case b.events <- ev:
	default:
		b.dropped++
	}
}

// publishEvict uses the evict-then-resend idiom: the same function
// receives from the channel, so the nested empty-default sends are the
// sanctioned recovery path.
func (b *bus) publishEvict(ev event) {
	select {
	case b.events <- ev:
		return
	default:
	}
	select {
	case <-b.events:
	default:
	}
	select {
	case b.events <- ev:
	default:
	}
}

type plain struct{ n int }

// sendPlain drops a payload with no error field: out of scope.
func sendPlain(ch chan plain, p plain) {
	select {
	case ch <- p:
	default:
	}
}

func mayFail() (int, error) { return 0, nil }

func onlyErr() error { return nil }

// discards bind error results to the blank identifier.
func discards() int {
	v, _ := mayFail()
	_ = onlyErr()
	return v
}

// handled consumes its errors: clean.
func handled() int {
	v, err := mayFail()
	if err != nil {
		return -1
	}
	if err := onlyErr(); err != nil {
		return -1
	}
	return v
}
