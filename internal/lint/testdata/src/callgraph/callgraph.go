// Package callgraph exercises the engine's graph construction: method
// sets, interface dispatch, recursion cycles, and mutates-parameter
// propagation. It deliberately produces no findings.
package callgraph

type ringer interface {
	Ring() int
}

type bell struct{ hits int }

func (b *bell) Ring() int {
	b.hits++
	return b.hits
}

type silent struct{}

func (silent) Ring() int { return 0 }

// dispatchThrough calls Ring through the interface; both concrete
// methods must become edges.
func dispatchThrough(r ringer) int { return r.Ring() }

// even/odd form a pure recursion cycle: the fixpoint must converge with
// no facts set.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// evenBlocking/oddBlocking form a cycle with a blocking base fact: both
// members must converge to blocks=true.
func evenBlocking(ch chan int, n int) int {
	if n == 0 {
		return <-ch
	}
	return oddBlocking(ch, n-1)
}

func oddBlocking(ch chan int, n int) int { return evenBlocking(ch, n-1) }

// setFirst writes through its slice parameter.
func setFirst(xs []int, v int) { xs[0] = v }

// passThrough mutates its parameter only transitively.
func passThrough(xs []int) { setFirst(xs, 1) }

// reassign rebinds the parameter variable locally: NOT a caller-visible
// mutation.
func reassign(xs []int) { xs = nil; _ = xs }
