// Package scratchshare seeds the shard-scratch lifetime violations:
// scratch allocated outside a par.ForEach body and written inside it
// without per-worker indexing, next to the sanctioned worker-indexed
// and body-local shapes.
package scratchshare

import "edgecachegroups/internal/par"

// sharedSlots is the original bug shape: j ranges over the same key
// sequence in every worker, so scratch[j] is written by all of them.
func sharedSlots(rows [][]float64) []float64 {
	scratch := make([]float64, 8)
	par.ForEach(len(rows), 4, func(i int) {
		for j := range rows[i] {
			scratch[j] += rows[i][j]
		}
	})
	return scratch
}

// sharedCounter writes a captured scalar with no indexing at all.
func sharedCounter(n int) int {
	total := 0
	par.ForEach(n, 4, func(i int) {
		total += i
	})
	return total
}

// sharedAlias smuggles the captured slice through a body-local alias.
func sharedAlias(rows [][]float64) []float64 {
	scratch := make([]float64, 8)
	par.ForEach(len(rows), 4, func(i int) {
		s := scratch
		s[0] = rows[i][0]
	})
	return scratch
}

// perItem indexes the captured slice by the worker argument: clean.
func perItem(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	par.ForEach(len(rows), 4, func(i int) {
		sum := 0.0
		for _, v := range rows[i] {
			sum += v
		}
		out[i] = sum
	})
	return out
}

// perWorker uses worker-indexed scratch, the ForEachWorker contract:
// clean.
func perWorker(rows [][]float64, workers int) []float64 {
	scratch := make([][]float64, workers)
	for w := range scratch {
		scratch[w] = make([]float64, 8)
	}
	par.ForEachWorker(len(rows), workers, func(w, i int) {
		sums := scratch[w]
		for j, v := range rows[i] {
			sums[j] += v
		}
	})
	return scratch[0]
}
