// Package clockok is a negative fixture: it is not a simulation
// package, so its wall-clock reads are outside detclock's scope.
package clockok

import "time"

// Uptime may read the wall clock freely here.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
