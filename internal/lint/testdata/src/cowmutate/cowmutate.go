// Package cowmutate seeds the copy-on-write violations: the exact
// pre-fix Maintainer.RunOnce shape (load the published plan, mutate it
// in place, store it back) plus the sanctioned clone-first variants.
package cowmutate

import "sync/atomic"

type plan struct {
	Epoch  int
	Assign []int
}

// cloneShallow is the sanctioned copy-on-write entry point; the clone
// heuristic (name contains "clone"/"copy") breaks the taint.
func (p *plan) cloneShallow() *plan {
	c := *p
	return &c
}

type maintainer struct {
	plan atomic.Pointer[plan]
}

// runOnceBad is the pre-fix RunOnce shape: load, mutate in place, store.
// Both writes race every concurrent reader of the published plan.
func (m *maintainer) runOnceBad() {
	cur := m.plan.Load()
	cur.Epoch++
	cur.Assign[0] = 1
	m.plan.Store(cur)
}

// runOnceGood clones before mutating: clean.
func (m *maintainer) runOnceGood() {
	cur := m.plan.Load()
	next := cur.cloneShallow()
	next.Epoch++
	m.plan.Store(next)
}

// buildThenStore constructs a fresh value (pre-publication writes are
// clean) but then mutates it after the Store publishes it.
func (m *maintainer) buildThenStore() {
	fresh := &plan{}
	fresh.Epoch = 1
	m.plan.Store(fresh)
	fresh.Epoch = 2
}

// bump mutates its parameter through the pointer.
func bump(p *plan) { p.Epoch++ }

// viaHelper hands the published value to a helper whose transitive
// summary says it mutates that parameter: the same bug one frame down.
func (m *maintainer) viaHelper() {
	cur := m.plan.Load()
	bump(cur)
}

// current is an accessor returning the published value; its summary
// carries returns-atomic-load.
func (m *maintainer) current() *plan { return m.plan.Load() }

// viaAccessor mutates a value obtained through the accessor.
func (m *maintainer) viaAccessor() {
	p := m.current()
	p.Epoch++
}

// swapThenTouch mutates the value swapped out of the publish site.
func (m *maintainer) swapThenTouch(next *plan) {
	old := m.plan.Swap(next)
	old.Epoch = 0
}
