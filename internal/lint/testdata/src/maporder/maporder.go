// Package maporder is a seeded-violation fixture for the maporder
// rule: order-dependent map-range bodies alongside the sanctioned
// sorted and keyed shapes.
package maporder

import "sort"

// KeysUnsorted appends inside a map range and never sorts: finding.
func KeysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// KeysSorted is the collect-then-sort idiom: clean.
func KeysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SumFloats accumulates floats in map order: finding (float addition is
// not associative).
func SumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// SumInts is commutative and associative: clean.
func SumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// JoinStrings concatenates in map order: finding.
func JoinStrings(m map[string]string) string {
	var all string
	for _, v := range m {
		all += v
	}
	return all
}

// LastWriter leaks iteration order through an outer variable: finding.
func LastWriter(m map[string]int) string {
	var best string
	for k := range m {
		best = k
	}
	return best
}

type result struct {
	Max   float64
	ByKey map[string]float64
}

// FieldWrite stores a loop-derived value in an outer struct field:
// finding.
func FieldWrite(m map[string]float64, out *result) {
	for _, v := range m {
		out.Max = v
	}
}

// KeyedWrites are deterministic regardless of order: clean.
func KeyedWrites(m map[string]float64, out *result) {
	for k, v := range m {
		out.ByKey[k] = v
	}
}

// LoopAllowed demonstrates a loop-level directive: one annotation on
// the range statement covers both writes in the body.
func LoopAllowed(m map[string]float64) (hi, lo float64) {
	//ecglint:allow maporder fixture: loop-level allow covers the whole body
	for _, v := range m {
		hi = v
		lo = v
	}
	return hi, lo
}
