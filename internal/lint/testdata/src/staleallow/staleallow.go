// Package staleallow carries a well-formed directive whose violation no
// longer exists; the suite must report the directive itself as stale
// instead of letting it silently guard nothing.
package staleallow

//ecglint:allow detclock the wall-clock call this excused was removed long ago
func nothing() int { return 1 }
