// Package badallow is a fixture for directive hygiene: malformed or
// unknown-rule allow comments are findings themselves, so a typo can
// never silently suppress nothing.
package badallow

//ecglint:allow

//ecglint:allow detclock

//ecglint:allow nosuchrule because reasons

// Placeholder keeps the package non-empty.
func Placeholder() {}
