// Package netsim (allowonce fixture) holds two identical detclock
// violations; the directive above the first must suppress exactly that
// one, leaving the second reported.
package netsim

import "time"

// AllowedOnce pairs an annotated wall-clock read with an unannotated
// twin on the next statement.
func AllowedOnce() (a, b time.Time) {
	//ecglint:allow detclock fixture: this specific call is sanctioned
	a = time.Now()
	b = time.Now()
	return a, b
}
