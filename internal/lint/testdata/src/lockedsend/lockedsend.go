// Package lockedsend is a seeded-violation fixture for the lockedsend
// rule: blocking channel operations under a mutex (the PR-4 race
// class) alongside the sanctioned non-blocking and unlock-first
// shapes.
package lockedsend

import "sync"

// Box pairs a mutex with a channel, the shape the rule watches.
type Box struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

// SendLocked blocks on a send while holding the mutex: finding.
func (b *Box) SendLocked(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v
}

// CloseLocked closes under the lock without an audit note: finding.
func (b *Box) CloseLocked() {
	b.mu.Lock()
	close(b.ch)
	b.mu.Unlock()
}

// SendAfterUnlock releases first: clean.
func (b *Box) SendAfterUnlock(v int) {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- v
}

// NonBlocking is the sanctioned select-with-default delivery: clean.
func (b *Box) NonBlocking(v int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- v:
		return true
	default:
		return false
	}
}

// RecvLocked blocks on a receive under a read lock: finding.
func (b *Box) RecvLocked() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return <-b.ch
}

// WaitLocked parks on a WaitGroup while holding the mutex: finding.
func (b *Box) WaitLocked(wg *sync.WaitGroup) {
	b.mu.Lock()
	wg.Wait()
	b.mu.Unlock()
}

// BlockingSelect has no default clause, so it can park while holding
// the mutex: one finding on the select itself.
func (b *Box) BlockingSelect(other chan int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		return v
	case v := <-other:
		return v
	}
}
