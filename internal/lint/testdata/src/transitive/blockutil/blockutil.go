// Package blockutil hides blocking channel operations behind call
// frames, so only the engine's may-block summaries can see them from a
// caller holding a mutex.
package blockutil

// Drain blocks on a channel receive.
func Drain(ch chan int) int { return <-ch }

// DrainDeep blocks two frames down.
func DrainDeep(ch chan int) int { return Drain(ch) }

// Poll is non-blocking by construction and must NOT taint callers.
func Poll(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}
