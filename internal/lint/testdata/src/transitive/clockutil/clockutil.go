// Package clockutil is a non-simulation helper package whose functions
// hide wall-clock reads behind one and two call frames. The syntactic
// detclock check never fires here (not a simulation package); the
// interprocedural engine must attribute the taint to simulation-package
// call sites.
package clockutil

import "time"

// HiddenNow reads the wall clock one frame down.
func HiddenNow() int64 { return time.Now().UnixNano() }

// Indirect reaches the wall clock two frames down.
func Indirect() int64 { return HiddenNow() }
