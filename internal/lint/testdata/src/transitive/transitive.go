// The fixture's package clause says netsim, so the detclock and
// lockedsend rules treat it as simulation code; the violations live in
// the imported helper packages, one and two frames down.
package netsim

import (
	"sync"

	"edgecachegroups/internal/lint/testdata/src/transitive/blockutil"
	"edgecachegroups/internal/lint/testdata/src/transitive/clockutil"
)

// stamp reaches time.Now one call level deep.
func stamp() int64 { return clockutil.HiddenNow() }

// deepStamp reaches time.Now two call levels deep.
func deepStamp() int64 { return clockutil.Indirect() }

type box struct {
	mu sync.Mutex
	ch chan int
}

// lockedDrain calls a helper that blocks on a channel receive while
// holding the mutex.
func (b *box) lockedDrain() int {
	b.mu.Lock()
	v := blockutil.Drain(b.ch)
	b.mu.Unlock()
	return v
}

// lockedDeepDrain reaches the blocking receive two frames down.
func (b *box) lockedDeepDrain() int {
	b.mu.Lock()
	v := blockutil.DrainDeep(b.ch)
	b.mu.Unlock()
	return v
}

// lockedPoll calls a non-blocking helper under the lock: clean.
func (b *box) lockedPoll() int {
	b.mu.Lock()
	v, _ := blockutil.Poll(b.ch)
	b.mu.Unlock()
	return v
}

// spawnedDrain starts the blocking helper in its own goroutine: the
// caller's lock is never held across the block, so this is clean.
func (b *box) spawnedDrain() {
	b.mu.Lock()
	go blockutil.Drain(b.ch)
	b.mu.Unlock()
}

// lockedRange ranges over a channel while holding the mutex.
func (b *box) lockedRange() int {
	total := 0
	b.mu.Lock()
	for v := range b.ch {
		total += v
	}
	b.mu.Unlock()
	return total
}
