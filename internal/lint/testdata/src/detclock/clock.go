// Package netsim is a seeded-violation fixture for the detclock rule:
// the package name matches a simulation package, so every wall-clock
// call below must be reported unless annotated.
package netsim

import "time"

// Stamp reads the wall clock: finding.
func Stamp() time.Time {
	return time.Now()
}

// Elapsed measures real elapsed time: finding.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Nap sleeps on the host clock: finding.
func Nap() {
	time.Sleep(time.Millisecond)
}

// Budget is the sanctioned shape: an explicit allow with a reason.
func Budget() time.Time {
	//ecglint:allow detclock fixture: sanctioned wall-clock path
	return time.Now().Add(time.Second)
}
