// Package workload is a seeded-violation fixture for the detrand rule:
// both math/rand generations are imported outside internal/simrand.
package workload

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// Draw uses the global math/rand stream: the import is the finding.
func Draw() int {
	return rand.Int()
}

// DrawV2 uses math/rand/v2: its import is a finding too.
func DrawV2() uint64 {
	return randv2.Uint64()
}

// AdHoc builds a private generator instead of splitting a simrand
// stream; the shared import finding covers this shape as well.
func AdHoc(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
