package lint

import (
	"strconv"
)

// DetRand flags imports of math/rand (and math/rand/v2) anywhere
// outside internal/simrand. Every stochastic component must own an
// explicit *simrand.Source derived from the experiment seed via
// Split/SplitN, so streams are stable and non-overlapping regardless of
// goroutine scheduling; the global math/rand state (or an ad-hoc
// rand.New) reintroduces hidden shared state and worker-count-dependent
// draws.
type DetRand struct{}

func (DetRand) Name() string { return "detrand" }

func (DetRand) Doc() string {
	return "no math/rand outside internal/simrand; derive streams with simrand.Split/SplitN"
}

func (DetRand) Run(pkg *Package) []Finding {
	if pathTail(pkg.Path) == "simrand" || pkg.Types.Name() == "simrand" {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			out = append(out, Finding{
				Pos:     pkg.Fset.Position(imp.Pos()),
				Rule:    "detrand",
				Message: "import of " + path + " outside internal/simrand; derive RNG streams with simrand.Split/SplitN",
			})
		}
	}
	return out
}
