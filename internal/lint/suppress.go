package lint

import (
	"go/token"
	"strconv"
	"strings"
)

const allowPrefix = "//ecglint:allow"

// directive is one parsed //ecglint:allow comment.
type directive struct {
	pos    token.Position
	rule   string
	reason string
	// used flips when the directive suppresses a finding or sanctions a
	// call path during summary construction; directives still unused
	// after the run are reported as stale.
	used bool
}

// suppressions indexes every well-formed allow directive in the loaded
// packages. Analyzers and the summary engine consult it through
// suppressed, which also marks the matched directive used so the audit
// can report suppressions that no longer cover anything.
type suppressions struct {
	dirs []*directive
	// byKey maps file\x00rule\x00line to the directive covering that
	// line: a directive covers its own line and the line directly below.
	byKey map[string]*directive
	// bad holds findings for malformed or unknown-rule directives.
	bad []Finding
}

func suppressKey(file string, line int, rule string) string {
	return file + "\x00" + rule + "\x00" + strconv.Itoa(line)
}

// newSuppressions scans every package's comments for allow directives.
// Malformed directives (missing rule or reason) and directives naming a
// rule no analyzer implements become findings under the "directive"
// pseudo-rule, so a typo cannot silently disable nothing.
func newSuppressions(pkgs []*Package, known map[string]bool) *suppressions {
	s := &suppressions{byKey: make(map[string]*directive)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, allowPrefix)
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue // not a directive (e.g. //ecglint:allowlist prose)
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						s.bad = append(s.bad, Finding{Pos: pos, Rule: "directive",
							Message: "ecglint:allow needs a rule name and a reason"})
					case len(fields) == 1:
						s.bad = append(s.bad, Finding{Pos: pos, Rule: "directive",
							Message: "ecglint:allow " + fields[0] + " needs a reason"})
					case !known[fields[0]]:
						s.bad = append(s.bad, Finding{Pos: pos, Rule: "directive",
							Message: "unknown rule " + fields[0] + " in ecglint:allow"})
					default:
						d := &directive{pos: pos, rule: fields[0],
							reason: strings.Join(fields[1:], " ")}
						s.dirs = append(s.dirs, d)
						s.byKey[suppressKey(pos.Filename, pos.Line, d.rule)] = d
						s.byKey[suppressKey(pos.Filename, pos.Line+1, d.rule)] = d
					}
				}
			}
		}
	}
	return s
}

// suppressed reports whether a finding of rule at pos is covered by a
// directive, marking the directive used. A directive covers a finding
// of its rule when it sits on the finding's line or on the line
// directly above it. Each directive names exactly one rule; a line with
// two different violations needs two directives.
func (s *suppressions) suppressed(pos token.Position, rule string) bool {
	if !pos.IsValid() {
		return false
	}
	d, ok := s.byKey[suppressKey(pos.Filename, pos.Line, rule)]
	if !ok {
		return false
	}
	d.used = true
	return true
}

// filter drops findings covered by a directive, matching either the
// finding's own position or its scope statement (the enclosing range
// loop for maporder).
func (s *suppressions) filter(findings []Finding) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		if s.suppressed(f.Pos, f.Rule) || s.suppressed(f.ScopePos, f.Rule) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// stale returns a finding for every well-formed directive that matched
// nothing during the run: the violation it once excused is gone (or the
// directive drifted off its line), and keeping it would hide a future
// regression without audit.
func (s *suppressions) stale() []Finding {
	var out []Finding
	for _, d := range s.dirs {
		if d.used {
			continue
		}
		out = append(out, Finding{Pos: d.pos, Rule: "directive",
			Message: "stale ecglint:allow " + d.rule + ": no " + d.rule +
				" finding here; remove the directive"})
	}
	return out
}

// allows returns the audit view of every well-formed directive.
func (s *suppressions) allows() []Allow {
	out := make([]Allow, 0, len(s.dirs))
	for _, d := range s.dirs {
		out = append(out, Allow{Pos: d.pos, Rule: d.rule, Reason: d.reason, Stale: !d.used})
	}
	return out
}
