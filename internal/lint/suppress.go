package lint

import (
	"go/token"
	"strconv"
	"strings"
)

const allowPrefix = "//ecglint:allow"

// directive is one parsed //ecglint:allow comment.
type directive struct {
	file string
	line int
	rule string
}

// directives scans pkg's comments for allow directives. Malformed
// directives (missing rule or reason) and directives naming a rule no
// analyzer implements are returned as findings under the "directive"
// pseudo-rule, so a typo cannot silently disable nothing.
func directives(pkg *Package, known map[string]bool) ([]directive, []Finding) {
	var dirs []directive
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue // not a directive (e.g. //ecglint:allowlist prose)
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, Finding{Pos: pos, Rule: "directive",
						Message: "ecglint:allow needs a rule name and a reason"})
				case len(fields) == 1:
					bad = append(bad, Finding{Pos: pos, Rule: "directive",
						Message: "ecglint:allow " + fields[0] + " needs a reason"})
				case !known[fields[0]]:
					bad = append(bad, Finding{Pos: pos, Rule: "directive",
						Message: "unknown rule " + fields[0] + " in ecglint:allow"})
				default:
					dirs = append(dirs, directive{file: pos.Filename, line: pos.Line, rule: fields[0]})
				}
			}
		}
	}
	return dirs, bad
}

// suppress drops findings covered by a directive. A directive covers a
// finding of its rule when it sits on the finding's line, on the line
// directly above it, or in the same positions relative to the finding's
// scope statement (the enclosing range loop for maporder). Each
// directive names exactly one rule; a line with two different
// violations needs two directives.
func suppress(findings []Finding, dirs []directive) []Finding {
	if len(dirs) == 0 {
		return findings
	}
	covered := make(map[string]bool, len(dirs)*2)
	key := func(file string, line int, rule string) string {
		return file + "\x00" + rule + "\x00" + strconv.Itoa(line)
	}
	for _, d := range dirs {
		covered[key(d.file, d.line, d.rule)] = true
		covered[key(d.file, d.line+1, d.rule)] = true
	}
	matches := func(pos token.Position, rule string) bool {
		return pos.IsValid() && covered[key(pos.Filename, pos.Line, rule)]
	}
	kept := findings[:0]
	for _, f := range findings {
		if matches(f.Pos, f.Rule) || matches(f.ScopePos, f.Rule) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
