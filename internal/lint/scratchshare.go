package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ScratchShare flags the shard-scratch lifetime class fixed in PR 6:
// scratch state created outside a par.ForEach/ForEachWorker/
// ForEachChunk body but written inside it without per-worker indexing.
// Two workers then write the same slots concurrently, and which write
// lands last depends on the schedule — exactly the nondeterminism the
// par package's worker/chunk arguments exist to prevent.
//
// Classification of each write target's root variable:
//   - paramDerived: the closure's worker/index parameters, plus locals
//     (transitively) computed from them — `sh := shards[i]` — including
//     range VALUE variables over param-derived expressions. Range KEY
//     variables are deliberately NOT derived: `for j := range xs[i]`
//     repeats the same j sequence in every worker, so scratch[j] is a
//     shared slot (the original bug's shape). Writes here are clean.
//   - captured (or an alias of one): declared outside the closure.
//     Writes are findings unless an index on the access path is itself
//     param-derived (errs[i] = ..., scratch[w][j] = ...).
//   - fresh: allocated inside the closure from whole cloth; clean.
//
// Deliberate cross-worker aggregation (e.g. under a mutex) needs an
// //ecglint:allow scratchshare audit trail.
type ScratchShare struct{}

func (ScratchShare) Name() string { return "scratchshare" }

func (ScratchShare) Doc() string {
	return "no writes to captured state inside par.ForEach bodies without per-worker indexing"
}

func (ScratchShare) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParForEach(pkg, call) || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			out = append(out, scratchCheckBody(pkg, call, lit)...)
			return true
		})
	}
	return out
}

// isParForEach reports whether call invokes one of the par package's
// ForEach* entry points.
func isParForEach(pkg *Package, call *ast.CallExpr) bool {
	fn := calledFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if pathTail(fn.Pkg().Path()) != "par" {
		return false
	}
	name := fn.Name()
	return len(name) >= 7 && name[:7] == "ForEach"
}

// scratchCheckBody classifies every write in the worker closure.
func scratchCheckBody(pkg *Package, call *ast.CallExpr, lit *ast.FuncLit) []Finding {
	body := posRange{lit.Pos(), lit.End()}
	obj := func(id *ast.Ident) types.Object {
		if o := pkg.Info.Defs[id]; o != nil {
			return o
		}
		return pkg.Info.Uses[id]
	}

	paramDerived := make(map[types.Object]bool)
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if o := pkg.Info.Defs[name]; o != nil {
				paramDerived[o] = true
			}
		}
	}
	mentionsDerived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o := pkg.Info.Uses[id]; o != nil && paramDerived[o] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	// Propagate derivation through local definitions to a fixed point
	// (chains like `sh := shards[i]; q := sh.queue` are common).
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for i, l := range v.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					o := obj(id)
					if o == nil || paramDerived[o] || !body.contains(o.Pos()) {
						continue
					}
					var rhs ast.Expr
					if len(v.Lhs) == len(v.Rhs) {
						rhs = v.Rhs[i]
					} else if len(v.Rhs) == 1 {
						rhs = v.Rhs[0]
					}
					if rhs != nil && mentionsDerived(rhs) {
						paramDerived[o] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				// Value var inherits derivation from the ranged expression;
				// the key var does not — its sequence repeats per worker.
				if v.Tok == token.DEFINE && v.Value != nil {
					if id, ok := v.Value.(*ast.Ident); ok && id.Name != "_" {
						if o := obj(id); o != nil && !paramDerived[o] && mentionsDerived(v.X) {
							paramDerived[o] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	// capturedAlias: inside-declared locals that alias captured state
	// (derived from outside variables but not from the worker params).
	capturedAlias := make(map[types.Object]bool)
	isCaptured := func(o types.Object) bool {
		if o == nil || paramDerived[o] {
			return false
		}
		return !body.contains(o.Pos()) || capturedAlias[o]
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			v, ok := n.(*ast.AssignStmt)
			if !ok || v.Tok != token.DEFINE || len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, l := range v.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				o := obj(id)
				if o == nil || paramDerived[o] || capturedAlias[o] || !body.contains(o.Pos()) {
					continue
				}
				if root := rootIdent(v.Rhs[i]); root != nil && isCaptured(pkg.Info.Uses[root]) &&
					isRefType(pkg.Info.TypeOf(v.Rhs[i])) {
					capturedAlias[o] = true
					changed = true
				}
			}
			return true
		})
	}

	parName := "par." + calledFunc(pkg, call).Name()
	var out []Finding
	check := func(target ast.Expr) {
		root := rootIdent(target)
		if root == nil {
			return
		}
		o := pkg.Info.Uses[root]
		if !isCaptured(o) {
			return
		}
		// An index drawn from the worker parameters makes the slot
		// worker-private.
		for e := target; ; {
			switch v := unparen(e).(type) {
			case *ast.IndexExpr:
				if mentionsDerived(v.Index) {
					return
				}
				e = v.X
				continue
			case *ast.SelectorExpr:
				e = v.X
				continue
			case *ast.StarExpr:
				e = v.X
				continue
			}
			break
		}
		out = append(out, Finding{
			Pos:  pkg.Fset.Position(target.Pos()),
			Rule: "scratchshare",
			Message: "write to " + types.ExprString(target) + " inside " + parName +
				" shares " + o.Name() + " across workers without per-worker indexing; " +
				"allocate scratch inside the body or index by the worker argument",
		})
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true
			}
			for _, l := range v.Lhs {
				check(l)
			}
		case *ast.IncDecStmt:
			check(v.X)
		}
		return true
	})
	return out
}
