package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and type-checks the packages selected by patterns,
// resolved relative to root (the module directory, or any directory
// inside it — Load walks up to the nearest go.mod).
//
// Patterns follow the go tool's shape: "./..." walks recursively,
// "./dir" names one package directory. The recursive walk skips
// testdata, vendor, hidden, and underscore-prefixed directories, but a
// pattern whose root is itself inside testdata is honoured — that is
// how the analyzer tests (and the CLI's acceptance check) load the
// seeded-violation fixtures.
//
// Test files (_test.go) are not loaded: the invariants ecglint enforces
// are about simulation and protocol code; tests measure wall time and
// spin goroutines legitimately.
func Load(root string, patterns []string) ([]*Package, error) {
	modRoot, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// One source-mode importer shared across packages: stdlib and
	// module-internal dependencies are type-checked once and cached.
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, &conf, modRoot, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module directory and module path.
func findModule(dir string) (modRoot, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, readErr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if readErr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expand resolves patterns to a sorted, de-duplicated list of package
// directories.
func expand(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(root, pat)
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// skipDir reports whether a recursive walk should descend into name.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// loadDir parses and type-checks the single package in dir, or returns
// (nil, nil) when dir holds no non-test Go files.
func loadDir(fset *token.FileSet, conf *types.Config, modRoot, modPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(modRoot, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
