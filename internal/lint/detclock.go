package lint

import (
	"go/ast"
	"go/types"
)

// DetClock flags wall-clock reads and sleeps inside simulation
// packages. Simulated time must come from the event loop (netsim's
// virtual clock) or be threaded in explicitly; a time.Now or time.Sleep
// in these packages makes results depend on host speed and scheduling,
// which breaks same-seed bit-identical checksums.
//
// The only sanctioned exception is the distributed coordinator's
// RoundBudget path, which deliberately bounds a round by wall time and
// carries //ecglint:allow detclock annotations.
type DetClock struct{}

// simPackages are the packages whose behaviour must be a pure function
// of (inputs, seed). Matching is by final import-path segment and by
// package name, so the testdata fixtures (whose synthetic import paths
// end in the fixture directory name) are classified by their package
// clause like real packages are.
var simPackages = map[string]bool{
	"netsim":      true,
	"cluster":     true,
	"gnp":         true,
	"probe":       true,
	"core":        true,
	"experiments": true,
	"workload":    true,
	"topology":    true,
	"protocol":    true,
	"landmark":    true,
	"vivaldi":     true,
	"simrand":     true,
	"cache":       true,
	"metrics":     true,
	// verify is deliberately absent: its stage-timing instrumentation
	// measures wall time by design and never feeds simulation results.
	// obs is deliberately absent for the same reason: trace spans and
	// the HTTP exposition read the wall clock, but the sink is a pure
	// side channel — simulation packages hand it virtual timestamps and
	// never read anything back from it.
}

// bannedClock are the time-package functions that read the wall clock,
// sleep, or start wall-clock timers.
var bannedClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func (DetClock) Name() string { return "detclock" }

func (DetClock) Doc() string {
	return "no time.Now/Since/Sleep/After in simulation packages; simulated time only"
}

func (DetClock) Run(pkg *Package) []Finding {
	if !simPackages[pathTail(pkg.Path)] && !simPackages[pkg.Types.Name()] {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !bannedClock[sel.Sel.Name] {
				return true
			}
			if !isPackage(pkg, sel.X, "time") {
				return true
			}
			out = append(out, Finding{
				Pos:     pkg.Fset.Position(sel.Pos()),
				Rule:    "detclock",
				Message: "time." + sel.Sel.Name + " in simulation package " + pkg.Types.Name() + "; use simulated time (or annotate a sanctioned wall-clock path)",
			})
			return true
		})
	}
	out = append(out, detClockTransitive(pkg)...)
	return out
}

// detClockTransitive flags calls from this simulation package into
// helpers — however many frames deep — that reach the wall clock. Only
// edges crossing into non-simulation packages are reported: a tainted
// callee inside a simulation package carries its own finding at the
// offending site, so reporting the call too would double-count.
func detClockTransitive(pkg *Package) []Finding {
	if pkg.prog == nil {
		return nil
	}
	var out []Finding
	seen := make(map[string]bool)
	for _, n := range pkg.prog.nodes {
		if n.pkg != pkg {
			continue
		}
		for _, e := range n.edges {
			c := e.callee
			if !c.summary.wallClock || clockExempt(c.pkg) {
				continue
			}
			if simPackages[pathTail(c.pkg.Path)] || simPackages[c.pkg.Types.Name()] {
				continue // reported at the callee's own site
			}
			pos := pkg.Fset.Position(e.call.Pos())
			key := pos.Filename + "\x00" + pos.String()
			if seen[key] {
				continue // interface dispatch can yield several candidates
			}
			seen[key] = true
			out = append(out, Finding{
				Pos:  pos,
				Rule: "detclock",
				Message: "call to " + shortFuncName(c.fn) + " reaches " + pkg.prog.wallWitness(c) +
					" in simulation package " + pkg.Types.Name() + "; use simulated time (or annotate a sanctioned wall-clock path)",
			})
		}
	}
	return out
}

// pathTail returns the final segment of an import path.
func pathTail(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// isPackage reports whether expr is a reference to the package named by
// import path target.
func isPackage(pkg *Package, expr ast.Expr, target string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == target
}
