package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop flags the two ways this codebase has silently lost errors:
//
//  1. A select-with-default send whose payload carries an error field
//     and whose default clause is empty — the pre-fix events-channel
//     bug: when the channel is full the error vanishes with no counter,
//     log line, or eviction. A non-empty default (recording the drop)
//     or a receive from the same channel in the same function (the
//     evict-then-resend idiom the fixed Maintainer.publish uses) is the
//     sanctioned shape.
//  2. `_ =` / `x, _ :=` discards of an error-typed result. Tests are
//     naturally exempt because the loader never parses _test.go files.
type ErrDrop struct{}

func (ErrDrop) Name() string { return "errdrop" }

func (ErrDrop) Doc() string {
	return "no silent drops of error-carrying payloads on full channels, no _ discards of error results"
}

func (ErrDrop) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, errDropSelects(pkg, fd)...)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				out = append(out, errDiscards(pkg, as)...)
			}
			return true
		})
	}
	return out
}

// errDropSelects flags non-blocking sends of error-carrying payloads
// with an empty default clause and no same-channel receive in fd.
func errDropSelects(pkg *Package, fd *ast.FuncDecl) []Finding {
	// Channels this function also receives from (by printed expression):
	// dropping on those is the deliberate evict-then-resend idiom.
	received := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			received[types.ExprString(unparen(u.X))] = true
		}
		return true
	})
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || !selectHasDefault(sel) {
			return true
		}
		var defaultEmpty bool
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				defaultEmpty = len(cc.Body) == 0
			}
		}
		if !defaultEmpty {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			send, ok := cc.Comm.(*ast.SendStmt)
			if !ok {
				continue
			}
			if received[types.ExprString(unparen(send.Chan))] {
				continue // evict-then-resend: the drop is handled
			}
			field, ok := errorField(pkg.Info.TypeOf(send.Value))
			if !ok {
				continue
			}
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(send.Pos()),
				Rule: "errdrop",
				Message: "non-blocking send of a payload carrying error field " + field +
					" with an empty default: the error vanishes when " + types.ExprString(send.Chan) +
					" is full; record the drop or evict-and-resend",
			})
		}
		return true
	})
	return out
}

// errDiscards flags assignments that bind an error-typed result to the
// blank identifier.
func errDiscards(pkg *Package, as *ast.AssignStmt) []Finding {
	// Only the multi-value-call shape (lhs... = f()) and the direct
	// `_ = expr` shape can discard: position-matched tuples.
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	t := pkg.Info.TypeOf(call)
	if t == nil {
		return nil
	}
	callee := "call"
	if fn := calledFunc(pkg, call); fn != nil {
		callee = shortFuncName(fn)
	}
	var out []Finding
	report := func(n ast.Node) {
		out = append(out, Finding{Pos: pkg.Fset.Position(n.Pos()), Rule: "errdrop",
			Message: "error result of " + callee + " discarded with _; handle it or record why it is ignorable"})
	}
	switch rt := t.(type) {
	case *types.Tuple:
		if rt.Len() != len(as.Lhs) {
			return nil
		}
		for i := 0; i < rt.Len(); i++ {
			if !isErrorType(rt.At(i).Type()) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				report(id)
			}
		}
	default:
		if isErrorType(t) && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
				report(id)
			}
		}
	}
	return out
}

// errorField returns the name of the first error-typed field in t
// (through pointers and named types), if any.
func errorField(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isErrorType(st.Field(i).Type()) {
			return st.Field(i).Name(), true
		}
	}
	return "", false
}

// isErrorType reports whether t is the universe error interface (shared
// across type-checking universes, so identity comparison is sound).
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
