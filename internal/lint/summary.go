package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// summary is the transitive fact set computed for each function node.
// Facts are seeded from the function's own body ("base facts") and then
// propagated over call edges to a fixed point, so recursion cycles
// converge and a fact buried arbitrarily deep in the call graph is
// visible at every caller.
type summary struct {
	// wallClock: the function (or a transitive callee) reads the wall
	// clock, sleeps, or starts a wall-clock timer. Base facts at sites
	// carrying an //ecglint:allow detclock directive are excluded: the
	// annotation sanctions the whole path through the function.
	wallClock bool
	wallVia   string // direct witness ("time.Now"), "" when propagated
	// blocks: the function (or a transitive callee reached outside any
	// function literal or go statement) can park on a channel operation,
	// a select without default, or a sync.WaitGroup/Cond wait.
	blocks   bool
	blockVia string
	// spawnsGoroutine: the function (or a transitive callee) starts a
	// goroutine.
	spawnsGoroutine bool
	// returnsAtomic: the function returns a value loaded from (or
	// swapped out of) an atomic.Pointer/atomic.Value publish site.
	returnsAtomic bool
	// mutates records, receiver first, which parameters the function
	// writes through in a caller-visible way (pointer dereference, or an
	// index into slice/map backing storage), directly or transitively.
	mutates []bool
}

// clockExemptPackages are never wall-clock tainted: their wall-clock use
// is a deliberate side channel (stage timing, trace spans) that
// simulation results never read back. Matching mirrors simPackages.
var clockExemptPackages = map[string]bool{
	"verify": true,
	"obs":    true,
}

func clockExempt(pkg *Package) bool {
	return clockExemptPackages[pathTail(pkg.Path)] || clockExemptPackages[pkg.Types.Name()]
}

// collectBaseFacts seeds n's summary from its own body.
func (p *program) collectBaseFacts(n *funcNode) {
	n.params = make(map[types.Object]int)
	sig := n.fn.Type().(*types.Signature)
	pos := 0
	if recv := sig.Recv(); recv != nil {
		n.params[recv] = pos
		pos++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		n.params[sig.Params().At(i)] = pos
		pos++
	}
	n.summary.mutates = make([]bool, pos)

	// Source intervals that change how an operation is classified.
	var lits, gos, nbSelects []posRange
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			lits = append(lits, posRange{v.Pos(), v.End()})
		case *ast.GoStmt:
			gos = append(gos, posRange{v.Pos(), v.End()})
		case *ast.SelectStmt:
			if selectHasDefault(v) {
				nbSelects = append(nbSelects, posRange{v.Pos(), v.End()})
			}
		}
		return true
	})
	// offStack: the op runs outside the caller's synchronous frame
	// (inside a closure or a spawned goroutine), so it cannot block the
	// caller. nonBlocking: inside a select with a default clause.
	offStack := func(pos token.Pos) bool { return inAny(lits, pos) || inAny(gos, pos) }
	nonBlocking := func(pos token.Pos) bool { return inAny(nbSelects, pos) }

	setBlocks := func(node ast.Node, via string) {
		if n.summary.blocks {
			return
		}
		if p.sup != nil && p.sup.suppressed(n.pkg.Fset.Position(node.Pos()), "lockedsend") {
			return
		}
		n.summary.blocks = true
		n.summary.blockVia = via
	}

	loaded := make(map[types.Object]bool) // vars holding atomic-load results

	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.SelectorExpr:
			if bannedClock[v.Sel.Name] && isPackage(n.pkg, v.X, "time") && !clockExempt(n.pkg) {
				if p.sup == nil || !p.sup.suppressed(n.pkg.Fset.Position(v.Pos()), "detclock") {
					if !n.summary.wallClock {
						n.summary.wallClock = true
						n.summary.wallVia = "time." + v.Sel.Name
					}
				}
			}
		case *ast.SendStmt:
			if !offStack(v.Pos()) && !nonBlocking(v.Pos()) {
				setBlocks(v, "channel send")
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && !offStack(v.Pos()) && !nonBlocking(v.Pos()) {
				setBlocks(v, "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(v) && !offStack(v.Pos()) && !nonBlocking(v.Pos()) {
				setBlocks(v, "blocking select")
			}
		case *ast.RangeStmt:
			if isChanType(n.pkg.Info.TypeOf(v.X)) && !offStack(v.Pos()) {
				setBlocks(v, "range over channel")
			}
		case *ast.GoStmt:
			if !inAny(lits, v.Pos()) {
				n.summary.spawnsGoroutine = true
			}
		case *ast.CallExpr:
			if fn := calledFunc(n.pkg, v); fn != nil && blockingWaits[fn.FullName()] {
				if !offStack(v.Pos()) {
					setBlocks(v, fn.FullName())
				}
			}
		case *ast.AssignStmt:
			p.recordMutations(n, v.Lhs)
			// Track vars defined from an atomic load for returnsAtomic.
			if len(v.Lhs) == len(v.Rhs) {
				for i, rhs := range v.Rhs {
					if id, ok := v.Lhs[i].(*ast.Ident); ok && isAtomicLoad(n.pkg, rhs) {
						if obj := n.pkg.Info.Defs[id]; obj != nil {
							loaded[obj] = true
						} else if obj := n.pkg.Info.Uses[id]; obj != nil {
							loaded[obj] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			p.recordMutations(n, []ast.Expr{v.X})
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if isAtomicLoad(n.pkg, res) {
					n.summary.returnsAtomic = true
					continue
				}
				if id, ok := unparen(res).(*ast.Ident); ok {
					if obj := n.pkg.Info.Uses[id]; obj != nil && loaded[obj] {
						n.summary.returnsAtomic = true
					}
					continue
				}
				if call, ok := unparen(res).(*ast.CallExpr); ok {
					n.retCallees = append(n.retCallees, p.resolve(n.pkg, call)...)
				}
			}
		}
		return true
	})
}

// recordMutations marks receiver/parameter positions written through in
// a caller-visible way by the assignment targets lhs: the root of the
// target chain is a parameter, the target is not the bare parameter
// variable itself, and the chain passes through a pointer dereference or
// an index into slice/map backing storage (a plain field write on a
// value receiver mutates only the callee's copy and is ignored).
func (p *program) recordMutations(n *funcNode, lhs []ast.Expr) {
	for _, l := range lhs {
		root := rootIdent(l)
		if root == nil {
			continue
		}
		obj := n.pkg.Info.Uses[root]
		if obj == nil {
			continue
		}
		idx, isParam := n.params[obj]
		if !isParam {
			continue
		}
		if _, bare := unparen(l).(*ast.Ident); bare {
			continue // reassigning the parameter variable: callee-local
		}
		if callerVisibleWrite(n.pkg, l, obj) {
			n.summary.mutates[idx] = true
		}
	}
}

// callerVisibleWrite reports whether writing through target mutates
// storage the caller can observe: the chain from the parameter root
// passes through a pointer (explicit *p or an implicit pointer-typed
// prefix) or indexes into a slice or map.
func callerVisibleWrite(pkg *Package, target ast.Expr, param types.Object) bool {
	for e := target; ; {
		switch v := unparen(e).(type) {
		case *ast.Ident:
			return false // chain exhausted without crossing a pointer/index
		case *ast.StarExpr:
			return true
		case *ast.SelectorExpr:
			if t := pkg.Info.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					return true
				}
			}
			e = v.X
		case *ast.IndexExpr:
			if t := pkg.Info.TypeOf(v.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					return true
				}
			}
			e = v.X
		default:
			return false
		}
	}
}

// isRefType reports whether t shares backing storage when copied.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// atomicPublishTypes are the sync/atomic types whose Load/Store/Swap
// sites publish values that must be treated as immutable afterwards.
var atomicPublishTypes = map[string]bool{"Pointer": true, "Value": true}

// atomicPublishRecv reports whether expr is an atomic.Pointer[T] or
// atomic.Value (possibly through a pointer), the receiver shape of a
// publish site.
func atomicPublishRecv(pkg *Package, expr ast.Expr) bool {
	t := pkg.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" &&
		atomicPublishTypes[obj.Name()]
}

// isAtomicLoad reports whether expr is (or unwraps to) a call that reads
// a published value out of an atomic.Pointer/Value: h.Load() or
// h.Swap(x), possibly behind selectors, indexes, or a type assertion
// (box.Load().(*T)).
func isAtomicLoad(pkg *Package, expr ast.Expr) bool {
	for {
		switch v := unparen(expr).(type) {
		case *ast.CallExpr:
			sel, ok := unparen(v.Fun).(*ast.SelectorExpr)
			if !ok {
				return false
			}
			if (sel.Sel.Name == "Load" || sel.Sel.Name == "Swap") && atomicPublishRecv(pkg, sel.X) {
				return true
			}
			return false
		case *ast.SelectorExpr:
			expr = v.X
		case *ast.IndexExpr:
			expr = v.X
		case *ast.TypeAssertExpr:
			expr = v.X
		default:
			return false
		}
	}
}

// propagate closes the summaries over the call graph (fixed point, so
// mutual recursion converges: facts only ever switch from false to
// true, bounding the iteration count).
func (p *program) propagate() {
	for changed := true; changed; {
		changed = false
		for _, n := range p.nodes {
			for _, e := range n.edges {
				c := e.callee
				if !n.summary.wallClock && !clockExempt(n.pkg) &&
					c.summary.wallClock && !clockExempt(c.pkg) {
					n.summary.wallClock = true
					changed = true
				}
				if !n.summary.blocks && !e.inFuncLit && !e.inGo && c.summary.blocks {
					// A suppressed call site sanctions the transitive path.
					if p.sup == nil || !p.sup.suppressed(n.pkg.Fset.Position(e.call.Pos()), "lockedsend") {
						n.summary.blocks = true
						changed = true
					}
				}
				if !n.summary.spawnsGoroutine && !e.inFuncLit && c.summary.spawnsGoroutine {
					n.summary.spawnsGoroutine = true
					changed = true
				}
				if p.propagateMutates(n, e) {
					changed = true
				}
			}
			if !n.summary.returnsAtomic {
				for _, c := range n.retCallees {
					if c.summary.returnsAtomic {
						n.summary.returnsAtomic = true
						changed = true
						break
					}
				}
			}
		}
	}
}

// propagateMutates maps e's arguments onto n's parameters: passing a
// parameter (bare identifier) into a callee position the callee mutates
// makes n mutate that parameter too. Receiver args map to the callee's
// receiver position; variadic overflow maps onto the variadic slot.
func (p *program) propagateMutates(n *funcNode, e callEdge) bool {
	g := e.callee
	if len(g.summary.mutates) == 0 {
		return false
	}
	changed := false
	mark := func(argExpr ast.Expr, gpos int) {
		if gpos >= len(g.summary.mutates) {
			gpos = len(g.summary.mutates) - 1 // variadic overflow
		}
		if gpos < 0 || !g.summary.mutates[gpos] {
			return
		}
		id, ok := unparen(argExpr).(*ast.Ident)
		if !ok {
			return
		}
		obj := n.pkg.Info.Uses[id]
		if obj == nil {
			return
		}
		if npos, ok := n.params[obj]; ok && !n.summary.mutates[npos] {
			n.summary.mutates[npos] = true
			changed = true
		}
	}
	off := 0
	recv := g.fn.Type().(*types.Signature).Recv()
	if recv != nil {
		off = 1
		if sel, ok := unparen(e.call.Fun).(*ast.SelectorExpr); ok {
			mark(sel.X, 0)
		}
	}
	for i, arg := range e.call.Args {
		mark(arg, i+off)
	}
	return changed
}

// mutatesArg reports whether calling n with a value at callee position
// pos (receiver first) writes through it in a caller-visible way.
func (n *funcNode) mutatesArg(pos int) bool {
	if pos >= len(n.summary.mutates) {
		pos = len(n.summary.mutates) - 1
	}
	return pos >= 0 && n.summary.mutates[pos]
}

// wallWitness renders a deterministic example path from n to a
// wall-clock read, for findings ("a.Helper → time.Now").
func (p *program) wallWitness(n *funcNode) string {
	return p.witness(n, p.wallMemo, make(map[*funcNode]bool),
		func(s *summary) (bool, string) { return s.wallClock, s.wallVia },
		func(c *funcNode) bool { return c.summary.wallClock && !clockExempt(c.pkg) })
}

// blockWitness renders a deterministic example path from n to a
// blocking operation.
func (p *program) blockWitness(n *funcNode) string {
	return p.witness(n, p.blockMemo, make(map[*funcNode]bool),
		func(s *summary) (bool, string) { return s.blocks, s.blockVia },
		func(c *funcNode) bool { return c.summary.blocks })
}

// witness walks tainted edges in deterministic (source) order, memoized,
// cutting cycles by skipping in-progress nodes.
func (p *program) witness(n *funcNode, memo map[*funcNode]string, busy map[*funcNode]bool,
	direct func(*summary) (bool, string), tainted func(*funcNode) bool) string {
	if got, ok := memo[n]; ok {
		return got
	}
	if _, via := direct(&n.summary); via != "" {
		memo[n] = via
		return via
	}
	busy[n] = true
	defer delete(busy, n)
	for _, e := range n.edges {
		c := e.callee
		if !tainted(c) || busy[c] {
			continue
		}
		via := shortFuncName(c.fn) + " → " + p.witness(c, memo, busy, direct, tainted)
		memo[n] = via
		return via
	}
	return shortFuncName(n.fn)
}
