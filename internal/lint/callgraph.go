package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the interprocedural layer the v2 analyzers run on: a
// static call graph over every function and method declared in the
// loaded packages, with method-set resolution for concrete receiver
// types and name-based resolution for interface dispatch. The graph is
// keyed by types.Func.FullName() rather than object identity because
// the loader type-checks each package directory independently: the
// *types.Func a caller resolves through go/importer's source mode is a
// different object from the one created when the callee's own package
// was loaded, but both render the same full name.
//
// Soundness limits (documented in DESIGN.md §9): calls through function
// values (fields, parameters, variables) produce no edge; interface
// dispatch is resolved by method-name sets, which over-approximates the
// implementing types (fine for taint propagation); the standard library
// is opaque except for the known root sets (time.* wall-clock reads,
// sync blocking waits).

// program is the whole-run analysis state shared by every analyzer: the
// packages under analysis, the interprocedural call graph over their
// declared functions, and the transitive summaries computed from it.
type program struct {
	pkgs []*Package
	sup  *suppressions
	// funcs indexes every declared function/method by FullName.
	funcs map[string]*funcNode
	// nodes holds the same set in deterministic (package, position) order.
	nodes []*funcNode
	// methodsByName indexes declared methods for interface dispatch.
	methodsByName map[string][]*funcNode
	// recvNames caches the method-name set of each receiver base type.
	recvNames map[*types.Named]map[string]bool
	// witness memos (computed post-fixpoint, deterministic edge order).
	wallMemo  map[*funcNode]string
	blockMemo map[*funcNode]string
}

// funcNode is one declared function or method with a body, plus its
// outgoing call edges and computed transitive summary.
type funcNode struct {
	name    string // types.Func.FullName()
	fn      *types.Func
	pkg     *Package
	decl    *ast.FuncDecl
	edges   []callEdge
	summary summary
	// params maps receiver+parameter objects to their summary position
	// (receiver first), for mutates-parameter propagation.
	params map[types.Object]int
	// retCallees are resolved callees whose result this function returns
	// directly, for returns-atomic-load propagation.
	retCallees []*funcNode
}

// callEdge is one static call site inside a function's body.
type callEdge struct {
	callee *funcNode
	call   *ast.CallExpr
	// inFuncLit: the call sits inside a nested function literal, whose
	// execution context (goroutine, defer, callback) is not the caller's.
	inFuncLit bool
	// inGo: the call is spawned by a go statement.
	inGo bool
}

// newProgram builds the call graph and summaries over pkgs and installs
// a back-pointer on every package so analyzers can reach the engine.
func newProgram(pkgs []*Package, sup *suppressions) *program {
	p := &program{
		pkgs:          pkgs,
		sup:           sup,
		funcs:         make(map[string]*funcNode),
		methodsByName: make(map[string][]*funcNode),
		recvNames:     make(map[*types.Named]map[string]bool),
		wallMemo:      make(map[*funcNode]string),
		blockMemo:     make(map[*funcNode]string),
	}
	for _, pkg := range pkgs {
		pkg.prog = p
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{name: fn.FullName(), fn: fn, pkg: pkg, decl: fd}
				p.funcs[n.name] = n
				p.nodes = append(p.nodes, n)
				if fd.Recv != nil {
					p.methodsByName[fn.Name()] = append(p.methodsByName[fn.Name()], n)
				}
			}
		}
	}
	for _, n := range p.nodes {
		p.collectEdges(n)
		p.collectBaseFacts(n)
	}
	p.propagate()
	return p
}

// node returns the graph node for a resolved function, or nil.
func (p *program) node(fn *types.Func) *funcNode {
	if fn == nil {
		return nil
	}
	return p.funcs[fn.FullName()]
}

// posRange is a half-open source interval used to classify call sites.
type posRange struct{ lo, hi token.Pos }

func (r posRange) contains(pos token.Pos) bool { return pos > r.lo && pos < r.hi }

func inAny(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if r.contains(pos) {
			return true
		}
	}
	return false
}

// collectEdges records every statically resolvable call in n's body,
// flagging calls nested in function literals or go statements.
func (p *program) collectEdges(n *funcNode) {
	var lits, gos []posRange
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			lits = append(lits, posRange{v.Pos(), v.End()})
		case *ast.GoStmt:
			gos = append(gos, posRange{v.Pos(), v.End()})
		}
		return true
	})
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, callee := range p.resolve(n.pkg, call) {
			n.edges = append(n.edges, callEdge{
				callee:    callee,
				call:      call,
				inFuncLit: inAny(lits, call.Pos()),
				inGo:      inAny(gos, call.Pos()),
			})
		}
		return true
	})
}

// resolve maps a call expression to its candidate callee nodes: one node
// for a direct function or concrete-method call, every name-compatible
// declared method for an interface-dispatch call, nil for calls through
// function values or to functions outside the loaded packages.
func (p *program) resolve(pkg *Package, call *ast.CallExpr) []*funcNode {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if n := p.node(fn); n != nil {
				return []*funcNode{n}
			}
		}
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return p.dispatch(iface, fn.Name())
			}
		}
		if n := p.node(fn); n != nil {
			return []*funcNode{n}
		}
	}
	return nil
}

// dispatch returns the declared methods a call through iface's method
// named method could reach: every loaded concrete method of that name
// whose receiver type's method-name set covers the interface. Matching
// is by name, not full signatures, because the interface and the
// concrete type may have been type-checked in different universes (see
// the file comment); the over-approximation only ever adds edges.
func (p *program) dispatch(iface *types.Interface, method string) []*funcNode {
	want := make([]string, 0, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		want = append(want, iface.Method(i).Name())
	}
	var out []*funcNode
	for _, cand := range p.methodsByName[method] {
		names := p.receiverMethodNames(cand)
		if names == nil {
			continue
		}
		ok := true
		for _, w := range want {
			if !names[w] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, cand)
		}
	}
	return out
}

// receiverMethodNames returns the method-name set of node's receiver
// base type (through a pointer receiver, so value methods count too).
func (p *program) receiverMethodNames(n *funcNode) map[string]bool {
	recv := n.fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if names, ok := p.recvNames[named]; ok {
		return names
	}
	names := make(map[string]bool)
	mset := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < mset.Len(); i++ {
		names[mset.At(i).Obj().Name()] = true
	}
	p.recvNames[named] = names
	return names
}

// shortFuncName renders a function for findings: package-qualified with
// the import path shortened to its final segment.
func shortFuncName(fn *types.Func) string {
	full := fn.FullName()
	if pkg := fn.Pkg(); pkg != nil {
		path := pkg.Path()
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			full = strings.ReplaceAll(full, path, path[i+1:])
		}
	}
	return full
}

// sortFindings orders findings by (file, line, column, rule).
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
