package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags statements inside a `range` over a map whose effect
// depends on Go's randomized iteration order. Three shapes are caught:
//
//   - appending to a slice declared outside the loop, unless the slice
//     is passed to a sort.* / slices.* call later in the same function
//     (the collect-keys-then-sort idiom);
//   - compound accumulation (+=, -=, *=, /=) of a float or string into
//     an outer target — float addition is not associative and string
//     concatenation is not commutative, so even "sum over all entries"
//     differs between orders;
//   - plain assignment to outer state (a variable, struct field, or
//     loop-invariant index) whose value derives from the loop — the
//     classic last-writer-wins / argmax-with-ties nondeterminism.
//
// Keyed writes (out[k] = v, sizes[g] = len(members)) are deterministic
// regardless of order and are not flagged. Findings carry the range
// statement as their scope, so one //ecglint:allow maporder directive
// on the loop covers every finding inside it.
type MapOrder struct{}

func (MapOrder) Name() string { return "maporder" }

func (MapOrder) Doc() string {
	return "no order-dependent appends/accumulation/writes inside range over a map"
}

func (MapOrder) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(pkg, rs) {
					return true
				}
				out = append(out, checkMapRange(pkg, fd.Body, rs)...)
				return true
			})
		}
	}
	return out
}

// isMapRange reports whether rs iterates a map.
func isMapRange(pkg *Package, rs *ast.RangeStmt) bool {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange analyzes one map-range body. fnBody is the enclosing
// function body, used to look for sorts after the loop.
func checkMapRange(pkg *Package, fnBody *ast.BlockStmt, rs *ast.RangeStmt) []Finding {
	scope := pkg.Fset.Position(rs.Pos())
	state := loopState(pkg, rs)
	tainted := func(e ast.Expr) bool { return refersTo(pkg, e, state) }

	var out []Finding
	report := func(n ast.Node, msg string) {
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(n.Pos()),
			ScopePos: scope,
			Rule:     "maporder",
			Message:  msg,
		})
	}

	walkSkippingFuncLits(rs.Body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			obj := outerTarget(pkg, rs, lhs)
			if obj == nil {
				continue
			}
			var rhs ast.Expr
			if i < len(as.Rhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0] // multi-value form x, y = f()
			}
			switch as.Tok {
			case token.ASSIGN:
				if rhs != nil && isAppendTo(pkg, rhs, obj) {
					if !sortedAfter(pkg, fnBody, rs, obj) {
						report(as, "append to "+obj.Name()+" inside range over map without a later sort; sort it or iterate sorted keys")
					}
					continue
				}
				checkPlainAssign(pkg, rs, as, lhs, rhs, obj, tainted, report)
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if keyedIndex(pkg, lhs, state) {
					continue // acc[k] += v accumulates per key: deterministic
				}
				if t := pkg.Info.TypeOf(lhs); isOrderSensitive(t) {
					report(as, "order-dependent accumulation into "+obj.Name()+" ("+t.String()+") inside range over map; iterate sorted keys")
				}
			}
		}
	})
	return out
}

// checkPlainAssign handles `=` writes to outer state.
func checkPlainAssign(pkg *Package, rs *ast.RangeStmt, as *ast.AssignStmt, lhs, rhs ast.Expr, obj types.Object, tainted func(ast.Expr) bool, report func(ast.Node, string)) {
	if rhs == nil {
		return
	}
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if refersTo(pkg, rhs, map[types.Object]bool{obj: true}) {
			// Accumulation spelled out: x = x + e. Only non-associative
			// element types are order-dependent.
			if t := pkg.Info.TypeOf(lhs); isOrderSensitive(t) {
				report(as, "order-dependent accumulation into "+obj.Name()+" inside range over map; iterate sorted keys")
			}
			return
		}
		if tainted(rhs) {
			report(as, "iteration-order-dependent write to "+obj.Name()+" inside range over map (last writer wins); iterate sorted keys")
		}
	case *ast.SelectorExpr:
		if tainted(rhs) {
			report(as, "write to outer field "+types.ExprString(l)+" inside range over map depends on iteration order; iterate sorted keys")
		}
	case *ast.IndexExpr:
		if tainted(l.Index) {
			return // keyed write: out[k] = ... is deterministic
		}
		if tainted(rhs) {
			report(as, "write to "+types.ExprString(l)+" with loop-invariant index inside range over map (last writer wins); iterate sorted keys")
		}
	case *ast.StarExpr:
		if tainted(rhs) {
			report(as, "write through outer pointer "+types.ExprString(l)+" inside range over map depends on iteration order; iterate sorted keys")
		}
	}
}

// loopState collects the objects whose values vary with the iteration:
// the range key/value variables plus everything declared inside the
// loop body (a body-local is conservatively assumed key-derived).
func loopState(pkg *Package, rs *ast.RangeStmt) map[types.Object]bool {
	state := make(map[types.Object]bool)
	addIdent := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			state[obj] = true
		} else if obj := pkg.Info.Uses[id]; obj != nil {
			state[obj] = true
		}
	}
	if rs.Key != nil {
		addIdent(rs.Key)
	}
	if rs.Value != nil {
		addIdent(rs.Value)
	}
	walkSkippingFuncLits(rs.Body, func(n ast.Node) {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				state[obj] = true
			}
		}
	})
	return state
}

// outerTarget resolves lhs to the root object it writes through and
// returns it when that object is declared outside the range statement;
// writes to loop-local state cannot leak iteration order.
func outerTarget(pkg *Package, rs *ast.RangeStmt, lhs ast.Expr) types.Object {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return nil
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil || obj.Pos() == token.NoPos {
		return nil
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
		return nil // declared by or inside the loop
	}
	return obj
}

// rootIdent unwraps selectors, indexes, stars, and parens down to the
// base identifier being written through.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isAppendTo reports whether rhs is append(target, ...) growing obj.
func isAppendTo(pkg *Package, rhs ast.Expr, obj types.Object) bool {
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pkg.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	first := rootIdent(call.Args[0])
	return first != nil && (pkg.Info.Uses[first] == obj || pkg.Info.Defs[first] == obj)
}

// sortedAfter reports whether obj is passed to a sort.* or slices.*
// call positioned after the range statement in the same function body —
// the collect-then-sort idiom that makes the append order irrelevant.
func sortedAfter(pkg *Package, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isPackage(pkg, sel.X, "sort") && !isPackage(pkg, sel.X, "slices") {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(pkg, arg, map[types.Object]bool{obj: true}) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// keyedIndex reports whether lhs is an index expression whose index
// derives from the loop state (out[k], acc[key.Field], ...).
func keyedIndex(pkg *Package, lhs ast.Expr, state map[types.Object]bool) bool {
	ix, ok := unparen(lhs).(*ast.IndexExpr)
	return ok && refersTo(pkg, ix.Index, state)
}

// isOrderSensitive reports whether repeated accumulation over t is
// sensitive to operand order: floats (non-associative rounding),
// complexes, and strings (concatenation).
func isOrderSensitive(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// refersTo reports whether expr mentions any object in set.
func refersTo(pkg *Package, expr ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pkg.Info.Uses[id]; obj != nil && set[obj] {
			found = true
		}
		return !found
	})
	return found
}

// walkSkippingFuncLits visits every node under root except function
// literal bodies, whose execution context (goroutine, defer, callback)
// is not the loop's.
func walkSkippingFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
