package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockedSend flags channel operations and known-blocking calls made
// while a sync.Mutex or sync.RWMutex is held — the PR-4 race class: a
// blocking send under a lock deadlocks against any other path that
// needs the same lock to drain the channel, and an unsynchronized
// send/Close pair panics. Non-blocking sends (a select with a default
// clause) are allowed; that is exactly the shape the fixed transport
// uses to deliver mailbox messages under its mutex. A close() under a
// lock is flagged too: it is only sound when every send path also runs
// under that lock, which deserves an explicit //ecglint:allow audit
// trail at the close site.
type LockedSend struct{}

func (LockedSend) Name() string { return "lockedsend" }

func (LockedSend) Doc() string {
	return "no channel send/receive/close or blocking wait while holding a sync (RW)Mutex"
}

// lockMethods maps the fully-qualified sync locking methods to whether
// they acquire (true) or release (false).
var lockMethods = map[string]bool{
	"(*sync.Mutex).Lock":      true,
	"(*sync.Mutex).Unlock":    false,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).Unlock":  false,
	"(*sync.RWMutex).RLock":   true,
	"(*sync.RWMutex).RUnlock": false,
}

// blockingWaits are non-channel calls that block until another
// goroutine acts; holding a lock across them invites deadlock.
var blockingWaits = map[string]bool{
	"(*sync.WaitGroup).Wait": true,
	"(*sync.Cond).Wait":      true,
}

func (LockedSend) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, scanLockRegions(pkg, body.List)...)
			}
			return true
		})
	}
	return out
}

// scanLockRegions walks a statement list looking for X.Lock() calls and
// checks every statement between the Lock and its matching same-level
// Unlock (or, for `defer X.Unlock()`, the rest of the list) for
// blocking operations. Statement lists nested inside the region are
// covered by the region check itself; lists outside any region recurse.
func scanLockRegions(pkg *Package, stmts []ast.Stmt) []Finding {
	var out []Finding
	for i := 0; i < len(stmts); i++ {
		lockExpr, acquired := lockCall(pkg, stmts[i])
		if !acquired {
			// Not a region start here; recurse into nested lists.
			for _, nested := range nestedLists(stmts[i]) {
				out = append(out, scanLockRegions(pkg, nested)...)
			}
			continue
		}
		scopePos := pkg.Fset.Position(stmts[i].Pos())
		end := len(stmts)
		for j := i + 1; j < len(stmts); j++ {
			if rel, ok := unlockCall(pkg, stmts[j]); ok && rel == lockExpr {
				end = j
				break
			}
		}
		for j := i + 1; j < end; j++ {
			out = append(out, checkRegionStmt(pkg, stmts[j], lockExpr, scopePos)...)
		}
		i = end // resume after the Unlock (or at list end)
	}
	return out
}

// lockCall reports whether stmt is `X.Lock()` / `X.RLock()` on a sync
// mutex, returning the printed lock expression.
func lockCall(pkg *Package, stmt ast.Stmt) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	return syncLockOp(pkg, es.X, true)
}

// unlockCall reports whether stmt releases a sync mutex, either
// directly or via defer (a deferred unlock means the lock is held for
// the rest of the enclosing list, so it never terminates a region).
func unlockCall(pkg *Package, stmt ast.Stmt) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	expr, ok := syncLockOp(pkg, es.X, false)
	return expr, ok
}

// syncLockOp matches call against the sync lock/unlock method set.
func syncLockOp(pkg *Package, expr ast.Expr, wantAcquire bool) (string, bool) {
	call, ok := unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	acquire, known := lockMethods[fn.FullName()]
	if !known || acquire != wantAcquire {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// nestedLists returns the statement lists directly nested in stmt
// (if/else bodies, loop bodies, switch and select clauses) so region
// scanning can recurse outside lock regions.
func nestedLists(stmt ast.Stmt) [][]ast.Stmt {
	var lists [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		lists = append(lists, s.List)
	case *ast.IfStmt:
		lists = append(lists, s.Body.List)
		if s.Else != nil {
			lists = append(lists, nestedLists(s.Else)...)
		}
	case *ast.ForStmt:
		lists = append(lists, s.Body.List)
	case *ast.RangeStmt:
		lists = append(lists, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lists = append(lists, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lists = append(lists, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lists = append(lists, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		lists = append(lists, nestedLists(s.Stmt)...)
	}
	return lists
}

// checkRegionStmt reports blocking operations anywhere under stmt,
// which executes while lockExpr is held. Function literals are skipped
// (they run in their own context); selects with a default clause are
// non-blocking by construction and are skipped whole.
func checkRegionStmt(pkg *Package, stmt ast.Stmt, lockExpr string, scopePos token.Position) []Finding {
	var out []Finding
	report := func(n ast.Node, msg string) {
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(n.Pos()),
			ScopePos: scopePos,
			Rule:     "lockedsend",
			Message:  msg + " while holding " + lockExpr,
		})
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false // spawned goroutine does not hold the caller's lock
		case *ast.SelectStmt:
			if selectHasDefault(v) {
				return false // non-blocking by construction
			}
			report(v, "blocking select over channels")
			return false
		case *ast.SendStmt:
			report(v, "channel send "+types.ExprString(v.Chan)+" <- ...")
		case *ast.RangeStmt:
			if isChanType(pkg.Info.TypeOf(v.X)) {
				report(v, "range over channel "+types.ExprString(v.X))
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				report(v, "channel receive <-"+types.ExprString(v.X))
			}
		case *ast.CallExpr:
			if isCloseOfChannel(pkg, v) {
				report(v, "close("+types.ExprString(v.Args[0])+")")
			} else if fn := calledFunc(pkg, v); fn != nil && blockingWaits[fn.FullName()] {
				report(v, fn.FullName())
			} else if callee := blockingCallee(pkg, v); callee != nil {
				report(v, "call to "+shortFuncName(callee.fn)+" which may block ("+
					pkg.prog.blockWitness(callee)+")")
			}
		}
		return true
	})
	return out
}

// blockingCallee resolves call through the interprocedural engine and
// returns the first candidate callee whose transitive summary says it
// can block, or nil. Candidates come back in deterministic declaration
// order, so the witness chain is stable across runs.
func blockingCallee(pkg *Package, call *ast.CallExpr) *funcNode {
	if pkg.prog == nil {
		return nil
	}
	for _, cand := range pkg.prog.resolve(pkg, call) {
		if cand.summary.blocks {
			return cand
		}
	}
	return nil
}

// selectHasDefault reports whether sel has a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isCloseOfChannel reports whether call is the builtin close on a
// channel-typed argument.
func isCloseOfChannel(pkg *Package, call *ast.CallExpr) bool {
	fn, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "close" || len(call.Args) != 1 {
		return false
	}
	if b, ok := pkg.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "close" {
		return false
	}
	t := pkg.Info.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// calledFunc resolves the method or function a call invokes.
func calledFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}
