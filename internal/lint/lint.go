// Package lint implements ecglint, the repo's custom static-analysis
// suite. The analyzers encode the determinism and concurrency invariants
// the reproduction depends on — same-seed bit-identical Plan/Report
// checksums at any parallelism, and schedule-independent protocol
// counters under fault injection — so that the bug classes we have
// already shipped and fixed dynamically (wall clock leaking into
// simulation paths, global math/rand use, map-iteration order feeding
// accumulators, channel operations while holding a mutex) are caught at
// build time instead of waiting for a seed to expose them.
//
// The suite is built only on go/parser, go/types, and go/importer, so
// go.mod stays dependency-free. Findings can be suppressed with an
// explicit, audited directive:
//
//	//ecglint:allow <rule> <reason>
//
// placed on the offending line, on the line directly above it, or — for
// findings inside a loop — on the enclosing range statement.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Pos locates the offending expression or statement.
	Pos token.Position
	// ScopePos, when set, locates an enclosing statement (e.g. the range
	// statement a maporder finding sits inside). An allow directive at
	// the scope suppresses every finding of the rule within it.
	ScopePos token.Position
	Rule     string
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// prog is the interprocedural engine built over the whole run's
	// package set; Run installs it before analyzers execute.
	prog *program
}

// Allow is the audit view of one //ecglint:allow directive.
type Allow struct {
	Pos    token.Position
	Rule   string
	Reason string
	// Stale: the directive matched no finding or sanctioned call path
	// during the run.
	Stale bool
}

// Analyzer is a single lint rule.
type Analyzer interface {
	// Name is the rule id used in findings and allow directives.
	Name() string
	// Doc is a one-line description for -rules output.
	Doc() string
	// Run reports the rule's findings in pkg.
	Run(pkg *Package) []Finding
}

// Analyzers returns the full ecglint suite in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{
		DetClock{},
		DetRand{},
		MapOrder{},
		LockedSend{},
		CowMutate{},
		ErrDrop{},
		ScratchShare{},
	}
}

// Run applies every analyzer to every package, filters findings through
// the //ecglint:allow directives found in the sources, and returns the
// surviving findings sorted by position. Malformed or unknown-rule
// directives are themselves reported under the "directive" pseudo-rule,
// as are well-formed directives that matched nothing (stale
// suppressions).
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	out, _ := Audit(pkgs, analyzers)
	return out
}

// Audit is Run plus the suppression audit trail: it returns the
// surviving findings and the full list of //ecglint:allow directives
// with their reasons and staleness.
func Audit(pkgs []*Package, analyzers []Analyzer) ([]Finding, []Allow) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	// Suppressions must exist before the engine: summary construction
	// consults them so a sanctioned direct site does not taint callers.
	sup := newSuppressions(pkgs, known)
	newProgram(pkgs, sup)
	out := append([]Finding(nil), sup.bad...)
	for _, pkg := range pkgs {
		var raw []Finding
		for _, a := range analyzers {
			raw = append(raw, a.Run(pkg)...)
		}
		out = append(out, sup.filter(raw)...)
	}
	out = append(out, sup.stale()...)
	sortFindings(out)
	return out, sup.allows()
}
