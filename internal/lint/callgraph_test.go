package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildProgram loads patterns and constructs the interprocedural engine
// the way Run does.
func buildProgram(t *testing.T, root string, patterns ...string) *program {
	t.Helper()
	pkgs, err := Load(root, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded for %v", patterns)
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name()] = true
	}
	return newProgram(pkgs, newSuppressions(pkgs, known))
}

// findNode resolves the unique graph node whose full name has suffix.
func findNode(t *testing.T, p *program, suffix string) *funcNode {
	t.Helper()
	var hit *funcNode
	for name, n := range p.funcs {
		if strings.HasSuffix(name, suffix) {
			if hit != nil {
				t.Fatalf("suffix %q is ambiguous (%s and %s)", suffix, hit.name, name)
			}
			hit = n
		}
	}
	if hit == nil {
		t.Fatalf("no function matching %q in the graph", suffix)
	}
	return hit
}

func testCwd(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return cwd
}

// TestCallGraphInterfaceDispatch pins the method-name-set dispatch: a
// call through the fixture's ringer interface must produce edges to
// every concrete Ring method.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	p := buildProgram(t, testCwd(t), "testdata/src/callgraph")
	n := findNode(t, p, "callgraph.dispatchThrough")
	var callees []string
	for _, e := range n.edges {
		callees = append(callees, e.callee.name)
	}
	for _, want := range []string{"bell).Ring", "silent).Ring"} {
		found := false
		for _, c := range callees {
			if strings.HasSuffix(c, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("dispatchThrough edges %v missing concrete method %q", callees, want)
		}
	}
	if got := len(p.methodsByName["Ring"]); got != 2 {
		t.Errorf("methodsByName[Ring] has %d entries, want 2", got)
	}
}

// TestCallGraphRecursionCycles checks the fixpoint converges on cycles:
// a pure mutual recursion stays fact-free, and a cycle with one
// blocking base fact taints every member.
func TestCallGraphRecursionCycles(t *testing.T) {
	p := buildProgram(t, testCwd(t), "testdata/src/callgraph")
	for _, name := range []string{"callgraph.even", "callgraph.odd"} {
		n := findNode(t, p, name)
		if n.summary.blocks || n.summary.wallClock || n.summary.spawnsGoroutine {
			t.Errorf("%s: pure recursion picked up facts %+v", name, n.summary)
		}
	}
	for _, name := range []string{"callgraph.evenBlocking", "callgraph.oddBlocking"} {
		if n := findNode(t, p, name); !n.summary.blocks {
			t.Errorf("%s: blocking fact did not propagate around the cycle", name)
		}
	}
}

// TestCallGraphMutatesParameter pins the caller-visible-write analysis
// and its transitive propagation through argument passing.
func TestCallGraphMutatesParameter(t *testing.T) {
	p := buildProgram(t, testCwd(t), "testdata/src/callgraph")
	if n := findNode(t, p, "callgraph.setFirst"); !n.mutatesArg(0) {
		t.Error("setFirst: direct slice-element write not recorded")
	}
	if n := findNode(t, p, "callgraph.passThrough"); !n.mutatesArg(0) {
		t.Error("passThrough: transitive mutation not propagated")
	}
	if n := findNode(t, p, "callgraph.reassign"); n.mutatesArg(0) {
		t.Error("reassign: rebinding the parameter variable is not a caller-visible write")
	}
	if n := findNode(t, p, "bell).Ring"); !n.mutatesArg(0) {
		t.Error("(*bell).Ring: receiver field write not recorded at position 0")
	}
}

// TestCallGraphTransitiveSummaries pins wall-clock and blocking taint
// across package boundaries, with deterministic witness chains.
func TestCallGraphTransitiveSummaries(t *testing.T) {
	p := buildProgram(t, testCwd(t), "testdata/src/transitive/...")
	hidden := findNode(t, p, "clockutil.HiddenNow")
	if !hidden.summary.wallClock || hidden.summary.wallVia != "time.Now" {
		t.Errorf("HiddenNow summary = %+v, want direct time.Now taint", hidden.summary)
	}
	indirect := findNode(t, p, "clockutil.Indirect")
	if !indirect.summary.wallClock {
		t.Error("Indirect: wall-clock taint did not cross one frame")
	}
	if w := p.wallWitness(indirect); w != "clockutil.HiddenNow → time.Now" {
		t.Errorf("Indirect witness = %q", w)
	}
	if n := findNode(t, p, "blockutil.Drain"); !n.summary.blocks {
		t.Error("Drain: channel receive not a blocking base fact")
	}
	deep := findNode(t, p, "blockutil.DrainDeep")
	if !deep.summary.blocks {
		t.Error("DrainDeep: blocking taint did not cross one frame")
	}
	if w := p.blockWitness(deep); w != "blockutil.Drain → channel receive" {
		t.Errorf("DrainDeep witness = %q", w)
	}
	if n := findNode(t, p, "blockutil.Poll"); n.summary.blocks {
		t.Error("Poll: select with default must not count as blocking")
	}
}

// TestCallGraphRepoInterfaceDispatch runs dispatch over real repo
// concrete types: calls through protocol.Transport must resolve to
// (*ChanTransport).Send.
func TestCallGraphRepoInterfaceDispatch(t *testing.T) {
	root := filepath.Join(testCwd(t), "..", "..")
	p := buildProgram(t, root, "./internal/protocol")
	concrete := findNode(t, p, "ChanTransport).Send")
	found := false
	for _, n := range p.nodes {
		if n == concrete {
			continue
		}
		for _, e := range n.edges {
			if e.callee == concrete {
				found = true
			}
		}
	}
	if !found {
		t.Error("no caller dispatches to (*ChanTransport).Send through the Transport interface")
	}
}
