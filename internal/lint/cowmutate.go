package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CowMutate flags in-place mutation of values published through an
// atomic.Pointer or atomic.Value — the copy-on-write discipline the
// serving layer's hot-swap state (Engine.plan, StatsBuffer.active,
// Maintainer.plan) depends on. Once a pointer has been handed to
// Store/Swap, or read back out with Load/Swap, every reader may hold it
// concurrently: writing through it races those readers and retroactively
// edits plans snapshots have already exposed. The sanctioned shape is
// load → clone → mutate the clone → store; a clone/copy call on the
// path breaks the taint.
//
// The analysis is flow-lite and position-aware within each function:
// a value is tainted from the source position onward, so building a
// fresh value and mutating it before the Store that publishes it is
// clean, while mutating it after is not. Mutation through calls is
// caught with the engine's mutates-parameter summaries: passing a
// published value to a helper that writes through that parameter is the
// same bug one frame removed.
type CowMutate struct{}

func (CowMutate) Name() string { return "cowmutate" }

func (CowMutate) Doc() string {
	return "no writes through values published via atomic.Pointer/atomic.Value unless cloned on the path"
}

func (CowMutate) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, cowCheckFunc(pkg, fd)...)
		}
	}
	return out
}

// cowCheckFunc runs the two-pass taint analysis over one function body.
func cowCheckFunc(pkg *Package, fd *ast.FuncDecl) []Finding {
	// Pass 1: find taint sources and propagate through local aliases.
	// taintPos records the earliest position at which each object holds
	// published (shared) data; writes before that position are the
	// pre-publication construction phase and stay clean.
	taintPos := make(map[types.Object]token.Pos)
	taint := func(id *ast.Ident, from token.Pos) {
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if old, ok := taintPos[obj]; !ok || from < old {
			taintPos[obj] = from
		}
	}
	// Alias propagation can chain (a := Load; b := a.Sub), so iterate to
	// a fixed point; bodies are small and chains are short.
	for changed := true; changed; {
		changed = false
		before := len(taintPos)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				if len(v.Lhs) != len(v.Rhs) {
					return true
				}
				for i, rhs := range v.Rhs {
					id, ok := v.Lhs[i].(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					switch {
					case isAtomicLoad(pkg, rhs):
						taint(id, rhs.Pos())
					case returnsPublished(pkg, rhs):
						taint(id, rhs.Pos())
					case isCloneExpr(pkg, rhs):
						// clone breaks the taint: the result is fresh
					default:
						if root := rootIdent(rhs); root != nil {
							if obj := pkg.Info.Uses[root]; obj != nil {
								if from, ok := taintPos[obj]; ok && rhs.Pos() > from {
									taint(id, rhs.Pos())
								}
							}
						}
					}
				}
			case *ast.CallExpr:
				// Publishing taints the argument from the call onward:
				// h.Store(next) / h.Swap(next) makes next shared.
				if sel, ok := unparen(v.Fun).(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Store" || sel.Sel.Name == "Swap" ||
						sel.Sel.Name == "CompareAndSwap") &&
					atomicPublishRecv(pkg, sel.X) {
					for _, arg := range v.Args {
						if id, ok := unparen(arg).(*ast.Ident); ok {
							taint(id, v.Pos())
						}
					}
				}
			}
			return true
		})
		changed = len(taintPos) > before
	}
	if len(taintPos) == 0 {
		return nil
	}

	// Pass 2: flag post-taint writes through tainted values, and calls
	// that hand a tainted value to a parameter the callee mutates.
	var out []Finding
	tainted := func(e ast.Expr) (types.Object, bool) {
		root := rootIdent(e)
		if root == nil {
			return nil, false
		}
		obj := pkg.Info.Uses[root]
		if obj == nil {
			return nil, false
		}
		from, ok := taintPos[obj]
		return obj, ok && e.Pos() > from
	}
	report := func(n ast.Node, msg string) {
		out = append(out, Finding{Pos: pkg.Fset.Position(n.Pos()), Rule: "cowmutate", Message: msg})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, l := range v.Lhs {
				if _, bare := unparen(l).(*ast.Ident); bare {
					continue // rebinding the variable, not writing through it
				}
				if obj, ok := tainted(l); ok {
					report(l, "write to "+types.ExprString(l)+" mutates the atomically published value "+
						obj.Name()+"; clone it before mutating (copy-on-write)")
				}
			}
		case *ast.IncDecStmt:
			if _, bare := unparen(v.X).(*ast.Ident); bare {
				return true
			}
			if obj, ok := tainted(v.X); ok {
				report(v, "write to "+types.ExprString(v.X)+" mutates the atomically published value "+
					obj.Name()+"; clone it before mutating (copy-on-write)")
			}
		case *ast.CallExpr:
			out = append(out, cowCheckCall(pkg, v, tainted)...)
		}
		return true
	})
	return out
}

// cowCheckCall flags handing a tainted value to a callee that mutates
// the corresponding parameter (per the engine's transitive summaries).
// Clone-shaped callees are exempt: duplicating the value is exactly the
// sanctioned path.
func cowCheckCall(pkg *Package, call *ast.CallExpr, tainted func(ast.Expr) (types.Object, bool)) []Finding {
	if pkg.prog == nil || isCloneExpr(pkg, call) {
		return nil
	}
	var out []Finding
	for _, callee := range pkg.prog.resolve(pkg, call) {
		off := 0
		if callee.fn.Type().(*types.Signature).Recv() != nil {
			off = 1
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := unparen(sel.X).(*ast.Ident); ok && callee.mutatesArg(0) {
					if obj, isT := tainted(id); isT {
						out = append(out, Finding{Pos: pkg.Fset.Position(call.Pos()), Rule: "cowmutate",
							Message: "call to " + shortFuncName(callee.fn) + " mutates its receiver " + obj.Name() +
								", an atomically published value; clone it before mutating (copy-on-write)"})
					}
				}
			}
		}
		for i, arg := range call.Args {
			id, ok := unparen(arg).(*ast.Ident)
			if !ok || !callee.mutatesArg(i+off) {
				continue
			}
			if obj, isT := tainted(id); isT {
				out = append(out, Finding{Pos: pkg.Fset.Position(arg.Pos()), Rule: "cowmutate",
					Message: "passing the atomically published value " + obj.Name() + " to " +
						shortFuncName(callee.fn) + ", which mutates that parameter; clone it first (copy-on-write)"})
			}
		}
		break // one candidate suffices for a deterministic finding
	}
	return out
}

// returnsPublished reports whether expr is a call to a loaded function
// whose summary says it returns a value read from an atomic publish
// site (an Epoch()/Plan()-style accessor).
func returnsPublished(pkg *Package, expr ast.Expr) bool {
	call, ok := unparen(expr).(*ast.CallExpr)
	if !ok || pkg.prog == nil {
		return false
	}
	for _, callee := range pkg.prog.resolve(pkg, call) {
		if callee.summary.returnsAtomic {
			return true
		}
	}
	return false
}

// isCloneExpr reports whether expr is a call whose callee name marks it
// as producing a fresh copy (contains "clone" or "copy", matching the
// repo's cloneShallow/Clone/copyPlan naming).
func isCloneExpr(pkg *Package, expr ast.Expr) bool {
	call, ok := unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	var name string
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	name = strings.ToLower(name)
	return strings.Contains(name, "clone") || strings.Contains(name, "copy")
}
