package vivaldi

import (
	"math"
	"testing"

	"edgecachegroups/internal/simrand"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Dim: 0},
		{Dim: 3, Rounds: -1},
		{Dim: 3, CE: -0.1},
		{Dim: 3, CE: 1.5},
		{Dim: 3, CC: -0.1},
		{Dim: 3, CC: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// planted returns n points in dim-space and their exact distance matrix.
func planted(n, dim int, src *simrand.Source) ([][]float64, [][]float64) {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for j := range pts[i] {
			pts[i][j] = src.Uniform(0, 200)
		}
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = euclid(pts[i], pts[j])
		}
	}
	return pts, m
}

func TestEmbedLandmarksConverges(t *testing.T) {
	src := simrand.New(1)
	_, m := planted(10, 3, src)
	cfg := Config{Dim: 3, Rounds: 64}
	coords, err := EmbedLandmarks(m, cfg, src.Split("embed"))
	if err != nil {
		t.Fatal(err)
	}
	errVal, err := EmbeddingError(coords, m)
	if err != nil {
		t.Fatal(err)
	}
	if errVal > 0.08 {
		t.Fatalf("Vivaldi error %v on truly Euclidean input, want < 0.08", errVal)
	}
}

func TestEmbedLandmarksValidation(t *testing.T) {
	src := simrand.New(2)
	cfg := Config{Dim: 2}
	if _, err := EmbedLandmarks([][]float64{{0}}, cfg, src); err == nil {
		t.Fatal("single landmark accepted")
	}
	if _, err := EmbedLandmarks([][]float64{{0, 1}, {1}}, cfg, src); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := EmbedLandmarks([][]float64{{0, -1}, {-1, 0}}, cfg, src); err == nil {
		t.Fatal("negative distance accepted")
	}
	if _, err := EmbedLandmarks([][]float64{{0, 1}, {1, 0}}, Config{Dim: 0}, src); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestEmbedHostRecoversDistances(t *testing.T) {
	src := simrand.New(3)
	pts, m := planted(10, 3, src)
	cfg := Config{Dim: 3, Rounds: 64}
	coords, err := EmbedLandmarks(m, cfg, src.Split("lm"))
	if err != nil {
		t.Fatal(err)
	}
	host := []float64{60, 90, 40}
	toLm := make([]float64, len(pts))
	for i := range pts {
		toLm[i] = euclid(host, pts[i])
	}
	got, err := EmbedHost(coords, toLm, cfg, src.Split("host"))
	if err != nil {
		t.Fatal(err)
	}
	var relSum float64
	var count int
	for i := range coords {
		want := toLm[i]
		if want < 5 {
			continue
		}
		relSum += math.Abs(euclid(got, coords[i])-want) / want
		count++
	}
	if mean := relSum / float64(count); mean > 0.25 {
		t.Fatalf("host-landmark mean relative error %v, want < 0.25", mean)
	}
}

func TestEmbedHostValidation(t *testing.T) {
	src := simrand.New(4)
	cfg := Config{Dim: 2}
	lms := [][]float64{{0, 0}, {10, 0}}
	if _, err := EmbedHost(nil, nil, cfg, src); err == nil {
		t.Fatal("no landmarks accepted")
	}
	if _, err := EmbedHost(lms, []float64{1}, cfg, src); err == nil {
		t.Fatal("mismatched measurements accepted")
	}
	if _, err := EmbedHost(lms, []float64{1, math.NaN()}, cfg, src); err == nil {
		t.Fatal("NaN measurement accepted")
	}
	if _, err := EmbedHost([][]float64{{0}}, []float64{1}, cfg, src); err == nil {
		t.Fatal("wrong-dim landmark accepted")
	}
}

func TestNodeUpdateMovesTowardRestLength(t *testing.T) {
	src := simrand.New(5)
	cfg := DefaultConfig()
	cfg.Dim = 2
	a := &Node{Coord: []float64{0, 0}, Err: 0.5}
	b := &Node{Coord: []float64{10, 0}, Err: 0.5}
	// True RTT 50 but coordinates say 10: a must move away from b.
	a.Update(b, 50, cfg, src)
	if euclid(a.Coord, b.Coord) <= 10 {
		t.Fatalf("node did not move apart: dist=%v", euclid(a.Coord, b.Coord))
	}
	// True RTT 1 but coordinates now far: a must move toward b.
	before := euclid(a.Coord, b.Coord)
	a.Update(b, 1, cfg, src)
	if euclid(a.Coord, b.Coord) >= before {
		t.Fatal("node did not move closer")
	}
}

func TestNodeUpdateHandlesCoincidentCoords(t *testing.T) {
	src := simrand.New(6)
	cfg := DefaultConfig()
	cfg.Dim = 3
	a := NewNode(3)
	b := NewNode(3)
	a.Update(b, 100, cfg, src)
	if euclid(a.Coord, b.Coord) == 0 {
		t.Fatal("coincident nodes did not separate")
	}
	for _, v := range a.Coord {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("coordinate corrupted: %v", a.Coord)
		}
	}
}

func TestNodeErrBounded(t *testing.T) {
	src := simrand.New(7)
	cfg := DefaultConfig()
	cfg.Dim = 2
	a := NewNode(2)
	b := &Node{Coord: []float64{100, 0}, Err: 0.5}
	for i := 0; i < 1000; i++ {
		a.Update(b, src.Uniform(1, 500), cfg, src)
		if a.Err <= 0 || a.Err > 1 {
			t.Fatalf("error estimate out of bounds: %v", a.Err)
		}
	}
}

func TestEmbeddingErrorEdgeCases(t *testing.T) {
	if _, err := EmbeddingError([][]float64{{0}}, [][]float64{{0}, {0}}); err == nil {
		t.Fatal("mismatched sizes accepted")
	}
	v, err := EmbeddingError([][]float64{{0}}, [][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("single-point error = %v, want 0", v)
	}
}

// TestHeightModelLearnsAccessLinks: two clusters connected through a slow
// access link on every node; the height model should assign positive
// heights and fit the distances better than the flat model.
func TestHeightModelLearnsAccessLinks(t *testing.T) {
	src := simrand.New(10)
	// True structure: nodes on a 2-D plane plus a per-node access delay.
	const n = 10
	pts := make([][]float64, n)
	access := make([]float64, n)
	for i := range pts {
		pts[i] = []float64{src.Uniform(0, 100), src.Uniform(0, 100)}
		access[i] = src.Uniform(10, 40)
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i == j {
				continue
			}
			m[i][j] = euclid(pts[i], pts[j]) + access[i] + access[j]
		}
	}
	flatCfg := Config{Dim: 2, Rounds: 64}
	flat, err := EmbedLandmarks(m, flatCfg, src.Split("flat"))
	if err != nil {
		t.Fatal(err)
	}
	flatErr, err := EmbeddingError(flat, m)
	if err != nil {
		t.Fatal(err)
	}
	// Height-model error must beat the flat model on this structure. Use
	// the node-level API since EmbedLandmarks returns raw coordinates.
	heightCfg := Config{Dim: 2, Rounds: 64, UseHeight: true}
	nodes := make([]*Node, n)
	hsrc := src.Split("height")
	for i := range nodes {
		nodes[i] = NewNode(2)
		for d := range nodes[i].Coord {
			nodes[i].Coord[d] = hsrc.Normal(0, 0.1)
		}
	}
	for round := 0; round < heightCfg.Rounds; round++ {
		order := hsrc.Perm(n)
		for _, i := range order {
			for _, j := range order {
				if i != j {
					nodes[i].Update(nodes[j], m[i][j], heightCfg, hsrc)
				}
			}
		}
	}
	var heightErrSum float64
	var count int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pred := nodes[i].distanceTo(nodes[j], heightCfg)
			heightErrSum += math.Abs(pred-m[i][j]) / m[i][j]
			count++
		}
	}
	heightErr := heightErrSum / float64(count)
	if heightErr >= flatErr {
		t.Fatalf("height model error %v not better than flat %v on access-link structure", heightErr, flatErr)
	}
	// Heights must be positive for most nodes.
	positive := 0
	for _, nd := range nodes {
		if nd.Height > 1 {
			positive++
		}
	}
	if positive < n/2 {
		t.Fatalf("only %d/%d nodes learned positive heights", positive, n)
	}
}

func TestHeightNeverNegative(t *testing.T) {
	src := simrand.New(11)
	cfg := Config{Dim: 2, UseHeight: true}
	a := NewNode(2)
	b := &Node{Coord: []float64{50, 0}, Height: 5, Err: 0.5}
	for i := 0; i < 500; i++ {
		a.Update(b, src.Uniform(1, 200), cfg, src)
		if a.Height < 0 {
			t.Fatalf("negative height %v", a.Height)
		}
	}
}
