// Package vivaldi implements the Vivaldi decentralized network coordinate
// system (Dabek, Cox, Kaashoek & Morris, SIGCOMM'04 — reference [3] of the
// paper). Nodes embed themselves into a D-dimensional Euclidean space by
// simulating a spring system: each RTT sample between two nodes pushes or
// pulls their coordinates toward the spring's rest length (the measured
// RTT), weighted by the nodes' confidence.
//
// The paper cites Vivaldi (alongside GNP) as a position-representation
// alternative to its raw feature vectors; this package provides the third
// representation for the §5.2 comparison. As in the GNP pipeline, the
// landmark set first converges among itself, then each host runs updates
// against the fixed landmark coordinates.
package vivaldi

import (
	"fmt"
	"math"

	"edgecachegroups/internal/simrand"
)

// Config tunes the Vivaldi embedding.
type Config struct {
	// Dim is the coordinate dimensionality. Must be >= 1.
	Dim int
	// Rounds is the number of full passes over the sample set during
	// landmark convergence. Zero means the default (32).
	Rounds int
	// CE is the error-adaptation constant (Vivaldi's c_e, typically 0.25).
	CE float64
	// CC is the coordinate-adaptation constant (Vivaldi's c_c, typically
	// 0.25).
	CC float64
	// UseHeight enables Vivaldi's height-vector model: each node carries a
	// non-negative height modelling its access-link latency, and the
	// effective distance is the Euclidean part plus both heights. Heights
	// capture the last-mile delay that no Euclidean embedding can.
	UseHeight bool
}

// DefaultConfig returns the standard Vivaldi constants in 5 dimensions.
func DefaultConfig() Config {
	return Config{Dim: 5, Rounds: 32, CE: 0.25, CC: 0.25}
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 32
	}
	if c.CE == 0 {
		c.CE = 0.25
	}
	if c.CC == 0 {
		c.CC = 0.25
	}
	return c
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	switch {
	case c.Dim < 1:
		return fmt.Errorf("vivaldi: Dim must be >= 1, got %d", c.Dim)
	case c.Rounds < 0:
		return fmt.Errorf("vivaldi: Rounds must be >= 0, got %d", c.Rounds)
	case c.CE < 0 || c.CE > 1:
		return fmt.Errorf("vivaldi: CE must be in [0,1], got %v", c.CE)
	case c.CC < 0 || c.CC > 1:
		return fmt.Errorf("vivaldi: CC must be in [0,1], got %v", c.CC)
	}
	return nil
}

// Node is one participant's coordinate state.
type Node struct {
	// Coord is the node's current coordinate.
	Coord []float64
	// Height is the node's access-link latency component (height-vector
	// model only; see Config.UseHeight).
	Height float64
	// Err is the node's confidence estimate in (0, 1]; lower is more
	// confident.
	Err float64
}

// NewNode returns a node at the origin with maximal uncertainty.
func NewNode(dim int) *Node {
	return &Node{Coord: make([]float64, dim), Err: 1}
}

// distanceTo returns the model distance from n to other under cfg.
func (n *Node) distanceTo(other *Node, cfg Config) float64 {
	d := euclid(n.Coord, other.Coord)
	if cfg.UseHeight {
		d += n.Height + other.Height
	}
	return d
}

const minRTTms = 0.5

// Update applies one Vivaldi sample: the measured RTT between n and other.
// Only n's state mutates (the remote node's state is its own business).
// src supplies the random direction needed when the two coordinates
// coincide.
func (n *Node) Update(other *Node, rtt float64, cfg Config, src *simrand.Source) {
	cfg = cfg.withDefaults()
	if rtt < minRTTms {
		rtt = minRTTms
	}
	dist := n.distanceTo(other, cfg)

	// Sample weight balances local vs remote confidence.
	w := n.Err / (n.Err + other.Err)
	relErr := math.Abs(dist-rtt) / rtt

	// Update the confidence (exponentially weighted moving average).
	n.Err = relErr*cfg.CE*w + n.Err*(1-cfg.CE*w)
	if n.Err > 1 {
		n.Err = 1
	}
	if n.Err < 1e-6 {
		n.Err = 1e-6
	}

	// Move along the unit vector away from (or toward) the other node:
	// x_i += delta * (rtt - dist) * u(x_i - x_j). In the height model the
	// "unit vector"'s height component is +1: shrinking the distance pulls
	// the node's height down, growing it pushes the height up (Vivaldi
	// §3.4).
	delta := cfg.CC * w
	dir := unitVector(n.Coord, other.Coord, src)
	scale := delta * (rtt - dist)
	for d := range n.Coord {
		n.Coord[d] += scale * dir[d]
	}
	if cfg.UseHeight {
		n.Height += scale
		if n.Height < 0 {
			n.Height = 0
		}
	}
}

// euclid is the Euclidean distance between coordinates.
func euclid(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// unitVector returns the unit vector from b toward a; when the points
// coincide it returns a random unit direction, as Vivaldi prescribes.
func unitVector(a, b []float64, src *simrand.Source) []float64 {
	out := make([]float64, len(a))
	var norm float64
	for i := range a {
		out[i] = a[i] - b[i]
		norm += out[i] * out[i]
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		for i := range out {
			out[i] = src.Normal(0, 1)
			norm += out[i] * out[i]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			out[0], norm = 1, 1
		}
	}
	for i := range out {
		out[i] /= norm
	}
	return out
}

// EmbedLandmarks converges a set of nodes against their full measured RTT
// matrix by simulating Rounds epochs of random pairwise Vivaldi updates.
func EmbedLandmarks(measured [][]float64, cfg Config, src *simrand.Source) ([][]float64, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(measured)
	if n < 2 {
		return nil, fmt.Errorf("vivaldi: need >= 2 landmarks, got %d", n)
	}
	for i, row := range measured {
		if len(row) != n {
			return nil, fmt.Errorf("vivaldi: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, d := range row {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return nil, fmt.Errorf("vivaldi: invalid distance %v at (%d,%d)", d, i, j)
			}
		}
	}

	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(cfg.Dim)
		// Tiny random jitter breaks the all-at-origin symmetry.
		for d := range nodes[i].Coord {
			nodes[i].Coord[d] = src.Normal(0, 0.1)
		}
	}
	for round := 0; round < cfg.Rounds; round++ {
		order := src.Perm(n)
		for _, i := range order {
			for _, j := range order {
				if i == j {
					continue
				}
				nodes[i].Update(nodes[j], measured[i][j], cfg, src)
			}
		}
	}
	out := make([][]float64, n)
	for i, nd := range nodes {
		out[i] = nd.Coord
	}
	return out, nil
}

// EmbedHost converges one host's coordinate against fixed landmark
// coordinates using its measured RTTs to each landmark.
func EmbedHost(landmarks [][]float64, toLandmarks []float64, cfg Config, src *simrand.Source) ([]float64, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("vivaldi: no landmark coordinates")
	}
	if len(toLandmarks) != len(landmarks) {
		return nil, fmt.Errorf("vivaldi: %d measurements for %d landmarks", len(toLandmarks), len(landmarks))
	}
	lmNodes := make([]*Node, len(landmarks))
	for i, c := range landmarks {
		if len(c) != cfg.Dim {
			return nil, fmt.Errorf("vivaldi: landmark %d has dim %d, want %d", i, len(c), cfg.Dim)
		}
		d := toLandmarks[i]
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("vivaldi: invalid measurement %v to landmark %d", d, i)
		}
		// Landmarks are fully converged: minimal error so the host does
		// almost all of the moving.
		lmNodes[i] = &Node{Coord: c, Err: 0.05}
	}
	host := NewNode(cfg.Dim)
	// Start near the closest landmark.
	nearest := 0
	for i := range toLandmarks {
		if toLandmarks[i] < toLandmarks[nearest] {
			nearest = i
		}
	}
	copy(host.Coord, landmarks[nearest])
	for round := 0; round < cfg.Rounds; round++ {
		for i, lm := range lmNodes {
			host.Update(lm, toLandmarks[i], cfg, src)
		}
	}
	return host.Coord, nil
}

// EmbeddingError returns the mean relative error of coordinate distances
// against the measured matrix.
func EmbeddingError(coords [][]float64, measured [][]float64) (float64, error) {
	n := len(coords)
	if len(measured) != n {
		return 0, fmt.Errorf("vivaldi: %d coords vs %d measurement rows", n, len(measured))
	}
	if n < 2 {
		return 0, nil
	}
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := measured[i][j]
			if m < minRTTms {
				m = minRTTms
			}
			sum += math.Abs(euclid(coords[i], coords[j])-measured[i][j]) / m
			count++
		}
	}
	return sum / float64(count), nil
}
