package cluster

import (
	"testing"
	"testing/quick"

	"edgecachegroups/internal/simrand"
)

func TestKMedoidsRecoversBlobs(t *testing.T) {
	// Voronoi-iteration k-medoids only refines within clusters, so blob
	// recovery needs dispersed seeds (SpreadSeeder); uniform seeding can
	// start two medoids in one blob and stay there.
	src := simrand.New(1)
	points := threeBlobs(20, src)
	res, err := KMedoids(points, 3, SpreadSeeder{}, DefaultOptions(), src.Split("km"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("K-medoids did not converge on separable blobs")
	}
	for b := 0; b < 3; b++ {
		first := res.Assignments[b*20]
		for i := 0; i < 20; i++ {
			if got := res.Assignments[b*20+i]; got != first {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
	if res.Assignments[0] == res.Assignments[20] || res.Assignments[20] == res.Assignments[40] {
		t.Fatal("blobs merged")
	}
}

func TestKMedoidsCentersAreInputPoints(t *testing.T) {
	src := simrand.New(2)
	points := threeBlobs(10, src)
	res, err := KMedoids(points, 3, UniformSeeder{}, DefaultOptions(), src.Split("km"))
	if err != nil {
		t.Fatal(err)
	}
	for c, center := range res.Centers {
		found := false
		for _, p := range points {
			if L2(center, p) == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("medoid %d (%v) is not an input point", c, center)
		}
	}
}

func TestKMedoidsValidation(t *testing.T) {
	src := simrand.New(3)
	points := []Vector{{1}, {2}}
	tests := []struct {
		name   string
		points []Vector
		k      int
		seeder Seeder
		opts   Options
	}{
		{name: "no points", points: nil, k: 1, seeder: UniformSeeder{}},
		{name: "k zero", points: points, k: 0, seeder: UniformSeeder{}},
		{name: "k too big", points: points, k: 3, seeder: UniformSeeder{}},
		{name: "nil seeder", points: points, k: 1, seeder: nil},
		{name: "bad opts", points: points, k: 1, seeder: UniformSeeder{}, opts: Options{MaxIterations: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := KMedoids(tt.points, tt.k, tt.seeder, tt.opts, src); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestKMedoidsRejectsBrokenSeeder(t *testing.T) {
	points := []Vector{{0}, {1}, {2}}
	src := simrand.New(4)
	for _, tt := range []struct {
		name    string
		indices []int
	}{
		{"wrong count", []int{0}},
		{"out of range", []int{0, 9}},
		{"duplicate", []int{1, 1}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := KMedoids(points, 2, badSeeder{tt.indices}, DefaultOptions(), src); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestKMedoidsInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := simrand.New(seed)
		n := 15 + src.Intn(30)
		k := 1 + src.Intn(6)
		points := make([]Vector, n)
		for i := range points {
			points[i] = Vector{src.Uniform(0, 100), src.Uniform(0, 100)}
		}
		res, err := KMedoids(points, k, UniformSeeder{}, DefaultOptions(), src.Split("km"))
		if err != nil {
			return false
		}
		if len(res.Assignments) != n {
			return false
		}
		for _, a := range res.Assignments {
			if a < 0 || a >= k {
				return false
			}
		}
		for _, s := range res.Sizes() {
			if s == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKMedoidsWeightedSeeding(t *testing.T) {
	// Two clusters; weights force both initial medoids into the first
	// blob, the update step must still separate reasonably.
	src := simrand.New(5)
	var points []Vector
	for i := 0; i < 10; i++ {
		points = append(points, Vector{src.Normal(0, 1)})
	}
	for i := 0; i < 10; i++ {
		points = append(points, Vector{src.Normal(100, 1)})
	}
	weights := make([]float64, 20)
	for i := range weights {
		weights[i] = 0.0001
	}
	weights[0], weights[1] = 100, 100
	res, err := KMedoids(points, 2, WeightedSeeder{Weights: weights}, DefaultOptions(), src.Split("km"))
	if err != nil {
		t.Fatal(err)
	}
	// Both clusters non-empty regardless of bad seeding.
	for c, s := range res.Sizes() {
		if s == 0 {
			t.Fatalf("cluster %d empty", c)
		}
	}
}

func TestKMedoidsKEqualsN(t *testing.T) {
	points := []Vector{{0}, {5}, {10}}
	res, err := KMedoids(points, 3, UniformSeeder{}, DefaultOptions(), simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sizes() {
		if s != 1 {
			t.Fatalf("sizes = %v", res.Sizes())
		}
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	src1 := simrand.New(7)
	p1 := threeBlobs(12, src1)
	r1, err := KMedoids(p1, 3, UniformSeeder{}, DefaultOptions(), src1.Split("km"))
	if err != nil {
		t.Fatal(err)
	}
	src2 := simrand.New(7)
	p2 := threeBlobs(12, src2)
	r2, err := KMedoids(p2, 3, UniformSeeder{}, DefaultOptions(), src2.Split("km"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assignments {
		if r1.Assignments[i] != r2.Assignments[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

// TestKMedoidsComparableToKMeans: on well-separated data the two
// algorithms should produce partitions of similar quality.
func TestKMedoidsComparableToKMeans(t *testing.T) {
	src := simrand.New(8)
	points := threeBlobs(25, src)
	km, err := KMeans(points, 3, UniformSeeder{}, DefaultOptions(), src.Split("a"))
	if err != nil {
		t.Fatal(err)
	}
	kd, err := KMedoids(points, 3, UniformSeeder{}, DefaultOptions(), src.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	ssKM := km.WithinClusterSS(points)
	ssKD := kd.WithinClusterSS(points)
	if ssKD > ssKM*1.5 {
		t.Fatalf("k-medoids SS %v much worse than k-means %v", ssKD, ssKM)
	}
}
