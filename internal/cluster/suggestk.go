package cluster

import (
	"fmt"
	"math"

	"edgecachegroups/internal/par"
	"edgecachegroups/internal/simrand"
)

// SuggestK helps operators pick the paper's "pre-specified parameter" K:
// it runs the clustering for every k in [1, kMax], records the
// within-cluster sum of squares, and returns the elbow of that curve —
// the k with the maximum perpendicular distance from the straight line
// joining the curve's endpoints (the "kneedle" heuristic).
//
// The kMax clusterings are independent — each k draws from its own
// src.SplitN("suggestk", k) stream, a pure function of (seed, k) — so
// they fan out over a worker pool bounded by opts.Parallelism (0 or 1
// means serial) with bit-identical results at every worker count.
//
// The returned curve holds the WithinClusterSS for k = 1..kMax (indexed
// k-1), so callers can plot or re-analyze it.
func SuggestK(points []Vector, kMax int, seeder Seeder, opts Options, src *simrand.Source) (int, []float64, error) {
	if err := validatePoints(points); err != nil {
		return 0, nil, err
	}
	return suggestK(MatrixFromVectors(points), kMax, seeder, opts, src)
}

// SuggestKMatrix is SuggestK over a flat feature matrix, sharing the
// backing array across all kMax clustering runs.
func SuggestKMatrix(points Matrix, kMax int, seeder Seeder, opts Options, src *simrand.Source) (int, []float64, error) {
	if err := validateMatrix(points); err != nil {
		return 0, nil, err
	}
	return suggestK(points, kMax, seeder, opts, src)
}

func suggestK(points Matrix, kMax int, seeder Seeder, opts Options, src *simrand.Source) (int, []float64, error) {
	if kMax < 2 {
		return 0, nil, fmt.Errorf("cluster: kMax must be >= 2, got %d", kMax)
	}
	if kMax > points.Rows() {
		kMax = points.Rows()
	}
	if seeder == nil {
		seeder = UniformSeeder{}
	}

	curve := make([]float64, kMax)
	errs := make([]error, kMax)
	par.ForEach(kMax, max(opts.Parallelism, 1), func(i int) {
		k := i + 1
		res, err := KMeansMatrix(points, k, seeder, opts, src.SplitN("suggestk", k))
		if err != nil {
			errs[i] = fmt.Errorf("k=%d: %w", k, err)
			return
		}
		curve[i] = res.WithinClusterSSMatrix(points)
	})
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}

	// Kneedle: distance of each point from the chord between (1, curve[0])
	// and (kMax, curve[kMax-1]).
	x1, y1 := 1.0, curve[0]
	x2, y2 := float64(kMax), curve[kMax-1]
	dx, dy := x2-x1, y2-y1
	norm := math.Sqrt(dx*dx + dy*dy)
	if norm == 0 {
		return 1, curve, nil // flat curve: one cluster suffices
	}
	bestK, bestD := 1, 0.0
	for k := 1; k <= kMax; k++ {
		// Perpendicular distance from (k, curve[k-1]) to the chord.
		d := math.Abs(dy*float64(k)-dx*curve[k-1]+x2*y1-y2*x1) / norm
		if d > bestD {
			bestK, bestD = k, d
		}
	}
	return bestK, curve, nil
}
