package cluster

import (
	"fmt"

	"edgecachegroups/internal/simrand"
)

// Seeder chooses k initial cluster centers from points, returning point
// indices. Implementations must return k distinct indices.
type Seeder interface {
	Seed(points []Vector, k int, src *simrand.Source) ([]int, error)
}

// UniformSeeder picks k distinct points uniformly at random. This is the
// paper's SL-scheme initialization ("randomly chooses K edge caches").
type UniformSeeder struct{}

var _ Seeder = UniformSeeder{}

// Seed implements Seeder.
func (UniformSeeder) Seed(points []Vector, k int, src *simrand.Source) ([]int, error) {
	idx, err := src.SampleWithoutReplacement(len(points), k)
	if err != nil {
		return nil, fmt.Errorf("uniform seed: %w", err)
	}
	return idx, nil
}

// WeightedSeeder picks k distinct points with probability proportional to
// the supplied per-point weights. The SDSL scheme uses weights
// 1/Dist(Ec, Os)^theta so that more initial centers land near the origin
// server.
type WeightedSeeder struct {
	// Weights holds one non-negative weight per point.
	Weights []float64
}

var _ Seeder = WeightedSeeder{}

// Seed implements Seeder.
func (s WeightedSeeder) Seed(points []Vector, k int, src *simrand.Source) ([]int, error) {
	if len(s.Weights) != len(points) {
		return nil, fmt.Errorf("cluster: %d weights for %d points", len(s.Weights), len(points))
	}
	idx, err := src.WeightedSampleWithoutReplacement(s.Weights, k)
	if err != nil {
		return nil, fmt.Errorf("weighted seed: %w", err)
	}
	return idx, nil
}

// SpreadSeeder implements k-means++-style seeding: the first center is
// uniform, and each subsequent center is drawn with probability
// proportional to its squared distance from the nearest chosen center.
// This is the strongest interpretation of the paper's "ensuring that all
// regions of the edge cache network are represented"; it is provided for
// ablation studies.
type SpreadSeeder struct{}

var _ Seeder = SpreadSeeder{}

// Seed implements Seeder.
func (SpreadSeeder) Seed(points []Vector, k int, src *simrand.Source) ([]int, error) {
	n := len(points)
	if k > n {
		return nil, fmt.Errorf("cluster: cannot seed %d centers from %d points", k, n)
	}
	chosen := make([]int, 0, k)
	chosen = append(chosen, src.Intn(n))
	minSq := make([]float64, n)
	for i := range minSq {
		minSq[i] = sqL2(points[i], points[chosen[0]])
	}
	for len(chosen) < k {
		i, err := src.WeightedChoice(minSq)
		if err != nil {
			// All remaining distances are zero (duplicate points): fall back
			// to the first unchosen index.
			i = -1
			taken := make(map[int]bool, len(chosen))
			for _, c := range chosen {
				taken[c] = true
			}
			for j := 0; j < n; j++ {
				if !taken[j] {
					i = j
					break
				}
			}
			if i < 0 {
				return nil, fmt.Errorf("spread seed: %w", err)
			}
		}
		chosen = append(chosen, i)
		for j := range minSq {
			if d := sqL2(points[j], points[i]); d < minSq[j] {
				minSq[j] = d
			}
		}
	}
	return chosen, nil
}
