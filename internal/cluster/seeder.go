package cluster

import (
	"fmt"

	"edgecachegroups/internal/simrand"
)

// Seeder chooses k initial cluster centers from points, returning point
// indices. Implementations must return k distinct indices.
type Seeder interface {
	Seed(points []Vector, k int, src *simrand.Source) ([]int, error)
}

// MatrixSeeder is the flat-matrix fast path of Seeder. KMeansMatrix
// prefers it when the seeder implements it, avoiding the per-call row-view
// header allocation the []Vector interface would force at million-point
// scale. Implementations must consume randomness identically to their
// Seed method so both paths pick the same centers from the same stream.
type MatrixSeeder interface {
	SeedMatrix(points Matrix, k int, src *simrand.Source) ([]int, error)
}

// UniformSeeder picks k distinct points uniformly at random. This is the
// paper's SL-scheme initialization ("randomly chooses K edge caches").
type UniformSeeder struct{}

var (
	_ Seeder       = UniformSeeder{}
	_ MatrixSeeder = UniformSeeder{}
)

// Seed implements Seeder.
func (UniformSeeder) Seed(points []Vector, k int, src *simrand.Source) ([]int, error) {
	return uniformSeed(len(points), k, src)
}

// SeedMatrix implements MatrixSeeder.
func (UniformSeeder) SeedMatrix(points Matrix, k int, src *simrand.Source) ([]int, error) {
	return uniformSeed(points.Rows(), k, src)
}

func uniformSeed(n, k int, src *simrand.Source) ([]int, error) {
	idx, err := src.SampleWithoutReplacement(n, k)
	if err != nil {
		return nil, fmt.Errorf("uniform seed: %w", err)
	}
	return idx, nil
}

// WeightedSeeder picks k distinct points with probability proportional to
// the supplied per-point weights. The SDSL scheme uses weights
// 1/Dist(Ec, Os)^theta so that more initial centers land near the origin
// server.
type WeightedSeeder struct {
	// Weights holds one non-negative weight per point.
	Weights []float64
}

var (
	_ Seeder       = WeightedSeeder{}
	_ MatrixSeeder = WeightedSeeder{}
)

// Seed implements Seeder.
func (s WeightedSeeder) Seed(points []Vector, k int, src *simrand.Source) ([]int, error) {
	return s.weightedSeed(len(points), k, src)
}

// SeedMatrix implements MatrixSeeder.
func (s WeightedSeeder) SeedMatrix(points Matrix, k int, src *simrand.Source) ([]int, error) {
	return s.weightedSeed(points.Rows(), k, src)
}

func (s WeightedSeeder) weightedSeed(n, k int, src *simrand.Source) ([]int, error) {
	if len(s.Weights) != n {
		return nil, fmt.Errorf("cluster: %d weights for %d points", len(s.Weights), n)
	}
	idx, err := src.WeightedSampleWithoutReplacement(s.Weights, k)
	if err != nil {
		return nil, fmt.Errorf("weighted seed: %w", err)
	}
	return idx, nil
}

// SpreadSeeder implements k-means++-style seeding: the first center is
// uniform, and each subsequent center is drawn with probability
// proportional to its squared distance from the nearest chosen center.
// This is the strongest interpretation of the paper's "ensuring that all
// regions of the edge cache network are represented"; it is provided for
// ablation studies.
type SpreadSeeder struct{}

var (
	_ Seeder       = SpreadSeeder{}
	_ MatrixSeeder = SpreadSeeder{}
)

// Seed implements Seeder.
func (SpreadSeeder) Seed(points []Vector, k int, src *simrand.Source) ([]int, error) {
	return spreadSeed(len(points), func(i, j int) float64 {
		return sqL2(points[i], points[j])
	}, k, src)
}

// SeedMatrix implements MatrixSeeder.
func (SpreadSeeder) SeedMatrix(points Matrix, k int, src *simrand.Source) ([]int, error) {
	return spreadSeed(points.Rows(), func(i, j int) float64 {
		return sqL2(points.Row(i), points.Row(j))
	}, k, src)
}

// spreadSeed is the shared k-means++ body; sqDist(i,j) returns the squared
// distance between points i and j. Both entry paths use the same sqL2
// kernel and identical randomness consumption, so they choose the same
// centers.
func spreadSeed(n int, sqDist func(i, j int) float64, k int, src *simrand.Source) ([]int, error) {
	if k > n {
		return nil, fmt.Errorf("cluster: cannot seed %d centers from %d points", k, n)
	}
	chosen := make([]int, 0, k)
	chosen = append(chosen, src.Intn(n))
	minSq := make([]float64, n)
	for i := range minSq {
		minSq[i] = sqDist(i, chosen[0])
	}
	for len(chosen) < k {
		i, err := src.WeightedChoice(minSq)
		if err != nil {
			// All remaining distances are zero (duplicate points): fall back
			// to the first unchosen index.
			i = -1
			taken := make(map[int]bool, len(chosen))
			for _, c := range chosen {
				taken[c] = true
			}
			for j := 0; j < n; j++ {
				if !taken[j] {
					i = j
					break
				}
			}
			if i < 0 {
				return nil, fmt.Errorf("spread seed: %w", err)
			}
		}
		chosen = append(chosen, i)
		for j := range minSq {
			if d := sqDist(j, i); d < minSq[j] {
				minSq[j] = d
			}
		}
	}
	return chosen, nil
}
