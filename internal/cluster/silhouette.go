package cluster

import "fmt"

// Silhouette returns the mean silhouette coefficient of a partition — a
// clustering-quality diagnostic in [-1, 1] where higher is better. For
// each point, a is its mean distance to its own cluster's other members
// and b the smallest mean distance to another cluster; the coefficient is
// (b-a)/max(a,b). Points in singleton clusters contribute 0, following the
// usual convention.
func Silhouette(points []Vector, assign []int, k int) (float64, error) {
	if err := validatePoints(points); err != nil {
		return 0, err
	}
	n := len(points)
	if len(assign) != n {
		return 0, fmt.Errorf("cluster: %d assignments for %d points", len(assign), n)
	}
	if k < 1 {
		return 0, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	sizes := make([]int, k)
	for i, a := range assign {
		if a < 0 || a >= k {
			return 0, fmt.Errorf("cluster: assignment %d of point %d out of range [0,%d)", a, i, k)
		}
		sizes[a]++
	}
	if k == 1 {
		return 0, nil // silhouette undefined for a single cluster
	}

	var total float64
	for i := range points {
		own := assign[i]
		if sizes[own] <= 1 {
			continue // singleton contributes 0
		}
		// Mean distance to each cluster.
		sums := make([]float64, k)
		for j := range points {
			if j == i {
				continue
			}
			sums[assign[j]] += L2(points[i], points[j])
		}
		a := sums[own] / float64(sizes[own]-1)
		b := -1.0
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(sizes[c]); b < 0 || m < b {
				b = m
			}
		}
		if b < 0 {
			continue // no other non-empty cluster
		}
		maxAB := a
		if b > maxAB {
			maxAB = b
		}
		if maxAB > 0 {
			total += (b - a) / maxAB
		}
	}
	return total / float64(n), nil
}
