package cluster

import (
	"fmt"

	"edgecachegroups/internal/par"
)

// Silhouette returns the mean silhouette coefficient of a partition — a
// clustering-quality diagnostic in [-1, 1] where higher is better. For
// each point, a is its mean distance to its own cluster's other members
// and b the smallest mean distance to another cluster; the coefficient is
// (b-a)/max(a,b). Points in singleton clusters contribute 0, following the
// usual convention. It runs serially; SilhouetteParallel fans the O(N²)
// distance work out over a worker pool.
func Silhouette(points []Vector, assign []int, k int) (float64, error) {
	return SilhouetteParallel(points, assign, k, 1)
}

// SilhouetteParallel is Silhouette with the outer loop fanned out over at
// most workers goroutines (0 or 1 means serial, matching
// Options.Parallelism semantics). Per-point work reads only shared
// immutable state, and the per-chunk partial sums are reduced in fixed
// chunk order, so the returned coefficient is bit-identical for every
// worker count. The per-cluster distance scratch is hoisted per worker —
// the O(N²) loop performs no allocations.
func SilhouetteParallel(points []Vector, assign []int, k, workers int) (float64, error) {
	if err := validatePoints(points); err != nil {
		return 0, err
	}
	n := len(points)
	if len(assign) != n {
		return 0, fmt.Errorf("cluster: %d assignments for %d points", len(assign), n)
	}
	if k < 1 {
		return 0, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	sizes := make([]int, k)
	for i, a := range assign {
		if a < 0 || a >= k {
			return 0, fmt.Errorf("cluster: assignment %d of point %d out of range [0,%d)", a, i, k)
		}
		sizes[a]++
	}
	if k == 1 {
		return 0, nil // silhouette undefined for a single cluster
	}

	nc := par.Chunks(n, pointChunk)
	if workers < 1 {
		workers = 1
	}
	if workers > nc {
		workers = nc
	}
	chunkTotals := make([]float64, nc)
	scratch := make([][]float64, workers)
	for w := range scratch {
		scratch[w] = make([]float64, k)
	}
	par.ForEachWorker(nc, workers, func(w, c int) {
		sums := scratch[w]
		lo, hi := par.ChunkBounds(n, pointChunk, c)
		var sub float64
		for i := lo; i < hi; i++ {
			own := assign[i]
			if sizes[own] <= 1 {
				continue // singleton contributes 0
			}
			// Mean distance to each cluster.
			for j := range sums {
				sums[j] = 0
			}
			for j := range points {
				if j == i {
					continue
				}
				sums[assign[j]] += L2(points[i], points[j])
			}
			a := sums[own] / float64(sizes[own]-1)
			b := -1.0
			for cl := 0; cl < k; cl++ {
				if cl == own || sizes[cl] == 0 {
					continue
				}
				if m := sums[cl] / float64(sizes[cl]); b < 0 || m < b {
					b = m
				}
			}
			if b < 0 {
				continue // no other non-empty cluster
			}
			maxAB := a
			if b > maxAB {
				maxAB = b
			}
			if maxAB > 0 {
				sub += (b - a) / maxAB
			}
		}
		chunkTotals[c] = sub
	})
	var total float64
	for _, t := range chunkTotals {
		total += t
	}
	return total / float64(n), nil
}
