package cluster

import (
	"testing"

	"edgecachegroups/internal/simrand"
)

// TestSilhouetteParallelismInvariant pins SilhouetteParallel's contract:
// the coefficient is bit-identical for every worker count (ordered chunk
// reduction), and the serial entry point agrees.
func TestSilhouetteParallelismInvariant(t *testing.T) {
	src := simrand.New(31)
	points := threeBlobs(50, src) // n = 150: several chunks
	res, err := KMeans(points, 3, UniformSeeder{}, DefaultOptions(), src.Split("km"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Silhouette(points, res.Assignments, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		got, err := SilhouetteParallel(points, res.Assignments, 3, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: silhouette = %v, want %v (not bit-identical)", workers, got, want)
		}
	}
}

// TestSuggestKParallelismInvariant pins SuggestK's contract: the kMax
// clustering runs draw from independent deterministic substreams, so the
// suggestion and the whole curve are bit-identical at every worker count.
func TestSuggestKParallelismInvariant(t *testing.T) {
	src := simrand.New(37)
	points := threeBlobs(15, src)
	serialOpts := DefaultOptions()
	wantK, wantCurve, err := SuggestK(points, 8, UniformSeeder{}, serialOpts, simrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if wantK != 3 {
		t.Fatalf("SuggestK = %d on 3 well-separated blobs, want 3", wantK)
	}
	for _, workers := range []int{2, 8} {
		opts := DefaultOptions()
		opts.Parallelism = workers
		gotK, gotCurve, err := SuggestK(points, 8, UniformSeeder{}, opts, simrand.New(5))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if gotK != wantK {
			t.Fatalf("workers=%d: SuggestK = %d, want %d", workers, gotK, wantK)
		}
		for i := range wantCurve {
			if gotCurve[i] != wantCurve[i] {
				t.Fatalf("workers=%d: curve[%d] = %v, want %v (not bit-identical)",
					workers, i, gotCurve[i], wantCurve[i])
			}
		}
	}
}

// TestSuggestKMatrixMatchesVectors pins the Matrix entry point to the
// []Vector one.
func TestSuggestKMatrixMatchesVectors(t *testing.T) {
	src := simrand.New(41)
	points := threeBlobs(10, src)
	wantK, wantCurve, err := SuggestK(points, 6, UniformSeeder{}, DefaultOptions(), simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	gotK, gotCurve, err := SuggestKMatrix(MatrixFromVectors(points), 6, UniformSeeder{}, DefaultOptions(), simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if gotK != wantK {
		t.Fatalf("SuggestKMatrix = %d, want %d", gotK, wantK)
	}
	for i := range wantCurve {
		if gotCurve[i] != wantCurve[i] {
			t.Fatalf("curve[%d] = %v, want %v", i, gotCurve[i], wantCurve[i])
		}
	}
}

// TestSilhouetteLoopAllocationFree guards the satellite fix: the O(N²)
// silhouette loop must not allocate per point (the per-cluster scratch is
// hoisted per worker).
func TestSilhouetteLoopAllocationFree(t *testing.T) {
	src := simrand.New(43)
	small := threeBlobs(10, src)
	big := threeBlobs(40, src)
	res := func(points []Vector) []int {
		r, err := KMeans(points, 3, UniformSeeder{}, DefaultOptions(), src.Split("km"))
		if err != nil {
			t.Fatal(err)
		}
		return r.Assignments
	}
	smallAssign, bigAssign := res(small), res(big)
	allocs := func(points []Vector, assign []int) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := SilhouetteParallel(points, assign, 3, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
	a1, a2 := allocs(small, smallAssign), allocs(big, bigAssign)
	// 4x the points means 4x the chunks; fixed bookkeeping grows by the
	// chunk-total slice only. Allow a small slack for the chunk slice but
	// fail hard if the per-point scratch allocation is reintroduced (which
	// would add hundreds of allocations here).
	if a2 > a1+8 {
		t.Fatalf("silhouette allocations scale with n: %v for n=%d vs %v for n=%d",
			a1, len(small), a2, len(big))
	}
}
