package cluster

import (
	"math"
	"testing"
)

func TestMatrixRoundTrip(t *testing.T) {
	points := []Vector{{1, 2}, {3, 4}, {5, 6}}
	m := MatrixFromVectors(points)
	if m.Rows() != 3 || m.Dim() != 2 {
		t.Fatalf("shape = %d×%d, want 3×2", m.Rows(), m.Dim())
	}
	views := m.RowViews()
	for i, p := range points {
		for j := range p {
			if m.Row(i)[j] != p[j] || views[i][j] != p[j] {
				t.Fatalf("row %d component %d mismatch", i, j)
			}
		}
	}
	// MatrixFromVectors copies: mutating the source must not leak in.
	points[0][0] = 99
	if m.Row(0)[0] != 1 {
		t.Fatal("MatrixFromVectors aliases its input")
	}
	// Row views alias the backing array.
	views[1][0] = 42
	if m.Row(1)[0] != 42 {
		t.Fatal("RowViews does not alias the backing array")
	}
}

func TestMatrixRowCapClipped(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Row(1), []float64{7, 8, 9})
	row0 := m.Row(0)
	if cap(row0) != 3 {
		t.Fatalf("row cap = %d, want 3", cap(row0))
	}
	// Appending to a row view must reallocate, never clobber row 1.
	grown := append(row0, 999)
	_ = grown
	if m.Row(1)[0] != 7 {
		t.Fatal("append to a row view clobbered the next row")
	}
}

func TestMatrixZeroValue(t *testing.T) {
	var m Matrix
	if !m.IsZero() {
		t.Fatal("zero value not IsZero")
	}
	if m.Rows() != 0 {
		t.Fatalf("zero value Rows = %d", m.Rows())
	}
	if err := validateMatrix(m); err == nil {
		t.Fatal("validateMatrix accepted the zero value")
	}
	if got := MatrixFromVectors(nil); !got.IsZero() {
		t.Fatal("MatrixFromVectors(nil) not zero")
	}
}

func TestMatrixValidateRejectsNonFinite(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[1] = math.NaN()
	if err := validateMatrix(m); err == nil {
		t.Fatal("validateMatrix accepted NaN")
	}
	m.Row(1)[1] = math.Inf(1)
	if err := validateMatrix(m); err == nil {
		t.Fatal("validateMatrix accepted +Inf")
	}
	m.Row(1)[1] = 0
	if err := validateMatrix(m); err != nil {
		t.Fatalf("validateMatrix rejected finite matrix: %v", err)
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(1, 0) did not panic")
		}
	}()
	NewMatrix(1, 0)
}
