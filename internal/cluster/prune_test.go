package cluster

import (
	"fmt"
	"testing"

	"edgecachegroups/internal/simrand"
)

// runModes clusters the same input under every prune mode and worker
// count and asserts the results are bit-identical to the exhaustive
// serial reference: same assignments, same centers (exact float equality),
// same iteration count and convergence flag.
func runModes(t *testing.T, points []Vector, k int, seeder Seeder, opts Options, seed string) *Result {
	t.Helper()
	base := simrand.New(1)
	opts.Prune = PruneNone
	opts.Parallelism = 1
	ref, err := KMeans(points, k, seeder, opts, base.Split(seed))
	if err != nil {
		t.Fatalf("exhaustive reference: %v", err)
	}
	for _, mode := range []PruneMode{PruneNone, PruneAuto, PruneHamerly, PruneElkan} {
		for _, workers := range []int{1, 8} {
			o := opts
			o.Prune = mode
			o.Parallelism = workers
			got, err := KMeans(points, k, seeder, o, base.Split(seed))
			if err != nil {
				t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
			}
			label := fmt.Sprintf("mode=%v workers=%d", mode, workers)
			if got.Iterations != ref.Iterations || got.Converged != ref.Converged {
				t.Fatalf("%s: iterations/converged = %d/%v, want %d/%v",
					label, got.Iterations, got.Converged, ref.Iterations, ref.Converged)
			}
			for i := range ref.Assignments {
				if got.Assignments[i] != ref.Assignments[i] {
					t.Fatalf("%s: assignment[%d] = %d, want %d",
						label, i, got.Assignments[i], ref.Assignments[i])
				}
			}
			for c := range ref.Centers {
				for j := range ref.Centers[c] {
					if got.Centers[c][j] != ref.Centers[c][j] {
						t.Fatalf("%s: center[%d][%d] = %v, want %v (not bit-identical)",
							label, c, j, got.Centers[c][j], ref.Centers[c][j])
					}
				}
			}
		}
	}
	return ref
}

func TestPruneMatchesExhaustiveOnBlobs(t *testing.T) {
	src := simrand.New(42)
	points := threeBlobs(40, src)
	for _, k := range []int{1, 2, 3, 7} {
		runModes(t, points, k, UniformSeeder{}, DefaultOptions(), fmt.Sprintf("blobs/%d", k))
	}
}

func TestPruneMatchesExhaustiveOnUniformNoise(t *testing.T) {
	// Unstructured data: bounds are weak, so the pruned paths exercise the
	// full-scan fallback heavily.
	src := simrand.New(7)
	points := make([]Vector, 300)
	for i := range points {
		p := make(Vector, 6)
		for j := range p {
			p[j] = src.Uniform(0, 10)
		}
		points[i] = p
	}
	for _, k := range []int{2, 16} {
		runModes(t, points, k, SpreadSeeder{}, DefaultOptions(), fmt.Sprintf("noise/%d", k))
	}
}

func TestPruneMatchesExhaustiveWithDuplicatePoints(t *testing.T) {
	// Adversarial: many exactly-coincident points produce zero distances,
	// zero-drift centers, and distance ties everywhere.
	src := simrand.New(9)
	base := threeBlobs(10, src)
	var points []Vector
	for _, p := range base {
		points = append(points, p, p.Clone(), p.Clone())
	}
	for _, k := range []int{3, 5} {
		runModes(t, points, k, UniformSeeder{}, DefaultOptions(), fmt.Sprintf("dup/%d", k))
	}
}

func TestPruneMatchesExhaustiveKCloseToN(t *testing.T) {
	// k near n forces empty clusters and exercises the repair path, which
	// must invalidate the pruning bounds; a stale bound here would show up
	// as a divergent assignment.
	src := simrand.New(11)
	points := threeBlobs(6, src) // n = 18
	for _, k := range []int{15, 17, 18} {
		runModes(t, points, k, UniformSeeder{}, DefaultOptions(), fmt.Sprintf("kn/%d", k))
	}
}

func TestPruneMatchesExhaustiveOnTies(t *testing.T) {
	// Symmetric grid: every point is equidistant from multiple potential
	// centers, so nearly every nearest-center decision is a tie that must
	// resolve to the lowest center index in all modes.
	var points []Vector
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			points = append(points, Vector{float64(x), float64(y)})
		}
	}
	// Duplicate the grid so duplicate points coincide with the symmetry.
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			points = append(points, Vector{float64(x), float64(y)})
		}
	}
	for _, k := range []int{2, 4, 8} {
		runModes(t, points, k, UniformSeeder{}, DefaultOptions(), fmt.Sprintf("ties/%d", k))
	}
}

func TestPruneMatchesExhaustiveCoLocatedSeeds(t *testing.T) {
	// fixedSeeder picks indices 0 and 1, which are the same coordinates:
	// two co-located centers make every point's center choice a pure
	// lowest-index tie-break, and leave one cluster empty (repair fires).
	points := []Vector{{5, 5}, {5, 5}, {1, 0}, {2, 0}, {3, 0}, {9, 9}}
	runModes(t, points, 2, fixedSeeder{[]int{0, 1}}, DefaultOptions(), "coloc")
}

func TestPruneMatchesExhaustiveReassignFrac(t *testing.T) {
	// Loose termination: iteration stops early, so pruned modes must agree
	// on the per-round moved counts, not just the fixed point.
	src := simrand.New(13)
	points := threeBlobs(30, src)
	opts := DefaultOptions()
	opts.ReassignFrac = 0.05
	runModes(t, points, 3, UniformSeeder{}, opts, "frac")
}

func TestPruneReducesDistEvals(t *testing.T) {
	// Structured data at moderate scale: bounds pruning must eliminate the
	// bulk of the distance evaluations (the large-N bench pins the >=3x
	// acceptance ratio; this guards the mechanism in the unit suite).
	src := simrand.New(21)
	points := threeBlobs(400, src)
	base := simrand.New(2)
	run := func(mode PruneMode) *Result {
		opts := DefaultOptions()
		opts.Prune = mode
		res, err := KMeans(points, 3, UniformSeeder{}, opts, base.Split("evals"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ex := run(PruneNone)
	for _, mode := range []PruneMode{PruneHamerly, PruneElkan} {
		pr := run(mode)
		if pr.DistEvals >= ex.DistEvals {
			t.Fatalf("%v DistEvals = %d, not below exhaustive %d", mode, pr.DistEvals, ex.DistEvals)
		}
		t.Logf("%v: %d evals vs exhaustive %d (%.1fx fewer)",
			mode, pr.DistEvals, ex.DistEvals, float64(ex.DistEvals)/float64(pr.DistEvals))
	}
	if ex.DistEvals != int64(len(points)*3*(ex.Iterations+1)) {
		t.Fatalf("exhaustive DistEvals = %d, want n*k*(iters+1) = %d",
			ex.DistEvals, len(points)*3*(ex.Iterations+1))
	}
}

// TestPruneEvalRatioLargeBlobs guards the >=3x acceptance ratio on a
// scaled-down replica of the large-N benchmark geometry (bench_test.go's
// benchBlobMatrix: 64 well-separated blobs in 16 dimensions, k = 64). The
// full 100k-point config lives in BenchmarkKMeansFlat*; this runs the same
// shape at 20k points so the ratio stays pinned in the unit suite.
func TestPruneEvalRatioLargeBlobs(t *testing.T) {
	const (
		n, dim, k = 20_000, 16, 64
	)
	src := simrand.New(16)
	centers := NewMatrix(k, dim)
	for c := 0; c < k; c++ {
		row := centers.Row(c)
		for j := range row {
			row[j] = src.Uniform(0, 300)
		}
	}
	points := NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		c := centers.Row(i % k)
		row := points.Row(i)
		for j := range row {
			row[j] = c[j] + src.Uniform(-12, 12)
		}
	}
	base := simrand.New(2)
	run := func(mode PruneMode) *Result {
		opts := DefaultOptions()
		opts.Prune = mode
		res, err := KMeansMatrix(points, k, UniformSeeder{}, opts, base.Split("large"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ex := run(PruneNone)
	for _, mode := range []PruneMode{PruneHamerly, PruneElkan} {
		pr := run(mode)
		ratio := float64(ex.DistEvals) / float64(pr.DistEvals)
		t.Logf("%v: %d evals vs exhaustive %d (%.1fx fewer)", mode, pr.DistEvals, ex.DistEvals, ratio)
		if ratio < 3 {
			t.Fatalf("%v eliminates only %.1fx of the distance evaluations on the large-N geometry, want >= 3x",
				mode, ratio)
		}
	}
}

func TestKMeansMatrixSharesResultWithKMeans(t *testing.T) {
	src := simrand.New(3)
	points := threeBlobs(25, src)
	base := simrand.New(4)
	fromVecs, err := KMeans(points, 3, UniformSeeder{}, DefaultOptions(), base.Split("m"))
	if err != nil {
		t.Fatal(err)
	}
	fromMatrix, err := KMeansMatrix(MatrixFromVectors(points), 3, UniformSeeder{}, DefaultOptions(), base.Split("m"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fromVecs.Assignments {
		if fromVecs.Assignments[i] != fromMatrix.Assignments[i] {
			t.Fatalf("assignment[%d] differs between KMeans and KMeansMatrix", i)
		}
	}
	if fromVecs.DistEvals != fromMatrix.DistEvals {
		t.Fatalf("DistEvals differ: %d vs %d", fromVecs.DistEvals, fromMatrix.DistEvals)
	}
}

func TestPruneModeValidate(t *testing.T) {
	opts := DefaultOptions()
	opts.Prune = PruneMode(99)
	if err := opts.Validate(); err == nil {
		t.Fatal("Validate accepted unknown PruneMode")
	}
	for _, mode := range []PruneMode{PruneAuto, PruneNone, PruneHamerly, PruneElkan} {
		opts.Prune = mode
		if err := opts.Validate(); err != nil {
			t.Fatalf("Validate rejected %v: %v", mode, err)
		}
	}
}
