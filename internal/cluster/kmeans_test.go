package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"edgecachegroups/internal/simrand"
)

// threeBlobs returns 3 well-separated 2-D clusters of size m each.
func threeBlobs(m int, src *simrand.Source) []Vector {
	centers := []Vector{{0, 0}, {100, 0}, {0, 100}}
	var points []Vector
	for _, c := range centers {
		for i := 0; i < m; i++ {
			points = append(points, Vector{
				c[0] + src.Normal(0, 2),
				c[1] + src.Normal(0, 2),
			})
		}
	}
	return points
}

func TestL2(t *testing.T) {
	if got := L2(Vector{0, 0}, Vector{3, 4}); got != 5 {
		t.Fatalf("L2 = %v, want 5", got)
	}
	if got := L2(Vector{1, 2, 3}, Vector{1, 2, 3}); got != 0 {
		t.Fatalf("L2 identical = %v, want 0", got)
	}
}

func TestL2PanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L2 with mismatched dims did not panic")
		}
	}()
	L2(Vector{1}, Vector{1, 2})
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	src := simrand.New(1)
	points := threeBlobs(20, src)
	res, err := KMeans(points, 3, UniformSeeder{}, DefaultOptions(), src.Split("km"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("K-means did not converge on separable blobs")
	}
	if res.K() != 3 {
		t.Fatalf("K = %d, want 3", res.K())
	}
	// Every blob must map to a single cluster.
	for b := 0; b < 3; b++ {
		first := res.Assignments[b*20]
		for i := 0; i < 20; i++ {
			if got := res.Assignments[b*20+i]; got != first {
				t.Fatalf("blob %d split across clusters (%d vs %d)", b, first, got)
			}
		}
	}
	// And the three blobs map to three distinct clusters.
	if res.Assignments[0] == res.Assignments[20] ||
		res.Assignments[20] == res.Assignments[40] ||
		res.Assignments[0] == res.Assignments[40] {
		t.Fatal("blobs merged into one cluster")
	}
}

func TestKMeansValidation(t *testing.T) {
	src := simrand.New(2)
	points := []Vector{{1, 2}, {3, 4}}
	tests := []struct {
		name   string
		points []Vector
		k      int
		seeder Seeder
		opts   Options
	}{
		{name: "no points", points: nil, k: 1, seeder: UniformSeeder{}},
		{name: "zero dim", points: []Vector{{}}, k: 1, seeder: UniformSeeder{}},
		{name: "ragged dims", points: []Vector{{1}, {1, 2}}, k: 1, seeder: UniformSeeder{}},
		{name: "nan component", points: []Vector{{math.NaN()}}, k: 1, seeder: UniformSeeder{}},
		{name: "inf component", points: []Vector{{math.Inf(1)}}, k: 1, seeder: UniformSeeder{}},
		{name: "k zero", points: points, k: 0, seeder: UniformSeeder{}},
		{name: "k too big", points: points, k: 3, seeder: UniformSeeder{}},
		{name: "nil seeder", points: points, k: 1, seeder: nil},
		{name: "bad options", points: points, k: 1, seeder: UniformSeeder{}, opts: Options{MaxIterations: -1}},
		{name: "bad reassign frac", points: points, k: 1, seeder: UniformSeeder{}, opts: Options{ReassignFrac: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := KMeans(tt.points, tt.k, tt.seeder, tt.opts, src); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

// badSeeder returns broken seeds to exercise defensive checks.
type badSeeder struct {
	indices []int
}

func (b badSeeder) Seed([]Vector, int, *simrand.Source) ([]int, error) {
	return b.indices, nil
}

func TestKMeansRejectsBrokenSeeder(t *testing.T) {
	points := []Vector{{0}, {1}, {2}}
	src := simrand.New(3)
	tests := []struct {
		name    string
		indices []int
	}{
		{name: "wrong count", indices: []int{0}},
		{name: "out of range", indices: []int{0, 5}},
		{name: "negative", indices: []int{0, -1}},
		{name: "duplicate", indices: []int{1, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := KMeans(points, 2, badSeeder{tt.indices}, DefaultOptions(), src); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestKMeansInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := simrand.New(seed)
		n := 20 + src.Intn(40)
		k := 1 + src.Intn(8)
		points := make([]Vector, n)
		for i := range points {
			points[i] = Vector{src.Uniform(0, 100), src.Uniform(0, 100), src.Uniform(0, 100)}
		}
		res, err := KMeans(points, k, UniformSeeder{}, DefaultOptions(), src.Split("km"))
		if err != nil {
			return false
		}
		// Invariant 1: every point assigned to a valid cluster.
		if len(res.Assignments) != n {
			return false
		}
		for _, a := range res.Assignments {
			if a < 0 || a >= k {
				return false
			}
		}
		// Invariant 2: no empty clusters.
		for _, s := range res.Sizes() {
			if s == 0 {
				return false
			}
		}
		// Invariant 3: at convergence each point is at its nearest center.
		if res.Converged {
			for i := range points {
				if nearestCenter(points[i], res.Centers) != res.Assignments[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	points := []Vector{{0}, {10}, {20}, {30}}
	res, err := KMeans(points, 4, UniformSeeder{}, DefaultOptions(), simrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.Sizes()
	for c, s := range sizes {
		if s != 1 {
			t.Fatalf("cluster %d has size %d, want 1", c, s)
		}
	}
}

func TestKMeansKEqualsOne(t *testing.T) {
	points := []Vector{{0, 0}, {2, 0}, {4, 0}}
	res, err := KMeans(points, 1, UniformSeeder{}, DefaultOptions(), simrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Centers[0][0]; math.Abs(got-2) > 1e-9 {
		t.Fatalf("single-cluster mean = %v, want 2", got)
	}
	if got := res.Centers[0][1]; got != 0 {
		t.Fatalf("single-cluster mean y = %v, want 0", got)
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	points := []Vector{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(points, 2, UniformSeeder{}, DefaultOptions(), simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 4 {
		t.Fatalf("assignments = %v", res.Assignments)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	src1 := simrand.New(7)
	points1 := threeBlobs(15, src1)
	res1, err := KMeans(points1, 3, UniformSeeder{}, DefaultOptions(), src1.Split("km"))
	if err != nil {
		t.Fatal(err)
	}
	src2 := simrand.New(7)
	points2 := threeBlobs(15, src2)
	res2, err := KMeans(points2, 3, UniformSeeder{}, DefaultOptions(), src2.Split("km"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.Assignments {
		if res1.Assignments[i] != res2.Assignments[i] {
			t.Fatalf("non-deterministic assignment at %d", i)
		}
	}
}

func TestResultMembersAndWithinSS(t *testing.T) {
	points := []Vector{{0}, {1}, {100}, {101}}
	res, err := KMeans(points, 2, UniformSeeder{}, DefaultOptions(), simrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < 2; c++ {
		total += len(res.Members(c))
	}
	if total != 4 {
		t.Fatalf("Members cover %d points, want 4", total)
	}
	// Optimal SS: each pair clusters together -> SS = 2*(0.5^2)*2 = 1.
	if ss := res.WithinClusterSS(points); math.Abs(ss-1) > 1e-9 {
		t.Fatalf("WithinClusterSS = %v, want 1", ss)
	}
}

func TestUniformSeederDistinct(t *testing.T) {
	points := make([]Vector, 10)
	for i := range points {
		points[i] = Vector{float64(i)}
	}
	idx, err := UniformSeeder{}.Seed(points, 5, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("duplicate seed %d", i)
		}
		seen[i] = true
	}
}

func TestWeightedSeederBias(t *testing.T) {
	points := make([]Vector, 10)
	weights := make([]float64, 10)
	for i := range points {
		points[i] = Vector{float64(i)}
		weights[i] = 0.001
	}
	weights[3] = 1000 // index 3 should almost always be seeded
	src := simrand.New(10)
	hits := 0
	for trial := 0; trial < 100; trial++ {
		idx, err := WeightedSeeder{Weights: weights}.Seed(points, 2, src)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range idx {
			if i == 3 {
				hits++
			}
		}
	}
	if hits < 95 {
		t.Fatalf("heavy index seeded only %d/100 times", hits)
	}
}

func TestWeightedSeederErrors(t *testing.T) {
	points := []Vector{{0}, {1}}
	if _, err := (WeightedSeeder{Weights: []float64{1}}).Seed(points, 1, simrand.New(11)); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := (WeightedSeeder{Weights: []float64{0, 0}}).Seed(points, 1, simrand.New(11)); err == nil {
		t.Fatal("all-zero weights accepted")
	}
}

func TestSpreadSeederCoversBlobs(t *testing.T) {
	src := simrand.New(12)
	points := threeBlobs(10, src)
	idx, err := SpreadSeeder{}.Seed(points, 3, src.Split("seed"))
	if err != nil {
		t.Fatal(err)
	}
	// The three seeds should land in three different blobs.
	blobs := make(map[int]bool)
	for _, i := range idx {
		blobs[i/10] = true
	}
	if len(blobs) != 3 {
		t.Fatalf("spread seeds cover %d blobs, want 3 (indices %v)", len(blobs), idx)
	}
}

func TestSpreadSeederDuplicatePoints(t *testing.T) {
	points := []Vector{{5}, {5}, {5}}
	idx, err := SpreadSeeder{}.Seed(points, 3, simrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("duplicate seed index %d", i)
		}
		seen[i] = true
	}
}

func TestSpreadSeederKTooLarge(t *testing.T) {
	if _, err := (SpreadSeeder{}).Seed([]Vector{{1}}, 2, simrand.New(14)); err == nil {
		t.Fatal("oversized k accepted")
	}
}

func TestSuggestKFindsPlantedClusterCount(t *testing.T) {
	src := simrand.New(20)
	points := threeBlobs(20, src)
	k, curve, err := SuggestK(points, 8, SpreadSeeder{}, DefaultOptions(), src.Split("sk"))
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Fatalf("SuggestK = %d, want 3 (curve %v)", k, curve)
	}
	if len(curve) != 8 {
		t.Fatalf("curve length = %d", len(curve))
	}
	// SS must be non-increasing in k (up to convergence noise at blobs).
	if curve[0] <= curve[2] {
		t.Fatalf("SS did not fall from k=1 (%v) to k=3 (%v)", curve[0], curve[2])
	}
}

func TestSuggestKErrors(t *testing.T) {
	src := simrand.New(21)
	if _, _, err := SuggestK(nil, 3, UniformSeeder{}, DefaultOptions(), src); err == nil {
		t.Fatal("empty points accepted")
	}
	points := []Vector{{1}, {2}, {3}}
	if _, _, err := SuggestK(points, 1, UniformSeeder{}, DefaultOptions(), src); err == nil {
		t.Fatal("kMax=1 accepted")
	}
	// kMax > n clamps instead of erroring.
	k, curve, err := SuggestK(points, 10, UniformSeeder{}, DefaultOptions(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 || k < 1 || k > 3 {
		t.Fatalf("clamped SuggestK = %d, curve %v", k, curve)
	}
	// Nil seeder defaults.
	if _, _, err := SuggestK(points, 3, nil, DefaultOptions(), src); err != nil {
		t.Fatalf("nil seeder rejected: %v", err)
	}
}

func TestSuggestKIdenticalPoints(t *testing.T) {
	src := simrand.New(22)
	points := []Vector{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	k, _, err := SuggestK(points, 4, UniformSeeder{}, DefaultOptions(), src)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("identical points SuggestK = %d, want 1", k)
	}
}

// fixedSeeder returns a predetermined seed index set, so tests can steer
// the initialization phase into a specific configuration.
type fixedSeeder struct {
	indices []int
}

func (f fixedSeeder) Seed([]Vector, int, *simrand.Source) ([]int, error) {
	return f.indices, nil
}

func TestKMeansFinalCentersAreMeans(t *testing.T) {
	// Crafted 1-D input whose last reassignment round empties cluster 0:
	// after the round-one recompute the cluster {0, 10} has mean 5, point 0
	// flees to cluster 1 (mean -2) and point 10 flees to cluster 2 (mean
	// 14.1). MaxIterations=1 ends the loop right there, so the post-loop
	// empty-cluster repair must fire: it steals point 21 (farthest from its
	// mean) into cluster 0, staling the donor cluster's center. The
	// repair-then-recompute loop must leave Centers exactly equal to the
	// member means of the final Assignments; before that loop existed the
	// donor center kept the stolen point's contribution.
	points := []Vector{{0}, {10}, {-1}, {-3}, {21}, {10.6}, {10.7}}
	res, err := KMeans(points, 3, fixedSeeder{[]int{0, 2, 4}}, Options{MaxIterations: 1}, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	wantAssign := []int{1, 2, 1, 1, 0, 2, 2}
	for i, a := range res.Assignments {
		if a != wantAssign[i] {
			t.Fatalf("assignments = %v, want %v (crafted repair scenario did not materialize)", res.Assignments, wantAssign)
		}
	}
	for c := 0; c < res.K(); c++ {
		members := res.Members(c)
		if len(members) == 0 {
			t.Fatalf("cluster %d left empty", c)
		}
		var mean float64
		for _, i := range members {
			mean += points[i][0]
		}
		mean /= float64(len(members))
		if got := res.Centers[c][0]; math.Abs(got-mean) > 1e-12 {
			t.Fatalf("cluster %d center = %v, want member mean %v (stale center)", c, got, mean)
		}
	}
}

func TestKMeansReassignFracBoundary(t *testing.T) {
	// Exactly 15 of 22 points move in round one: one anchor at -1, a blob
	// of 15 near 0 that is dragged to the anchor when two far heavyweights
	// pull the second seeded center to ~2858, and 6 heavyweights that stay.
	// ReassignFrac = 15/22 must count that round as converged; the old
	// int-truncated threshold int(15.0/22.0*22) == 14 wrongly demanded
	// another round.
	points := []Vector{{-1}}
	for i := 0; i < 15; i++ {
		points = append(points, Vector{0.1 * float64(i)})
	}
	for i := 0; i < 6; i++ {
		points = append(points, Vector{10000 + float64(i)})
	}
	res, err := KMeans(points, 2, fixedSeeder{[]int{0, 1}}, Options{MaxIterations: 10, ReassignFrac: 15.0 / 22.0}, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 1 {
		t.Fatalf("converged=%v after %d iterations, want convergence in exactly 1 (fraction threshold truncated)", res.Converged, res.Iterations)
	}
}

func TestKMeansParallelismInvariant(t *testing.T) {
	src := simrand.New(31)
	points := threeBlobs(70, src) // 210 points spans multiple 64-point chunks
	var base *Result
	for _, par := range []int{1, 3, 8} {
		opts := Options{MaxIterations: 50, Parallelism: par}
		res, err := KMeans(points, 5, UniformSeeder{}, opts, simrand.New(31).Split("seed"))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		for i, a := range res.Assignments {
			if a != base.Assignments[i] {
				t.Fatalf("Parallelism=%d: assignment %d = %d, want %d", par, i, a, base.Assignments[i])
			}
		}
		for c := range res.Centers {
			for j, x := range res.Centers[c] {
				if x != base.Centers[c][j] {
					t.Fatalf("Parallelism=%d: center %d coord %d = %v, want %v (bit-identical)", par, c, j, x, base.Centers[c][j])
				}
			}
		}
		if res.Iterations != base.Iterations || res.Converged != base.Converged {
			t.Fatalf("Parallelism=%d: iterations/converged %d/%v, want %d/%v", par, res.Iterations, res.Converged, base.Iterations, base.Converged)
		}
	}
}

func TestKMeansIterationPhaseAllocationFree(t *testing.T) {
	// The per-iteration scratch lives in one buffer struct allocated up
	// front, so running many more iterations must not allocate more than
	// running few: the iterative phase itself is allocation-free.
	src := simrand.New(17)
	points := threeBlobs(50, src)
	run := func(iters int) (float64, int) {
		rounds := 0
		allocs := testing.AllocsPerRun(10, func() {
			opts := Options{MaxIterations: iters}
			res, err := KMeans(points, 6, UniformSeeder{}, opts, simrand.New(5).Split("s"))
			if err != nil {
				t.Fatal(err)
			}
			rounds = res.Iterations
		})
		return allocs, rounds
	}
	few, fewRounds := run(1)
	many, manyRounds := run(64)
	if manyRounds <= fewRounds {
		t.Fatalf("test needs the long run to iterate more (%d vs %d rounds)", manyRounds, fewRounds)
	}
	if many > few {
		t.Fatalf("allocations grew with iteration count: %v at %d rounds vs %v at %d", few, fewRounds, many, manyRounds)
	}
}

func TestMembersAllMatchesMembers(t *testing.T) {
	src := simrand.New(9)
	points := threeBlobs(20, src)
	res, err := KMeans(points, 4, UniformSeeder{}, Options{MaxIterations: 20}, src.Split("km"))
	if err != nil {
		t.Fatal(err)
	}
	all := res.MembersAll()
	if len(all) != res.K() {
		t.Fatalf("MembersAll returned %d clusters, want %d", len(all), res.K())
	}
	for c := 0; c < res.K(); c++ {
		want := res.Members(c)
		if len(all[c]) != len(want) {
			t.Fatalf("cluster %d: MembersAll has %d members, Members has %d", c, len(all[c]), len(want))
		}
		for i := range want {
			if all[c][i] != want[i] {
				t.Fatalf("cluster %d member %d: MembersAll %d, Members %d", c, i, all[c][i], want[i])
			}
		}
	}
}
