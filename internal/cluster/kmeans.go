package cluster

import (
	"fmt"

	"edgecachegroups/internal/simrand"
)

// Options tunes the K-means iteration (paper §3.3).
type Options struct {
	// MaxIterations bounds the iterative phase. Zero means the default (100).
	MaxIterations int
	// ReassignFrac is the termination threshold: iteration stops once the
	// fraction of points reassigned in a round is <= ReassignFrac. The paper
	// terminates when reassignments "become minimal"; the default is 0
	// (strict convergence).
	ReassignFrac float64
}

// DefaultOptions returns the options used in the experiments.
func DefaultOptions() Options {
	return Options{MaxIterations: 100, ReassignFrac: 0}
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	return o
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.MaxIterations < 0 {
		return fmt.Errorf("cluster: MaxIterations must be >= 0, got %d", o.MaxIterations)
	}
	if o.ReassignFrac < 0 || o.ReassignFrac >= 1 {
		return fmt.Errorf("cluster: ReassignFrac must be in [0,1), got %v", o.ReassignFrac)
	}
	return nil
}

// Result describes a completed clustering.
type Result struct {
	// Assignments maps each point index to its cluster in [0,K).
	Assignments []int
	// Centers are the final cluster mean vectors.
	Centers []Vector
	// Iterations is the number of iterative-phase rounds executed.
	Iterations int
	// Converged reports whether the termination condition was met before
	// MaxIterations.
	Converged bool
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centers) }

// Members returns the point indices of cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assignments {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// Sizes returns the member count of every cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, len(r.Centers))
	for _, a := range r.Assignments {
		sizes[a]++
	}
	return sizes
}

// WithinClusterSS returns the total within-cluster sum of squared L2
// distances (the K-means objective).
func (r *Result) WithinClusterSS(points []Vector) float64 {
	var sum float64
	for i, a := range r.Assignments {
		sum += sqL2(points[i], r.Centers[a])
	}
	return sum
}

// KMeans partitions points into k clusters. The seeder picks the initial
// centers; src drives all randomness. The algorithm follows the paper's
// three phases: initialization (seed + nearest-center assignment),
// iteration (recompute means, reassign), and termination (when the number
// of reassignments becomes minimal).
func KMeans(points []Vector, k int, seeder Seeder, opts Options, src *simrand.Source) (*Result, error) {
	if err := validatePoints(points); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := len(points)
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("cluster: k=%d exceeds number of points %d", k, n)
	}
	if seeder == nil {
		return nil, fmt.Errorf("cluster: nil seeder")
	}
	opts = opts.withDefaults()

	// Initialization phase.
	seedIdx, err := seeder.Seed(points, k, src)
	if err != nil {
		return nil, fmt.Errorf("seed centers: %w", err)
	}
	if len(seedIdx) != k {
		return nil, fmt.Errorf("cluster: seeder returned %d centers, want %d", len(seedIdx), k)
	}
	seen := make(map[int]bool, k)
	centers := make([]Vector, k)
	for c, idx := range seedIdx {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("cluster: seeder returned out-of-range index %d", idx)
		}
		if seen[idx] {
			return nil, fmt.Errorf("cluster: seeder returned duplicate index %d", idx)
		}
		seen[idx] = true
		centers[c] = points[idx].Clone()
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = nearestCenter(points[i], centers)
	}

	// Iterative phase.
	res := &Result{Assignments: assign, Centers: centers}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		recomputeCenters(points, res.Assignments, res.Centers)
		repairEmptyClusters(points, res.Assignments, res.Centers)
		moved := 0
		for i := range points {
			if c := nearestCenter(points[i], res.Centers); c != res.Assignments[i] {
				res.Assignments[i] = c
				moved++
			}
		}
		res.Iterations = iter + 1
		// The termination threshold is a true fraction: int truncation would
		// turn e.g. ReassignFrac=0.01 at n=50 into strict convergence.
		if float64(moved)/float64(n) <= opts.ReassignFrac {
			res.Converged = true
			break
		}
	}
	// Final means must reflect the final assignment. A repair moves a point
	// between clusters, which stales the donor's (and recipient's) mean, so
	// iterate repair→recompute until no repair fires: Result.Centers must be
	// exactly the means of Result.Assignments.
	recomputeCenters(points, res.Assignments, res.Centers)
	for repairEmptyClusters(points, res.Assignments, res.Centers) {
		recomputeCenters(points, res.Assignments, res.Centers)
	}
	return res, nil
}

// nearestCenter returns the index of the center closest to p (ties go to
// the lowest index for determinism).
func nearestCenter(p Vector, centers []Vector) int {
	best := 0
	bestD := sqL2(p, centers[0])
	for c := 1; c < len(centers); c++ {
		if d := sqL2(p, centers[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// recomputeCenters sets each center to the mean of its members. Centers of
// empty clusters are left untouched (repairEmptyClusters handles them).
func recomputeCenters(points []Vector, assign []int, centers []Vector) {
	dim := len(points[0])
	k := len(centers)
	sums := make([][]float64, k)
	counts := make([]int, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	for i, a := range assign {
		counts[a]++
		for j, x := range points[i] {
			sums[a][j] += x
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := 0; j < dim; j++ {
			centers[c][j] = sums[c][j] / float64(counts[c])
		}
	}
}

// repairEmptyClusters re-seeds any empty cluster at the point currently
// farthest from its assigned center, stealing it from a cluster with more
// than one member. This keeps all K groups non-degenerate, which the group
// formation problem requires (K disjoint non-empty groups). It reports
// whether any assignment changed, so callers can recompute the affected
// means.
func repairEmptyClusters(points []Vector, assign []int, centers []Vector) bool {
	k := len(centers)
	counts := make([]int, k)
	for _, a := range assign {
		counts[a]++
	}
	repaired := false
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			continue
		}
		// Farthest point whose cluster can spare it.
		best := -1
		var bestD float64
		for i, a := range assign {
			if counts[a] <= 1 {
				continue
			}
			if d := sqL2(points[i], centers[assign[i]]); best < 0 || d > bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			continue // cannot repair (k == n with duplicates); leave empty
		}
		counts[assign[best]]--
		assign[best] = c
		counts[c] = 1
		centers[c] = points[best].Clone()
		repaired = true
	}
	return repaired
}
