package cluster

import (
	"fmt"

	"edgecachegroups/internal/par"
	"edgecachegroups/internal/simrand"
)

// Options tunes the K-means iteration (paper §3.3).
type Options struct {
	// MaxIterations bounds the iterative phase. Zero means the default (100).
	MaxIterations int
	// ReassignFrac is the termination threshold: iteration stops once the
	// fraction of points reassigned in a round is <= ReassignFrac. The paper
	// terminates when reassignments "become minimal"; the default is 0
	// (strict convergence).
	ReassignFrac float64
	// Parallelism bounds the worker pool for the assignment and
	// center-recomputation phases; 0 or 1 means serial. Results are
	// bit-identical across all settings: work is split into fixed index
	// chunks whose partial sums are reduced in chunk order, so the floating
	// point reduction tree never depends on the worker count.
	Parallelism int
}

// DefaultOptions returns the options used in the experiments.
func DefaultOptions() Options {
	return Options{MaxIterations: 100, ReassignFrac: 0}
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	return o
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.MaxIterations < 0 {
		return fmt.Errorf("cluster: MaxIterations must be >= 0, got %d", o.MaxIterations)
	}
	if o.ReassignFrac < 0 || o.ReassignFrac >= 1 {
		return fmt.Errorf("cluster: ReassignFrac must be in [0,1), got %v", o.ReassignFrac)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("cluster: Parallelism must be >= 0, got %d", o.Parallelism)
	}
	return nil
}

// Result describes a completed clustering.
type Result struct {
	// Assignments maps each point index to its cluster in [0,K).
	Assignments []int
	// Centers are the final cluster mean vectors.
	Centers []Vector
	// Iterations is the number of iterative-phase rounds executed.
	Iterations int
	// Converged reports whether the termination condition was met before
	// MaxIterations.
	Converged bool
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centers) }

// Members returns the point indices of cluster c. Callers that need every
// cluster's members should use MembersAll, which builds the full inverse
// mapping in one pass instead of one scan per cluster.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assignments {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// MembersAll returns the members of every cluster, indexed by cluster ID,
// in a single pass over the assignments (O(n+k), versus O(n·k) for calling
// Members in a loop). Empty clusters yield nil slices.
func (r *Result) MembersAll() [][]int {
	return membersAll(r.Assignments, len(r.Centers))
}

// membersAll builds the cluster -> member-indices inverse of assign.
func membersAll(assign []int, k int) [][]int {
	sizes := make([]int, k)
	for _, a := range assign {
		sizes[a]++
	}
	out := make([][]int, k)
	for c, s := range sizes {
		if s > 0 {
			out[c] = make([]int, 0, s)
		}
	}
	for i, a := range assign {
		out[a] = append(out[a], i)
	}
	return out
}

// Sizes returns the member count of every cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, len(r.Centers))
	for _, a := range r.Assignments {
		sizes[a]++
	}
	return sizes
}

// WithinClusterSS returns the total within-cluster sum of squared L2
// distances (the K-means objective).
func (r *Result) WithinClusterSS(points []Vector) float64 {
	var sum float64
	for i, a := range r.Assignments {
		sum += sqL2(points[i], r.Centers[a])
	}
	return sum
}

// pointChunk is the fixed number of points per work chunk. It is a
// constant — never derived from the worker count — so the chunk-order
// reduction in recomputeCenters produces bit-identical centers for every
// Options.Parallelism setting.
const pointChunk = 64

// kmScratch holds the per-iteration working buffers of one KMeans call.
// Allocating them once (instead of per round) keeps the iterative phase
// allocation-free regardless of how many rounds run.
type kmScratch struct {
	k, dim      int
	chunkSums   [][]float64 // per chunk: flattened k×dim partial sums
	chunkCounts [][]int     // per chunk: per-cluster member counts
	moved       []int       // per chunk: reassignments in the last round
	sums        []float64   // flattened k×dim chunk-order reduction target
	counts      []int       // per-cluster totals (also reused by repair)
}

func newKMScratch(n, k, dim int) *kmScratch {
	nc := par.Chunks(n, pointChunk)
	sc := &kmScratch{
		k:           k,
		dim:         dim,
		chunkSums:   make([][]float64, nc),
		chunkCounts: make([][]int, nc),
		moved:       make([]int, nc),
		sums:        make([]float64, k*dim),
		counts:      make([]int, k),
	}
	for c := range sc.chunkSums {
		sc.chunkSums[c] = make([]float64, k*dim)
		sc.chunkCounts[c] = make([]int, k)
	}
	return sc
}

// KMeans partitions points into k clusters. The seeder picks the initial
// centers; src drives all randomness. The algorithm follows the paper's
// three phases: initialization (seed + nearest-center assignment),
// iteration (recompute means, reassign), and termination (when the number
// of reassignments becomes minimal). The assignment and center phases run
// on a worker pool bounded by opts.Parallelism; the result is invariant to
// the worker count.
func KMeans(points []Vector, k int, seeder Seeder, opts Options, src *simrand.Source) (*Result, error) {
	if err := validatePoints(points); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := len(points)
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("cluster: k=%d exceeds number of points %d", k, n)
	}
	if seeder == nil {
		return nil, fmt.Errorf("cluster: nil seeder")
	}
	opts = opts.withDefaults()

	// Initialization phase.
	seedIdx, err := seeder.Seed(points, k, src)
	if err != nil {
		return nil, fmt.Errorf("seed centers: %w", err)
	}
	if len(seedIdx) != k {
		return nil, fmt.Errorf("cluster: seeder returned %d centers, want %d", len(seedIdx), k)
	}
	seen := make(map[int]bool, k)
	centers := make([]Vector, k)
	for c, idx := range seedIdx {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("cluster: seeder returned out-of-range index %d", idx)
		}
		if seen[idx] {
			return nil, fmt.Errorf("cluster: seeder returned duplicate index %d", idx)
		}
		seen[idx] = true
		centers[c] = points[idx].Clone()
	}

	// Parallelism 0 means serial here (not the pool default): clustering is
	// frequently invoked from already-parallel sweep points, so spinning up
	// goroutines must be an explicit opt-in.
	workers := opts.Parallelism
	if workers == 0 {
		workers = 1
	}
	sc := newKMScratch(n, k, len(points[0]))

	assign := make([]int, n)
	par.ForEachChunk(n, pointChunk, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			assign[i] = nearestCenter(points[i], centers)
		}
	})

	// Iterative phase.
	res := &Result{Assignments: assign, Centers: centers}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		recomputeCenters(points, res.Assignments, res.Centers, sc, workers)
		repairEmptyClusters(points, res.Assignments, res.Centers, sc.counts)
		moved := reassignAll(points, res.Assignments, res.Centers, sc, workers)
		res.Iterations = iter + 1
		// The termination threshold is a true fraction: int truncation would
		// turn e.g. ReassignFrac=0.01 at n=50 into strict convergence.
		if float64(moved)/float64(n) <= opts.ReassignFrac {
			res.Converged = true
			break
		}
	}
	// Final means must reflect the final assignment. A repair moves a point
	// between clusters, which stales the donor's (and recipient's) mean, so
	// iterate repair→recompute until no repair fires: Result.Centers must be
	// exactly the means of Result.Assignments.
	recomputeCenters(points, res.Assignments, res.Centers, sc, workers)
	for repairEmptyClusters(points, res.Assignments, res.Centers, sc.counts) {
		recomputeCenters(points, res.Assignments, res.Centers, sc, workers)
	}
	return res, nil
}

// reassignAll moves every point to its nearest center and returns the
// number of reassignments. Each point's decision is independent, so the
// chunked parallel sweep is trivially worker-count-invariant. The serial
// path calls the chunk body directly — no closure — so the per-round hot
// path stays allocation-free.
func reassignAll(points []Vector, assign []int, centers []Vector, sc *kmScratch, workers int) int {
	n := len(points)
	if workers <= 1 {
		nc := par.Chunks(n, pointChunk)
		for c := 0; c < nc; c++ {
			lo, hi := par.ChunkBounds(n, pointChunk, c)
			reassignChunk(points, assign, centers, sc, c, lo, hi)
		}
	} else {
		par.ForEachChunk(n, pointChunk, workers, func(chunk, lo, hi int) {
			reassignChunk(points, assign, centers, sc, chunk, lo, hi)
		})
	}
	total := 0
	for _, m := range sc.moved {
		total += m
	}
	return total
}

// reassignChunk reassigns the points of one chunk and records the chunk's
// move count in sc.moved.
func reassignChunk(points []Vector, assign []int, centers []Vector, sc *kmScratch, chunk, lo, hi int) {
	moved := 0
	for i := lo; i < hi; i++ {
		if c := nearestCenter(points[i], centers); c != assign[i] {
			assign[i] = c
			moved++
		}
	}
	sc.moved[chunk] = moved
}

// nearestCenter returns the index of the center closest to p (ties go to
// the lowest index for determinism).
func nearestCenter(p Vector, centers []Vector) int {
	best := 0
	bestD := sqL2(p, centers[0])
	for c := 1; c < len(centers); c++ {
		if d := sqL2(p, centers[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// recomputeCenters sets each center to the mean of its members. Centers of
// empty clusters are left untouched (repairEmptyClusters handles them).
// Per-chunk partial sums are accumulated in parallel and reduced in chunk
// order, so the result is bit-identical for every worker count.
func recomputeCenters(points []Vector, assign []int, centers []Vector, sc *kmScratch, workers int) {
	n := len(points)
	dim := sc.dim
	if workers <= 1 {
		nc := par.Chunks(n, pointChunk)
		for c := 0; c < nc; c++ {
			lo, hi := par.ChunkBounds(n, pointChunk, c)
			accumCenterChunk(points, assign, sc, c, lo, hi)
		}
	} else {
		par.ForEachChunk(n, pointChunk, workers, func(chunk, lo, hi int) {
			accumCenterChunk(points, assign, sc, chunk, lo, hi)
		})
	}
	sums, counts := sc.sums, sc.counts
	for i := range sums {
		sums[i] = 0
	}
	for i := range counts {
		counts[i] = 0
	}
	for c := range sc.chunkSums {
		for i, v := range sc.chunkSums[c] {
			sums[i] += v
		}
		for i, v := range sc.chunkCounts[c] {
			counts[i] += v
		}
	}
	for c := 0; c < sc.k; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := 0; j < dim; j++ {
			centers[c][j] = sums[c*dim+j] / float64(counts[c])
		}
	}
}

// accumCenterChunk zeroes and fills one chunk's partial sums and counts.
func accumCenterChunk(points []Vector, assign []int, sc *kmScratch, chunk, lo, hi int) {
	dim := sc.dim
	sums := sc.chunkSums[chunk]
	counts := sc.chunkCounts[chunk]
	for i := range sums {
		sums[i] = 0
	}
	for i := range counts {
		counts[i] = 0
	}
	for i := lo; i < hi; i++ {
		a := assign[i]
		counts[a]++
		row := sums[a*dim : (a+1)*dim]
		for j, x := range points[i] {
			row[j] += x
		}
	}
}

// repairEmptyClusters re-seeds any empty cluster at the point currently
// farthest from its assigned center, stealing it from a cluster with more
// than one member. This keeps all K groups non-degenerate, which the group
// formation problem requires (K disjoint non-empty groups). It reports
// whether any assignment changed, so callers can recompute the affected
// means. counts is a caller-provided scratch buffer of length k,
// overwritten on every call.
func repairEmptyClusters(points []Vector, assign []int, centers []Vector, counts []int) bool {
	k := len(centers)
	for c := range counts {
		counts[c] = 0
	}
	for _, a := range assign {
		counts[a]++
	}
	repaired := false
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			continue
		}
		// Farthest point whose cluster can spare it.
		best := -1
		var bestD float64
		for i, a := range assign {
			if counts[a] <= 1 {
				continue
			}
			if d := sqL2(points[i], centers[assign[i]]); best < 0 || d > bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			continue // cannot repair (k == n with duplicates); leave empty
		}
		counts[assign[best]]--
		assign[best] = c
		counts[c] = 1
		centers[c] = points[best].Clone()
		repaired = true
	}
	return repaired
}
