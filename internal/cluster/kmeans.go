package cluster

import (
	"fmt"

	"edgecachegroups/internal/par"
	"edgecachegroups/internal/simrand"
)

// PruneMode selects the reassignment strategy of the K-means iterative
// phase. All modes produce bit-identical results — assignments, centers,
// iteration counts, and therefore Plan checksums — at every Parallelism
// setting; pruning only skips distance evaluations it can prove would not
// change the outcome (see prune.go for the exactness argument).
type PruneMode int

const (
	// PruneAuto is the default: Hamerly-style bounds pruning.
	PruneAuto PruneMode = iota
	// PruneNone disables pruning: every point scans every center each
	// round (the paper's literal Lloyd's iteration). The reference the
	// pruned paths are golden-tested against.
	PruneNone
	// PruneHamerly maintains one upper and one lower bound per point
	// (O(n) extra memory) and skips points whose bounds prove their
	// assignment cannot change.
	PruneHamerly
	// PruneElkan additionally maintains one lower bound per (point,
	// center) pair (O(n·k) extra memory), pruning individual centers
	// inside the scan. Worth it at large k; too memory-hungry for
	// million-point runs at high k, hence opt-in.
	PruneElkan
)

// String implements fmt.Stringer.
func (p PruneMode) String() string {
	switch p {
	case PruneAuto:
		return "auto"
	case PruneNone:
		return "none"
	case PruneHamerly:
		return "hamerly"
	case PruneElkan:
		return "elkan"
	default:
		return fmt.Sprintf("PruneMode(%d)", int(p))
	}
}

// Options tunes the K-means iteration (paper §3.3).
type Options struct {
	// MaxIterations bounds the iterative phase. Zero means the default (100).
	MaxIterations int
	// ReassignFrac is the termination threshold: iteration stops once the
	// fraction of points reassigned in a round is <= ReassignFrac. The paper
	// terminates when reassignments "become minimal"; the default is 0
	// (strict convergence).
	ReassignFrac float64
	// Parallelism bounds the worker pool for the assignment and
	// center-recomputation phases; 0 or 1 means serial. Results are
	// bit-identical across all settings: work is split into fixed index
	// chunks whose partial sums are reduced in chunk order, so the floating
	// point reduction tree never depends on the worker count.
	Parallelism int
	// Prune selects the reassignment strategy (default: Hamerly bounds
	// pruning). Every mode returns the exact same clustering — including
	// the lowest-index winner on distance ties — so the knob trades
	// distance evaluations for bound bookkeeping, never accuracy.
	Prune PruneMode
}

// DefaultOptions returns the options used in the experiments.
func DefaultOptions() Options {
	return Options{MaxIterations: 100, ReassignFrac: 0}
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	return o
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.MaxIterations < 0 {
		return fmt.Errorf("cluster: MaxIterations must be >= 0, got %d", o.MaxIterations)
	}
	if o.ReassignFrac < 0 || o.ReassignFrac >= 1 {
		return fmt.Errorf("cluster: ReassignFrac must be in [0,1), got %v", o.ReassignFrac)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("cluster: Parallelism must be >= 0, got %d", o.Parallelism)
	}
	switch o.Prune {
	case PruneAuto, PruneNone, PruneHamerly, PruneElkan:
	default:
		return fmt.Errorf("cluster: unknown PruneMode %d", int(o.Prune))
	}
	return nil
}

// resolvePrune maps the option to a concrete mode.
func resolvePrune(p PruneMode) PruneMode {
	if p == PruneAuto {
		return PruneHamerly
	}
	return p
}

// Result describes a completed clustering.
type Result struct {
	// Assignments maps each point index to its cluster in [0,K).
	Assignments []int
	// Centers are the final cluster mean vectors. They are row views of
	// one flat backing array.
	Centers []Vector
	// Iterations is the number of iterative-phase rounds executed.
	Iterations int
	// Converged reports whether the termination condition was met before
	// MaxIterations.
	Converged bool
	// DistEvals counts the point-to-center distance evaluations performed
	// by the assignment phases (initial assignment plus every
	// reassignment round). It is the diffable measure of how much work
	// bounds pruning saved versus the exhaustive n·k-per-round sweep; the
	// large-N benchmarks report it as evals/op.
	DistEvals int64
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centers) }

// Members returns the point indices of cluster c. Callers that need every
// cluster's members should use MembersAll, which builds the full inverse
// mapping in one pass instead of one scan per cluster.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assignments {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// MembersAll returns the members of every cluster, indexed by cluster ID,
// in a single pass over the assignments (O(n+k), versus O(n·k) for calling
// Members in a loop). Empty clusters yield nil slices.
func (r *Result) MembersAll() [][]int {
	return membersAll(r.Assignments, len(r.Centers))
}

// membersAll builds the cluster -> member-indices inverse of assign.
func membersAll(assign []int, k int) [][]int {
	sizes := make([]int, k)
	for _, a := range assign {
		sizes[a]++
	}
	out := make([][]int, k)
	for c, s := range sizes {
		if s > 0 {
			out[c] = make([]int, 0, s)
		}
	}
	for i, a := range assign {
		out[a] = append(out[a], i)
	}
	return out
}

// Sizes returns the member count of every cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, len(r.Centers))
	for _, a := range r.Assignments {
		sizes[a]++
	}
	return sizes
}

// WithinClusterSS returns the total within-cluster sum of squared L2
// distances (the K-means objective).
func (r *Result) WithinClusterSS(points []Vector) float64 {
	var sum float64
	for i, a := range r.Assignments {
		sum += sqL2(points[i], r.Centers[a])
	}
	return sum
}

// WithinClusterSSMatrix is WithinClusterSS over a flat feature matrix.
func (r *Result) WithinClusterSSMatrix(points Matrix) float64 {
	var sum float64
	for i, a := range r.Assignments {
		sum += sqL2(points.Row(i), r.Centers[a])
	}
	return sum
}

// pointChunk is the fixed number of points per work chunk. It is a
// constant — never derived from the worker count — so the chunk-order
// reduction in recomputeCenters produces bit-identical centers for every
// Options.Parallelism setting.
const pointChunk = 64

// kmScratch holds the per-iteration working buffers of one KMeans call.
// Allocating them once (instead of per round) keeps the iterative phase
// allocation-free regardless of how many rounds run.
type kmScratch struct {
	k, dim      int
	mode        PruneMode   // resolved mode (never PruneAuto)
	points      Matrix      // the flat feature store being clustered
	centers     []float64   // flat k×dim center matrix (Result.Centers views it)
	chunkSums   [][]float64 // per chunk: flattened k×dim partial sums
	chunkCounts [][]int     // per chunk: per-cluster member counts
	moved       []int       // per chunk: reassignments in the last round
	evals       []int64     // per chunk: distance evaluations (cumulative)
	sums        []float64   // flattened k×dim chunk-order reduction target
	counts      []int       // per-cluster totals (also reused by repair)

	// Bounds-pruning state (see prune.go); nil in PruneNone mode.
	upper      []float64 // per point: upper bound on dist to assigned center
	lower      []float64 // per point: lower bound on dist to 2nd-closest center
	oldCenters []float64 // flat center snapshot from before recomputation
	drift      []float64 // per center: movement in the last recomputation
	sep        []float64 // per center: half the distance to its nearest peer
	halfCD     []float64 // Elkan only: flat k×k half inter-center distances
	lbAll      []float64 // Elkan only: flat n×k per-(point,center) lower bounds
	maxDrift   float64
}

func newKMScratch(points Matrix, k int, mode PruneMode) *kmScratch {
	n, dim := points.Rows(), points.Dim()
	nc := par.Chunks(n, pointChunk)
	sc := &kmScratch{
		k:           k,
		dim:         dim,
		mode:        mode,
		points:      points,
		centers:     make([]float64, k*dim),
		chunkSums:   make([][]float64, nc),
		chunkCounts: make([][]int, nc),
		moved:       make([]int, nc),
		evals:       make([]int64, nc),
		sums:        make([]float64, k*dim),
		counts:      make([]int, k),
	}
	for c := range sc.chunkSums {
		sc.chunkSums[c] = make([]float64, k*dim)
		sc.chunkCounts[c] = make([]int, k)
	}
	if mode != PruneNone {
		sc.upper = make([]float64, n)
		sc.lower = make([]float64, n)
		sc.oldCenters = make([]float64, k*dim)
		sc.drift = make([]float64, k)
		sc.sep = make([]float64, k)
	}
	if mode == PruneElkan {
		sc.halfCD = make([]float64, k*k)
		sc.lbAll = make([]float64, n*k)
	}
	return sc
}

// pointRow returns point i's flat row.
func (sc *kmScratch) pointRow(i int) []float64 { return sc.points.Row(i) }

// centerRow returns center c's flat row.
func (sc *kmScratch) centerRow(c int) []float64 {
	lo := c * sc.dim
	hi := lo + sc.dim
	return sc.centers[lo:hi:hi]
}

// oldCenterRow returns the pre-recomputation snapshot of center c.
func (sc *kmScratch) oldCenterRow(c int) []float64 {
	lo := c * sc.dim
	hi := lo + sc.dim
	return sc.oldCenters[lo:hi:hi]
}

// totalEvals sums the per-chunk distance-evaluation counters.
func (sc *kmScratch) totalEvals() int64 {
	var total int64
	for _, e := range sc.evals {
		total += e
	}
	return total
}

// KMeans partitions points into k clusters. The seeder picks the initial
// centers; src drives all randomness. The algorithm follows the paper's
// three phases: initialization (seed + nearest-center assignment),
// iteration (recompute means, reassign), and termination (when the number
// of reassignments becomes minimal).
//
// This is the []Vector-shaped adapter: it copies the points into a flat
// Matrix once (which also improves locality for the iteration) and runs
// KMeansMatrix. Callers that already hold a flat feature store — the
// formation pipeline does — should call KMeansMatrix directly and skip
// the copy.
func KMeans(points []Vector, k int, seeder Seeder, opts Options, src *simrand.Source) (*Result, error) {
	if err := validatePoints(points); err != nil {
		return nil, err
	}
	return KMeansMatrix(MatrixFromVectors(points), k, seeder, opts, src)
}

// KMeansMatrix is KMeans over a flat feature matrix — the
// million-cache-scale entry point. The assignment and center phases run on
// a worker pool bounded by opts.Parallelism, and the reassignment sweep
// prunes provably-unchanged points with triangle-inequality bounds
// (opts.Prune); the result is invariant to both knobs.
func KMeansMatrix(points Matrix, k int, seeder Seeder, opts Options, src *simrand.Source) (*Result, error) {
	if err := validateMatrix(points); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := points.Rows()
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("cluster: k=%d exceeds number of points %d", k, n)
	}
	if seeder == nil {
		return nil, fmt.Errorf("cluster: nil seeder")
	}
	opts = opts.withDefaults()
	mode := resolvePrune(opts.Prune)

	// Initialization phase.
	seedIdx, err := seedCenters(seeder, points, k, src)
	if err != nil {
		return nil, err
	}
	sc := newKMScratch(points, k, mode)
	centers := make([]Vector, k)
	for c := range centers {
		centers[c] = sc.centerRow(c)
	}
	for c, idx := range seedIdx {
		copy(sc.centerRow(c), points.Row(idx))
	}

	// Parallelism 0 means serial here (not the pool default): clustering is
	// frequently invoked from already-parallel sweep points, so spinning up
	// goroutines must be an explicit opt-in.
	workers := opts.Parallelism
	if workers == 0 {
		workers = 1
	}

	assign := make([]int, n)
	// Initial assignment: a full scan that doubles as bounds
	// initialization in the pruned modes.
	runSweep(sc, sweepAssign, assign, workers)

	// Iterative phase.
	res := &Result{Assignments: assign, Centers: centers}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if mode != PruneNone {
			copy(sc.oldCenters, sc.centers)
		}
		recomputeCenters(sc, assign, workers)
		repaired := repairEmptyClusters(sc, assign)
		var moved int
		if mode == PruneNone || repaired {
			// A repair moved points and rewrote a center mid-round, so
			// the maintained bounds no longer hold; re-initialize them
			// with a full sweep (which is exactly what the exhaustive
			// path runs every round).
			moved = reassignFull(sc, assign, workers)
		} else {
			moved = reassignPruned(sc, assign, workers)
		}
		res.Iterations = iter + 1
		// The termination threshold is a true fraction: int truncation would
		// turn e.g. ReassignFrac=0.01 at n=50 into strict convergence.
		if float64(moved)/float64(n) <= opts.ReassignFrac {
			res.Converged = true
			break
		}
	}
	// Final means must reflect the final assignment. A repair moves a point
	// between clusters, which stales the donor's (and recipient's) mean, so
	// iterate repair→recompute until no repair fires: Result.Centers must be
	// exactly the means of Result.Assignments.
	recomputeCenters(sc, assign, workers)
	for repairEmptyClusters(sc, assign) {
		recomputeCenters(sc, assign, workers)
	}
	res.DistEvals = sc.totalEvals()
	return res, nil
}

// seedCenters runs the seeder (through its Matrix fast path when
// available) and validates the returned indices.
func seedCenters(seeder Seeder, points Matrix, k int, src *simrand.Source) ([]int, error) {
	var seedIdx []int
	var err error
	if ms, ok := seeder.(MatrixSeeder); ok {
		seedIdx, err = ms.SeedMatrix(points, k, src)
	} else {
		// Fallback for external seeders: one header-slice allocation of
		// row views, no data copies.
		seedIdx, err = seeder.Seed(points.RowViews(), k, src)
	}
	if err != nil {
		return nil, fmt.Errorf("seed centers: %w", err)
	}
	if len(seedIdx) != k {
		return nil, fmt.Errorf("cluster: seeder returned %d centers, want %d", len(seedIdx), k)
	}
	n := points.Rows()
	seen := make(map[int]bool, k)
	for _, idx := range seedIdx {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("cluster: seeder returned out-of-range index %d", idx)
		}
		if seen[idx] {
			return nil, fmt.Errorf("cluster: seeder returned duplicate index %d", idx)
		}
		seen[idx] = true
	}
	return seedIdx, nil
}

// sweepKind names the per-chunk body runSweep dispatches to. Dispatching
// on a plain value (rather than passing a closure) keeps the serial
// iterative path free of per-round closure allocations.
type sweepKind int

const (
	// sweepAssign fully scans every center per point; in pruned modes it
	// also (re)initializes the point bounds.
	sweepAssign sweepKind = iota
	// sweepPruned runs the mode-specific bounds-pruned reassignment.
	sweepPruned
	// sweepAccum accumulates per-chunk center sums and counts.
	sweepAccum
)

// sweepChunk runs one chunk of the given sweep kind.
func sweepChunk(sc *kmScratch, kind sweepKind, assign []int, chunk, lo, hi int) {
	switch kind {
	case sweepAssign:
		fullScanChunk(sc, assign, chunk, lo, hi)
	case sweepPruned:
		if sc.mode == PruneElkan {
			elkanChunk(sc, assign, chunk, lo, hi)
		} else {
			hamerlyChunk(sc, assign, chunk, lo, hi)
		}
	case sweepAccum:
		accumCenterChunk(sc, assign, chunk, lo, hi)
	}
}

// runSweep runs a sweep kind over the fixed point chunks. The serial path
// calls the chunk body directly — no closure, no goroutines — so a serial
// iteration round performs zero allocations.
func runSweep(sc *kmScratch, kind sweepKind, assign []int, workers int) {
	n := sc.points.Rows()
	if workers <= 1 {
		nc := par.Chunks(n, pointChunk)
		for c := 0; c < nc; c++ {
			lo, hi := par.ChunkBounds(n, pointChunk, c)
			sweepChunk(sc, kind, assign, c, lo, hi)
		}
		return
	}
	par.ForEachChunk(n, pointChunk, workers, func(chunk, lo, hi int) {
		sweepChunk(sc, kind, assign, chunk, lo, hi)
	})
}

// movedTotal sums the per-chunk reassignment counts of the last sweep.
func movedTotal(sc *kmScratch) int {
	total := 0
	for _, m := range sc.moved {
		total += m
	}
	return total
}

// reassignFull moves every point to its nearest center with a full scan
// (re-initializing the pruning bounds as a side effect in pruned modes)
// and returns the number of reassignments.
func reassignFull(sc *kmScratch, assign []int, workers int) int {
	runSweep(sc, sweepAssign, assign, workers)
	return movedTotal(sc)
}

// reassignPruned runs one bounds-pruned reassignment round: update the
// center drifts and separations, then sweep the chunks with the
// mode-specific pruning body.
func reassignPruned(sc *kmScratch, assign []int, workers int) int {
	updateDrift(sc)
	updateSeparation(sc)
	runSweep(sc, sweepPruned, assign, workers)
	return movedTotal(sc)
}

// recomputeCenters sets each center to the mean of its members. Centers of
// empty clusters are left untouched (repairEmptyClusters handles them).
// Per-chunk partial sums are accumulated in parallel and reduced in chunk
// order, so the result is bit-identical for every worker count.
func recomputeCenters(sc *kmScratch, assign []int, workers int) {
	runSweep(sc, sweepAccum, assign, workers)
	sums, counts := sc.sums, sc.counts
	for i := range sums {
		sums[i] = 0
	}
	for i := range counts {
		counts[i] = 0
	}
	for c := range sc.chunkSums {
		for i, v := range sc.chunkSums[c] {
			sums[i] += v
		}
		for i, v := range sc.chunkCounts[c] {
			counts[i] += v
		}
	}
	dim := sc.dim
	for c := 0; c < sc.k; c++ {
		if counts[c] == 0 {
			continue
		}
		row := sc.centerRow(c)
		inv := 1 / float64(counts[c])
		for j := 0; j < dim; j++ {
			row[j] = sums[c*dim+j] * inv
		}
	}
}

// accumCenterChunk zeroes and fills one chunk's partial sums and counts.
func accumCenterChunk(sc *kmScratch, assign []int, chunk, lo, hi int) {
	dim := sc.dim
	sums := sc.chunkSums[chunk]
	counts := sc.chunkCounts[chunk]
	for i := range sums {
		sums[i] = 0
	}
	for i := range counts {
		counts[i] = 0
	}
	for i := lo; i < hi; i++ {
		a := assign[i]
		counts[a]++
		row := sums[a*dim : (a+1)*dim]
		for j, x := range sc.pointRow(i) {
			row[j] += x
		}
	}
}

// repairEmptyClusters re-seeds any empty cluster at the point currently
// farthest from its assigned center, stealing it from a cluster with more
// than one member. This keeps all K groups non-degenerate, which the group
// formation problem requires (K disjoint non-empty groups). It reports
// whether any assignment changed, so callers can recompute the affected
// means (and, in pruned modes, re-initialize the now-invalid bounds).
func repairEmptyClusters(sc *kmScratch, assign []int) bool {
	k := sc.k
	counts := sc.counts
	for c := range counts {
		counts[c] = 0
	}
	for _, a := range assign {
		counts[a]++
	}
	repaired := false
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			continue
		}
		// Farthest point whose cluster can spare it.
		best := -1
		var bestD float64
		for i, a := range assign {
			if counts[a] <= 1 {
				continue
			}
			if d := sqL2(sc.pointRow(i), sc.centerRow(a)); best < 0 || d > bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			continue // cannot repair (k == n with duplicates); leave empty
		}
		counts[assign[best]]--
		assign[best] = c
		counts[c] = 1
		copy(sc.centerRow(c), sc.pointRow(best))
		repaired = true
	}
	return repaired
}

// nearestCenter returns the index of the center closest to p (ties go to
// the lowest index for determinism). Retained for []Vector callers; the
// flat sweeps use the chunk bodies in prune.go.
func nearestCenter(p Vector, centers []Vector) int {
	best := 0
	bestD := sqL2(p, centers[0])
	for c := 1; c < len(centers); c++ {
		if d := sqL2(p, centers[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
