package cluster

import "fmt"

// Matrix is a flat, struct-of-arrays feature store: n rows of dim float64
// components in one contiguous backing array. It is the million-cache
// representation of the pipeline's feature set — building features for N
// caches costs O(1) slice allocations (the backing array plus one header
// slice for row views) instead of one scattered heap allocation per cache,
// and the contiguous layout keeps the K-means distance kernel streaming
// through memory instead of chasing pointers.
//
// A Matrix is a value; copying it aliases the backing array. Row returns a
// capacity-clipped view into the backing array, so appending to a row can
// never silently overwrite its neighbor.
type Matrix struct {
	data []float64
	dim  int
}

// NewMatrix returns an n×dim matrix backed by one zeroed allocation.
func NewMatrix(n, dim int) Matrix {
	if n < 0 || dim <= 0 {
		panic(fmt.Sprintf("cluster: invalid matrix shape %d×%d", n, dim))
	}
	return Matrix{data: make([]float64, n*dim), dim: dim}
}

// MatrixFromVectors copies points into a freshly allocated flat matrix.
// All points must share one non-zero dimension (callers validate via
// validatePoints; this panics on ragged input).
func MatrixFromVectors(points []Vector) Matrix {
	if len(points) == 0 {
		return Matrix{}
	}
	m := NewMatrix(len(points), len(points[0]))
	for i, p := range points {
		copy(m.Row(i), p)
	}
	return m
}

// IsZero reports whether the matrix is the empty zero value.
func (m Matrix) IsZero() bool { return m.data == nil }

// Rows returns the number of rows.
func (m Matrix) Rows() int {
	if m.dim == 0 {
		return 0
	}
	return len(m.data) / m.dim
}

// Dim returns the per-row component count.
func (m Matrix) Dim() int { return m.dim }

// Data returns the flat row-major backing array (row i occupies
// [i*Dim, (i+1)*Dim)). It is the bridge to flat-writing producers like
// gnp.EmbedHostsInto; mutating it mutates the matrix.
func (m Matrix) Data() []float64 { return m.data }

// Row returns row i as a view into the backing array. The view's capacity
// is clipped to the row, so an append reallocates instead of clobbering
// row i+1.
func (m Matrix) Row(i int) Vector {
	lo := i * m.dim
	hi := lo + m.dim
	return m.data[lo:hi:hi]
}

// RowViews returns every row as a Vector view in one allocation (the
// header slice). The views alias the backing array: mutating a view
// mutates the matrix. This is the bridge to the []Vector-shaped APIs
// (Plan.Features, Seeder, Silhouette) — N caches cost one header
// allocation, not N vector allocations.
func (m Matrix) RowViews() []Vector {
	n := m.Rows()
	out := make([]Vector, n)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// validateMatrix checks the matrix is non-empty with finite components,
// mirroring validatePoints for the flat representation.
func validateMatrix(m Matrix) error {
	if m.Rows() == 0 {
		return fmt.Errorf("cluster: no points")
	}
	if m.dim == 0 {
		return fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, x := range m.data {
		if isNaNOrInf(x) {
			return fmt.Errorf("cluster: point %d component %d is %v", i/m.dim, i%m.dim, x)
		}
	}
	return nil
}
