package cluster

import (
	"fmt"

	"edgecachegroups/internal/simrand"
)

// KMedoids partitions points into k clusters around medoids (actual
// points) using a Voronoi-iteration PAM variant: assign every point to its
// nearest medoid, then move each medoid to the member of its cluster that
// minimizes the total within-cluster distance, until stable.
//
// The paper notes that "any standard clustering algorithm may be similarly
// modified" for the SDSL seeding rule; K-medoids is the natural second
// choice because its centers are real caches (useful when a group needs a
// distinguished coordinator node). The same Seeder abstraction applies:
// the SDSL WeightedSeeder biases the initial medoids toward the origin.
//
// The returned Result is shaped like KMeans's: Centers hold the medoid
// coordinates (copies of input points).
func KMedoids(points []Vector, k int, seeder Seeder, opts Options, src *simrand.Source) (*Result, error) {
	if err := validatePoints(points); err != nil {
		return nil, err
	}
	return kmedoids(points, k, seeder, opts, src)
}

// KMedoidsMatrix is KMedoids over a flat feature matrix. The medoid swap
// phase is inherently O(n²) per cluster, so unlike KMeansMatrix there is
// no large-N fast path — this adapter exists so Matrix-holding callers
// (the formation pipeline) can use either algorithm through one shape. It
// costs one row-view header allocation and no data copies.
func KMedoidsMatrix(points Matrix, k int, seeder Seeder, opts Options, src *simrand.Source) (*Result, error) {
	if err := validateMatrix(points); err != nil {
		return nil, err
	}
	return kmedoids(points.RowViews(), k, seeder, opts, src)
}

func kmedoids(points []Vector, k int, seeder Seeder, opts Options, src *simrand.Source) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := len(points)
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("cluster: k=%d exceeds number of points %d", k, n)
	}
	if seeder == nil {
		return nil, fmt.Errorf("cluster: nil seeder")
	}
	opts = opts.withDefaults()

	seedIdx, err := seeder.Seed(points, k, src)
	if err != nil {
		return nil, fmt.Errorf("seed medoids: %w", err)
	}
	if len(seedIdx) != k {
		return nil, fmt.Errorf("cluster: seeder returned %d medoids, want %d", len(seedIdx), k)
	}
	medoids := make([]int, k)
	seen := make(map[int]bool, k)
	for c, idx := range seedIdx {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("cluster: seeder returned out-of-range index %d", idx)
		}
		if seen[idx] {
			return nil, fmt.Errorf("cluster: seeder returned duplicate index %d", idx)
		}
		seen[idx] = true
		medoids[c] = idx
	}

	assign := make([]int, n)
	assignAll := func() int {
		moved := 0
		for i := range points {
			best := 0
			bestD := sqL2(points[i], points[medoids[0]])
			for c := 1; c < k; c++ {
				if d := sqL2(points[i], points[medoids[c]]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				moved++
			}
		}
		return moved
	}
	// Initial assignment (count everything as moved).
	for i := range assign {
		assign[i] = -1
	}
	assignAll()

	res := &Result{Assignments: assign}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		// Update step: each medoid becomes the member minimizing the total
		// distance to its cluster. One membersAll pass builds every cluster's
		// member list at once (O(n+k) instead of O(n·k) scans).
		allMembers := membersAll(assign, k)
		changed := false
		for c := 0; c < k; c++ {
			members := allMembers[c]
			if len(members) == 0 {
				continue
			}
			best := medoids[c]
			bestCost := clusterCost(points, members, best)
			for _, cand := range members {
				if cand == best {
					continue
				}
				if cost := clusterCost(points, members, cand); cost < bestCost {
					best, bestCost = cand, cost
				}
			}
			if best != medoids[c] {
				medoids[c] = best
				changed = true
			}
		}
		moved := assignAll()
		res.Iterations = iter + 1
		// True-fraction threshold, matching KMeans (int truncation would
		// silently tighten the documented ReassignFrac semantics).
		if !changed && float64(moved)/float64(n) <= opts.ReassignFrac {
			res.Converged = true
			break
		}
	}

	res.Centers = make([]Vector, k)
	for c, m := range medoids {
		res.Centers[c] = points[m].Clone()
	}
	// Guarantee non-empty clusters the same way KMeans does.
	repairEmptyClustersVec(points, res.Assignments, res.Centers, make([]int, k))
	return res, nil
}

// repairEmptyClustersVec is the []Vector-shaped twin of the flat
// repairEmptyClusters in kmeans.go: it re-seeds each empty cluster at the
// point farthest from its assigned center, stolen from a cluster that can
// spare it.
func repairEmptyClustersVec(points []Vector, assign []int, centers []Vector, counts []int) bool {
	for c := range counts {
		counts[c] = 0
	}
	for _, a := range assign {
		counts[a]++
	}
	repaired := false
	for c := range centers {
		if counts[c] > 0 {
			continue
		}
		best := -1
		var bestD float64
		for i, a := range assign {
			if counts[a] <= 1 {
				continue
			}
			if d := sqL2(points[i], centers[a]); best < 0 || d > bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			continue
		}
		counts[assign[best]]--
		assign[best] = c
		counts[c] = 1
		centers[c] = points[best].Clone()
		repaired = true
	}
	return repaired
}

// clusterCost is the total L2 distance from candidate medoid cand to the
// members.
func clusterCost(points []Vector, members []int, cand int) float64 {
	var sum float64
	for _, m := range members {
		sum += L2(points[m], points[cand])
	}
	return sum
}
