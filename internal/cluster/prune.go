package cluster

import "math"

// This file implements the triangle-inequality bounds pruning of the
// K-means reassignment sweep (Hamerly's single-bound algorithm by default,
// Elkan's per-center bounds behind Options.Prune). Pruning must be
// invisible: the contract is that every mode returns the exact assignment
// the exhaustive sweep would, including the lowest-index winner on
// distance ties, so Plan checksums stay bit-identical.
//
// Why the pruning is exact
//
// The exhaustive sweep assigns each point to the center with the smallest
// *computed* squared distance, scanning centers in index order with a
// strict less-than (ties keep the lowest index). The pruned sweeps differ
// only in that they skip work they can prove irrelevant:
//
//   - A point is skipped entirely when its (inflated) upper bound on the
//     distance to its assigned center is strictly below both its
//     (deflated) lower bound on every other center and the (deflated)
//     half-distance to the assigned center's nearest peer. Both margins
//     are a relative 2^-40 — about a million times larger than the
//     relative error of the distance kernel (≲ dim·2^-52) yet a million
//     times smaller than anything that matters — so a successful skip
//     implies the true gap to every rival center is far larger than any
//     computed-value wobble: the exhaustive scan could not have chosen a
//     different center, nor hit a tie.
//   - When the bounds cannot prove anything, the point falls through to a
//     full scan that is line-for-line the exhaustive comparison: squared
//     distances from the shared sqL2 kernel, index order, strict
//     less-than. (Elkan mode may skip individual centers inside the scan,
//     with the same margin argument per center.)
//
// Skipped points keep their assignment — as the exhaustive sweep would
// have — so the per-round moved counts, the ReassignFrac termination, the
// iteration counts, and the final centers are all bit-identical across
// PruneNone, PruneHamerly, and PruneElkan, at every Parallelism setting.
//
// Bound maintenance (per round): each center's drift is the distance it
// moved during recomputation. A point's upper bound grows by its own
// center's drift; lower bounds shrink by the relevant drift (Hamerly: the
// max drift; Elkan: per center). Every update inflates upper bounds and
// deflates lower bounds by the 2^-40 margin, keeping them conservative
// against kernel rounding no matter how many rounds accumulate (the
// margins compound in the safe direction — bounds only loosen, which can
// cost a skip but never correctness). Empty-cluster repair rewrites a
// center outside this bookkeeping, so the round after a repair re-derives
// all bounds with a full sweep.

// boundMargin is the relative safety margin applied to every bound
// update: upper bounds are inflated by (1 + boundMargin), lower bounds
// and separations deflated by (1 - boundMargin). 2^-40 dwarfs the
// distance kernel's relative rounding error (≲ dim·2^-52 for any sane
// dim) while costing essentially no pruning power.
const boundMargin = 0x1p-40

// inflate returns a value certainly >= x's true quantity, given x was
// computed within boundMargin relative error.
func inflate(x float64) float64 { return x * (1 + boundMargin) }

// deflate returns a value certainly <= x's true quantity, given x >= 0
// was computed within boundMargin relative error.
func deflate(x float64) float64 { return x * (1 - boundMargin) }

// fullScanChunk assigns each point in the chunk to its nearest center by
// scanning all k centers — the exhaustive reassignment body. In pruned
// modes it additionally records fresh bounds, which makes it double as
// bounds (re)initialization after seeding and after an empty-cluster
// repair.
func fullScanChunk(sc *kmScratch, assign []int, chunk, lo, hi int) {
	k := sc.k
	mode := sc.mode
	moved := 0
	var evals int64
	for i := lo; i < hi; i++ {
		p := sc.pointRow(i)
		best := 0
		bestSq := sqL2(p, sc.centerRow(0))
		secondSq := math.Inf(1)
		if mode == PruneElkan {
			lbRow := sc.lbAll[i*k : (i+1)*k]
			lbRow[0] = deflate(math.Sqrt(bestSq))
			for c := 1; c < k; c++ {
				d := sqL2(p, sc.centerRow(c))
				lbRow[c] = deflate(math.Sqrt(d))
				if d < bestSq {
					secondSq = bestSq
					best, bestSq = c, d
				} else if d < secondSq {
					secondSq = d
				}
			}
		} else {
			for c := 1; c < k; c++ {
				d := sqL2(p, sc.centerRow(c))
				if d < bestSq {
					secondSq = bestSq
					best, bestSq = c, d
				} else if d < secondSq {
					secondSq = d
				}
			}
		}
		evals += int64(k)
		if best != assign[i] {
			assign[i] = best
			moved++
		}
		if mode != PruneNone {
			sc.upper[i] = inflate(math.Sqrt(bestSq))
			sc.lower[i] = deflate(math.Sqrt(secondSq))
		}
	}
	sc.moved[chunk] = moved
	sc.evals[chunk] += evals
}

// updateDrift records how far each center moved during the last
// recomputation, inflated so the stored drift certainly covers the true
// movement.
func updateDrift(sc *kmScratch) {
	maxDrift := 0.0
	for c := 0; c < sc.k; c++ {
		d := inflate(math.Sqrt(sqL2(sc.oldCenterRow(c), sc.centerRow(c))))
		sc.drift[c] = d
		if d > maxDrift {
			maxDrift = d
		}
	}
	sc.maxDrift = maxDrift
}

// updateSeparation records, for each center, (deflated) half the distance
// to its nearest other center: any point strictly closer to its center
// than that cannot be closer to any rival. Elkan mode also keeps the full
// half-distance matrix for per-center skips inside the scan.
func updateSeparation(sc *kmScratch) {
	k := sc.k
	for c := 0; c < k; c++ {
		sc.sep[c] = math.Inf(1)
	}
	for a := 0; a < k; a++ {
		rowA := sc.centerRow(a)
		for b := a + 1; b < k; b++ {
			h := deflate(0.5 * math.Sqrt(sqL2(rowA, sc.centerRow(b))))
			if sc.mode == PruneElkan {
				sc.halfCD[a*k+b] = h
				sc.halfCD[b*k+a] = h
			}
			if h < sc.sep[a] {
				sc.sep[a] = h
			}
			if h < sc.sep[b] {
				sc.sep[b] = h
			}
		}
	}
}

// hamerlyChunk runs one Hamerly-pruned reassignment round over a chunk:
// one upper and one lower bound per point, falling back to the exhaustive
// scan (recording fresh tight bounds) whenever the bounds cannot prove
// the assignment unchanged.
func hamerlyChunk(sc *kmScratch, assign []int, chunk, lo, hi int) {
	k := sc.k
	maxDrift := sc.maxDrift
	moved := 0
	var evals int64
	for i := lo; i < hi; i++ {
		a := assign[i]
		u := inflate(sc.upper[i] + sc.drift[a])
		l := sc.lower[i] - maxDrift
		if l < 0 {
			l = 0
		}
		l = deflate(l)
		bound := l
		if s := sc.sep[a]; bound < s {
			bound = s
		}
		if u < bound {
			sc.upper[i] = u
			sc.lower[i] = l
			continue
		}
		// Tighten the upper bound with the exact distance and retry.
		p := sc.pointRow(i)
		aSq := sqL2(p, sc.centerRow(a))
		evals++
		u = inflate(math.Sqrt(aSq))
		if u < bound {
			sc.upper[i] = u
			sc.lower[i] = l
			continue
		}
		// Full scan, identical to the exhaustive comparison; the
		// assigned center reuses its already-computed distance.
		best := 0
		var bestSq float64
		if a == 0 {
			bestSq = aSq
		} else {
			bestSq = sqL2(p, sc.centerRow(0))
			evals++
		}
		secondSq := math.Inf(1)
		for c := 1; c < k; c++ {
			var d float64
			if c == a {
				d = aSq
			} else {
				d = sqL2(p, sc.centerRow(c))
				evals++
			}
			if d < bestSq {
				secondSq = bestSq
				best, bestSq = c, d
			} else if d < secondSq {
				secondSq = d
			}
		}
		if best != a {
			assign[i] = best
			moved++
		}
		sc.upper[i] = inflate(math.Sqrt(bestSq))
		sc.lower[i] = deflate(math.Sqrt(secondSq))
	}
	sc.moved[chunk] = moved
	sc.evals[chunk] += evals
}

// elkanChunk runs one Elkan-pruned reassignment round over a chunk: per
// (point, center) lower bounds let it skip individual rival centers
// inside the scan, on top of the whole-point separation skip. The scan
// visits centers in index order with the assigned center participating at
// its natural position, so the surviving comparisons are exactly the
// exhaustive ones.
func elkanChunk(sc *kmScratch, assign []int, chunk, lo, hi int) {
	k := sc.k
	moved := 0
	var evals int64
	for i := lo; i < hi; i++ {
		a := assign[i]
		lbRow := sc.lbAll[i*k : (i+1)*k]
		for c := 0; c < k; c++ {
			lb := lbRow[c] - sc.drift[c]
			if lb < 0 {
				lb = 0
			}
			lbRow[c] = deflate(lb)
		}
		u := inflate(sc.upper[i] + sc.drift[a])
		if u < sc.sep[a] {
			sc.upper[i] = u
			continue
		}
		p := sc.pointRow(i)
		aSq := sqL2(p, sc.centerRow(a))
		evals++
		aDist := math.Sqrt(aSq)
		u = inflate(aDist)
		lbRow[a] = deflate(aDist)
		if u < sc.sep[a] {
			sc.upper[i] = u
			continue
		}
		halfRow := sc.halfCD[a*k : (a+1)*k]
		best := -1
		var bestSq float64
		for c := 0; c < k; c++ {
			var d float64
			if c == a {
				d = aSq
			} else {
				if u < lbRow[c] || u < halfRow[c] {
					continue // provably strictly farther than center a
				}
				d = sqL2(p, sc.centerRow(c))
				evals++
				lbRow[c] = deflate(math.Sqrt(d))
			}
			if best < 0 || d < bestSq {
				best, bestSq = c, d
			}
		}
		if best != a {
			assign[i] = best
			moved++
		}
		sc.upper[i] = inflate(math.Sqrt(bestSq))
	}
	sc.moved[chunk] = moved
	sc.evals[chunk] += evals
}
