package cluster

import (
	"testing"

	"edgecachegroups/internal/simrand"
)

func TestSilhouetteSeparatedBlobs(t *testing.T) {
	src := simrand.New(1)
	points := threeBlobs(15, src)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = i / 15
	}
	s, err := Silhouette(points, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.8 {
		t.Fatalf("silhouette of well-separated blobs = %v, want > 0.8", s)
	}
}

func TestSilhouetteBadPartitionIsWorse(t *testing.T) {
	src := simrand.New(2)
	points := threeBlobs(15, src)
	good := make([]int, len(points))
	bad := make([]int, len(points))
	for i := range points {
		good[i] = i / 15
		bad[i] = i % 3 // scrambles blobs across clusters
	}
	gs, err := Silhouette(points, good, 3)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Silhouette(points, bad, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gs <= bs {
		t.Fatalf("good partition (%v) not better than scrambled (%v)", gs, bs)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	points := []Vector{{1}, {2}}
	if _, err := Silhouette(nil, nil, 1); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, err := Silhouette(points, []int{0}, 1); err == nil {
		t.Fatal("mismatched assignments accepted")
	}
	if _, err := Silhouette(points, []int{0, 5}, 2); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	if _, err := Silhouette(points, []int{0, 0}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSilhouetteSingleCluster(t *testing.T) {
	points := []Vector{{1}, {2}, {3}}
	s, err := Silhouette(points, []int{0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("single-cluster silhouette = %v, want 0", s)
	}
}

func TestSilhouetteSingletons(t *testing.T) {
	points := []Vector{{0}, {100}}
	s, err := Silhouette(points, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("all-singleton silhouette = %v, want 0", s)
	}
}
