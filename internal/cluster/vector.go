// Package cluster implements the K-means clustering engine used by the SL,
// SDSL, and Euclidean group formation schemes. Initial-center seeding is
// pluggable: the SL scheme seeds uniformly at random, while the SDSL scheme
// seeds with probability inversely proportional to a cache's distance from
// the origin server (paper §4.1).
package cluster

import (
	"fmt"
	"math"
)

// Vector is a point in feature space: for the SL/SDSL schemes, the vector
// of measured RTTs from a cache to each landmark; for the Euclidean scheme,
// GNP coordinates.
type Vector []float64

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// L2 returns the Euclidean distance between a and b. It panics if the
// dimensions differ; dimension agreement is validated once at clustering
// entry, making this hot-path function panic-free in practice.
func L2(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("cluster: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// sqL2 returns the squared Euclidean distance (cheaper for comparisons).
func sqL2(a, b Vector) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// validatePoints checks that all points share one finite, non-zero
// dimension.
func validatePoints(points []Vector) error {
	if len(points) == 0 {
		return fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
		for j, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("cluster: point %d component %d is %v", i, j, x)
			}
		}
	}
	return nil
}
