// Package cluster implements the K-means clustering engine used by the SL,
// SDSL, and Euclidean group formation schemes. Initial-center seeding is
// pluggable: the SL scheme seeds uniformly at random, while the SDSL scheme
// seeds with probability inversely proportional to a cache's distance from
// the origin server (paper §4.1).
package cluster

import (
	"fmt"
	"math"
)

// Vector is a point in feature space: for the SL/SDSL schemes, the vector
// of measured RTTs from a cache to each landmark; for the Euclidean scheme,
// GNP coordinates.
type Vector []float64

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// L2 returns the Euclidean distance between a and b. It panics if the
// dimensions differ; dimension agreement is validated once at clustering
// entry, making this hot-path function panic-free in practice.
func L2(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("cluster: dimension mismatch %d vs %d", len(a), len(b)))
	}
	return math.Sqrt(sqL2(a, b))
}

// sqL2 returns the squared Euclidean distance (cheaper for comparisons).
//
// The kernel is the formation pipeline's innermost loop (every K-means
// assignment decision funnels through it), so it is written in the
// unrolled flat-row form: four independent accumulators break the
// floating-point add dependency chain, and the up-front length clip lets
// the compiler hoist the bounds checks out of the loop. Both K-means
// reassignment paths (exhaustive and bounds-pruned) and every other
// cluster-package distance share this one kernel, so their computed
// distances — and therefore every nearest-center comparison — are
// identical by construction.
func sqL2(a, b Vector) float64 {
	b = b[:len(a)] // one bounds check here instead of one per component
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// isNaNOrInf reports whether x is NaN or ±Inf without the math-package
// call overhead in validation loops over flat matrices.
func isNaNOrInf(x float64) bool {
	return x != x || x > math.MaxFloat64 || x < -math.MaxFloat64
}

// validatePoints checks that all points share one finite, non-zero
// dimension.
func validatePoints(points []Vector) error {
	if len(points) == 0 {
		return fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
		for j, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("cluster: point %d component %d is %v", i, j, x)
			}
		}
	}
	return nil
}
