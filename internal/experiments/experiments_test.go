package experiments

import (
	"strings"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := []Options{
		{Seed: 1, Scale: 0},
		{Seed: 1, Scale: -1},
		{Seed: 1, Scale: 1.5},
		{Seed: 1, Scale: 1, Parallelism: -1},
		{Seed: 1, Scale: 1, Trials: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("bad options %d accepted", i)
		}
	}
}

func TestScaleInt(t *testing.T) {
	o := Options{Scale: 0.5}
	if got := o.scaleInt(100, 10); got != 50 {
		t.Fatalf("scaleInt(100) = %d, want 50", got)
	}
	if got := o.scaleInt(10, 10); got != 10 {
		t.Fatalf("scaleInt floor = %d, want 10", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Columns: []string{"a", "long column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "long column", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestKSweep(t *testing.T) {
	ks := kSweep(500)
	want := []int{10, 25, 50, 75, 100}
	if len(ks) != len(want) {
		t.Fatalf("kSweep(500) = %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("kSweep(500) = %v, want %v", ks, want)
		}
	}
	// Small n deduplicates and stays >= 2.
	for _, k := range kSweep(20) {
		if k < 2 {
			t.Fatalf("kSweep(20) contains %d", k)
		}
	}
}

func TestLandmarksFor(t *testing.T) {
	l, m := landmarksFor(500)
	if l != 25 || m != 4 {
		t.Fatalf("landmarksFor(500) = (%d,%d)", l, m)
	}
	l, m = landmarksFor(40)
	if m*(l-1) > 40 {
		t.Fatalf("landmarksFor(40) = (%d,%d) violates PLSet bound", l, m)
	}
	l, m = landmarksFor(2)
	if l < 2 || m < 1 {
		t.Fatalf("landmarksFor(2) = (%d,%d)", l, m)
	}
}

// testOptions returns the scaled-down options used by the shape tests.
func testOptions(trials int) Options {
	return Options{Seed: 11, Scale: 0.24, Parallelism: 4, Trials: trials}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := Fig3(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 4 {
		t.Fatalf("too few sweep points: %d", len(res.Points))
	}
	// U-shape on the all-caches series: the minimum is interior or near
	// interior, and the single-group extreme is clearly worse than the
	// minimum.
	minAll, argMinAll := res.Points[0].AllMS, 0
	for i, p := range res.Points {
		if p.AllMS <= 0 || p.NearMS <= 0 || p.FarMS <= 0 {
			t.Fatalf("non-positive latency at point %d: %+v", i, p)
		}
		if p.AllMS < minAll {
			minAll, argMinAll = p.AllMS, i
		}
	}
	last := res.Points[len(res.Points)-1]
	if last.AllMS < minAll*1.1 {
		t.Fatalf("no upturn: single-group latency %v vs min %v", last.AllMS, minAll)
	}
	if argMinAll == len(res.Points)-1 {
		t.Fatal("minimum at the single-group extreme; U-shape missing")
	}
	// Near caches bottom out at a group size <= the far caches' optimum.
	argMinNear, argMinFar := 0, 0
	for i, p := range res.Points {
		if p.NearMS < res.Points[argMinNear].NearMS {
			argMinNear = i
		}
		if p.FarMS < res.Points[argMinFar].FarMS {
			argMinFar = i
		}
	}
	if res.Points[argMinNear].GroupSize > res.Points[argMinFar].GroupSize {
		t.Fatalf("near-cache optimum group size %d > far-cache optimum %d",
			res.Points[argMinNear].GroupSize, res.Points[argMinFar].GroupSize)
	}
	// Table renders.
	var sb strings.Builder
	if err := res.Table().Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := Fig4(Options{Seed: 11, Scale: 0.3, Parallelism: 4, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	var greedy, random, minDist float64
	for _, p := range res.Points {
		greedy += p.GreedyMS
		random += p.RandomMS
		minDist += p.MinDistMS
	}
	if greedy >= minDist {
		t.Fatalf("greedy (%v) not better than min-dist (%v) in aggregate", greedy, minDist)
	}
	if greedy > random*1.05 {
		t.Fatalf("greedy (%v) clearly worse than random (%v)", greedy, random)
	}
	var sb strings.Builder
	if err := res.Table().Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := Fig5(testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	var greedy, minDist float64
	for _, p := range res.Points {
		greedy += p.GreedyMS
		minDist += p.MinDistMS
		if p.GreedyMS <= 0 {
			t.Fatalf("non-positive cost at K=%d", p.K)
		}
	}
	if greedy >= minDist {
		t.Fatalf("greedy (%v) not better than min-dist (%v) in aggregate", greedy, minDist)
	}
	// Costs should fall as K grows (more, smaller groups).
	first, lastPt := res.Points[0], res.Points[len(res.Points)-1]
	if lastPt.GreedyMS >= first.GreedyMS {
		t.Fatalf("greedy cost did not fall with K: %v -> %v", first.GreedyMS, lastPt.GreedyMS)
	}
}

func TestFig5Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	a, err := Fig5(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across identical runs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := Fig6(testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	var greedy, minDist float64
	for _, p := range res.Points {
		greedy += p.GreedyMS
		minDist += p.MinDistMS
	}
	if greedy >= minDist {
		t.Fatalf("greedy (%v) not better than min-dist (%v) in aggregate", greedy, minDist)
	}
	// More landmarks should not hurt the greedy selector much.
	if res.Points[2].GreedyMS > res.Points[0].GreedyMS*1.15 {
		t.Fatalf("greedy got worse with more landmarks: %v -> %v",
			res.Points[0].GreedyMS, res.Points[2].GreedyMS)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := Fig7(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	// The representations must stay comparable: mean absolute relative
	// difference under 40% (the paper reports near-parity; small scale is
	// noisier).
	var sumAbs float64
	for _, p := range res.Points {
		d := p.RelativeDiff
		if d < 0 {
			d = -d
		}
		sumAbs += d
	}
	mean := sumAbs / float64(len(res.Points))
	if mean > 0.4 {
		t.Fatalf("representations diverge: mean |rel diff| = %v", mean)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := Fig8(testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate over the realistic sizes (paper starts at 100 caches; at
	// tiny scaled sizes the SDSL bias has too few caches to matter).
	var sl, sdsl float64
	var counted int
	for _, p := range res.Points {
		if p.NumCaches < 60 {
			continue
		}
		sl += p.SL10MS + p.SL20MS
		sdsl += p.SDSL10MS + p.SDSL20MS
		counted++
	}
	if counted == 0 {
		t.Skip("scale too small for meaningful SDSL comparison")
	}
	if sdsl >= sl {
		t.Fatalf("SDSL (%v) not better than SL (%v) in aggregate", sdsl, sl)
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := Fig9(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	var sl, sdsl float64
	for _, p := range res.Points {
		sl += p.SLMS
		sdsl += p.SDSLMS
	}
	if sdsl >= sl {
		t.Fatalf("SDSL (%v) not better than SL (%v) in aggregate", sdsl, sl)
	}
}

func TestAblationThetaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := AblationTheta(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Theta != 0 {
		t.Fatal("first point must be theta=0 (plain SL)")
	}
	// For theta >= 1 the near-origin groups must be smaller than the
	// far-origin groups.
	for _, p := range res.Points {
		if p.Theta >= 1 && p.NearMeanSize >= p.FarMeanSize {
			t.Fatalf("theta=%v: near mean size %v >= far mean size %v",
				p.Theta, p.NearMeanSize, p.FarMeanSize)
		}
	}
}

func TestAblationPLSetMShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := AblationPLSetM(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, p := range res.Points {
		if p.ProbePairs < prev {
			t.Fatalf("probe pairs not monotone: %+v", res.Points)
		}
		prev = p.ProbePairs
		if p.GICostMS <= 0 {
			t.Fatalf("non-positive cost at M=%d", p.M)
		}
	}
}

func TestAblationProbeNoiseShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := AblationProbeNoise(testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	// Extreme noise must be worse than no noise for the greedy selector.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.GreedyMS <= first.GreedyMS {
		t.Fatalf("greedy accuracy did not degrade with noise: %v -> %v", first.GreedyMS, last.GreedyMS)
	}
}

func TestAblationFailuresShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := AblationFailures(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.SLMS <= 0 || p.SDSLMS <= 0 {
			t.Fatalf("non-positive latency at failed frac %v", p.FailedFrac)
		}
	}
	// Heavy failure must not be better than no failure (cooperation lost).
	if res.Points[len(res.Points)-1].SLMS < res.Points[0].SLMS*0.95 {
		t.Fatalf("failures improved SL latency: %+v", res.Points)
	}
}

func TestRepresentationStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := RepresentationStudy(Options{Seed: 11, Scale: 0.16, Parallelism: 4, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.FeatureVecMS <= 0 || p.GNPMS <= 0 || p.VivaldiMS <= 0 {
			t.Fatalf("degenerate costs at K=%d: %+v", p.K, p)
		}
		// All three representations within a loose factor of each other.
		hi := p.FeatureVecMS
		lo := p.FeatureVecMS
		for _, v := range []float64{p.GNPMS, p.VivaldiMS} {
			if v > hi {
				hi = v
			}
			if v < lo {
				lo = v
			}
		}
		if hi > lo*3 {
			t.Fatalf("representations diverge at K=%d: %+v", p.K, p)
		}
	}
}

func TestAblationBeaconsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := AblationBeacons(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Beacons != 0 {
		t.Fatal("first point must be the multicast model")
	}
	for _, p := range res.Points {
		if p.LatencyMS <= 0 {
			t.Fatalf("degenerate latency at beacons=%d", p.Beacons)
		}
		if p.GroupRate <= 0 {
			t.Fatalf("no group hits at beacons=%d", p.Beacons)
		}
	}
}

func TestAblationCachePolicyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := AblationCachePolicy(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	util, lru := res.Points[0], res.Points[1]
	if util.Policy != "utility" || lru.Policy != "lru" {
		t.Fatalf("policies = %q/%q", util.Policy, lru.Policy)
	}
	// Utility must not be clearly worse.
	if util.LatencyMS > lru.LatencyMS*1.1 {
		t.Fatalf("utility latency %v clearly worse than LRU %v", util.LatencyMS, lru.LatencyMS)
	}
	if util.OriginKB <= 0 || lru.OriginKB <= 0 {
		t.Fatal("origin load not recorded")
	}
}

func TestSubstrateStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := SubstrateStudy(Options{Seed: 11, Scale: 0.2, Parallelism: 2, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		// The landmark ordering must hold on both substrates (aggregate).
		if p.GreedyMS >= p.MinDistMS {
			t.Fatalf("%s: greedy %v not better than min-dist %v", p.Substrate, p.GreedyMS, p.MinDistMS)
		}
		if p.SLLatMS <= 0 || p.SDSLLatMS <= 0 {
			t.Fatalf("%s: degenerate latencies", p.Substrate)
		}
	}
}

func TestProbeOverheadStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := ProbeOverheadStudy(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleMS <= 0 {
		t.Fatal("oracle ceiling not computed")
	}
	var prevProbes int64
	for i, p := range res.Points {
		if p.GICostMS <= 0 || p.ProbesSent <= 0 {
			t.Fatalf("degenerate point %d: %+v", i, p)
		}
		// Higher (L, M) always costs at least as many probes within the
		// ordered config list's same-L steps.
		if i > 0 && res.Points[i-1].L == p.L && p.ProbesSent < prevProbes {
			t.Fatalf("probe bill not monotone in M at point %d", i)
		}
		prevProbes = p.ProbesSent
	}
	// The largest config must send more probes than the smallest.
	if res.Points[len(res.Points)-1].ProbesSent <= res.Points[0].ProbesSent {
		t.Fatal("largest config not more expensive than smallest")
	}
}

func TestFreshnessStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := FreshnessStudy(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.TotalHolders <= 0 || p.OriginMsgs <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		if p.OriginMsgs > p.TotalHolders {
			t.Fatalf("origin msgs exceed per-cache bill: %+v", p)
		}
		if p.Savings < 0 || p.Savings >= 1 {
			t.Fatalf("savings out of range: %+v", p)
		}
	}
	// Fewer groups (small K) must save at least as much as many groups.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.Savings < last.Savings {
		t.Fatalf("savings not decreasing with K: K=%d %.2f vs K=%d %.2f",
			first.K, first.Savings, last.K, last.Savings)
	}
}

func TestProtocolResilienceStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	res, err := ProtocolResilienceStudy(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 5 {
		t.Fatalf("too few scenarios: %d", len(res.Points))
	}
	n := float64(res.NumCaches)
	for _, p := range res.Points {
		if p.Assigned+p.Unresponsive != n {
			t.Fatalf("conservation violated in %q: %+v", p.Name, p)
		}
		if p.Messages <= 0 {
			t.Fatalf("no traffic in %q: %+v", p.Name, p)
		}
	}
	reliable := res.Points[0]
	if reliable.Unresponsive != 0 || reliable.Retries != 0 || reliable.DupReplies != 0 {
		t.Fatalf("fault counters nonzero on the reliable baseline: %+v", reliable)
	}
	crashed := false
	for _, p := range res.Points {
		if strings.Contains(p.Name, "crashed") && p.Unresponsive > 0 {
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("crash scenarios reported no unresponsive caches")
	}
	if got := len(res.Table().Rows); got != len(res.Points) {
		t.Fatalf("table rows = %d, want %d", got, len(res.Points))
	}
}
