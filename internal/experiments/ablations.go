package experiments

import (
	"fmt"
	"strconv"

	"edgecachegroups/internal/core"
	"edgecachegroups/internal/landmark"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// ---------------------------------------------------------------------------
// Ablation A: SDSL sensitivity exponent theta.
// ---------------------------------------------------------------------------

// ThetaPoint is one theta sweep point.
type ThetaPoint struct {
	Theta     float64
	LatencyMS float64
	// NearMeanSize and FarMeanSize are the mean group sizes of the caches
	// nearest / farthest from the origin — they show the mechanism.
	NearMeanSize float64
	FarMeanSize  float64
}

// ThetaResult holds the theta ablation series.
type ThetaResult struct {
	NumCaches int
	K         int
	Points    []ThetaPoint
}

// AblationTheta sweeps the SDSL sensitivity parameter theta. theta=0
// degenerates to the plain SL scheme; larger values concentrate more and
// smaller groups near the origin server.
func AblationTheta(o Options) (*ThetaResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	k := maxInt(n/10, 2)
	thetas := []float64{0, 0.5, 1, 2, 4}
	res := &ThetaResult{NumCaches: n, K: k, Points: make([]ThetaPoint, len(thetas))}
	l, m := landmarksFor(n)
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, true)
		if err != nil {
			return nil, err
		}
		subset := maxInt(n/10, 5)
		near := e.nw.NearestCaches(subset)
		far := e.nw.FarthestCaches(subset)
		src := simrand.New(seed + 43)
		err = forEach(len(thetas), o.Parallelism, func(i int) error {
			cfg := core.SDSL(l, m, thetas[i])
			if thetas[i] == 0 {
				cfg = core.SL(l, m)
			}
			rep, plan, err := e.simulate(cfg, k, src.SplitN("theta", i))
			if err != nil {
				return err
			}
			sizes := plan.Sizes()
			meanSize := func(set []topology.CacheIndex) float64 {
				var sum float64
				for _, c := range set {
					g, err := plan.GroupOf(c)
					if err != nil {
						continue
					}
					sum += float64(sizes[g])
				}
				return sum / float64(len(set))
			}
			res.Points[i].Theta = thetas[i]
			res.Points[i].LatencyMS += rep.MeanLatency() / float64(o.Trials)
			res.Points[i].NearMeanSize += meanSize(near) / float64(o.Trials)
			res.Points[i].FarMeanSize += meanSize(far) / float64(o.Trials)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the theta ablation.
func (r *ThetaResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Ablation: SDSL theta sweep (N=%d, K=%d)", r.NumCaches, r.K),
		Columns: []string{"theta", "avg latency (ms)", "mean group size (near)", "mean group size (far)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", p.Theta), f1(p.LatencyMS), f2(p.NearMeanSize), f2(p.FarMeanSize),
		})
	}
	t.Notes = append(t.Notes, "theta=0 is the plain SL scheme; growing theta shrinks near-origin groups")
	return t
}

// ---------------------------------------------------------------------------
// Ablation B: PLSet multiplier M.
// ---------------------------------------------------------------------------

// MPoint is one PLSet-multiplier sweep point.
type MPoint struct {
	M        int
	GICostMS float64
	// ProbePairs is the number of pairwise PLSet measurements the greedy
	// selector needed (the measurement overhead the paper's M trades off).
	ProbePairs int
}

// MResult holds the M ablation series.
type MResult struct {
	NumCaches int
	K         int
	L         int
	Points    []MPoint
}

// AblationPLSetM sweeps the potential-landmark-set multiplier M: larger M
// gives the greedy selector more candidates (better dispersion) at the cost
// of more pairwise probe traffic.
func AblationPLSetM(o Options) (*MResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	k := maxInt(n/10, 2)
	ms := []int{1, 2, 4, 8}
	l, _ := landmarksFor(n)
	res := &MResult{NumCaches: n, K: k, L: l, Points: make([]MPoint, len(ms))}
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, false)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 47)
		err = forEach(len(ms), o.Parallelism, func(i int) error {
			m := ms[i]
			lEff := l
			if m*(lEff-1) > n {
				lEff = n/m + 1
			}
			cost, err := gicost(e, landmark.Greedy{}, lEff, m, k, src.SplitN("m", i))
			if err != nil {
				return err
			}
			plPoints := m*(lEff-1) + 1
			res.Points[i].M = m
			res.Points[i].GICostMS += cost / float64(o.Trials)
			res.Points[i].ProbePairs = plPoints * (plPoints - 1) / 2
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the M ablation.
func (r *MResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Ablation: PLSet multiplier M (N=%d, K=%d, L=%d)", r.NumCaches, r.K, r.L),
		Columns: []string{"M", "avg group interaction cost (ms)", "PLSet probe pairs"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{strconv.Itoa(p.M), f1(p.GICostMS), strconv.Itoa(p.ProbePairs)})
	}
	t.Notes = append(t.Notes, "larger M improves landmark dispersion at quadratic probe cost")
	return t
}

// ---------------------------------------------------------------------------
// Ablation C: probe measurement noise.
// ---------------------------------------------------------------------------

// NoisePoint is one measurement-noise sweep point.
type NoisePoint struct {
	NoiseFrac float64
	GreedyMS  float64
	RandomMS  float64
	MinDistMS float64
}

// NoiseResult holds the noise ablation series.
type NoiseResult struct {
	NumCaches int
	K         int
	Points    []NoisePoint
}

// AblationProbeNoise sweeps the RTT measurement noise and reports the
// clustering accuracy of each landmark selector — showing how measurement
// error interacts with landmark quality.
func AblationProbeNoise(o Options) (*NoiseResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	k := maxInt(n/10, 2)
	noises := []float64{0, 0.05, 0.1, 0.2, 0.4}
	res := &NoiseResult{NumCaches: n, K: k, Points: make([]NoisePoint, len(noises))}
	l, m := landmarksFor(n)
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		base, err := newEnv(n, o, seed, false)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 53)
		err = forEach(len(noises), o.Parallelism, func(i int) error {
			cfg := probe.DefaultConfig()
			cfg.NoiseFrac = noises[i]
			prober, err := probe.NewProber(base.nw, cfg, simrand.New(seed+int64(i)*257))
			if err != nil {
				return err
			}
			e := &env{nw: base.nw, prober: prober, simCfg: base.simCfg, verify: base.verify}
			res.Points[i].NoiseFrac = noises[i]
			for s, sel := range selectors() {
				cost, err := gicost(e, sel, l, m, k, src.SplitN(fmt.Sprintf("%s/%d", sel.Name(), i), s))
				if err != nil {
					return fmt.Errorf("%s: %w", sel.Name(), err)
				}
				switch sel.(type) {
				case landmark.Greedy:
					res.Points[i].GreedyMS += cost / float64(o.Trials)
				case landmark.Random:
					res.Points[i].RandomMS += cost / float64(o.Trials)
				case landmark.MinDist:
					res.Points[i].MinDistMS += cost / float64(o.Trials)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the noise ablation.
func (r *NoiseResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Ablation: probe noise vs clustering accuracy (N=%d, K=%d)", r.NumCaches, r.K),
		Columns: []string{"noise frac", "SL greedy (ms)", "random (ms)", "min-dist (ms)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", p.NoiseFrac), f1(p.GreedyMS), f1(p.RandomMS), f1(p.MinDistMS),
		})
	}
	t.Notes = append(t.Notes, "all selectors degrade with noise; dispersed (greedy) landmarks degrade slowest")
	return t
}

// ---------------------------------------------------------------------------
// Ablation D: cache-node failures.
// ---------------------------------------------------------------------------

// FailurePoint is one failure-rate sweep point.
type FailurePoint struct {
	FailedFrac float64
	SLMS       float64
	SDSLMS     float64
}

// FailureResult holds the failure-injection series.
type FailureResult struct {
	NumCaches int
	K         int
	Points    []FailurePoint
}

// AblationFailures injects cache-node failures and measures the latency of
// SL and SDSL partitions as the failed fraction grows: failed members serve
// no cooperative lookups and their clients fail over to the origin.
func AblationFailures(o Options) (*FailureResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	k := maxInt(n/10, 2)
	fracs := []float64{0, 0.05, 0.1, 0.2}
	res := &FailureResult{NumCaches: n, K: k, Points: make([]FailurePoint, len(fracs))}
	l, m := landmarksFor(n)
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, true)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 59)
		err = forEach(len(fracs), o.Parallelism, func(i int) error {
			numFailed := int(fracs[i] * float64(n))
			failSrc := simrand.New(seed + 61 + int64(i))
			failedIdx, err := failSrc.SampleWithoutReplacement(n, numFailed)
			if err != nil {
				return err
			}
			simCfg := e.simCfg
			for _, f := range failedIdx {
				simCfg.FailedCaches = append(simCfg.FailedCaches, topology.CacheIndex(f))
			}
			e2 := &env{nw: e.nw, prober: e.prober, catalog: e.catalog, requests: e.requests, updates: e.updates, simCfg: simCfg}
			res.Points[i].FailedFrac = fracs[i]
			repSL, _, err := e2.simulate(core.SL(l, m), k, src.SplitN("sl", i))
			if err != nil {
				return err
			}
			repSD, _, err := e2.simulate(core.SDSL(l, m, DefaultTheta), k, src.SplitN("sdsl", i))
			if err != nil {
				return err
			}
			res.Points[i].SLMS += repSL.MeanLatency() / float64(o.Trials)
			res.Points[i].SDSLMS += repSD.MeanLatency() / float64(o.Trials)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the failure ablation.
func (r *FailureResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Ablation: cache-node failures (N=%d, K=%d)", r.NumCaches, r.K),
		Columns: []string{"failed frac", "SL (ms)", "SDSL (ms)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%g", p.FailedFrac), f1(p.SLMS), f1(p.SDSLMS)})
	}
	t.Notes = append(t.Notes, "latency degrades gracefully as members fail; SDSL retains its edge")
	return t
}
