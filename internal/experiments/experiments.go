// Package experiments regenerates every figure of the paper's evaluation
// (Figures 3–9) plus ablation studies on the design parameters. Each
// experiment returns a typed result that renders as an aligned text table
// mirroring the corresponding figure's series.
//
// Experiments are deterministic in Options.Seed and scale down gracefully
// via Options.Scale so the full suite can run as Go benchmarks.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"edgecachegroups/internal/core"
	"edgecachegroups/internal/netsim"
	"edgecachegroups/internal/obs"
	"edgecachegroups/internal/par"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/workload"
)

// Options controls experiment execution.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Scale in (0,1] shrinks network sizes, trace length, and sweep grids
	// proportionally; 1.0 reproduces the paper's scale (up to 500 caches).
	Scale float64
	// Parallelism bounds concurrent sweep-point execution; 0 means
	// a sensible default.
	Parallelism int
	// PipelineParallelism bounds the worker pools inside each formation
	// pipeline (feature probing, embedding, clustering); 0 keeps the
	// per-layer defaults. Results are invariant to this knob — it only
	// changes wall-clock time.
	PipelineParallelism int
	// SimShards sets netsim.Config.Shards for every simulation run: the
	// number of group-partitioned simulator shards executed concurrently.
	// Like PipelineParallelism, results are invariant to this knob.
	SimShards int
	// Trials averages stochastic experiments over this many seeds; 0 means
	// the default (1 at full scale).
	Trials int
	// NoVerify disables the invariant-checking layer. The zero value keeps
	// it ON: every figure run audits its plans (partition well-formedness,
	// centers-are-means) and reports (conservation laws) so a silently
	// inconsistent simulation cannot make it into a rendered table.
	NoVerify bool
	// Obs is the optional observability sink, threaded into every
	// formation pipeline and simulation the experiments run. Like the
	// parallelism knobs, it never affects results.
	Obs *obs.Obs
}

// DefaultOptions returns full-scale, single-trial options.
func DefaultOptions() Options {
	return Options{Seed: 1, Scale: 1, Parallelism: 4, Trials: 1}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Scale <= 0 || o.Scale > 1 || math.IsNaN(o.Scale) {
		return fmt.Errorf("experiments: Scale must be in (0,1], got %v", o.Scale)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("experiments: Parallelism must be >= 0, got %d", o.Parallelism)
	}
	if o.PipelineParallelism < 0 {
		return fmt.Errorf("experiments: PipelineParallelism must be >= 0, got %d", o.PipelineParallelism)
	}
	if o.SimShards < 0 {
		return fmt.Errorf("experiments: SimShards must be >= 0, got %d", o.SimShards)
	}
	if o.Trials < 0 {
		return fmt.Errorf("experiments: Trials must be >= 0, got %d", o.Trials)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Parallelism == 0 {
		o.Parallelism = 4
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	return o
}

// scaleInt scales n by o.Scale, never below minimum.
func (o Options) scaleInt(n, minimum int) int {
	v := int(math.Round(float64(n) * o.Scale))
	if v < minimum {
		v = minimum
	}
	return v
}

// Paper-scale experiment constants (§5).
const (
	paperNumLandmarks = 25  // L
	paperPLSetM       = 4   // M
	paperMaxCaches    = 500 // largest evaluated network
	paperTraceSec     = 600
	paperRequestRate  = 0.6
	paperSimilarity   = 0.8
)

// env bundles the shared per-network-size experimental setup.
type env struct {
	nw          *topology.Network
	prober      *probe.Prober
	catalog     *workload.Catalog
	requests    []workload.Request
	updates     []workload.Update
	simCfg      netsim.Config
	verify      bool
	pipelinePar int
	obs         *obs.Obs
}

// newEnv builds the simulation environment for a network of numCaches
// caches. withTraces controls whether request/update logs are generated
// (GICost-only experiments skip them).
func newEnv(numCaches int, o Options, seed int64, withTraces bool) (*env, error) {
	root := simrand.New(seed)

	topoParams := topology.DefaultTransitStubParams()
	g, err := topology.GenerateTransitStub(topoParams, root.Split("topology"))
	if err != nil {
		return nil, fmt.Errorf("generate topology: %w", err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: numCaches}, root.Split("placement"))
	if err != nil {
		return nil, fmt.Errorf("place network: %w", err)
	}
	prober, err := probe.NewProber(nw, probe.DefaultConfig(), root.Split("probe"))
	if err != nil {
		return nil, fmt.Errorf("build prober: %w", err)
	}
	e := &env{nw: nw, prober: prober, simCfg: netsim.DefaultConfig(), verify: !o.NoVerify, pipelinePar: o.PipelineParallelism, obs: o.Obs}
	e.simCfg.Verify = e.verify
	e.simCfg.Shards = o.SimShards
	e.simCfg.Obs = o.Obs
	if !withTraces {
		return e, nil
	}

	catParams := workload.DefaultCatalogParams()
	catParams.NumDocuments = maxInt(200, int(float64(catParams.NumDocuments)*o.Scale))
	catalog, err := workload.NewCatalog(catParams, root.Split("catalog"))
	if err != nil {
		return nil, fmt.Errorf("build catalog: %w", err)
	}
	traceParams := workload.TraceParams{
		DurationSec:         math.Max(120, paperTraceSec*o.Scale),
		RequestRatePerCache: paperRequestRate,
		Similarity:          paperSimilarity,
	}
	requests, err := workload.GenerateRequests(catalog, numCaches, traceParams, root.Split("requests"))
	if err != nil {
		return nil, fmt.Errorf("generate requests: %w", err)
	}
	updates, err := workload.GenerateUpdates(catalog, traceParams.DurationSec, root.Split("updates"))
	if err != nil {
		return nil, fmt.Errorf("generate updates: %w", err)
	}
	e.catalog = catalog
	e.requests = requests
	e.updates = updates
	// Scale per-cache capacity with the catalog so hit rates stay in the
	// regime the paper operates in (~2-3% of the catalog per cache).
	e.simCfg.CacheCapacityKB = 0.03 * float64(catParams.NumDocuments) * catParams.MeanSizeKB
	return e, nil
}

// formGroups runs a scheme on the environment. The env's verify setting
// overrides the scheme config's, so every figure run is audited unless the
// caller opted out.
func (e *env) formGroups(cfg core.Config, k int, src *simrand.Source) (*core.Plan, error) {
	cfg.Verify = e.verify
	cfg.Obs = e.obs
	if e.pipelinePar > 0 {
		cfg.ProbeParallelism = e.pipelinePar
		cfg.Cluster.Parallelism = e.pipelinePar
		cfg.GNP.Parallelism = e.pipelinePar
	}
	gf, err := core.NewCoordinator(e.nw, e.prober, cfg, src)
	if err != nil {
		return nil, err
	}
	return gf.FormGroups(k)
}

// simulate forms groups with cfg and replays the traces, returning the
// run report.
func (e *env) simulate(cfg core.Config, k int, src *simrand.Source) (*netsim.Report, *core.Plan, error) {
	plan, err := e.formGroups(cfg, k, src)
	if err != nil {
		return nil, nil, fmt.Errorf("form groups: %w", err)
	}
	sim, err := netsim.New(e.nw, plan.Groups(), e.catalog, e.simCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("build simulator: %w", err)
	}
	rep, err := sim.Run(e.requests, e.updates)
	if err != nil {
		return nil, nil, fmt.Errorf("run simulation: %w", err)
	}
	return rep, plan, nil
}

// forEach runs fn over [0,n) on the shared worker pool, reporting the
// lowest-index sweep-point error.
func forEach(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = 4
	}
	errs := make([]error, n)
	par.ForEach(n, workers, func(i int) { errs[i] = fn(i) })
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sweep point %d: %w", i, err)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
