package experiments

import (
	"fmt"
	"strconv"

	"edgecachegroups/internal/core"
	"edgecachegroups/internal/landmark"
	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
)

// OverheadPoint is one (L, M) configuration with its measurement bill.
type OverheadPoint struct {
	L          int
	M          int
	GICostMS   float64
	ProbesSent int64
	// ProbesPerCache is the total probing bill normalized by network size.
	ProbesPerCache float64
}

// OverheadResult holds the measurement-overhead study.
type OverheadResult struct {
	NumCaches int
	K         int
	Points    []OverheadPoint
	// OracleMS is the idealized (noise-free, full-knowledge) selector's
	// cost — the accuracy ceiling the configurations chase.
	OracleMS float64
}

// ProbeOverheadStudy quantifies the trade-off the paper's L and M
// parameters control: the total number of probe packets the scheme sends
// (PLSet pairwise probing plus per-cache feature-vector probing) against
// the clustering accuracy achieved. The Oracle selector provides the
// accuracy ceiling.
func ProbeOverheadStudy(o Options) (*OverheadResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	k := maxInt(n/10, 2)
	lBase, _ := landmarksFor(n)
	configs := []struct{ l, m int }{
		{maxInt(lBase*2/5, 2), 1},
		{maxInt(lBase*2/5, 2), 4},
		{lBase, 1},
		{lBase, 2},
		{lBase, 4},
	}
	res := &OverheadResult{NumCaches: n, K: k, Points: make([]OverheadPoint, len(configs))}

	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		base, err := newEnv(n, o, seed, false)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 79)

		// Oracle ceiling (no probing cost by construction).
		oracleCfg := core.SL(lBase, 1)
		oracleCfg.Selector = landmark.Oracle{}
		oraclePlan, err := base.formGroups(oracleCfg, k, src.Split("oracle"))
		if err != nil {
			return nil, fmt.Errorf("oracle: %w", err)
		}
		res.OracleMS += metrics.AvgGroupInteractionCost(base.nw, oraclePlan.Groups()) / float64(o.Trials)

		err = forEach(len(configs), o.Parallelism, func(i int) error {
			c := configs[i]
			if c.m*(c.l-1) > n {
				c.l = n/c.m + 1
			}
			// A fresh prober per configuration isolates its probe counters.
			prober, err := probe.NewProber(base.nw, probe.DefaultConfig(), simrand.New(seed+int64(i)*389))
			if err != nil {
				return err
			}
			e := &env{nw: base.nw, prober: prober, simCfg: base.simCfg, verify: base.verify}
			plan, err := e.formGroups(core.SL(c.l, c.m), k, src.SplitN("cfg", i))
			if err != nil {
				return fmt.Errorf("L=%d M=%d: %w", c.l, c.m, err)
			}
			res.Points[i].L = c.l
			res.Points[i].M = c.m
			res.Points[i].GICostMS += metrics.AvgGroupInteractionCost(e.nw, plan.Groups()) / float64(o.Trials)
			res.Points[i].ProbesSent += prober.ProbesSent() / int64(o.Trials)
			res.Points[i].ProbesPerCache += float64(prober.ProbesSent()) / float64(n) / float64(o.Trials)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the overhead study.
func (r *OverheadResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Extension: measurement overhead vs accuracy (N=%d, K=%d)", r.NumCaches, r.K),
		Columns: []string{"L", "M", "GICost (ms)", "probes sent", "probes/cache"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p.L), strconv.Itoa(p.M), f1(p.GICostMS),
			strconv.FormatInt(p.ProbesSent, 10), f1(p.ProbesPerCache),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("oracle (free global knowledge) ceiling: %.1f ms", r.OracleMS))
	t.Notes = append(t.Notes, "accuracy buys probes: the paper's L=25, M=4 sits near the knee")
	return t
}
