package experiments

import (
	"fmt"
	"time"

	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/protocol"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// ---------------------------------------------------------------------------
// Extension: distributed protocol resilience under transport faults.
// ---------------------------------------------------------------------------

// protocolScenario is one fault-model setting of the resilience sweep.
type protocolScenario struct {
	Name   string
	Faults protocol.FaultConfig
	// CrashFrac crashes this fraction of the caches (highest indices)
	// before the run starts.
	CrashFrac float64
}

// ProtocolResiliencePoint is one scenario's averaged outcome.
type ProtocolResiliencePoint struct {
	Name         string
	Assigned     float64
	Unresponsive float64
	Unacked      float64
	Messages     float64
	Retries      float64
	DupReplies   float64
	Timeouts     float64
	GICostMS     float64
}

// ProtocolResilienceResult holds the resilience sweep series.
type ProtocolResilienceResult struct {
	NumCaches int
	K         int
	Retries   int
	Points    []ProtocolResiliencePoint
}

// ProtocolResilienceStudy runs the actual message-passing protocol (the
// GF-coordinator and one agent per cache over the fault-injecting
// transport) under escalating fault models and reports how coverage and
// the retry/duplicate/timeout counters respond. Group quality (GICost)
// degrades gracefully because unresponsive caches are excluded rather
// than misplaced.
func ProtocolResilienceStudy(o Options) (*ProtocolResilienceResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	// The protocol runs real timers per retry round, so the study uses a
	// moderate network rather than the paper's full 500 caches.
	n := o.scaleInt(120, 30)
	k := maxInt(n/10, 2)
	l, m := landmarksFor(n)
	const retries = 6
	scenarios := []protocolScenario{
		{Name: "reliable"},
		{Name: "loss 10%", Faults: protocol.FaultConfig{Loss: 0.1}},
		{Name: "loss 30%", Faults: protocol.FaultConfig{Loss: 0.3}},
		{Name: "loss 20% + dup 20%", Faults: protocol.FaultConfig{Loss: 0.2, DupProb: 0.2}},
		{Name: "loss 20% + delay 30%", Faults: protocol.FaultConfig{Loss: 0.2, DelayProb: 0.3}},
		{Name: "10% caches crashed", CrashFrac: 0.1},
		{Name: "loss 20% + 10% crashed", Faults: protocol.FaultConfig{Loss: 0.2}, CrashFrac: 0.1},
	}
	res := &ProtocolResilienceResult{
		NumCaches: n, K: k, Retries: retries,
		Points: make([]ProtocolResiliencePoint, len(scenarios)),
	}
	for i, sc := range scenarios {
		res.Points[i].Name = sc.Name
	}
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, false)
		if err != nil {
			return nil, err
		}
		err = forEach(len(scenarios), o.Parallelism, func(i int) error {
			sc := scenarios[i]
			src := simrand.New(seed+101).SplitN("scenario", i)
			tr, err := protocol.NewFaultTransport(sc.Faults, src.Split("transport"))
			if err != nil {
				return err
			}
			defer tr.Close()
			agents := make([]*protocol.Agent, n)
			for a := range agents {
				ag, err := protocol.NewAgent(topology.CacheIndex(a), e.prober, tr)
				if err != nil {
					return err
				}
				agents[a] = ag
			}
			defer func() {
				for _, ag := range agents {
					ag.Stop()
				}
			}()
			for c := 0; c < int(sc.CrashFrac*float64(n)); c++ {
				tr.Kill(protocol.CacheAddr(topology.CacheIndex(n - 1 - c)))
			}
			cfg := protocol.Config{
				L: l, M: m, K: k, Theta: DefaultTheta,
				ReplyTimeout: 150 * time.Millisecond,
				Retries:      retries,
				RoundBudget:  time.Minute,
			}
			out, err := protocol.NewCoordinator(cfg, n, tr, src.Split("coordinator"))
			if err != nil {
				return err
			}
			r, err := out.Run()
			if err != nil {
				return fmt.Errorf("scenario %q: %w", sc.Name, err)
			}
			p := &res.Points[i]
			inv := 1 / float64(o.Trials)
			p.Assigned += float64(len(r.Assignments)) * inv
			p.Unresponsive += float64(len(r.Unresponsive)) * inv
			p.Unacked += float64(len(r.UnackedAssignments)) * inv
			p.Messages += float64(r.MessagesSent) * inv
			p.Retries += float64(r.Retries) * inv
			p.DupReplies += float64(r.DuplicateReplies) * inv
			p.Timeouts += float64(r.TimedOutWaits) * inv
			p.GICostMS += metrics.AvgGroupInteractionCost(e.nw, r.Groups) * inv
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the protocol resilience study.
func (r *ProtocolResilienceResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Extension: distributed protocol resilience (N=%d, K=%d, retries=%d)",
			r.NumCaches, r.K, r.Retries),
		Columns: []string{"fault model", "assigned", "unresp", "unacked", "messages", "retries", "dup replies", "timeouts", "GICost (ms)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			p.Name, f1(p.Assigned), f1(p.Unresponsive), f1(p.Unacked),
			f1(p.Messages), f1(p.Retries), f1(p.DupReplies), f1(p.Timeouts), f1(p.GICostMS),
		})
	}
	t.Notes = append(t.Notes,
		"every run completes with a verified plan: crashed/partitioned caches degrade to the unresponsive column, never corrupt groups",
		"fault draws come from per-link child streams, so each scenario replays bit-identically for a fixed seed")
	return t
}
