package experiments

import (
	"fmt"
	"strconv"

	"edgecachegroups/internal/cache"
	"edgecachegroups/internal/core"
	"edgecachegroups/internal/landmark"
	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// Extension studies beyond the paper's figures: a three-way position
// representation comparison (feature vectors / GNP / Vivaldi), a
// cooperation-mechanism comparison (multicast vs beacon points), a cache
// replacement policy comparison (utility vs LRU), and a topology-substrate
// robustness check (transit-stub vs Waxman).

// ---------------------------------------------------------------------------
// Representation study: feature vectors vs GNP vs Vivaldi.
// ---------------------------------------------------------------------------

// RepresentationPoint is one group-count sweep point.
type RepresentationPoint struct {
	K            int
	FeatureVecMS float64
	GNPMS        float64
	VivaldiMS    float64
}

// RepresentationResult holds the representation study series.
type RepresentationResult struct {
	NumCaches int
	Points    []RepresentationPoint
}

// RepresentationStudy extends Figure 7 with the Vivaldi coordinate system
// (the paper's reference [3]): all three position representations cluster
// the same measured landmark data.
func RepresentationStudy(o Options) (*RepresentationResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	ks := kSweep(n)
	res := &RepresentationResult{NumCaches: n, Points: make([]RepresentationPoint, len(ks))}
	l, m := landmarksFor(n)
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, false)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 67)
		err = forEach(len(ks), o.Parallelism, func(i int) error {
			res.Points[i].K = ks[i]
			for _, rep := range []struct {
				cfg core.Config
				dst *float64
			}{
				{core.SL(l, m), &res.Points[i].FeatureVecMS},
				{core.EuclideanScheme(l, m, 5), &res.Points[i].GNPMS},
				{core.VivaldiScheme(l, m, 5), &res.Points[i].VivaldiMS},
			} {
				plan, err := e.formGroups(rep.cfg, ks[i], src.SplitN(rep.cfg.Name(), i))
				if err != nil {
					return fmt.Errorf("%s: %w", rep.cfg.Name(), err)
				}
				*rep.dst += metrics.AvgGroupInteractionCost(e.nw, plan.Groups()) / float64(o.Trials)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the representation study.
func (r *RepresentationResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Extension: position representations (N=%d)", r.NumCaches),
		Columns: []string{"K", "feature vectors (ms)", "GNP (ms)", "Vivaldi (ms)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{strconv.Itoa(p.K), f1(p.FeatureVecMS), f1(p.GNPMS), f1(p.VivaldiMS)})
	}
	t.Notes = append(t.Notes, "all three representations should cluster comparably; feature vectors are the cheapest")
	return t
}

// ---------------------------------------------------------------------------
// Cooperation-mechanism study: multicast model vs beacon points.
// ---------------------------------------------------------------------------

// BeaconPoint is one beacon-count sweep point.
type BeaconPoint struct {
	// Beacons is the beacon count (0 = the default multicast model).
	Beacons   int
	LatencyMS float64
	GroupRate float64
}

// BeaconResult holds the cooperation-mechanism series.
type BeaconResult struct {
	NumCaches int
	K         int
	Points    []BeaconPoint
}

// AblationBeacons compares the default multicast-style cooperative lookup
// against the Cache Clouds beacon-point mechanism with 1-4 beacons per
// group.
func AblationBeacons(o Options) (*BeaconResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	k := maxInt(n/10, 2)
	counts := []int{0, 1, 2, 4}
	res := &BeaconResult{NumCaches: n, K: k, Points: make([]BeaconPoint, len(counts))}
	l, m := landmarksFor(n)
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, true)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 71)
		err = forEach(len(counts), o.Parallelism, func(i int) error {
			simCfg := e.simCfg
			simCfg.BeaconsPerGroup = counts[i]
			e2 := &env{nw: e.nw, prober: e.prober, catalog: e.catalog, requests: e.requests, updates: e.updates, simCfg: simCfg}
			rep, _, err := e2.simulate(core.SDSL(l, m, DefaultTheta), k, src.SplitN("b", i))
			if err != nil {
				return err
			}
			_, groupRate, _ := rep.HitRates()
			res.Points[i].Beacons = counts[i]
			res.Points[i].LatencyMS += rep.MeanLatency() / float64(o.Trials)
			res.Points[i].GroupRate += groupRate / float64(o.Trials)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the cooperation-mechanism study.
func (r *BeaconResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Extension: cooperative lookup mechanism (N=%d, K=%d, SDSL)", r.NumCaches, r.K),
		Columns: []string{"beacons/group", "avg latency (ms)", "group hit rate"},
	}
	for _, p := range r.Points {
		label := strconv.Itoa(p.Beacons)
		if p.Beacons == 0 {
			label = "multicast"
		}
		t.Rows = append(t.Rows, []string{label, f1(p.LatencyMS), fmt.Sprintf("%.1f%%", p.GroupRate*100)})
	}
	t.Notes = append(t.Notes, "beacon points localize the directory; more beacons shorten the directory leg")
	return t
}

// ---------------------------------------------------------------------------
// Replacement policy study: utility vs LRU.
// ---------------------------------------------------------------------------

// PolicyPoint is one policy comparison point.
type PolicyPoint struct {
	Policy    string
	LatencyMS float64
	LocalRate float64
	OriginKB  float64
}

// PolicyResult holds the replacement-policy series.
type PolicyResult struct {
	NumCaches int
	K         int
	Points    []PolicyPoint
}

// AblationCachePolicy compares the Cache Clouds utility-based replacement
// scheme against the LRU baseline under the standard dynamic workload.
func AblationCachePolicy(o Options) (*PolicyResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	k := maxInt(n/10, 2)
	policies := []cache.Policy{cache.PolicyUtility, cache.PolicyLRU}
	res := &PolicyResult{NumCaches: n, K: k, Points: make([]PolicyPoint, len(policies))}
	l, m := landmarksFor(n)
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, true)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 73)
		err = forEach(len(policies), o.Parallelism, func(i int) error {
			simCfg := e.simCfg
			simCfg.CachePolicy = policies[i]
			e2 := &env{nw: e.nw, prober: e.prober, catalog: e.catalog, requests: e.requests, updates: e.updates, simCfg: simCfg}
			rep, _, err := e2.simulate(core.SDSL(l, m, DefaultTheta), k, src.SplitN("p", i))
			if err != nil {
				return err
			}
			local, _, _ := rep.HitRates()
			res.Points[i].Policy = policies[i].String()
			res.Points[i].LatencyMS += rep.MeanLatency() / float64(o.Trials)
			res.Points[i].LocalRate += local / float64(o.Trials)
			res.Points[i].OriginKB += rep.OriginKB / float64(o.Trials)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the replacement-policy study.
func (r *PolicyResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Extension: cache replacement policy (N=%d, K=%d, SDSL)", r.NumCaches, r.K),
		Columns: []string{"policy", "avg latency (ms)", "local hit rate", "origin load (KB)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{p.Policy, f1(p.LatencyMS), fmt.Sprintf("%.1f%%", p.LocalRate*100), f1(p.OriginKB)})
	}
	t.Notes = append(t.Notes, "the Cache Clouds utility policy should match or beat LRU under dynamic content")
	return t
}

// ---------------------------------------------------------------------------
// Substrate study: transit-stub vs Waxman topology.
// ---------------------------------------------------------------------------

// SubstratePoint is one substrate comparison point.
type SubstratePoint struct {
	Substrate string
	GreedyMS  float64
	RandomMS  float64
	MinDistMS float64
	SLLatMS   float64
	SDSLLatMS float64
}

// SubstrateResult holds the substrate robustness series.
type SubstrateResult struct {
	NumCaches int
	K         int
	Points    []SubstratePoint
}

// SubstrateStudy repeats the landmark-selection ordering and the SL/SDSL
// latency comparison on a flat Waxman topology: the paper's qualitative
// results should not depend on the transit-stub hierarchy.
func SubstrateStudy(o Options) (*SubstrateResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	k := maxInt(n/10, 2)
	res := &SubstrateResult{NumCaches: n, K: k, Points: make([]SubstratePoint, 2)}
	l, m := landmarksFor(n)

	build := func(kind string, seed int64) (*env, error) {
		if kind == "transit-stub" {
			return newEnv(n, o, seed, true)
		}
		// Waxman substrate with the rest of the environment identical.
		root := simrand.New(seed)
		params := topology.DefaultWaxmanParams()
		if params.Nodes < n+1 {
			params.Nodes = n + 50
		}
		g, err := topology.GenerateWaxman(params, root.Split("topology"))
		if err != nil {
			return nil, err
		}
		nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: n}, root.Split("placement"))
		if err != nil {
			return nil, err
		}
		prober, err := probe.NewProber(nw, probe.DefaultConfig(), root.Split("probe"))
		if err != nil {
			return nil, err
		}
		// Reuse the trace machinery from the transit-stub env builder.
		base, err := newEnv(n, o, seed, true)
		if err != nil {
			return nil, err
		}
		return &env{nw: nw, prober: prober, catalog: base.catalog, requests: base.requests, updates: base.updates, simCfg: base.simCfg, verify: base.verify}, nil
	}

	substrates := []string{"transit-stub", "waxman"}
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		for i, kind := range substrates {
			e, err := build(kind, seed)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", kind, err)
			}
			src := simrand.New(seed + int64(i)*97)
			res.Points[i].Substrate = kind
			for _, sel := range selectors() {
				cost, err := gicost(e, sel, l, m, k, src.Split("sel/"+sel.Name()))
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", kind, sel.Name(), err)
				}
				switch sel.(type) {
				case landmark.Greedy:
					res.Points[i].GreedyMS += cost / float64(o.Trials)
				case landmark.Random:
					res.Points[i].RandomMS += cost / float64(o.Trials)
				case landmark.MinDist:
					res.Points[i].MinDistMS += cost / float64(o.Trials)
				}
			}
			repSL, _, err := e.simulate(core.SL(l, m), k, src.Split("sl"))
			if err != nil {
				return nil, fmt.Errorf("%s SL: %w", kind, err)
			}
			repSD, _, err := e.simulate(core.SDSL(l, m, DefaultTheta), k, src.Split("sdsl"))
			if err != nil {
				return nil, fmt.Errorf("%s SDSL: %w", kind, err)
			}
			res.Points[i].SLLatMS += repSL.MeanLatency() / float64(o.Trials)
			res.Points[i].SDSLLatMS += repSD.MeanLatency() / float64(o.Trials)
		}
	}
	return res, nil
}

// Table renders the substrate study.
func (r *SubstrateResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Extension: topology substrate robustness (N=%d, K=%d)", r.NumCaches, r.K),
		Columns: []string{"substrate", "greedy (ms)", "random (ms)", "min-dist (ms)", "SL latency (ms)", "SDSL latency (ms)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			p.Substrate, f1(p.GreedyMS), f1(p.RandomMS), f1(p.MinDistMS), f1(p.SLLatMS), f1(p.SDSLLatMS),
		})
	}
	t.Notes = append(t.Notes, "the greedy<=random<=min-dist ordering and the SDSL win should survive a flat substrate")
	return t
}

// ---------------------------------------------------------------------------
// Freshness maintenance study: cooperative push invalidation.
// ---------------------------------------------------------------------------

// FreshnessPoint is one group-count sweep point.
type FreshnessPoint struct {
	K int
	// OriginMsgs is the number of invalidation messages the origin sent
	// (one per group holding an updated document).
	OriginMsgs int64
	// TotalHolders is the per-cache push bill (origin + forwards).
	TotalHolders int64
	// Savings is 1 - OriginMsgs/TotalHolders.
	Savings float64
}

// FreshnessResult holds the freshness-maintenance series.
type FreshnessResult struct {
	NumCaches int
	Points    []FreshnessPoint
}

// FreshnessStudy quantifies "collaborative document freshness maintenance"
// (the paper's second motivating use of cache cooperation): with push
// invalidation routed through groups, the origin sends one message per
// group instead of one per holder. Larger groups concentrate holders and
// save more origin bandwidth.
func FreshnessStudy(o Options) (*FreshnessResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	ks := kSweep(n)
	res := &FreshnessResult{NumCaches: n, Points: make([]FreshnessPoint, len(ks))}
	l, m := landmarksFor(n)
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, true)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 83)
		err = forEach(len(ks), o.Parallelism, func(i int) error {
			simCfg := e.simCfg
			simCfg.PushInvalidation = true
			e2 := &env{nw: e.nw, prober: e.prober, catalog: e.catalog, requests: e.requests, updates: e.updates, simCfg: simCfg}
			rep, _, err := e2.simulate(core.SDSL(l, m, DefaultTheta), ks[i], src.SplitN("k", i))
			if err != nil {
				return err
			}
			res.Points[i].K = ks[i]
			res.Points[i].OriginMsgs += rep.InvalidationsOrigin / int64(o.Trials)
			res.Points[i].TotalHolders += (rep.InvalidationsOrigin + rep.InvalidationsForwarded) / int64(o.Trials)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for i := range res.Points {
		if res.Points[i].TotalHolders > 0 {
			res.Points[i].Savings = 1 - float64(res.Points[i].OriginMsgs)/float64(res.Points[i].TotalHolders)
		}
	}
	return res, nil
}

// Table renders the freshness study.
func (r *FreshnessResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Extension: cooperative freshness maintenance (N=%d, SDSL, push invalidation)", r.NumCaches),
		Columns: []string{"K", "origin msgs", "per-cache push msgs", "origin savings"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p.K),
			strconv.FormatInt(p.OriginMsgs, 10),
			strconv.FormatInt(p.TotalHolders, 10),
			fmt.Sprintf("%.1f%%", p.Savings*100),
		})
	}
	t.Notes = append(t.Notes, "fewer, larger groups concentrate holders: the origin invalidates once per group")
	return t
}
