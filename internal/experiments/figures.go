package experiments

import (
	"fmt"
	"strconv"

	"edgecachegroups/internal/core"
	"edgecachegroups/internal/landmark"
	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/simrand"
)

// DefaultTheta is the SDSL server-distance sensitivity used by the latency
// experiments (the paper leaves θ as a tunable; see AblationTheta).
const DefaultTheta = 1.0

// landmarksFor returns (L, M) honoring the paper's L=25, M=4 while keeping
// the PLSet within the network: M·(L−1) ≤ n.
func landmarksFor(n int) (l, m int) {
	l, m = paperNumLandmarks, paperPLSetM
	if m*(l-1) > n {
		l = n/m + 1
	}
	if l < 2 {
		l = 2
		m = 1
	}
	return l, m
}

// trialSeed derives the seed of one trial.
func trialSeed(o Options, trial int) int64 {
	return o.Seed + int64(trial)*7919
}

// ---------------------------------------------------------------------------
// Figure 3: average latency vs average group size (all / nearest / farthest).
// ---------------------------------------------------------------------------

// Fig3Point is one group-size sweep point.
type Fig3Point struct {
	GroupSize int
	K         int
	AllMS     float64
	NearMS    float64
	FarMS     float64
}

// Fig3Result holds the Figure 3 series.
type Fig3Result struct {
	NumCaches  int
	SubsetSize int
	Points     []Fig3Point
}

// Fig3 reproduces Figure 3: a 500-cache network partitioned by the SL
// scheme into groups of varying average size; reports mean latency for the
// whole network and for the caches nearest/farthest from the origin.
func Fig3(o Options) (*Fig3Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	subset := maxInt(n/10, 5)
	fractions := []float64{0.004, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}
	var sizes []int
	for _, f := range fractions {
		s := int(f * float64(n))
		if s < 2 {
			s = 2
		}
		if len(sizes) > 0 && sizes[len(sizes)-1] == s {
			continue
		}
		sizes = append(sizes, s)
	}

	res := &Fig3Result{NumCaches: n, SubsetSize: subset, Points: make([]Fig3Point, len(sizes))}
	l, m := landmarksFor(n)

	for trial := 0; trial < o.Trials; trial++ {
		e, err := newEnv(n, o, trialSeed(o, trial), true)
		if err != nil {
			return nil, err
		}
		near := e.nw.NearestCaches(subset)
		far := e.nw.FarthestCaches(subset)
		src := simrand.New(trialSeed(o, trial) + 17)
		err = forEach(len(sizes), o.Parallelism, func(i int) error {
			k := (n + sizes[i] - 1) / sizes[i]
			rep, _, err := e.simulate(core.SL(l, m), k, src.SplitN("size", i))
			if err != nil {
				return err
			}
			res.Points[i].GroupSize = sizes[i]
			res.Points[i].K = k
			res.Points[i].AllMS += rep.MeanLatency() / float64(o.Trials)
			res.Points[i].NearMS += rep.MeanLatencyOf(near) / float64(o.Trials)
			res.Points[i].FarMS += rep.MeanLatencyOf(far) / float64(o.Trials)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the Figure 3 series.
func (r *Fig3Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 3: avg latency vs avg group size (N=%d caches, SL scheme)", r.NumCaches),
		Columns: []string{"avg group size", "K", "all caches (ms)",
			fmt.Sprintf("%d nearest (ms)", r.SubsetSize), fmt.Sprintf("%d farthest (ms)", r.SubsetSize)},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p.GroupSize), strconv.Itoa(p.K), f1(p.AllMS), f1(p.NearMS), f1(p.FarMS),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: U-curves; nearest caches bottom out at smaller group sizes than farthest caches")
	return t
}

// ---------------------------------------------------------------------------
// Figures 4-6: landmark selection accuracy (group interaction cost).
// ---------------------------------------------------------------------------

// selectors returns the three landmark selection strategies of §5.1.
func selectors() []landmark.Selector {
	return []landmark.Selector{landmark.Greedy{}, landmark.Random{}, landmark.MinDist{}}
}

// gicost forms groups with the given selector and returns the average group
// interaction cost.
func gicost(e *env, sel landmark.Selector, l, m, k int, src *simrand.Source) (float64, error) {
	cfg := core.SL(l, m)
	cfg.Selector = sel
	plan, err := e.formGroups(cfg, k, src)
	if err != nil {
		return 0, err
	}
	return metrics.AvgGroupInteractionCost(e.nw, plan.Groups()), nil
}

// Fig4Point is one network-size sweep point.
type Fig4Point struct {
	NumCaches int
	K         int
	GreedyMS  float64
	RandomMS  float64
	MinDistMS float64
}

// Fig4Result holds the Figure 4 series.
type Fig4Result struct {
	Points []Fig4Point
}

// Fig4 reproduces Figure 4: clustering accuracy (average group interaction
// cost) of the three landmark selection techniques as the network size
// varies, with K = 10% of N.
func Fig4(o Options) (*Fig4Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	var sizes []int
	for _, base := range []int{100, 200, 300, 400, 500} {
		sizes = append(sizes, o.scaleInt(base, 20))
	}
	res := &Fig4Result{Points: make([]Fig4Point, len(sizes))}
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		err := forEach(len(sizes), o.Parallelism, func(i int) error {
			n := sizes[i]
			e, err := newEnv(n, o, seed+int64(i)*131, false)
			if err != nil {
				return err
			}
			l, m := landmarksFor(n)
			k := maxInt(n/10, 1)
			src := simrand.New(seed + int64(i))
			res.Points[i].NumCaches = n
			res.Points[i].K = k
			for s, sel := range selectors() {
				cost, err := gicost(e, sel, l, m, k, src.SplitN(sel.Name(), s))
				if err != nil {
					return fmt.Errorf("%s: %w", sel.Name(), err)
				}
				switch sel.(type) {
				case landmark.Greedy:
					res.Points[i].GreedyMS += cost / float64(o.Trials)
				case landmark.Random:
					res.Points[i].RandomMS += cost / float64(o.Trials)
				case landmark.MinDist:
					res.Points[i].MinDistMS += cost / float64(o.Trials)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the Figure 4 series.
func (r *Fig4Result) Table() *Table {
	t := &Table{
		Title:   "Figure 4: landmark selection vs clustering accuracy (K = 10% of N)",
		Columns: []string{"caches", "K", "SL greedy (ms)", "random (ms)", "min-dist (ms)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p.NumCaches), strconv.Itoa(p.K), f1(p.GreedyMS), f1(p.RandomMS), f1(p.MinDistMS),
		})
	}
	t.Notes = append(t.Notes, "expected shape: greedy <= random <= min-dist at every size")
	return t
}

// Fig5Point is one group-count sweep point.
type Fig5Point struct {
	K         int
	GreedyMS  float64
	RandomMS  float64
	MinDistMS float64
}

// Fig5Result holds the Figure 5 series.
type Fig5Result struct {
	NumCaches int
	Points    []Fig5Point
}

// Fig5 reproduces Figure 5: clustering accuracy of the three landmark
// selection techniques on a 500-cache network as the number of groups
// varies.
func Fig5(o Options) (*Fig5Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	ks := kSweep(n)
	res := &Fig5Result{NumCaches: n, Points: make([]Fig5Point, len(ks))}
	l, m := landmarksFor(n)
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, false)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 29)
		err = forEach(len(ks), o.Parallelism, func(i int) error {
			res.Points[i].K = ks[i]
			for s, sel := range selectors() {
				cost, err := gicost(e, sel, l, m, ks[i], src.SplitN(fmt.Sprintf("%s/%d", sel.Name(), i), s))
				if err != nil {
					return fmt.Errorf("%s: %w", sel.Name(), err)
				}
				switch sel.(type) {
				case landmark.Greedy:
					res.Points[i].GreedyMS += cost / float64(o.Trials)
				case landmark.Random:
					res.Points[i].RandomMS += cost / float64(o.Trials)
				case landmark.MinDist:
					res.Points[i].MinDistMS += cost / float64(o.Trials)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// kSweep returns the paper's K grid {10,25,50,75,100} scaled to n (the
// paper's grid is for n=500).
func kSweep(n int) []int {
	fractions := []float64{0.02, 0.05, 0.1, 0.15, 0.2}
	var ks []int
	for _, f := range fractions {
		k := int(f * float64(n))
		if k < 2 {
			k = 2
		}
		if len(ks) > 0 && ks[len(ks)-1] == k {
			continue
		}
		ks = append(ks, k)
	}
	return ks
}

// Table renders the Figure 5 series.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 5: landmark selection vs clustering accuracy (N=%d, varying K)", r.NumCaches),
		Columns: []string{"K", "SL greedy (ms)", "random (ms)", "min-dist (ms)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{strconv.Itoa(p.K), f1(p.GreedyMS), f1(p.RandomMS), f1(p.MinDistMS)})
	}
	t.Notes = append(t.Notes, "expected shape: greedy best at every K")
	return t
}

// Fig6Point is one landmark-count sweep point.
type Fig6Point struct {
	L         int
	GreedyMS  float64
	RandomMS  float64
	MinDistMS float64
}

// Fig6Result holds the Figure 6 series.
type Fig6Result struct {
	NumCaches int
	K         int
	Points    []Fig6Point
}

// Fig6 reproduces Figure 6: the effect of the number of landmarks (10, 20,
// 25) on clustering accuracy for each selection technique, K=10, N=500.
func Fig6(o Options) (*Fig6Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	// The paper uses K=10 at N=500 (2% of N); keep K large enough that the
	// clustering stays non-degenerate at reduced scales.
	k := maxInt(n/50, 6)
	ls := []int{10, 20, 25}
	res := &Fig6Result{NumCaches: n, K: k, Points: make([]Fig6Point, len(ls))}
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, false)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 31)
		err = forEach(len(ls), o.Parallelism, func(i int) error {
			l := ls[i]
			m := paperPLSetM
			if m*(l-1) > n {
				m = maxInt(n/(l-1), 1)
			}
			if m*(l-1) > n {
				l = n/m + 1
			}
			res.Points[i].L = ls[i]
			for s, sel := range selectors() {
				cost, err := gicost(e, sel, l, m, k, src.SplitN(fmt.Sprintf("%s/%d", sel.Name(), i), s))
				if err != nil {
					return fmt.Errorf("%s: %w", sel.Name(), err)
				}
				switch sel.(type) {
				case landmark.Greedy:
					res.Points[i].GreedyMS += cost / float64(o.Trials)
				case landmark.Random:
					res.Points[i].RandomMS += cost / float64(o.Trials)
				case landmark.MinDist:
					res.Points[i].MinDistMS += cost / float64(o.Trials)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the Figure 6 series.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 6: number of landmarks vs clustering accuracy (N=%d, K=%d)", r.NumCaches, r.K),
		Columns: []string{"landmarks", "SL greedy (ms)", "random (ms)", "min-dist (ms)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{strconv.Itoa(p.L), f1(p.GreedyMS), f1(p.RandomMS), f1(p.MinDistMS)})
	}
	t.Notes = append(t.Notes, "expected shape: accuracy improves with more landmarks, diminishing past ~25; greedy best throughout")
	return t
}

// ---------------------------------------------------------------------------
// Figure 7: feature vectors vs Euclidean (GNP) position representation.
// ---------------------------------------------------------------------------

// Fig7Point is one group-count sweep point.
type Fig7Point struct {
	K            int
	FeatureVecMS float64
	EuclideanMS  float64
	RelativeDiff float64 // (euclidean - featurevec) / featurevec
}

// Fig7Result holds the Figure 7 series.
type Fig7Result struct {
	NumCaches int
	Points    []Fig7Point
}

// Fig7 reproduces Figure 7: group interaction costs of the SL scheme's
// feature-vector representation vs GNP Euclidean-space clustering, using
// the same greedily-chosen landmark set.
func Fig7(o Options) (*Fig7Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	ks := kSweep(n)
	res := &Fig7Result{NumCaches: n, Points: make([]Fig7Point, len(ks))}
	l, m := landmarksFor(n)
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, false)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 37)
		err = forEach(len(ks), o.Parallelism, func(i int) error {
			res.Points[i].K = ks[i]
			planFV, err := e.formGroups(core.SL(l, m), ks[i], src.SplitN("fv", i))
			if err != nil {
				return fmt.Errorf("feature vector: %w", err)
			}
			planEU, err := e.formGroups(core.EuclideanScheme(l, m, 5), ks[i], src.SplitN("eu", i))
			if err != nil {
				return fmt.Errorf("euclidean: %w", err)
			}
			fv := metrics.AvgGroupInteractionCost(e.nw, planFV.Groups())
			eu := metrics.AvgGroupInteractionCost(e.nw, planEU.Groups())
			res.Points[i].FeatureVecMS += fv / float64(o.Trials)
			res.Points[i].EuclideanMS += eu / float64(o.Trials)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for i := range res.Points {
		if res.Points[i].FeatureVecMS > 0 {
			res.Points[i].RelativeDiff = (res.Points[i].EuclideanMS - res.Points[i].FeatureVecMS) / res.Points[i].FeatureVecMS
		}
	}
	return res, nil
}

// Table renders the Figure 7 series.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 7: position representation vs clustering accuracy (N=%d)", r.NumCaches),
		Columns: []string{"K", "feature vectors (ms)", "GNP euclidean (ms)", "rel. diff"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p.K), f1(p.FeatureVecMS), f1(p.EuclideanMS), fmt.Sprintf("%+.1f%%", p.RelativeDiff*100),
		})
	}
	t.Notes = append(t.Notes, "expected shape: the two representations stay within a few percent of each other")
	return t
}

// ---------------------------------------------------------------------------
// Figures 8-9: SDSL vs SL end-to-end latency.
// ---------------------------------------------------------------------------

// Fig8Point is one network-size sweep point.
type Fig8Point struct {
	NumCaches int
	SL10MS    float64 // SL, K = 10% of N
	SDSL10MS  float64
	SL20MS    float64 // SL, K = 20% of N
	SDSL20MS  float64
}

// Fig8Result holds the Figure 8 series.
type Fig8Result struct {
	Theta  float64
	Points []Fig8Point
}

// Fig8 reproduces Figure 8: average cache latency of the SL and SDSL
// schemes as the network size varies, at K = 10% and K = 20% of N.
func Fig8(o Options) (*Fig8Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	var sizes []int
	for _, base := range []int{100, 200, 300, 400, 500} {
		sizes = append(sizes, o.scaleInt(base, 20))
	}
	res := &Fig8Result{Theta: DefaultTheta, Points: make([]Fig8Point, len(sizes))}
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		err := forEach(len(sizes), o.Parallelism, func(i int) error {
			n := sizes[i]
			e, err := newEnv(n, o, seed+int64(i)*131, true)
			if err != nil {
				return err
			}
			l, m := landmarksFor(n)
			src := simrand.New(seed + int64(i))
			res.Points[i].NumCaches = n
			for _, frac := range []struct {
				pct int
				dst func(p *Fig8Point, slMS, sdslMS float64)
			}{
				{10, func(p *Fig8Point, sl, sdsl float64) { p.SL10MS += sl; p.SDSL10MS += sdsl }},
				{20, func(p *Fig8Point, sl, sdsl float64) { p.SL20MS += sl; p.SDSL20MS += sdsl }},
			} {
				k := maxInt(n*frac.pct/100, 2)
				repSL, _, err := e.simulate(core.SL(l, m), k, src.SplitN("sl", frac.pct))
				if err != nil {
					return fmt.Errorf("SL k=%d: %w", k, err)
				}
				repSD, _, err := e.simulate(core.SDSL(l, m, DefaultTheta), k, src.SplitN("sdsl", frac.pct))
				if err != nil {
					return fmt.Errorf("SDSL k=%d: %w", k, err)
				}
				frac.dst(&res.Points[i], repSL.MeanLatency()/float64(o.Trials), repSD.MeanLatency()/float64(o.Trials))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the Figure 8 series.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 8: SL vs SDSL average latency, varying network size (theta=%g)", r.Theta),
		Columns: []string{"caches", "SL K=10% (ms)", "SDSL K=10% (ms)", "SL K=20% (ms)", "SDSL K=20% (ms)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p.NumCaches), f1(p.SL10MS), f1(p.SDSL10MS), f1(p.SL20MS), f1(p.SDSL20MS),
		})
	}
	t.Notes = append(t.Notes, "expected shape: SDSL below SL at every size and both K settings")
	return t
}

// Fig9Point is one group-count sweep point.
type Fig9Point struct {
	K      int
	SLMS   float64
	SDSLMS float64
}

// Fig9Result holds the Figure 9 series.
type Fig9Result struct {
	NumCaches int
	Theta     float64
	Points    []Fig9Point
}

// Fig9 reproduces Figure 9: average client latency of the SL and SDSL
// schemes on a 500-cache network as the number of groups varies.
func Fig9(o Options) (*Fig9Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n := o.scaleInt(paperMaxCaches, 40)
	ks := kSweep(n)
	res := &Fig9Result{NumCaches: n, Theta: DefaultTheta, Points: make([]Fig9Point, len(ks))}
	l, m := landmarksFor(n)
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o, trial)
		e, err := newEnv(n, o, seed, true)
		if err != nil {
			return nil, err
		}
		src := simrand.New(seed + 41)
		err = forEach(len(ks), o.Parallelism, func(i int) error {
			res.Points[i].K = ks[i]
			repSL, _, err := e.simulate(core.SL(l, m), ks[i], src.SplitN("sl", i))
			if err != nil {
				return fmt.Errorf("SL: %w", err)
			}
			repSD, _, err := e.simulate(core.SDSL(l, m, DefaultTheta), ks[i], src.SplitN("sdsl", i))
			if err != nil {
				return fmt.Errorf("SDSL: %w", err)
			}
			res.Points[i].SLMS += repSL.MeanLatency() / float64(o.Trials)
			res.Points[i].SDSLMS += repSD.MeanLatency() / float64(o.Trials)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the Figure 9 series.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 9: SL vs SDSL average latency, varying K (N=%d, theta=%g)", r.NumCaches, r.Theta),
		Columns: []string{"K", "SL (ms)", "SDSL (ms)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{strconv.Itoa(p.K), f1(p.SLMS), f1(p.SDSLMS)})
	}
	t.Notes = append(t.Notes, "expected shape: SDSL below SL at every K")
	return t
}
