package gnp

import (
	"fmt"
	"math"

	"edgecachegroups/internal/par"
	"edgecachegroups/internal/simrand"
)

// Config tunes the GNP embedding.
type Config struct {
	// Dim is the dimensionality of the Euclidean space (GNP commonly uses
	// 5–8). Must be >= 1.
	Dim int
	// Sweeps is the number of coordinate-refinement rounds over the
	// landmark set in phase 1. Zero means the default (4).
	Sweeps int
	// NM tunes the per-node Nelder–Mead minimizations.
	NM NMOptions
	// Parallelism bounds the worker pool used by EmbedHosts for the
	// phase-2 per-node minimizations; 0 means the pool default. Each host
	// gets its own split RNG stream, so the embedding is invariant to the
	// worker count.
	Parallelism int
}

// DefaultConfig returns the embedding configuration used by the
// experiments (5 dimensions, as in the GNP paper's smaller settings).
func DefaultConfig() Config {
	return Config{Dim: 5, Sweeps: 4}
}

func (c Config) withDefaults() Config {
	if c.Sweeps <= 0 {
		c.Sweeps = 4
	}
	return c
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("gnp: Dim must be >= 1, got %d", c.Dim)
	}
	if c.Sweeps < 0 {
		return fmt.Errorf("gnp: Sweeps must be >= 0, got %d", c.Sweeps)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("gnp: Parallelism must be >= 0, got %d", c.Parallelism)
	}
	return nil
}

// relErr is the GNP objective term for one pair: squared relative error of
// the embedded distance against the measurement. Measured distances below
// epsMS are clamped to avoid division blow-ups between co-located nodes.
const epsMS = 0.5

func relErr(embedded, measured float64) float64 {
	m := measured
	if m < epsMS {
		m = epsMS
	}
	e := (embedded - measured) / m
	return e * e
}

func dist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// objective is the shared GNP distance kernel: the squared-relative-error
// sum of a candidate point against the measured distances to a set of
// reference coordinates. The epsMS clamp and its division are hoisted out
// of the simplex loop by precomputing the inverse clamped measurements
// once per node, so each evaluation is one sqrt and one multiply per
// reference.
type objective struct {
	refs    [][]float64
	meas    []float64
	invMeas []float64
	skip    int // reference index excluded from the sum; -1 for none
}

// newObjective builds the kernel for one node. refs is aliased, not
// copied, so phase-1 callers see coordinate updates between minimizations.
func newObjective(refs [][]float64, meas []float64, skip int) *objective {
	inv := make([]float64, len(meas))
	for j, m := range meas {
		if m < epsMS {
			m = epsMS
		}
		inv[j] = 1 / m
	}
	return &objective{refs: refs, meas: meas, invMeas: inv, skip: skip}
}

func (o *objective) eval(x []float64) float64 {
	var sum float64
	for j, c := range o.refs {
		if j == o.skip {
			continue
		}
		e := (dist(x, c) - o.meas[j]) * o.invMeas[j]
		sum += e * e
	}
	return sum
}

// EmbedLandmarks computes phase-1 GNP coordinates for the landmark set from
// its measured pairwise RTT matrix. The matrix must be square and
// symmetric with a zero diagonal. Coordinates are refined per-landmark with
// Nelder–Mead over cfg.Sweeps rounds, which scales to large landmark sets
// where a single joint minimization would not.
func EmbedLandmarks(measured [][]float64, cfg Config, src *simrand.Source) ([][]float64, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(measured)
	if n < 2 {
		return nil, fmt.Errorf("gnp: need >= 2 landmarks, got %d", n)
	}
	var maxD float64
	for i, row := range measured {
		if len(row) != n {
			return nil, fmt.Errorf("gnp: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, d := range row {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return nil, fmt.Errorf("gnp: invalid distance %v at (%d,%d)", d, i, j)
			}
			if i == j && d != 0 {
				return nil, fmt.Errorf("gnp: non-zero diagonal %v at %d", d, i)
			}
			if math.Abs(d-measured[j][i]) > 1e-9 {
				return nil, fmt.Errorf("gnp: matrix not symmetric at (%d,%d)", i, j)
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	if maxD == 0 {
		maxD = 1
	}

	// Random initialization inside a box scaled to the measured diameter.
	coords := make([][]float64, n)
	for i := range coords {
		coords[i] = make([]float64, cfg.Dim)
		for j := range coords[i] {
			coords[i][j] = src.Uniform(0, maxD)
		}
	}

	// One kernel per landmark, built once: the inverse clamped measurements
	// never change across sweeps, and refs aliases coords so each
	// minimization sees the latest coordinates of the other landmarks.
	objs := make([]*objective, n)
	for i := range objs {
		objs[i] = newObjective(coords, measured[i], i)
	}
	step := maxD / 4
	for sweep := 0; sweep < cfg.Sweeps; sweep++ {
		for i := 0; i < n; i++ {
			nm := cfg.NM
			if nm.InitStep == 0 {
				nm.InitStep = step
			}
			best, _, err := Minimize(objs[i].eval, coords[i], nm)
			if err != nil {
				return nil, fmt.Errorf("refine landmark %d: %w", i, err)
			}
			coords[i] = best
		}
		step /= 2
		if step < epsMS {
			step = epsMS
		}
	}
	return coords, nil
}

// EmbedHost computes phase-2 GNP coordinates for a host from its measured
// RTTs to the already-embedded landmarks.
func EmbedHost(landmarks [][]float64, toLandmarks []float64, cfg Config, src *simrand.Source) ([]float64, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("gnp: no landmark coordinates")
	}
	if len(toLandmarks) != len(landmarks) {
		return nil, fmt.Errorf("gnp: %d measurements for %d landmarks", len(toLandmarks), len(landmarks))
	}
	var maxD float64
	for i, c := range landmarks {
		if len(c) != cfg.Dim {
			return nil, fmt.Errorf("gnp: landmark %d has dim %d, want %d", i, len(c), cfg.Dim)
		}
		d := toLandmarks[i]
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("gnp: invalid measurement %v to landmark %d", d, i)
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD == 0 {
		maxD = 1
	}

	obj := newObjective(landmarks, toLandmarks, -1)

	// Multi-start: the nearest landmark's coordinates plus one random
	// start; keep the better minimum.
	nearest := 0
	for j := range toLandmarks {
		if toLandmarks[j] < toLandmarks[nearest] {
			nearest = j
		}
	}
	start1 := make([]float64, cfg.Dim)
	copy(start1, landmarks[nearest])
	start2 := make([]float64, cfg.Dim)
	for j := range start2 {
		start2[j] = src.Uniform(0, maxD)
	}

	nm := cfg.NM
	if nm.InitStep == 0 {
		nm.InitStep = maxD / 4
	}
	best1, f1, err := Minimize(obj.eval, start1, nm)
	if err != nil {
		return nil, fmt.Errorf("embed host (start 1): %w", err)
	}
	best2, f2, err := Minimize(obj.eval, start2, nm)
	if err != nil {
		return nil, fmt.Errorf("embed host (start 2): %w", err)
	}
	if f2 < f1 {
		return best2, nil
	}
	return best1, nil
}

// EmbedHosts computes phase-2 GNP coordinates for a batch of hosts from
// their measured RTTs to the already-embedded landmarks. The per-host
// minimizations are embarrassingly parallel — each host reads only the
// fixed landmark coordinates — and fan out over a worker pool bounded by
// cfg.Parallelism. Host i's randomness comes from src.SplitN("host", i),
// a pure function of (src seed, i), so the embedding is bit-identical for
// every worker count.
func EmbedHosts(landmarks [][]float64, toLandmarks [][]float64, cfg Config, src *simrand.Source) ([][]float64, error) {
	cfg = cfg.withDefaults()
	n := len(toLandmarks)
	flat := make([]float64, n*cfg.Dim)
	if err := EmbedHostsInto(landmarks, toLandmarks, flat, cfg, src); err != nil {
		return nil, err
	}
	coords := make([][]float64, n)
	for i := range coords {
		coords[i] = flat[i*cfg.Dim : (i+1)*cfg.Dim : (i+1)*cfg.Dim]
	}
	return coords, nil
}

// EmbedHostsInto is EmbedHosts writing host i's coordinates into
// out[i*Dim : (i+1)*Dim] of a caller-supplied flat array — the backing
// store of a flat feature matrix, typically — so assembling coordinates
// for N hosts adds no per-host result allocations. out must have
// len(toLandmarks)*Dim elements. Host i's randomness remains
// src.SplitN("host", i), so the embedding is bit-identical to EmbedHosts
// at every worker count.
func EmbedHostsInto(landmarks [][]float64, toLandmarks [][]float64, out []float64, cfg Config, src *simrand.Source) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if src == nil {
		return fmt.Errorf("gnp: nil random source")
	}
	n := len(toLandmarks)
	if len(out) != n*cfg.Dim {
		return fmt.Errorf("gnp: out has %d slots for %d hosts of dim %d", len(out), n, cfg.Dim)
	}
	errs := make([]error, n)
	par.ForEach(n, cfg.Parallelism, func(i int) {
		c, err := EmbedHost(landmarks, toLandmarks[i], cfg, src.SplitN("host", i))
		if err != nil {
			errs[i] = err
			return
		}
		copy(out[i*cfg.Dim:(i+1)*cfg.Dim], c)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("embed host %d: %w", i, err)
		}
	}
	return nil
}

// EmbeddingError returns the mean squared relative error of an embedding
// against a measured matrix — a quality diagnostic.
func EmbeddingError(coords [][]float64, measured [][]float64) (float64, error) {
	n := len(coords)
	if len(measured) != n {
		return 0, fmt.Errorf("gnp: %d coords vs %d measurement rows", n, len(measured))
	}
	if n < 2 {
		return 0, nil
	}
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += relErr(dist(coords[i], coords[j]), measured[i][j])
			count++
		}
	}
	return sum / float64(count), nil
}
