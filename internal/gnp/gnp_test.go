package gnp

import (
	"math"
	"testing"

	"edgecachegroups/internal/simrand"
)

func TestMinimizeQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+2)*(x[1]+2)
	}
	best, val, err := Minimize(f, []float64{0, 0}, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best[0]-3) > 1e-3 || math.Abs(best[1]+2) > 1e-3 {
		t.Fatalf("minimum at %v, want (3,-2)", best)
	}
	if val > 1e-5 {
		t.Fatalf("objective %v, want ~0", val)
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	best, _, err := Minimize(f, []float64{-1.2, 1}, NMOptions{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best[0]-1) > 0.02 || math.Abs(best[1]-1) > 0.02 {
		t.Fatalf("Rosenbrock minimum at %v, want (1,1)", best)
	}
}

func TestMinimizeErrors(t *testing.T) {
	f := func(x []float64) float64 { return 0 }
	if _, _, err := Minimize(f, nil, NMOptions{}); err == nil {
		t.Fatal("empty start accepted")
	}
	if _, _, err := Minimize(f, []float64{math.NaN()}, NMOptions{}); err == nil {
		t.Fatal("NaN start accepted")
	}
	if _, _, err := Minimize(f, []float64{math.Inf(1)}, NMOptions{}); err == nil {
		t.Fatal("Inf start accepted")
	}
}

func TestMinimizeRespectsMaxIter(t *testing.T) {
	calls := 0
	f := func(x []float64) float64 {
		calls++
		return x[0] * x[0]
	}
	if _, _, err := Minimize(f, []float64{100}, NMOptions{MaxIter: 5}); err != nil {
		t.Fatal(err)
	}
	// dim+1 initial evals plus a handful per iteration.
	if calls > 2+5*4 {
		t.Fatalf("too many objective calls: %d", calls)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{Dim: 0}).Validate(); err == nil {
		t.Fatal("Dim=0 accepted")
	}
	if err := (Config{Dim: 3, Sweeps: -1}).Validate(); err == nil {
		t.Fatal("negative sweeps accepted")
	}
}

// planted returns n points in dim-space and their exact distance matrix.
func planted(n, dim int, src *simrand.Source) ([][]float64, [][]float64) {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for j := range pts[i] {
			pts[i][j] = src.Uniform(0, 100)
		}
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = dist(pts[i], pts[j])
		}
	}
	return pts, m
}

func TestEmbedLandmarksRecoversEuclideanDistances(t *testing.T) {
	src := simrand.New(1)
	_, m := planted(8, 3, src)
	cfg := Config{Dim: 3, Sweeps: 6}
	coords, err := EmbedLandmarks(m, cfg, src.Split("embed"))
	if err != nil {
		t.Fatal(err)
	}
	errVal, err := EmbeddingError(coords, m)
	if err != nil {
		t.Fatal(err)
	}
	if errVal > 0.02 {
		t.Fatalf("embedding error %v, want < 0.02 for truly Euclidean input", errVal)
	}
}

func TestEmbedLandmarksValidation(t *testing.T) {
	src := simrand.New(2)
	cfg := Config{Dim: 2}
	tests := []struct {
		name string
		m    [][]float64
	}{
		{name: "too small", m: [][]float64{{0}}},
		{name: "ragged", m: [][]float64{{0, 1}, {1}}},
		{name: "negative", m: [][]float64{{0, -1}, {-1, 0}}},
		{name: "nan", m: [][]float64{{0, math.NaN()}, {math.NaN(), 0}}},
		{name: "nonzero diagonal", m: [][]float64{{1, 2}, {2, 0}}},
		{name: "asymmetric", m: [][]float64{{0, 2}, {3, 0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := EmbedLandmarks(tt.m, cfg, src); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	if _, err := EmbedLandmarks([][]float64{{0, 1}, {1, 0}}, Config{Dim: 0}, src); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEmbedHostRecoversPosition(t *testing.T) {
	src := simrand.New(3)
	pts, m := planted(8, 3, src)
	cfg := Config{Dim: 3, Sweeps: 6}
	coords, err := EmbedLandmarks(m, cfg, src.Split("lm"))
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize a host at a known point; measure to landmarks exactly.
	host := []float64{40, 55, 20}
	toLm := make([]float64, len(pts))
	for i := range pts {
		toLm[i] = dist(host, pts[i])
	}
	got, err := EmbedHost(coords, toLm, cfg, src.Split("host"))
	if err != nil {
		t.Fatal(err)
	}
	// The embedding is only unique up to isometry, so verify distances to
	// landmarks, not raw coordinates.
	for i := range coords {
		want := toLm[i]
		if want < 1 {
			continue
		}
		gotD := dist(got, coords[i])
		if math.Abs(gotD-want)/want > 0.15 {
			t.Fatalf("host-landmark %d distance %v, want ~%v", i, gotD, want)
		}
	}
}

func TestEmbedHostValidation(t *testing.T) {
	src := simrand.New(4)
	cfg := Config{Dim: 2}
	lms := [][]float64{{0, 0}, {10, 0}}
	if _, err := EmbedHost(nil, nil, cfg, src); err == nil {
		t.Fatal("no landmarks accepted")
	}
	if _, err := EmbedHost(lms, []float64{1}, cfg, src); err == nil {
		t.Fatal("mismatched measurements accepted")
	}
	if _, err := EmbedHost(lms, []float64{1, math.NaN()}, cfg, src); err == nil {
		t.Fatal("NaN measurement accepted")
	}
	if _, err := EmbedHost([][]float64{{0}}, []float64{1}, cfg, src); err == nil {
		t.Fatal("wrong-dim landmark accepted")
	}
	if _, err := EmbedHost(lms, []float64{1, 1}, Config{Dim: -1}, src); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEmbeddingErrorEdgeCases(t *testing.T) {
	if _, err := EmbeddingError([][]float64{{0}}, [][]float64{{0}, {0}}); err == nil {
		t.Fatal("mismatched sizes accepted")
	}
	v, err := EmbeddingError([][]float64{{0}}, [][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("single-point embedding error = %v, want 0", v)
	}
}

func TestRelErrClampsTinyDistances(t *testing.T) {
	// A measured distance of 0 must not divide by zero.
	v := relErr(1, 0)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("relErr(1,0) = %v", v)
	}
}

func TestEmbedHostsParallelismInvariant(t *testing.T) {
	src := simrand.New(7)
	pts, m := planted(8, 3, src)
	cfg := Config{Dim: 3, Sweeps: 4}
	lmCoords, err := EmbedLandmarks(m, cfg, src.Split("lm"))
	if err != nil {
		t.Fatal(err)
	}
	// Hosts at synthetic positions, measured to the landmarks exactly.
	hostSrc := src.Split("hosts")
	toLm := make([][]float64, 20)
	for h := range toLm {
		host := []float64{hostSrc.Uniform(0, 100), hostSrc.Uniform(0, 100), hostSrc.Uniform(0, 100)}
		toLm[h] = make([]float64, len(pts))
		for i := range pts {
			toLm[h][i] = dist(host, pts[i])
		}
	}
	var base [][]float64
	for _, par := range []int{1, 3, 8} {
		cfg.Parallelism = par
		got, err := EmbedHosts(lmCoords, toLm, cfg, src.Split("batch"))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		for h := range got {
			for j := range got[h] {
				if got[h][j] != base[h][j] {
					t.Fatalf("Parallelism=%d: host %d coord %d = %v, want %v (bit-identical)", par, h, j, got[h][j], base[h][j])
				}
			}
		}
	}
}

func TestEmbedHostsValidation(t *testing.T) {
	lm := [][]float64{{0, 0}, {10, 0}}
	cfg := Config{Dim: 2}
	src := simrand.New(1)
	if _, err := EmbedHosts(lm, [][]float64{{1, 2}}, cfg, nil); err == nil {
		t.Fatal("want error for nil source")
	}
	if _, err := EmbedHosts(lm, [][]float64{{1, 2, 3}}, cfg, src); err == nil {
		t.Fatal("want error for measurement/landmark count mismatch")
	}
	cfg.Parallelism = -1
	if _, err := EmbedHosts(lm, [][]float64{{1, 2}}, cfg, src); err == nil {
		t.Fatal("want error for negative Parallelism")
	}
}
