// Package gnp implements Global Network Positioning (Ng & Zhang,
// INFOCOM'02) as the Euclidean-space position-representation baseline of
// the paper's §5.2: nodes are mapped into a D-dimensional Euclidean space
// so that inter-node coordinate distances approximate measured RTTs, by
// minimizing a relative-error objective with the downhill simplex
// (Nelder–Mead) method.
package gnp

import (
	"fmt"
	"math"
	"sort"
)

// NMOptions tunes the Nelder–Mead optimizer.
type NMOptions struct {
	// MaxIter bounds the number of simplex transformations. Zero means the
	// default (400·dim).
	MaxIter int
	// TolF terminates when the simplex function-value spread drops below
	// this. Zero means the default (1e-9).
	TolF float64
	// InitStep is the size of the initial simplex along each axis. Zero
	// means the default (1.0).
	InitStep float64
}

func (o NMOptions) withDefaults(dim int) NMOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 400 * dim
	}
	if o.TolF <= 0 {
		o.TolF = 1e-9
	}
	if o.InitStep <= 0 {
		o.InitStep = 1.0
	}
	return o
}

// Minimize runs Nelder–Mead from x0 and returns the best point found and
// its objective value.
func Minimize(f func([]float64) float64, x0 []float64, opts NMOptions) ([]float64, float64, error) {
	dim := len(x0)
	if dim == 0 {
		return nil, 0, fmt.Errorf("gnp: empty starting point")
	}
	for i, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, 0, fmt.Errorf("gnp: starting point component %d is %v", i, v)
		}
	}
	opts = opts.withDefaults(dim)

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	// Initial simplex: x0 plus one perturbed vertex per axis.
	simplex := make([][]float64, dim+1)
	values := make([]float64, dim+1)
	for i := range simplex {
		v := make([]float64, dim)
		copy(v, x0)
		if i > 0 {
			v[i-1] += opts.InitStep
		}
		simplex[i] = v
		values[i] = f(v)
	}

	// Working vectors are allocated once and reused: the simplex loop runs
	// hundreds of times per minimization, and per-iteration allocation was
	// the dominant cost of the phase-2 embedding. Accepted candidates are
	// copied into the worst vertex instead of swapping slice headers.
	order := make([]int, dim+1)
	centroid := make([]float64, dim)
	refl := make([]float64, dim)
	exp := make([]float64, dim)
	contr := make([]float64, dim)
	for iter := 0; iter < opts.MaxIter; iter++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return values[order[a]] < values[order[b]] })
		best, worst, secondWorst := order[0], order[dim], order[dim-1]

		if math.Abs(values[worst]-values[best]) < opts.TolF {
			return simplex[best], values[best], nil
		}

		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for _, idx := range order[:dim] {
			for j, x := range simplex[idx] {
				centroid[j] += x
			}
		}
		for j := range centroid {
			centroid[j] /= float64(dim)
		}

		// Reflection.
		for j := range refl {
			refl[j] = centroid[j] + alpha*(centroid[j]-simplex[worst][j])
		}
		fRefl := f(refl)

		switch {
		case fRefl < values[best]:
			// Expansion.
			for j := range exp {
				exp[j] = centroid[j] + gamma*(refl[j]-centroid[j])
			}
			if fExp := f(exp); fExp < fRefl {
				copy(simplex[worst], exp)
				values[worst] = fExp
			} else {
				copy(simplex[worst], refl)
				values[worst] = fRefl
			}
		case fRefl < values[secondWorst]:
			copy(simplex[worst], refl)
			values[worst] = fRefl
		default:
			// Contraction.
			for j := range contr {
				contr[j] = centroid[j] + rho*(simplex[worst][j]-centroid[j])
			}
			if fContr := f(contr); fContr < values[worst] {
				copy(simplex[worst], contr)
				values[worst] = fContr
			} else {
				// Shrink toward the best vertex.
				for _, idx := range order[1:] {
					for j := range simplex[idx] {
						simplex[idx][j] = simplex[best][j] + sigma*(simplex[idx][j]-simplex[best][j])
					}
					values[idx] = f(simplex[idx])
				}
			}
		}
	}

	// Out of iterations: return the current best.
	best := 0
	for i := 1; i < len(values); i++ {
		if values[i] < values[best] {
			best = i
		}
	}
	return simplex[best], values[best], nil
}
