package topology

import (
	"container/heap"
	"fmt"
	"math"
)

// pqItem is an entry in the Dijkstra priority queue.
type pqItem struct {
	node NodeID
	dist float64
}

// distHeap is a min-heap of pqItems keyed by dist.
type distHeap []pqItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ShortestPaths computes single-source shortest-path distances from src to
// every node using Dijkstra's algorithm. Unreachable nodes get +Inf.
func (g *Graph) ShortestPaths(src NodeID) ([]float64, error) {
	n := len(g.nodes)
	if int(src) < 0 || int(src) >= n {
		return nil, fmt.Errorf("topology: source node %d out of range [0,%d)", src, n)
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[int(src)] = 0
	done := make([]bool, n)

	h := make(distHeap, 0, n)
	heap.Push(&h, pqItem{node: src, dist: 0})
	for h.Len() > 0 {
		it := heap.Pop(&h).(pqItem)
		u := int(it.node)
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.adj[u] {
			v := int(e.to)
			if nd := it.dist + e.weight; nd < dist[v] {
				dist[v] = nd
				heap.Push(&h, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return dist, nil
}

// ShortestPathsMulti computes shortest-path distances from each source in
// srcs. The result is indexed result[i][node] for srcs[i].
func (g *Graph) ShortestPathsMulti(srcs []NodeID) ([][]float64, error) {
	out := make([][]float64, len(srcs))
	for i, s := range srcs {
		d, err := g.ShortestPaths(s)
		if err != nil {
			return nil, fmt.Errorf("source %d (%d): %w", i, s, err)
		}
		out[i] = d
	}
	return out, nil
}

// Eccentricity returns the maximum finite shortest-path distance from src.
// It returns an error if any node is unreachable from src.
func (g *Graph) Eccentricity(src NodeID) (float64, error) {
	dist, err := g.ShortestPaths(src)
	if err != nil {
		return 0, err
	}
	var ecc float64
	for i, d := range dist {
		if math.IsInf(d, 1) {
			return 0, fmt.Errorf("node %d unreachable from %d: %w", i, src, ErrDisconnected)
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}
