// Package topology models the Internet substrate used by the edge cache
// network: an undirected weighted graph produced by a transit-stub
// hierarchical generator (in the spirit of GT-ITM, Zegura et al.,
// INFOCOM'96), shortest-path RTT computation, and the placement of an
// origin server and N edge caches onto the topology.
package topology

import (
	"errors"
	"fmt"
	"math"
)

// NodeID identifies a node (router) in the topology graph.
type NodeID int

// NodeKind distinguishes transit (backbone) routers from stub (edge)
// routers.
type NodeKind int

// Node kinds. Enums start at 1 so that the zero value is invalid.
const (
	KindTransit NodeKind = iota + 1
	KindStub
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case KindTransit:
		return "transit"
	case KindStub:
		return "stub"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node carries per-router metadata.
type Node struct {
	ID     NodeID   `json:"id"`
	Kind   NodeKind `json:"kind"`
	Domain int      `json:"domain"` // transit-domain index, or stub-domain index offset
}

type halfEdge struct {
	to     NodeID
	weight float64
}

// Graph is an undirected weighted graph. Edge weights are round-trip times
// in milliseconds. The zero value is an empty graph ready for use.
type Graph struct {
	nodes []Node
	adj   [][]halfEdge
	edges int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode appends a node of the given kind/domain and returns its ID.
func (g *Graph) AddNode(kind NodeKind, domain int) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Domain: domain})
	g.adj = append(g.adj, nil)
	return id
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Node returns the metadata for id. It returns an error for out-of-range
// IDs.
func (g *Graph) Node(id NodeID) (Node, error) {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return Node{}, fmt.Errorf("topology: node %d out of range [0,%d)", id, len(g.nodes))
	}
	return g.nodes[int(id)], nil
}

// AddEdge adds an undirected edge between a and b with the given RTT
// weight. Self-loops, duplicate edges, and non-positive weights are
// rejected.
func (g *Graph) AddEdge(a, b NodeID, weight float64) error {
	if a == b {
		return fmt.Errorf("topology: self-loop on node %d", a)
	}
	if int(a) < 0 || int(a) >= len(g.nodes) || int(b) < 0 || int(b) >= len(g.nodes) {
		return fmt.Errorf("topology: edge (%d,%d) references unknown node", a, b)
	}
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("topology: invalid edge weight %v", weight)
	}
	for _, e := range g.adj[int(a)] {
		if e.to == b {
			return fmt.Errorf("topology: duplicate edge (%d,%d)", a, b)
		}
	}
	g.adj[int(a)] = append(g.adj[int(a)], halfEdge{to: b, weight: weight})
	g.adj[int(b)] = append(g.adj[int(b)], halfEdge{to: a, weight: weight})
	g.edges++
	return nil
}

// HasEdge reports whether an edge between a and b exists.
func (g *Graph) HasEdge(a, b NodeID) bool {
	if int(a) < 0 || int(a) >= len(g.nodes) {
		return false
	}
	for _, e := range g.adj[int(a)] {
		if e.to == b {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of edge (a,b), or an error if absent.
func (g *Graph) EdgeWeight(a, b NodeID) (float64, error) {
	if int(a) < 0 || int(a) >= len(g.nodes) {
		return 0, fmt.Errorf("topology: node %d out of range", a)
	}
	for _, e := range g.adj[int(a)] {
		if e.to == b {
			return e.weight, nil
		}
	}
	return 0, fmt.Errorf("topology: no edge (%d,%d)", a, b)
}

// Degree returns the number of edges incident to id.
func (g *Graph) Degree(id NodeID) int {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return 0
	}
	return len(g.adj[int(id)])
}

// Neighbors appends the neighbor IDs of id to dst and returns it.
func (g *Graph) Neighbors(id NodeID, dst []NodeID) []NodeID {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return dst
	}
	for _, e := range g.adj[int(id)] {
		dst = append(dst, e.to)
	}
	return dst
}

// NodesOfKind returns all node IDs of the given kind.
func (g *Graph) NodesOfKind(kind NodeKind) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == kind {
			out = append(out, n.ID)
		}
	}
	return out
}

// IsConnected reports whether every node is reachable from node 0. An empty
// graph is considered connected.
func (g *Graph) IsConnected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[int(cur)] {
			if !seen[int(e.to)] {
				seen[int(e.to)] = true
				count++
				stack = append(stack, e.to)
			}
		}
	}
	return count == len(g.nodes)
}

// ErrDisconnected is returned when an operation requires a connected graph.
var ErrDisconnected = errors.New("topology: graph is not connected")
