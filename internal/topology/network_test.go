package topology

import (
	"testing"

	"edgecachegroups/internal/simrand"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := GenerateTransitStub(DefaultTransitStubParams(), simrand.New(100))
	if err != nil {
		t.Fatalf("generate topology: %v", err)
	}
	return g
}

func TestNewNetworkPlacement(t *testing.T) {
	g := testGraph(t)
	nw, err := NewNetwork(g, PlaceParams{NumCaches: 50}, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumCaches() != 50 {
		t.Fatalf("NumCaches = %d, want 50", nw.NumCaches())
	}
	if nw.Graph() != g {
		t.Fatal("Graph() did not return the underlying graph")
	}

	// All endpoints must be distinct stub nodes.
	seen := map[NodeID]bool{nw.OriginNode(): true}
	for i := 0; i < 50; i++ {
		id, err := nw.CacheNode(CacheIndex(i))
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("endpoint node %d reused", id)
		}
		seen[id] = true
		n, err := g.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.Kind != KindStub {
			t.Fatalf("cache %d placed on %v node", i, n.Kind)
		}
	}
	if _, err := nw.CacheNode(CacheIndex(50)); err == nil {
		t.Fatal("out-of-range CacheNode should error")
	}
	if _, err := nw.CacheNode(CacheIndex(-1)); err == nil {
		t.Fatal("negative CacheNode should error")
	}
}

func TestNewNetworkErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := NewNetwork(g, PlaceParams{NumCaches: 0}, simrand.New(1)); err == nil {
		t.Fatal("NumCaches=0 should error")
	}
	if _, err := NewNetwork(g, PlaceParams{NumCaches: 100000}, simrand.New(1)); err == nil {
		t.Fatal("too many caches should error")
	}
}

func TestNetworkDistanceProperties(t *testing.T) {
	g := testGraph(t)
	nw, err := NewNetwork(g, PlaceParams{NumCaches: 30}, simrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		ci := CacheIndex(i)
		if d := nw.Dist(ci, ci); d != 0 {
			t.Fatalf("Dist(%d,%d) = %v, want 0", i, i, d)
		}
		if d := nw.DistToOrigin(ci); d <= 0 {
			t.Fatalf("DistToOrigin(%d) = %v, want > 0", i, d)
		}
		for j := i + 1; j < 30; j++ {
			cj := CacheIndex(j)
			if nw.Dist(ci, cj) != nw.Dist(cj, ci) {
				t.Fatalf("Dist not symmetric for (%d,%d)", i, j)
			}
			if nw.Dist(ci, cj) <= 0 {
				t.Fatalf("Dist(%d,%d) = %v, want > 0 (distinct stubs)", i, j, nw.Dist(ci, cj))
			}
		}
	}
	if nw.MeanPairwiseDist() <= 0 {
		t.Fatal("MeanPairwiseDist should be positive")
	}
}

func TestNewNetworkAt(t *testing.T) {
	// Path graph: o --1-- a --2-- b.
	g := NewGraph()
	o := g.AddNode(KindStub, 0)
	a := g.AddNode(KindStub, 0)
	b := g.AddNode(KindStub, 0)
	if err := g.AddEdge(o, a, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b, 2); err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetworkAt(g, o, []NodeID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.DistToOrigin(0); got != 1 {
		t.Fatalf("DistToOrigin(0) = %v, want 1", got)
	}
	if got := nw.DistToOrigin(1); got != 3 {
		t.Fatalf("DistToOrigin(1) = %v, want 3", got)
	}
	if got := nw.Dist(0, 1); got != 2 {
		t.Fatalf("Dist(0,1) = %v, want 2", got)
	}
	if got := nw.MeanPairwiseDist(); got != 2 {
		t.Fatalf("MeanPairwiseDist = %v, want 2", got)
	}
}

func TestNewNetworkAtErrors(t *testing.T) {
	g := NewGraph()
	o := g.AddNode(KindStub, 0)
	a := g.AddNode(KindStub, 0)
	if err := g.AddEdge(o, a, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNetworkAt(g, o, nil); err == nil {
		t.Fatal("empty caches should error")
	}
	if _, err := NewNetworkAt(g, NodeID(99), []NodeID{a}); err == nil {
		t.Fatal("bad origin should error")
	}
	if _, err := NewNetworkAt(g, o, []NodeID{NodeID(99)}); err == nil {
		t.Fatal("bad cache node should error")
	}
	// Disconnected endpoint.
	iso := g.AddNode(KindStub, 1)
	if _, err := NewNetworkAt(g, o, []NodeID{iso}); err == nil {
		t.Fatal("unreachable cache should error")
	}
}

func TestNearestFarthestCaches(t *testing.T) {
	// Line: o -1- c0 -1- c1 -1- c2.
	g := NewGraph()
	o := g.AddNode(KindStub, 0)
	var caches []NodeID
	prev := o
	for i := 0; i < 3; i++ {
		n := g.AddNode(KindStub, 0)
		if err := g.AddEdge(prev, n, 1); err != nil {
			t.Fatal(err)
		}
		caches = append(caches, n)
		prev = n
	}
	nw, err := NewNetworkAt(g, o, caches)
	if err != nil {
		t.Fatal(err)
	}
	sorted := nw.CachesByOriginDistance()
	want := []CacheIndex{0, 1, 2}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("CachesByOriginDistance = %v, want %v", sorted, want)
		}
	}
	near := nw.NearestCaches(2)
	if len(near) != 2 || near[0] != 0 || near[1] != 1 {
		t.Fatalf("NearestCaches(2) = %v", near)
	}
	far := nw.FarthestCaches(1)
	if len(far) != 1 || far[0] != 2 {
		t.Fatalf("FarthestCaches(1) = %v", far)
	}
	// Oversized k clamps.
	if got := nw.NearestCaches(10); len(got) != 3 {
		t.Fatalf("NearestCaches(10) returned %d caches", len(got))
	}
	if got := nw.FarthestCaches(10); len(got) != 3 {
		t.Fatalf("FarthestCaches(10) returned %d caches", len(got))
	}
}

func TestMeanPairwiseDistSingleCache(t *testing.T) {
	g := NewGraph()
	o := g.AddNode(KindStub, 0)
	a := g.AddNode(KindStub, 0)
	if err := g.AddEdge(o, a, 1); err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetworkAt(g, o, []NodeID{a})
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.MeanPairwiseDist(); got != 0 {
		t.Fatalf("MeanPairwiseDist with 1 cache = %v, want 0", got)
	}
}
