package topology

import (
	"fmt"
	"math"

	"edgecachegroups/internal/simrand"
)

// WaxmanParams configures the flat Waxman random topology generator
// (Waxman, JSAC'88), the other classic Internet model GT-ITM offers.
// Nodes are scattered uniformly on a plane and each pair is connected with
// probability Alpha·exp(−d/(Beta·L)) where d is their plane distance and L
// the plane diagonal; link RTT is proportional to plane distance.
//
// Waxman topologies lack the transit-stub hierarchy, so they make a useful
// robustness check: the SL/SDSL orderings should survive a flat substrate
// with weaker locality structure.
type WaxmanParams struct {
	// Nodes is the number of routers.
	Nodes int
	// Alpha scales overall edge density; typical values 0.1–0.3.
	Alpha float64
	// Beta controls the relative likelihood of long edges; typical 0.1–0.3.
	Beta float64
	// PlaneSize is the side of the square placement plane.
	PlaneSize float64
	// RTTPerUnit converts plane distance into link RTT milliseconds.
	RTTPerUnit float64
	// MinRTT floors every link RTT.
	MinRTT float64
}

// DefaultWaxmanParams returns a 600-router Waxman topology comparable in
// scale and RTT range to the default transit-stub topology.
func DefaultWaxmanParams() WaxmanParams {
	return WaxmanParams{
		Nodes:      600,
		Alpha:      0.12,
		Beta:       0.15,
		PlaneSize:  1000,
		RTTPerUnit: 0.25,
		MinRTT:     0.5,
	}
}

// Validate reports whether the parameters are generable.
func (p WaxmanParams) Validate() error {
	switch {
	case p.Nodes < 2:
		return fmt.Errorf("topology: Waxman Nodes must be >= 2, got %d", p.Nodes)
	case p.Alpha <= 0 || p.Alpha > 1:
		return fmt.Errorf("topology: Waxman Alpha must be in (0,1], got %v", p.Alpha)
	case p.Beta <= 0 || p.Beta > 1:
		return fmt.Errorf("topology: Waxman Beta must be in (0,1], got %v", p.Beta)
	case p.PlaneSize <= 0:
		return fmt.Errorf("topology: Waxman PlaneSize must be > 0, got %v", p.PlaneSize)
	case p.RTTPerUnit <= 0:
		return fmt.Errorf("topology: Waxman RTTPerUnit must be > 0, got %v", p.RTTPerUnit)
	case p.MinRTT < 0:
		return fmt.Errorf("topology: Waxman MinRTT must be >= 0, got %v", p.MinRTT)
	}
	return nil
}

// GenerateWaxman builds a connected Waxman topology. All nodes are stub
// kind (the model is flat) in domain 0.
func GenerateWaxman(params WaxmanParams, src *simrand.Source) (*Graph, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	g := NewGraph()
	type point struct{ x, y float64 }
	pts := make([]point, params.Nodes)
	for i := range pts {
		pts[i] = point{x: src.Uniform(0, params.PlaneSize), y: src.Uniform(0, params.PlaneSize)}
		g.AddNode(KindStub, 0)
	}
	planeDist := func(a, b int) float64 {
		dx, dy := pts[a].x-pts[b].x, pts[a].y-pts[b].y
		return math.Sqrt(dx*dx + dy*dy)
	}
	rtt := func(d float64) float64 {
		v := d * params.RTTPerUnit
		if v < params.MinRTT {
			v = params.MinRTT
		}
		return v
	}
	diag := params.PlaneSize * math.Sqrt2

	// Waxman edges.
	for i := 0; i < params.Nodes; i++ {
		for j := i + 1; j < params.Nodes; j++ {
			d := planeDist(i, j)
			if src.Float64() < params.Alpha*math.Exp(-d/(params.Beta*diag)) {
				if err := g.AddEdge(NodeID(i), NodeID(j), rtt(d)); err != nil {
					return nil, err
				}
			}
		}
	}

	// Connectivity repair: link each unreached component to its nearest
	// reached node (keeps the geometric flavor).
	for {
		reached := reachableFrom(g, 0)
		missing := -1
		for i := 0; i < params.Nodes; i++ {
			if !reached[i] {
				missing = i
				break
			}
		}
		if missing < 0 {
			break
		}
		best, bestD := -1, 0.0
		for i := 0; i < params.Nodes; i++ {
			if !reached[i] {
				continue
			}
			if d := planeDist(missing, i); best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		if err := g.AddEdge(NodeID(missing), NodeID(best), rtt(bestD)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func reachableFrom(g *Graph, start NodeID) []bool {
	seen := make([]bool, g.NumNodes())
	if g.NumNodes() == 0 {
		return seen
	}
	stack := []NodeID{start}
	seen[int(start)] = true
	var buf []NodeID
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = g.Neighbors(cur, buf[:0])
		for _, nb := range buf {
			if !seen[int(nb)] {
				seen[int(nb)] = true
				stack = append(stack, nb)
			}
		}
	}
	return seen
}
