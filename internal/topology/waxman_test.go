package topology

import (
	"bytes"
	"testing"

	"edgecachegroups/internal/simrand"
)

func TestWaxmanParamsValidate(t *testing.T) {
	if err := DefaultWaxmanParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*WaxmanParams)
	}{
		{"one node", func(p *WaxmanParams) { p.Nodes = 1 }},
		{"alpha zero", func(p *WaxmanParams) { p.Alpha = 0 }},
		{"alpha big", func(p *WaxmanParams) { p.Alpha = 1.5 }},
		{"beta zero", func(p *WaxmanParams) { p.Beta = 0 }},
		{"plane zero", func(p *WaxmanParams) { p.PlaneSize = 0 }},
		{"rtt zero", func(p *WaxmanParams) { p.RTTPerUnit = 0 }},
		{"min rtt negative", func(p *WaxmanParams) { p.MinRTT = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultWaxmanParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestGenerateWaxmanConnectedAndSized(t *testing.T) {
	p := DefaultWaxmanParams()
	p.Nodes = 200
	g, err := GenerateWaxman(p, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("Waxman topology disconnected after repair")
	}
	if g.NumEdges() < 200 {
		t.Fatalf("suspiciously few edges: %d", g.NumEdges())
	}
}

func TestGenerateWaxmanDeterministic(t *testing.T) {
	p := DefaultWaxmanParams()
	p.Nodes = 100
	g1, err := GenerateWaxman(p, simrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GenerateWaxman(p, simrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	d1, err := g1.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := g2.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("distance to %d differs", i)
		}
	}
}

func TestGenerateWaxmanRejectsBadParams(t *testing.T) {
	p := DefaultWaxmanParams()
	p.Nodes = 0
	if _, err := GenerateWaxman(p, simrand.New(1)); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestWaxmanSupportsNetworkPlacement(t *testing.T) {
	p := DefaultWaxmanParams()
	p.Nodes = 150
	g, err := GenerateWaxman(p, simrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(g, PlaceParams{NumCaches: 50}, simrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumCaches() != 50 {
		t.Fatalf("caches = %d", nw.NumCaches())
	}
	if nw.MeanPairwiseDist() <= 0 {
		t.Fatal("degenerate distances")
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g, err := GenerateTransitStub(DefaultTransitStubParams(), simrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			got.NumNodes(), g.NumNodes(), got.NumEdges(), g.NumEdges())
	}
	// Distances must be identical.
	d1, err := g.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := got.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("distance to %d differs after round trip", i)
		}
	}
}

func TestReadGraphJSONErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"garbage", "not json"},
		{"sparse ids", `{"nodes":[{"id":5,"kind":2,"domain":0}],"edges":[]}`},
		{"bad kind", `{"nodes":[{"id":0,"kind":9,"domain":0}],"edges":[]}`},
		{"bad edge", `{"nodes":[{"id":0,"kind":2,"domain":0},{"id":1,"kind":2,"domain":0}],"edges":[{"a":0,"b":5,"weightMS":1}]}`},
		{"bad weight", `{"nodes":[{"id":0,"kind":2,"domain":0},{"id":1,"kind":2,"domain":0}],"edges":[{"a":0,"b":1,"weightMS":-1}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadGraphJSON(bytes.NewBufferString(tt.data)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}
